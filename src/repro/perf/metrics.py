"""Performance metrics and report formatting.

GCUPS (billions of cell updates per second) is the paper's headline
metric; this module computes it from either the virtual clock (simulated
devices) or wall time (the CPU baseline), and renders the small fixed-
width tables the benchmark harnesses print — the same rows the paper's
tables report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def gcups(cells: int, seconds: float) -> float:
    """Billions of DP cells per second.

    This is the single library-wide definition: every result type
    (simulated :class:`~repro.multigpu.chain.ChainResult` GCUPS on the
    virtual clock, real-process
    :class:`~repro.multigpu.procchain.ProcessChainResult` GCUPS on wall
    time) routes through it, and the one documented behaviour for a
    non-positive *seconds* is to raise ``ValueError`` — a zero or
    negative elapsed time is always a caller bug, never a rate.
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return cells / seconds / 1e9


def speedup(base_seconds: float, seconds: float) -> float:
    """Speedup of *seconds* relative to *base_seconds*."""
    if seconds <= 0 or base_seconds <= 0:
        raise ValueError("times must be positive")
    return base_seconds / seconds


def efficiency(speedup_value: float, workers: int) -> float:
    """Parallel efficiency: speedup / workers."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    return speedup_value / workers


@dataclass(frozen=True)
class BreakdownRow:
    """One device's share of the makespan by activity."""

    name: str
    compute: float
    transfer: float
    wait: float
    idle: float

    def as_cells(self) -> list[str]:
        return [
            self.name,
            f"{self.compute:6.1%}",
            f"{self.transfer:6.1%}",
            f"{self.wait:6.1%}",
            f"{self.idle:6.1%}",
        ]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text table (no external deps, stable output for tests)."""
    columns = [list(col) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(str(cell)) for cell in col) for col in columns]
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def humanize_cells(cells: int) -> str:
    """Render a cell count the way the paper's tables do (e.g. '1.23 Tcells')."""
    if cells < 0:
        raise ValueError("cells must be >= 0")
    for unit, scale in (("Pcells", 1e15), ("Tcells", 1e12), ("Gcells", 1e9), ("Mcells", 1e6)):
        if cells >= scale:
            return f"{cells / scale:.2f} {unit}"
    return f"{cells} cells"


def humanize_time(seconds: float) -> str:
    """Seconds → 'h:mm:ss' (or ms below one second)."""
    if seconds < 0:
        raise ValueError("seconds must be >= 0")
    if seconds < 1:
        return f"{seconds * 1e3:.1f} ms"
    s = int(round(seconds))
    h, rem = divmod(s, 3600)
    m, sec = divmod(rem, 60)
    return f"{h}:{m:02d}:{sec:02d}" if h else f"{m}:{sec:02d}"
