"""Formatted run reports: one text block summarising a chain result.

Turns a :class:`~repro.multigpu.chain.ChainResult` (simulated) or a
:class:`~repro.multigpu.procchain.ProcessChainResult` (real processes)
into the multi-section report the CLI prints and the examples embed —
configuration, partition, throughput, per-device breakdown, and channel
statistics — so every front-end renders runs identically.  The two
report forms share their table shape: the real backend's breakdown rows
come from wall-clock :class:`~repro.device.trace.Tracer` intervals
instead of virtual-clock counters, and read the same way.
"""

from __future__ import annotations

from .metrics import format_table, humanize_cells, humanize_time


def chain_result_dict(result) -> dict:
    """JSON-serialisable summary of a ChainResult (for tooling/dashboards)."""
    return {
        "cells": result.cells,
        "total_time_s": result.total_time_s,
        "gcups": result.gcups,
        "score": result.score if result.best.row >= 0 else None,
        "end": [result.best.row, result.best.col] if result.best.row >= 0 else None,
        "config": {
            "block_rows": result.config.block_rows,
            "channel_capacity": result.config.channel_capacity,
            "device_slots": result.config.device_slots,
            "async_transfers": result.config.async_transfers,
            "kernel": result.config.kernel,
            "pruning": result.config.pruning,
        },
        "pruning": {
            "blocks_checked": result.blocks_checked,
            "blocks_pruned": result.blocks_pruned,
            "pruned_ratio": result.pruned_ratio,
        } if result.config.pruning else None,
        "heuristic": {
            "mode": result.mode,
            "tier": result.tier,
            "escalated": result.escalated,
            "blocks_skipped_band": result.blocks_skipped_band,
        } if getattr(result, "mode", "exact") != "exact" else None,
        "dtype": _dtype_dict(result),
        "devices": [
            {
                "name": gpu.name,
                "slab_cols": gpu.slab.cols,
                "compute_s": gpu.counters.compute_s,
                "transfer_s": gpu.counters.transfer_s,
                "wait_s": gpu.counters.wait_s,
                "cells": gpu.counters.cells,
                "bytes_in": gpu.counters.bytes_in,
                "bytes_out": gpu.counters.bytes_out,
                "blocks_checked": gpu.blocks_checked,
                "blocks_pruned": gpu.blocks_pruned,
            }
            for gpu in result.gpus
        ],
        "channels": [
            {
                "puts": st.puts,
                "gets": st.gets,
                "peak_occupancy": st.peak_occupancy,
                "producer_blocked_s": st.producer_blocked_s,
                "consumer_blocked_s": st.consumer_blocked_s,
            }
            for st in result.channels
        ],
    }


def process_result_dict(result) -> dict:
    """JSON-serialisable summary of a ProcessChainResult (mirrors
    :func:`chain_result_dict` for the real-process backend)."""
    return {
        "cells": result.cells,
        "wall_time_s": result.wall_time_s,
        "gcups": result.gcups,
        "score": result.score if result.best.row >= 0 else None,
        "end": [result.best.row, result.best.col] if result.best.row >= 0 else None,
        "config": {
            "workers": result.workers,
            "transport": result.transport,
            "start_method": result.start_method,
            "kernel": result.kernel,
            "pruning": result.pruning,
        },
        "pruning": {
            "blocks_checked": result.blocks_checked,
            "blocks_pruned": result.blocks_pruned,
            "pruned_ratio": result.pruned_ratio,
            "per_worker": [list(wb) for wb in result.worker_blocks],
        } if result.pruning else None,
        "recovery": {
            "restarts": result.restarts,
            "rows_recomputed": result.rows_recomputed,
        } if getattr(result, "restarts", 0) else None,
        "heuristic": {
            "mode": result.mode,
            "tier": result.tier,
            "escalated": result.escalated,
            "blocks_skipped_band": result.blocks_skipped_band,
        } if getattr(result, "mode", "exact") != "exact" else None,
        "dtype": _dtype_dict(result),
        # Cross-process clock-skew spans clamped during trace merging —
        # nonzero values flag workers whose perf_counter drifted.
        "clamped_records": result.tracer.clamped_records if result.tracer else 0,
        # One-time JIT compile cost (kernel="compiled"), kept out of the
        # compute totals by construction; 0.0 on the other kernels.
        "warmup_s": _warmup_seconds(result.tracer),
        "workers": [
            {
                "name": f"worker{g}",
                "slab_cols": slab.cols,
                "compute_s": result.tracer.total(f"worker{g}", "compute") if result.tracer else None,
                "transfer_s": (result.tracer.total(f"worker{g}", "d2h")
                               + result.tracer.total(f"worker{g}", "h2d")) if result.tracer else None,
                "wait_s": result.tracer.total(f"worker{g}", "wait") if result.tracer else None,
                "warmup_s": result.tracer.total(f"worker{g}", "warmup") if result.tracer else None,
            }
            for g, slab in enumerate(result.partition)
        ],
    }


def single_result_dict(result) -> dict:
    """JSON-serialisable summary of a
    :class:`~repro.baselines.single_gpu.SingleGpuResult` — including the
    :class:`~repro.sw.pruning.BlockPruner` statistics that used to be
    dropped on the single-engine path."""
    return {
        "kernel": getattr(result, "kernel", "scalar"),
        "cells": result.cells,
        "cells_computed": result.cells_computed,
        "total_time_s": result.total_time_s,
        "gcups": result.gcups,
        "score": result.score if result.best.row >= 0 else None,
        "end": [result.best.row, result.best.col] if result.best.row >= 0 else None,
        "pruning": {
            "blocks_checked": result.blocks_checked,
            "blocks_pruned": result.blocks_pruned,
            "pruned_ratio": result.pruned_ratio,
            "pruned_fraction": result.pruned_fraction,
        } if result.blocks_checked else None,
        "heuristic": {
            "mode": result.mode,
            "tier": result.tier,
            "escalated": result.escalated,
            "blocks_skipped_band": result.blocks_skipped_band,
        } if getattr(result, "mode", "exact") != "exact" else None,
        "dtype": _dtype_dict(result),
    }


def result_dict(result) -> dict:
    """Dispatch any engine result to its ``*_result_dict`` by shape.

    The manifest builder (:mod:`repro.obs.manifest`) and the CLI call
    this so they never need to know which backend produced the result:
    a ``config`` attribute marks the simulated chain, ``wall_time_s``
    the real-process engines, and anything else (``cells_computed``)
    the single-device baseline.
    """
    if hasattr(result, "config"):
        return chain_result_dict(result)
    if hasattr(result, "wall_time_s"):
        return process_result_dict(result)
    return single_result_dict(result)


def _warmup_seconds(tracer) -> float:
    """Total JIT warmup time recorded across every actor (0.0 without a
    tracer or on kernels that never warm)."""
    if tracer is None:
        return 0.0
    return sum(iv.duration for iv in tracer.intervals if iv.kind == "warmup")


def _dtype_dict(result) -> dict | None:
    """The DP-dtype section of a result dict (``None`` on plain int32
    runs, matching the ``pruning``/``heuristic`` sections' convention)."""
    name = getattr(result, "dp_dtype", "int32")
    if name == "int32":
        return None
    return {
        "dp_dtype": name,
        "blocks_narrow": result.blocks_narrow,
        "blocks_wide": result.blocks_wide,
        "dtype_escalations": result.dtype_escalations,
    }


def _dtype_line(result) -> str | None:
    """One report line for a narrow-dtype run: the resolved policy and the
    narrow/wide split (``None`` on plain int32 runs)."""
    name = getattr(result, "dp_dtype", "int32")
    if name == "int32":
        return None
    line = (f"dp dtype: {name} ({result.blocks_narrow} narrow / "
            f"{result.blocks_wide} wide blocks)")
    if result.dtype_escalations:
        line += f" escalations={result.dtype_escalations}"
    return line


def _heuristic_line(result) -> str | None:
    """One report line for a non-exact run: which tier answered, and the
    static-band skip count when it is nonzero."""
    mode = getattr(result, "mode", "exact")
    if mode == "exact":
        return None
    line = (f"tier: mode={mode} answered_by={result.tier}"
            f" escalated={'yes' if result.escalated else 'no'}")
    skipped = getattr(result, "blocks_skipped_band", 0)
    if skipped:
        line += f" blocks_skipped_band={skipped}"
    return line


def single_report(result, *, title: str = "single-GPU run") -> str:
    """Text report for a single-device run (same shape as the chain
    reports, minus partition/channel sections)."""
    lines: list[str] = [f"== {title} =="]
    lines.append(
        f"matrix: {humanize_cells(result.cells)}   "
        f"virtual time: {humanize_time(result.total_time_s)}   "
        f"throughput: {result.gcups:.2f} GCUPS"
    )
    kernel = getattr(result, "kernel", "scalar")
    if kernel != "scalar":
        lines.append(f"kernel: {kernel}")
    if result.best.row >= 0:
        lines.append(
            f"best score: {result.score} ending at "
            f"({result.best.row}, {result.best.col})"
        )
    if result.blocks_checked:
        lines.append(
            f"pruning: {result.blocks_pruned}/{result.blocks_checked} "
            f"blocks pruned ({result.pruned_ratio:.1%}), "
            f"{result.pruned_fraction:.1%} of cells skipped"
        )
    tier_line = _heuristic_line(result)
    if tier_line:
        lines.append(tier_line)
    dtype_line = _dtype_line(result)
    if dtype_line:
        lines.append(dtype_line)
    return "\n".join(lines)


def process_report(result, *, title: str = "process chain run") -> str:
    """Multi-section text report for a ProcessChainResult — the same
    sections as :func:`chain_report`, on wall-clock time."""
    lines: list[str] = [f"== {title} =="]
    lines.append(
        f"matrix: {humanize_cells(result.cells)}   "
        f"wall time: {humanize_time(result.wall_time_s)}   "
        f"throughput: {result.gcups:.2f} GCUPS"
    )
    if result.best.row >= 0:
        lines.append(
            f"best score: {result.score} ending at "
            f"({result.best.row}, {result.best.col})"
        )
    lines.append(
        f"config: workers={result.workers} transport={result.transport} "
        f"start_method={result.start_method} kernel={result.kernel} "
        f"pruning={'on' if result.pruning else 'off'}"
    )
    if result.pruning:
        lines.append(
            f"pruning: {result.blocks_pruned}/{result.blocks_checked} "
            f"blocks pruned ({result.pruned_ratio:.1%})"
        )
    if getattr(result, "restarts", 0):
        lines.append(
            f"recovery: {result.restarts} restart(s), "
            f"{result.rows_recomputed} rows recomputed from checkpoints"
        )
    warmup_s = _warmup_seconds(result.tracer)
    if warmup_s > 0:
        lines.append(f"jit warmup: {humanize_time(warmup_s)} total "
                     "(excluded from compute spans)")
    tier_line = _heuristic_line(result)
    if tier_line:
        lines.append(tier_line)
    dtype_line = _dtype_line(result)
    if dtype_line:
        lines.append(dtype_line)
    breakdown = result.breakdown()
    if breakdown:
        lines.append("")
        rows = []
        for g, (slab, bd) in enumerate(zip(result.partition, breakdown)):
            rows.append([
                f"worker{g}",
                f"{slab.cols:,}",
                f"{bd['compute']:.1%}",
                f"{bd['transfer']:.1%}",
                f"{bd['wait']:.1%}",
                f"{bd['idle']:.1%}",
            ])
        lines.append(format_table(
            ["worker", "slab cols", "compute", "transfer", "wait", "idle"], rows))
    return "\n".join(lines)


def chain_report(result, *, title: str = "chain run") -> str:
    """Multi-section text report for a ChainResult."""
    lines: list[str] = [f"== {title} =="]
    lines.append(
        f"matrix: {humanize_cells(result.cells)}   "
        f"virtual time: {humanize_time(result.total_time_s)}   "
        f"throughput: {result.gcups:.2f} GCUPS"
    )
    if result.best.row >= 0:
        lines.append(
            f"best score: {result.score} ending at "
            f"({result.best.row}, {result.best.col})"
        )
    cfg = result.config
    lines.append(
        f"config: block_rows={cfg.block_rows} buffer={cfg.channel_capacity} "
        f"device_slots={cfg.device_slots} "
        f"transfers={'async' if cfg.async_transfers else 'sync'} "
        f"kernel={cfg.kernel} pruning={'on' if cfg.pruning else 'off'}"
    )
    if cfg.pruning:
        lines.append(
            f"pruning: {result.blocks_pruned}/{result.blocks_checked} "
            f"blocks pruned ({result.pruned_ratio:.1%})"
        )
    tier_line = _heuristic_line(result)
    if tier_line:
        lines.append(tier_line)
    dtype_line = _dtype_line(result)
    if dtype_line:
        lines.append(dtype_line)
    lines.append("")

    rows = []
    for gpu, bd in zip(result.gpus, result.breakdown()):
        rows.append([
            gpu.name,
            f"{gpu.slab.cols:,}",
            f"{bd['compute']:.1%}",
            f"{bd['transfer']:.1%}",
            f"{bd['wait']:.1%}",
            f"{bd['idle']:.1%}",
        ])
    lines.append(format_table(
        ["device", "slab cols", "compute", "transfer", "wait", "idle"], rows))

    if result.channels:
        lines.append("")
        rows = []
        for i, st in enumerate(result.channels):
            rows.append([
                f"{i}->{i + 1}",
                str(st.puts),
                f"{st.peak_occupancy}",
                f"{st.producer_blocked_s * 1e3:.2f} ms",
                f"{st.consumer_blocked_s * 1e3:.2f} ms",
            ])
        lines.append(format_table(
            ["channel", "segments", "peak occupancy", "producer blocked",
             "consumer blocked"], rows))
    return "\n".join(lines)


#: Frames sampled into the GCUPS-over-time section (evenly spaced; the
#: full series stays in ``timeline.jsonl``).
TIMELINE_REPORT_ROWS = 12

#: Width of the text GCUPS bar in :func:`timeline_report`.
_BAR_WIDTH = 30


def timeline_report(frames, *, title: str = "GCUPS over time") -> str:
    """Text section for a run's live timeline: evenly spaced frames from
    a :class:`~repro.obs.timeseries.TimeSeriesSampler` ring (or a loaded
    ``timeline.jsonl``), each with a throughput bar scaled to the peak.

    Returns an empty string for an empty timeline so report assemblers
    can append it unconditionally.
    """
    frames = list(frames)
    if not frames:
        return ""
    peak = max(f.gcups for f in frames)
    n = min(TIMELINE_REPORT_ROWS, len(frames))
    # Evenly spaced indices, always ending on the final frame.
    picks = sorted({round(i * (len(frames) - 1) / max(1, n - 1))
                    for i in range(n)})
    rows = []
    for i in picks:
        f = frames[i]
        bar = "#" * (round(_BAR_WIDTH * f.gcups / peak) if peak > 0 else 0)
        done = (f.rows_done / f.rows_target) if f.rows_target else 0.0
        rows.append([
            humanize_time(f.t_s),
            f"{done:.0%}",
            f"{f.gcups:.3f}",
            bar,
        ])
    lines = [f"== {title} ==",
             f"{len(frames)} frames, peak {peak:.3f} GCUPS, "
             f"final attempt {frames[-1].attempt}"
             + (f", {frames[-1].restarts} restart(s)"
                if frames[-1].restarts else "")]
    lines.append(format_table(["t", "rows", "GCUPS", ""], rows))
    return "\n".join(lines)


def top_table(frame, *, events=None, max_events: int = 5) -> str:
    """The ``mgsw top`` screen: one run-level summary line, a per-worker
    rate/phase table off one :class:`~repro.obs.timeseries.TimelineFrame`
    (stalled workers rendered distinctly), and the newest journal events.
    """
    if frame is None:
        return "no timeline frames yet"
    done = (frame.rows_done / frame.rows_target) if frame.rows_target else 0.0
    eta = ("--" if frame.eta_s is None else humanize_time(frame.eta_s))
    lines = [
        f"rows {frame.rows_done:,}/{frame.rows_target:,} ({done:.1%})   "
        f"rate {frame.rows_per_s:,.0f} rows/s   eta {eta}   "
        f"{frame.gcups:.3f} GCUPS   attempt {frame.attempt}"
        + (f"   restarts {frame.restarts}" if frame.restarts else "")
    ]
    rows = []
    for w in frame.workers:
        rows.append([
            f"worker{w.worker}",
            # A stalled worker is the one thing top must make unmissable.
            f"!! STALLED ({w.silent_s:.1f}s) !!" if w.stalled else w.phase,
            f"{w.rows_done:,}",
            f"{w.rows_per_s:,.1f}",
            f"{w.silent_s:.1f}s",
        ])
    lines.append(format_table(
        ["worker", "phase", "rows done", "rows/s", "silent"], rows))
    if events:
        lines.append("recent events:")
        for rec in list(events)[-max_events:]:
            extra = rec.get("detail") or rec.get("tier") or ""
            who = f" worker{rec['worker']}" if "worker" in rec else ""
            lines.append(f"  {rec['event']}{who} {extra}".rstrip())
    return "\n".join(lines)
