"""Coarse dotplot of local-alignment structure (text rendering).

A dotplot is the standard way to eyeball homology structure between two
long sequences: tile the matrix coarsely, score each tile independently
with local SW, and shade tiles by score.  Rearrangements show up as
off-diagonal runs, inversions as anti-diagonal runs, and the main homology
as the diagonal — the pictures the paper's workloads would produce.

The tile scores are *independent local alignments* (an approximation of
the true DP landscape, which is what makes the plot cheap: each tile is
``(m/G) x (n/G)`` instead of the full matrix).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..seq.scoring import Scoring
from ..sw.kernel import sw_score

#: Shade ramp from empty to strongest.
_SHADES = " .:-=+*#@"


@dataclass
class Dotplot:
    """Tile scores of one coarse dotplot."""

    scores: np.ndarray  #: (tiles_a, tiles_b) int32 tile SW scores
    tile_rows: int
    tile_cols: int

    @property
    def shape(self) -> tuple[int, int]:
        return self.scores.shape  # type: ignore[return-value]

    def normalised(self) -> np.ndarray:
        """Scores scaled to [0, 1] by the best possible tile score."""
        cap = self.scores.max()
        if cap <= 0:
            return np.zeros_like(self.scores, dtype=np.float64)
        return self.scores.astype(np.float64) / float(cap)

    def render(self, *, threshold: float = 0.15) -> str:
        """ASCII rendering; tiles below *threshold* (of max) are blank."""
        norm = self.normalised()
        rows = []
        for r in range(norm.shape[0]):
            line = []
            for c in range(norm.shape[1]):
                v = norm[r, c]
                if v < threshold:
                    line.append(" ")
                else:
                    line.append(_SHADES[min(len(_SHADES) - 1,
                                            int(v * (len(_SHADES) - 1) + 0.5))])
            rows.append("|" + "".join(line) + "|")
        header = "+" + "-" * norm.shape[1] + "+"
        return "\n".join([header, *rows, header])

    def diagonal_fraction(self, *, threshold: float = 0.3, band: int = 1) -> float:
        """Fraction of above-threshold tiles lying within *band* of the
        (scaled) main diagonal — a scalar 'how collinear are these
        sequences' measure used by the tests."""
        norm = self.normalised()
        hot = np.argwhere(norm >= threshold)
        if hot.size == 0:
            return 0.0
        ra, rb = norm.shape
        on_diag = 0
        for r, c in hot:
            expect = r * (rb - 1) / max(1, ra - 1)
            if abs(c - expect) <= band:
                on_diag += 1
        return on_diag / len(hot)


def dotplot(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    tiles: int = 24,
) -> Dotplot:
    """Compute a ``tiles x tiles`` coarse dotplot (independent tile SW)."""
    if tiles <= 0:
        raise ConfigError("tiles must be positive")
    m, n = int(a_codes.size), int(b_codes.size)
    if m < tiles or n < tiles:
        raise ConfigError("sequences shorter than the tile grid")
    row_edges = np.linspace(0, m, tiles + 1, dtype=int)
    col_edges = np.linspace(0, n, tiles + 1, dtype=int)
    scores = np.zeros((tiles, tiles), dtype=np.int32)
    for r in range(tiles):
        a_tile = a_codes[row_edges[r]:row_edges[r + 1]]
        for c in range(tiles):
            b_tile = b_codes[col_edges[c]:col_edges[c + 1]]
            best = sw_score(a_tile, b_tile, scoring)
            scores[r, c] = best.score if best.row >= 0 else 0
    return Dotplot(scores=scores,
                   tile_rows=int(row_edges[1] - row_edges[0]),
                   tile_cols=int(col_edges[1] - col_edges[0]))
