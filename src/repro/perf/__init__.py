"""Metrics and reporting helpers."""

from .dotplot import Dotplot, dotplot
from .report import (
    chain_report,
    chain_result_dict,
    process_report,
    process_result_dict,
    result_dict,
    single_report,
    single_result_dict,
)
from .metrics import (
    BreakdownRow,
    efficiency,
    format_table,
    gcups,
    humanize_cells,
    humanize_time,
    speedup,
)

__all__ = [
    "Dotplot",
    "dotplot",
    "chain_report",
    "chain_result_dict",
    "process_report",
    "process_result_dict",
    "result_dict",
    "single_report",
    "single_result_dict",
    "BreakdownRow",
    "efficiency",
    "format_table",
    "gcups",
    "humanize_cells",
    "humanize_time",
    "speedup",
]
