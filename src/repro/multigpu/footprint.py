"""Device-memory footprint model for chain runs.

A megabase comparison must fit each GPU's memory — one of the reasons the
paper splits the matrix by columns (each device only stores *its slab's*
working set).  This module itemises what a chain run keeps resident per
device and checks it against the :class:`~repro.device.spec.DeviceSpec`
capacity:

* the slab's columns of the horizontal sequence, 2-bit packed;
* the vertical sequence, streamed in block-row chunks (one chunk + one
  prefetch buffer);
* the row-sweep working vectors (H and F of one row across the slab,
  plus kernel scratch);
* device-side border staging slots on each adjacent channel.

``plan_memory`` reports the breakdown; ``validate_memory`` raises
:class:`~repro.errors.DeviceError` when a slab does not fit and suggests
the minimum device count that would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..device.spec import DeviceSpec
from ..errors import DeviceError
from .chain import ChainConfig
from .overlap import segment_bytes
from .partition import Slab, proportional_partition

#: int32 working vectors the row sweep keeps per slab column (H, F, E,
#: temp, scan, diag — see repro.sw.kernel.sweep_block).
_WORK_VECTORS = 6
_BYTES_PER_INT32 = 4


@dataclass(frozen=True)
class DeviceFootprint:
    """Itemised resident bytes for one device in a chain run."""

    device: DeviceSpec
    slab: Slab
    seq_bytes: int
    chunk_bytes: int
    work_bytes: int
    border_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.seq_bytes + self.chunk_bytes + self.work_bytes + self.border_bytes

    @property
    def fits(self) -> bool:
        return self.total_bytes <= self.device.mem_bytes

    @property
    def utilisation(self) -> float:
        return self.total_bytes / self.device.mem_bytes


def plan_memory(
    devices: Sequence[DeviceSpec],
    rows: int,
    cols: int,
    config: ChainConfig,
    *,
    partition: Sequence[Slab] | None = None,
) -> list[DeviceFootprint]:
    """Per-device footprint of a chain run (see module docstring)."""
    if rows <= 0 or cols <= 0:
        raise DeviceError("matrix dimensions must be positive")
    slabs = list(partition) if partition is not None else proportional_partition(
        cols, [d.gcups for d in devices]
    )
    if len(slabs) != len(devices):
        raise DeviceError("partition size != device count")

    out: list[DeviceFootprint] = []
    for idx, (spec, slab) in enumerate(zip(devices, slabs)):
        seq = (slab.cols + 3) // 4  # 2-bit packed slab columns
        # Vertical sequence streamed per block row: current + prefetch.
        chunk = 2 * ((min(config.block_rows, rows) + 3) // 4)
        work = _WORK_VECTORS * slab.cols * _BYTES_PER_INT32
        borders = 0
        seg = segment_bytes(min(config.block_rows, rows))
        if idx > 0:  # incoming device ring
            borders += config.device_slots * seg
        if idx < len(devices) - 1:  # outgoing staging slots
            borders += config.device_slots * seg
        out.append(DeviceFootprint(
            device=spec, slab=slab, seq_bytes=seq, chunk_bytes=chunk,
            work_bytes=work, border_bytes=borders,
        ))
    return out


def validate_memory(
    devices: Sequence[DeviceSpec],
    rows: int,
    cols: int,
    config: ChainConfig,
    *,
    partition: Sequence[Slab] | None = None,
) -> list[DeviceFootprint]:
    """Raise :class:`DeviceError` when any slab exceeds its device memory.

    The error names the offending device and estimates how many devices of
    that capacity the matrix would need.
    """
    plans = plan_memory(devices, rows, cols, config, partition=partition)
    for fp in plans:
        if not fp.fits:
            per_col = fp.total_bytes / fp.slab.cols
            feasible_cols = int(fp.device.mem_bytes / per_col)
            needed = -(-cols // max(1, feasible_cols))
            raise DeviceError(
                f"{fp.device.name}: slab of {fp.slab.cols:,} columns needs "
                f"{fp.total_bytes / 1e9:.2f} GB but the device has "
                f"{fp.device.mem_bytes / 1e9:.2f} GB; "
                f"~{needed} such devices would fit this matrix"
            )
    return plans
