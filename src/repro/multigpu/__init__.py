"""The paper's contribution: multi-GPU chain execution of one SW matrix."""

from .autotune import TuneResult, autotune, border_footprint_bytes
from .batch import (
    CampaignItem,
    CampaignResult,
    align_batch_process,
    run_campaign_chained,
    run_campaign_split,
)
from .chain import (
    BORDER_BYTES_FIXED,
    BORDER_BYTES_PER_ROW,
    ChainConfig,
    ChainResult,
    GpuReport,
    MatrixWorkload,
    MultiGpuChain,
    PhantomWorkload,
    align_multi_gpu,
    time_multi_gpu,
)
from .checkpoint import (
    ChainCheckpoint,
    CheckpointArea,
    RetryPolicy,
    load_checkpoint,
    save_checkpoint,
)
from .cluster import ClusterChain, Node, min_internode_overlap_width
from .footprint import DeviceFootprint, plan_memory, validate_memory
from .overlap import (
    ChainPrediction,
    block_row_time,
    channel_segment_cost,
    hop_times,
    min_overlap_width,
    overlap_satisfied,
    predict_chain,
    segment_bytes,
)
from .pipeline import TracedResult, align_and_trace
from .pool import WorkerPool
from .procchain import (
    TRANSPORTS,
    ProcessChainResult,
    SlabOutcome,
    align_multi_process,
    pick_context,
)
from .partition import (
    Slab,
    equal_partition,
    explicit_partition,
    imbalance,
    proportional_partition,
    surviving_partition,
)

__all__ = [
    "TuneResult",
    "autotune",
    "border_footprint_bytes",
    "CampaignItem",
    "CampaignResult",
    "run_campaign_chained",
    "run_campaign_split",
    "ChainCheckpoint",
    "CheckpointArea",
    "RetryPolicy",
    "load_checkpoint",
    "save_checkpoint",
    "ClusterChain",
    "Node",
    "min_internode_overlap_width",
    "DeviceFootprint",
    "plan_memory",
    "validate_memory",
    "ProcessChainResult",
    "SlabOutcome",
    "TRANSPORTS",
    "WorkerPool",
    "align_batch_process",
    "align_multi_process",
    "pick_context",
    "TracedResult",
    "align_and_trace",
    "BORDER_BYTES_FIXED",
    "BORDER_BYTES_PER_ROW",
    "ChainConfig",
    "ChainResult",
    "GpuReport",
    "MatrixWorkload",
    "MultiGpuChain",
    "PhantomWorkload",
    "align_multi_gpu",
    "time_multi_gpu",
    "ChainPrediction",
    "block_row_time",
    "channel_segment_cost",
    "hop_times",
    "min_overlap_width",
    "overlap_satisfied",
    "predict_chain",
    "segment_bytes",
    "Slab",
    "equal_partition",
    "explicit_partition",
    "imbalance",
    "proportional_partition",
    "surviving_partition",
]
