"""Analytic model of compute/communication overlap in the chain.

The paper's circular-buffer mechanism hides border communication when each
device produces border segments slower than the channel can drain them.
This module derives the same quantities analytically so experiments can
compare *predicted* against *simulated* behaviour:

* per-device block-row compute time ``T_g = R * W_g / rate_g(W_g)``;
* per-segment channel cost: two PCIe hops (producer D2H, consumer H2D),
  pipelined when the circular buffer has >= 2 slots, serialised when it
  degenerates to a single slot;
* the **overlap condition** ``T_g >= X_g`` for every channel, and from it
  the **minimum slab width** at which communication is fully hidden;
* a steady-state + fill model of the chain's total time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..device.spec import DeviceSpec
from ..errors import ConfigError
from .chain import BORDER_BYTES_FIXED, BORDER_BYTES_PER_ROW, ChainConfig
from .partition import Slab


def segment_bytes(block_rows: int) -> int:
    """Transfer size of one border segment (H+E per row, plus corner)."""
    if block_rows <= 0:
        raise ConfigError("block_rows must be positive")
    return block_rows * BORDER_BYTES_PER_ROW + BORDER_BYTES_FIXED


def block_row_time(spec: DeviceSpec, slab_cols: int, block_rows: int) -> float:
    """Virtual seconds device *spec* needs for one block row of its slab."""
    return block_rows * slab_cols / spec.effective_rate(slab_cols, block_rows)


def hop_times(src: DeviceSpec, dst: DeviceSpec, block_rows: int) -> tuple[float, float]:
    """(D2H, H2D) times of one segment on the two PCIe links."""
    nbytes = segment_bytes(block_rows)
    return src.transfer_time(nbytes), dst.transfer_time(nbytes)


def channel_segment_cost(
    src: DeviceSpec, dst: DeviceSpec, block_rows: int, *, pipelined: bool
) -> float:
    """Steady-state per-segment channel cost.

    With >= 2 circular-buffer slots the two hops pipeline, so the channel
    sustains one segment per ``max(hop)``; with a single slot each segment
    crosses both hops before the next may start (``sum(hop)``).
    """
    d2h, h2d = hop_times(src, dst, block_rows)
    return max(d2h, h2d) if pipelined else d2h + h2d


def overlap_satisfied(
    spec: DeviceSpec,
    neighbour: DeviceSpec,
    slab_cols: int,
    block_rows: int,
    *,
    pipelined: bool = True,
) -> bool:
    """True when *spec*'s border production is slower than the channel —
    the paper's condition for communication to hide behind compute."""
    return block_row_time(spec, slab_cols, block_rows) >= channel_segment_cost(
        spec, neighbour, block_rows, pipelined=pipelined
    )


def min_overlap_width(
    spec: DeviceSpec,
    neighbour: DeviceSpec,
    block_rows: int,
    *,
    pipelined: bool = True,
) -> int:
    """Smallest slab width for which :func:`overlap_satisfied` holds.

    Solved by bisection because the occupancy model makes the block-row
    time nonlinear in the width.
    """
    x = channel_segment_cost(spec, neighbour, block_rows, pipelined=pipelined)
    lo, hi = 1, 1
    while block_row_time(spec, hi, block_rows) < x:
        hi *= 2
        if hi > 1 << 40:
            raise ConfigError("no feasible overlap width (transfer slower than any compute)")
    while lo < hi:
        mid = (lo + hi) // 2
        if block_row_time(spec, mid, block_rows) >= x:
            hi = mid
        else:
            lo = mid + 1
    return lo


@dataclass(frozen=True)
class ChainPrediction:
    """Analytic estimate of a chain run."""

    steady_period_s: float     #: per-block-row period in steady state
    fill_s: float              #: pipeline fill (first border reaching the last GPU)
    total_s: float
    bottleneck: str            #: which stage sets the period ("gpu i" / "channel i")

    def gcups(self, cells: int) -> float:
        return cells / self.total_s / 1e9


def predict_chain(
    devices: Sequence[DeviceSpec],
    slabs: Sequence[Slab],
    rows: int,
    config: ChainConfig,
) -> ChainPrediction:
    """Steady-state + fill estimate of the chain's total virtual time.

    The chain advances one block row per ``steady_period`` once full;
    the period is the slowest stage — a device's block-row time or, when
    overlap fails, a channel's per-segment cost.  The fill time is the
    staggered start of the last device.  Accurate to a few percent against
    the event simulation (asserted by the integration tests); it is a
    model, not a re-implementation of the simulator.
    """
    if len(devices) != len(slabs):
        raise ConfigError("devices and slabs differ in length")
    n_block_rows = (rows + config.block_rows - 1) // config.block_rows
    pipelined = config.channel_capacity >= 2 and config.async_transfers

    times = [
        block_row_time(spec, slab.cols, config.block_rows)
        for spec, slab in zip(devices, slabs)
    ]
    period = max(times)
    bottleneck = f"gpu {times.index(period)}"
    for g in range(len(devices) - 1):
        x = channel_segment_cost(devices[g], devices[g + 1], config.block_rows,
                                 pipelined=pipelined)
        if not config.async_transfers:
            # Inline transfers add to the producer's own period.
            combined = times[g] + x
            if combined > period:
                period = combined
                bottleneck = f"channel {g}"
        elif x > period:
            period = x
            bottleneck = f"channel {g}"

    fill = 0.0
    for g in range(len(devices) - 1):
        d2h, h2d = hop_times(devices[g], devices[g + 1], config.block_rows)
        fill += times[g] + d2h + h2d
    total = fill + n_block_rows * period
    return ChainPrediction(steady_period_s=period, fill_s=fill, total_s=total,
                           bottleneck=bottleneck)
