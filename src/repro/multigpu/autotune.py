"""Configuration autotuning from the analytic chain model.

The chain has two tuning knobs the paper's system sets by hand: the block
row height (border-segment granularity) and the circular-buffer capacity.
They trade off against each other:

* **Small block rows** → frequent small transfers: per-segment latency
  dominates, and the pipeline's fill time shrinks (finer stagger).
* **Large block rows** → few large transfers: bandwidth-efficient, but the
  fill time grows (each device must finish a taller block row before its
  neighbour starts) and so does the border memory footprint.
* **Buffer capacity ≥ 2** pipelines the two PCIe hops; beyond the point
  where the producer never blocks, more slots only cost host memory.

``autotune`` evaluates the analytic model (``predict_chain``) over a
candidate grid and returns the configuration minimising predicted total
time, with the footprint constraint checked against device memory.  The
benchmark ``X3`` validates the choice against the event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..device.spec import DeviceSpec
from ..errors import ConfigError
from .chain import ChainConfig
from .overlap import predict_chain, segment_bytes
from .partition import proportional_partition

#: Candidate block-row heights (powers of two spanning the practical range).
DEFAULT_BLOCK_ROWS = (256, 512, 1024, 2048, 4096, 8192, 16384, 32768)
#: Candidate circular-buffer capacities.
DEFAULT_CAPACITIES = (2, 4, 8, 16)


@dataclass(frozen=True)
class TuneResult:
    """Chosen configuration and the model's forecast for it."""

    config: ChainConfig
    predicted_total_s: float
    predicted_gcups: float
    evaluated: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"block_rows={self.config.block_rows} "
            f"capacity={self.config.channel_capacity} "
            f"→ {self.predicted_gcups:.2f} GCUPS predicted"
        )


def border_footprint_bytes(block_rows: int, capacity: int, device_slots: int) -> int:
    """Host+device bytes one channel needs for its buffering."""
    return segment_bytes(block_rows) * (capacity + 2 * device_slots)


def autotune(
    devices: Sequence[DeviceSpec],
    rows: int,
    cols: int,
    *,
    block_rows_candidates: Sequence[int] = DEFAULT_BLOCK_ROWS,
    capacity_candidates: Sequence[int] = DEFAULT_CAPACITIES,
    device_slots: int = 2,
    host_buffer_limit_bytes: int | None = None,
) -> TuneResult:
    """Pick ``(block_rows, channel_capacity)`` minimising predicted time.

    Ties break toward smaller memory footprint (fewer slots, then smaller
    blocks).  Raises :class:`ConfigError` when no candidate fits the
    constraints (e.g. every block height exceeds the row count).
    """
    if not devices:
        raise ConfigError("need at least one device")
    if rows <= 0 or cols <= 0:
        raise ConfigError("matrix dimensions must be positive")
    slabs = proportional_partition(cols, [d.gcups for d in devices])

    best: TuneResult | None = None
    evaluated = 0
    for br in sorted(block_rows_candidates):
        if br > rows:
            continue
        for cap in sorted(capacity_candidates):
            if host_buffer_limit_bytes is not None:
                if border_footprint_bytes(br, cap, device_slots) > host_buffer_limit_bytes:
                    continue
            cfg = ChainConfig(block_rows=br, channel_capacity=cap,
                              device_slots=device_slots)
            pred = predict_chain(devices, slabs, rows, cfg)
            evaluated += 1
            if best is None or pred.total_s < best.predicted_total_s * (1 - 1e-12):
                best = TuneResult(
                    config=cfg,
                    predicted_total_s=pred.total_s,
                    predicted_gcups=rows * cols / pred.total_s / 1e9,
                    evaluated=0,
                )
    if best is None:
        raise ConfigError("no feasible configuration among the candidates")
    return TuneResult(
        config=best.config,
        predicted_total_s=best.predicted_total_s,
        predicted_gcups=best.predicted_gcups,
        evaluated=evaluated,
    )
