"""Configuration autotuning: analytic model, measured sweeps, re-balancing.

The chain has two tuning knobs the paper's system sets by hand: the block
row height (border-segment granularity) and the circular-buffer capacity.
They trade off against each other:

* **Small block rows** → frequent small transfers: per-segment latency
  dominates, and the pipeline's fill time shrinks (finer stagger).
* **Large block rows** → few large transfers: bandwidth-efficient, but the
  fill time grows (each device must finish a taller block row before its
  neighbour starts) and so does the border memory footprint.
* **Buffer capacity ≥ 2** pipelines the two PCIe hops; beyond the point
  where the producer never blocks, more slots only cost host memory.

Three tuners live here, cheapest first:

* :func:`autotune` — evaluates the analytic model (``predict_chain``)
  over a candidate grid and returns the configuration minimising
  predicted total time, with the footprint constraint checked against
  device memory.  With ``measured=True`` every surviving candidate is
  instead **run** through the event simulator
  (:func:`~repro.multigpu.chain.time_multi_gpu`) and judged on its
  simulated makespan — slower per candidate, but exact with respect to
  the simulator, so it can only match or beat the analytic pick on the
  simulator's own workload (benchmark ``X3`` asserts exactly that).
  Measured runs are memoised per (devices, matrix, grid) for the
  process lifetime.
* :func:`tune_device_kernel` — *wall-clock* calibration of the compute
  kernel itself: short :func:`~repro.sw.blocks.compute_blocked` probes
  per ``(block_rows, kernel, dp_dtype)`` candidate, with latencies
  published through the standard
  :class:`~repro.obs.instruments.EngineInstruments` into a fresh
  :class:`~repro.obs.registry.MetricsRegistry` and read back from the
  ``block_sweep_seconds`` histogram — the tuner consumes the same
  telemetry the engines emit.  Results are memoised per
  ``(device, scoring)`` key.
* :func:`rebalance_weights` (+ :class:`ProgressRateSampler`,
  :func:`estimate_capacities`) — the online half: while a
  :class:`~repro.multigpu.pool.WorkerPool` comparison runs, the shared
  progress board is sampled, per-worker capacity is estimated from the
  observed row rate and compute share, and the pool's slab weights are
  updated when the drift exceeds a threshold (INTERNALS.md section 11).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..device.spec import DeviceSpec
from ..errors import ConfigError
from ..obs.instruments import SWEEP_BUCKETS, EngineInstruments
from ..obs.registry import MetricsRegistry
from ..seq.scoring import Scoring
from ..sw.blocks import compute_blocked
from ..sw.constants import get_policy
from .chain import ChainConfig, time_multi_gpu
from .overlap import predict_chain, segment_bytes
from .partition import Slab, proportional_partition

#: Candidate block-row heights (powers of two spanning the practical range).
DEFAULT_BLOCK_ROWS = (256, 512, 1024, 2048, 4096, 8192, 16384, 32768)
#: Candidate circular-buffer capacities.
DEFAULT_CAPACITIES = (2, 4, 8, 16)
#: Calibration candidates for :func:`tune_device_kernel`.
DEFAULT_CALIBRATION_BLOCK_ROWS = (128, 256, 512)
#: Always-available core kernels; the default candidate set extends this
#: with ``compiled`` when the numba probe succeeds (see
#: :func:`default_calibration_kernels`).
DEFAULT_CALIBRATION_KERNELS = ("scalar", "batched")
DEFAULT_CALIBRATION_DTYPES = ("int32", "int16", "int8")


def default_calibration_kernels() -> tuple[str, ...]:
    """Kernel candidates this host can actually run, probed at call time.

    ``compiled`` joins the core pair only when numba imports — a
    calibration must never crash (or silently measure the fallback
    oracle) on hosts without the optional dependency.
    """
    from ..sw.backend import numba_available  # lazy: keeps import light
    if numba_available():
        return DEFAULT_CALIBRATION_KERNELS + ("compiled",)
    return DEFAULT_CALIBRATION_KERNELS


@dataclass(frozen=True)
class TuneResult:
    """Chosen configuration and the model's forecast for it."""

    config: ChainConfig
    predicted_total_s: float
    predicted_gcups: float
    evaluated: int
    #: True when the forecast came from simulator runs, not the model.
    measured: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        how = "measured" if self.measured else "predicted"
        return (
            f"block_rows={self.config.block_rows} "
            f"capacity={self.config.channel_capacity} "
            f"→ {self.predicted_gcups:.2f} GCUPS {how}"
        )


def border_footprint_bytes(block_rows: int, capacity: int, device_slots: int) -> int:
    """Host+device bytes one channel needs for its buffering."""
    return segment_bytes(block_rows) * (capacity + 2 * device_slots)


def _devices_key(devices: Sequence[DeviceSpec]) -> tuple:
    """Hashable identity of a device list (every model-relevant field)."""
    return tuple(
        (d.name, d.gcups, d.pcie_gbps, d.pcie_latency_s, d.mem_bytes,
         d.saturation_cols, d.copy_engines)
        for d in devices
    )


def _scoring_key(scoring: Scoring) -> tuple:
    return (scoring.match, scoring.mismatch,
            scoring.gap_open, scoring.gap_extend)


#: Process-lifetime memo for measured ``autotune`` runs.
_MEASURED_CACHE: dict[tuple, TuneResult] = {}
#: Process-lifetime memo for :func:`tune_device_kernel` calibrations.
_CALIBRATION_CACHE: dict[tuple, "DeviceKernelChoice"] = {}


def clear_tuner_caches() -> None:
    """Drop both memo caches (tests, or after device specs change)."""
    _MEASURED_CACHE.clear()
    _CALIBRATION_CACHE.clear()


def autotune(
    devices: Sequence[DeviceSpec],
    rows: int,
    cols: int,
    *,
    block_rows_candidates: Sequence[int] = DEFAULT_BLOCK_ROWS,
    capacity_candidates: Sequence[int] = DEFAULT_CAPACITIES,
    device_slots: int = 2,
    host_buffer_limit_bytes: int | None = None,
    measured: bool = False,
) -> TuneResult:
    """Pick ``(block_rows, channel_capacity)`` minimising total time.

    The default judges candidates on the analytic model
    (:func:`~repro.multigpu.overlap.predict_chain`); ``measured=True``
    runs every surviving candidate through the event simulator
    (:func:`~repro.multigpu.chain.time_multi_gpu`) and judges the
    simulated makespan instead — by construction it can only match or
    beat the analytic pick *on the simulator*, at the cost of one
    phantom run per candidate (milliseconds each; results are memoised
    for the process lifetime).

    Ties break toward smaller memory footprint (fewer slots, then smaller
    blocks).  Raises :class:`ConfigError` when no candidate fits the
    constraints (e.g. every block height exceeds the row count).
    """
    if not devices:
        raise ConfigError("need at least one device")
    if rows <= 0 or cols <= 0:
        raise ConfigError("matrix dimensions must be positive")
    cache_key = None
    if measured:
        cache_key = (_devices_key(devices), rows, cols,
                     tuple(sorted(block_rows_candidates)),
                     tuple(sorted(capacity_candidates)),
                     device_slots, host_buffer_limit_bytes)
        hit = _MEASURED_CACHE.get(cache_key)
        if hit is not None:
            return hit
    slabs = proportional_partition(cols, [d.gcups for d in devices])

    best: TuneResult | None = None
    evaluated = 0
    for br in sorted(block_rows_candidates):
        if br > rows:
            continue
        for cap in sorted(capacity_candidates):
            if host_buffer_limit_bytes is not None:
                if border_footprint_bytes(br, cap, device_slots) > host_buffer_limit_bytes:
                    continue
            cfg = ChainConfig(block_rows=br, channel_capacity=cap,
                              device_slots=device_slots)
            if measured:
                total_s = time_multi_gpu(rows, cols, devices,
                                         config=cfg).total_time_s
            else:
                total_s = predict_chain(devices, slabs, rows, cfg).total_s
            evaluated += 1
            if best is None or total_s < best.predicted_total_s * (1 - 1e-12):
                best = TuneResult(
                    config=cfg,
                    predicted_total_s=total_s,
                    predicted_gcups=rows * cols / total_s / 1e9,
                    evaluated=0,
                    measured=measured,
                )
    if best is None:
        raise ConfigError("no feasible configuration among the candidates")
    result = TuneResult(
        config=best.config,
        predicted_total_s=best.predicted_total_s,
        predicted_gcups=best.predicted_gcups,
        evaluated=evaluated,
        measured=measured,
    )
    if cache_key is not None:
        _MEASURED_CACHE[cache_key] = result
    return result


# -- wall-clock kernel calibration -------------------------------------------

@dataclass(frozen=True)
class DeviceKernelChoice:
    """One device's measured kernel pick.

    ``table`` holds every probed candidate as
    ``(kernel, block_rows, dp_dtype) -> mean seconds per block row`` so
    callers (and the benchmark report) can see the margins, not just the
    winner.
    """

    device: str
    kernel: str
    block_rows: int
    dp_dtype: str
    seconds_per_block: float
    cells_per_second: float
    table: dict = field(default_factory=dict)


def tune_device_kernel(
    spec: DeviceSpec,
    scoring: Scoring,
    *,
    block_rows_candidates: Sequence[int] = DEFAULT_CALIBRATION_BLOCK_ROWS,
    kernels: Sequence[str] | None = None,
    dp_dtypes: Sequence[str] = DEFAULT_CALIBRATION_DTYPES,
    probe_cols: int = 1024,
    repeats: int = 2,
    seed: int = 0,
) -> DeviceKernelChoice:
    """Measure the host kernel across ``(block_rows, kernel, dp_dtype)``.

    Runs short random-sequence :func:`~repro.sw.blocks.compute_blocked`
    probes for every candidate, publishing each sweep's wall-clock
    latency through :class:`~repro.obs.instruments.EngineInstruments`
    into a private :class:`~repro.obs.registry.MetricsRegistry`, then
    reads the ``block_sweep_seconds`` histogram back (sum / count) to
    rank candidates by throughput — the tuner measures through the same
    telemetry pipe the engines report through.

    Narrow dtypes that cannot support the scoring scheme at the probe
    width are skipped (not an error: the point of calibration is to find
    what *this* scheme admits).  The winner maximises probed cells per
    second.  Results are memoised per ``(device, scoring, grid)`` key
    for the process lifetime.

    ``kernels=None`` (the default) probes every backend this host can
    run (:func:`default_calibration_kernels`); when ``compiled`` is
    among the candidates its JIT is warmed **before** any probe runs,
    so one-time compile cost never poisons the measurements.
    """
    if repeats <= 0:
        raise ConfigError("repeats must be positive")
    if probe_cols <= 0:
        raise ConfigError("probe_cols must be positive")
    if kernels is None:
        kernels = default_calibration_kernels()
    if "compiled" in kernels:
        from ..sw.compiled import warmup as compiled_warmup
        compiled_warmup()
    cache_key = (_devices_key([spec]), _scoring_key(scoring),
                 tuple(block_rows_candidates), tuple(kernels),
                 tuple(dp_dtypes), probe_cols, repeats, seed)
    hit = _CALIBRATION_CACHE.get(cache_key)
    if hit is not None:
        return hit

    rng = np.random.default_rng(seed)
    table: dict[tuple, float] = {}
    best_key: tuple | None = None
    best_rate = 0.0
    for br in block_rows_candidates:
        rows = int(br)
        a = rng.integers(0, 4, rows, dtype=np.int64).astype(np.int8)
        b = rng.integers(0, 4, probe_cols, dtype=np.int64).astype(np.int8)
        for kernel in kernels:
            for dd in dp_dtypes:
                eff_w = probe_cols
                policy = get_policy(dd)
                if policy.narrow and (
                        not policy.supports(scoring)
                        or eff_w > policy.max_width(scoring)):
                    continue  # this scheme cannot host the narrow probe
                registry = MetricsRegistry()
                instruments = EngineInstruments(registry, spec.name)
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    compute_blocked(a, b, scoring, block_rows=rows,
                                    block_cols=probe_cols, kernel=kernel,
                                    dp_dtype=dd)
                    instruments.block_computed(time.perf_counter() - t0,
                                               cells=rows * probe_cols)
                hist = registry.histogram("block_sweep_seconds",
                                          buckets=SWEEP_BUCKETS)
                mean_s = (hist.sum(device=spec.name)
                          / max(1, hist.count(device=spec.name)))
                table[(kernel, rows, dd)] = mean_s
                rate = rows * probe_cols / mean_s if mean_s > 0 else 0.0
                if best_key is None or rate > best_rate:
                    best_key, best_rate = (kernel, rows, dd), rate
    if best_key is None:
        raise ConfigError("no feasible calibration candidate")
    choice = DeviceKernelChoice(
        device=spec.name,
        kernel=best_key[0],
        block_rows=best_key[1],
        dp_dtype=best_key[2],
        seconds_per_block=table[best_key],
        cells_per_second=best_rate,
        table=table,
    )
    _CALIBRATION_CACHE[cache_key] = choice
    return choice


# -- online slab re-balancing -------------------------------------------------

class ProgressRateSampler:
    """Background sampler over a :class:`~repro.comm.progress.ProgressBoard`.

    Polls the board on a short interval, accumulating per worker the
    number of samples seen in each phase and the ``(time, rows_done)``
    trajectory endpoints.  Everything is read-only on the shared memory
    (the board is single-writer per slot), so the sampler can run beside
    a live chain with no coordination.

    :meth:`rates` gives observed matrix rows per second per worker;
    :meth:`compute_shares` the fraction of samples caught in the
    ``compute`` phase — low share means the worker spent its time
    waiting on a border, i.e. it has spare capacity.
    """

    def __init__(self, board, interval_s: float = 0.02) -> None:
        if interval_s <= 0:
            raise ConfigError("interval_s must be positive")
        self._board = board
        self._interval = interval_s
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        n = board.n_slots
        self._phase_counts: list[dict[str, int]] = [dict() for _ in range(n)]
        self._first: list[tuple[float, int] | None] = [None] * n
        self._last: list[tuple[float, int] | None] = [None] * n
        self.samples = 0

    @property
    def workers(self) -> int:
        return len(self._first)

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="mgsw-rate-sampler")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            self._stop.wait(self._interval)

    def sample_once(self) -> None:
        """Take one sample (also usable synchronously, e.g. from tests)."""
        now = time.monotonic()
        for s in self._board.snapshot():
            if not s.started:
                continue
            counts = self._phase_counts[s.worker]
            counts[s.phase] = counts.get(s.phase, 0) + 1
            if self._first[s.worker] is None:
                self._first[s.worker] = (now, s.rows_done)
            self._last[s.worker] = (now, s.rows_done)
        self.samples += 1

    def rates(self) -> list[float]:
        """Observed rows/s per worker (0.0 with <2 samples or no motion)."""
        out = []
        for first, last in zip(self._first, self._last):
            if first is None or last is None or last[0] <= first[0]:
                out.append(0.0)
                continue
            out.append(max(0.0, (last[1] - first[1]) / (last[0] - first[0])))
        return out

    def compute_shares(self) -> list[float]:
        """Fraction of samples caught in the ``compute`` phase, per worker."""
        out = []
        for counts in self._phase_counts:
            total = sum(counts.values())
            out.append(counts.get("compute", 0) / total if total else 0.0)
        return out


@dataclass(frozen=True)
class RebalanceDecision:
    """Outcome of one re-balance check (fired or not, with the evidence)."""

    fired: bool
    drift: float
    threshold: float
    old_weights: tuple[float, ...]
    new_weights: tuple[float, ...]
    capacities: tuple[float, ...]


def estimate_capacities(sampler: ProgressRateSampler,
                        slabs: Sequence[Slab],
                        *,
                        min_share: float = 0.02) -> list[float]:
    """Per-worker capacity estimates from one run's progress samples.

    A worker sweeping ``cols_g`` columns at ``rate_g`` rows/s pushes
    ``cols_g * rate_g`` cells/s *while computing*; dividing by its
    compute share projects what it could sustain if never starved —
    the paper's per-device throughput, observed instead of declared.
    Shares are floored at *min_share* so a worker the sampler barely
    caught computing doesn't produce an absurd estimate.  Workers with
    no observed motion fall back to their slab-width share (neutral:
    they neither gain nor lose columns).
    """
    # The board may carry more slots than live workers (a pool that shrank
    # through recovery keeps its construction-time board), so only the
    # leading ``len(slabs)`` slots are read.
    if len(slabs) > sampler.workers:
        raise ConfigError("more slabs than sampler slots")
    rates = sampler.rates()[:len(slabs)]
    shares = sampler.compute_shares()[:len(slabs)]
    caps = []
    for slab, rate, share in zip(slabs, rates, shares):
        if rate <= 0.0:
            caps.append(float(slab.cols))  # neutral: keep current share
            continue
        caps.append(slab.cols * rate / max(share, min_share))
    return caps


def rebalance_weights(
    weights: Sequence[float],
    capacities: Sequence[float],
    *,
    threshold: float = 0.25,
    floor: float = 0.05,
) -> RebalanceDecision:
    """Decide whether measured *capacities* warrant new slab *weights*.

    Drift is the largest relative gap between a worker's current weight
    share and its capacity share; the decision fires when it exceeds
    *threshold*.  New weights are the capacity shares floored at *floor*
    (no worker is starved to zero — it could never demonstrate recovered
    speed with an empty slab).  Pure arithmetic, deterministic, and
    side-effect free: callers apply ``new_weights`` themselves.
    """
    if len(weights) != len(capacities):
        raise ConfigError("weights and capacities must have equal length")
    if not weights:
        raise ConfigError("need at least one worker")
    if threshold <= 0:
        raise ConfigError("threshold must be positive")
    w_total = float(sum(weights))
    c_total = float(sum(capacities))
    if w_total <= 0 or c_total <= 0:
        raise ConfigError("weights and capacities must sum positive")
    w_shares = [w / w_total for w in weights]
    c_shares = [max(c / c_total, floor) for c in capacities]
    c_norm = sum(c_shares)
    c_shares = [c / c_norm for c in c_shares]
    drift = max(abs(c - w) / w if w > 0 else float("inf")
                for w, c in zip(w_shares, c_shares))
    fired = drift > threshold
    return RebalanceDecision(
        fired=fired,
        drift=drift,
        threshold=threshold,
        old_weights=tuple(weights),
        new_weights=tuple(c_shares if fired else w_shares),
        capacities=tuple(capacities),
    )
