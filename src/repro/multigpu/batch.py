"""Campaign runner: many chromosome pairs over one GPU environment.

The paper's evaluation is a campaign — four chromosome pairs, each run on
several device subsets.  This module executes such campaigns and compares
the two ways to use the machine for *multiple* huge comparisons:

* ``chained``: run the pairs one after another, each using ALL devices
  through the fine-grain chain (the paper's strategy);
* ``split``: give each pair its own device (inter-task style), running
  pairs concurrently but each on a single GPU.

For similar-sized pairs the two have comparable aggregate cell rates, but
``chained`` finishes every *individual* comparison sooner (latency) and
keeps heterogeneous devices fully used even when the pair count does not
divide the device count — the trade-off the campaign report quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..device.spec import DeviceSpec
from ..errors import ConfigError
from ..seq.scoring import Scoring
from ..workloads.catalog import ChromosomePair
from .chain import ChainConfig, ChainResult, MultiGpuChain, PhantomWorkload
from .pool import WorkerPool
from .procchain import ProcessChainResult


@dataclass(frozen=True)
class CampaignItem:
    """Outcome for one pair inside a campaign."""

    pair: ChromosomePair
    start_s: float
    end_s: float
    gcups: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class CampaignResult:
    """Outcome of a whole campaign."""

    strategy: str
    items: list[CampaignItem]
    makespan_s: float

    @property
    def total_cells(self) -> int:
        return sum(item.pair.cells for item in self.items)

    @property
    def aggregate_gcups(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.total_cells / self.makespan_s / 1e9

    @property
    def mean_latency_s(self) -> float:
        """Mean completion time of individual comparisons."""
        return sum(item.end_s for item in self.items) / len(self.items)


def run_campaign_chained(
    pairs: Sequence[ChromosomePair],
    devices: Sequence[DeviceSpec],
    *,
    config: ChainConfig | None = None,
) -> CampaignResult:
    """Run pairs sequentially, each over the full device chain."""
    if not pairs:
        raise ConfigError("campaign needs at least one pair")
    chain = MultiGpuChain(devices, config=config)
    items: list[CampaignItem] = []
    clock = 0.0
    for pair in pairs:
        res: ChainResult = chain.run(PhantomWorkload(pair.human_len, pair.chimp_len))
        items.append(CampaignItem(pair=pair, start_s=clock,
                                  end_s=clock + res.total_time_s, gcups=res.gcups))
        clock += res.total_time_s
    return CampaignResult(strategy="chained", items=items, makespan_s=clock)


def align_batch_process(
    pairs: Sequence[tuple[np.ndarray, np.ndarray]],
    scoring: Scoring,
    *,
    workers: int = 2,
    weights: Sequence[float] | None = None,
    block_rows: int = 512,
    transport: str = "shm",
    start_method: str | None = None,
    timeout_s: float = 300.0,
    pruning: bool = False,
    metrics=None,
) -> list[ProcessChainResult]:
    """Run many real comparisons through ONE persistent worker pool.

    The real-parallelism counterpart of the campaign runners above: the
    slab workers and their shared-memory border rings are created once
    and reused for every pair, so process startup is amortised across the
    batch (the reason :class:`~repro.multigpu.pool.WorkerPool` exists).
    Results are bit-identical to running each pair through
    :func:`~repro.multigpu.procchain.align_multi_process` (with or
    without *pruning* — distributed pruning is exact).  A *metrics*
    registry accumulates across the whole batch (counters are additive).
    """
    if not pairs:
        raise ConfigError("batch needs at least one pair")
    with WorkerPool(workers, weights=weights, max_block_rows=block_rows,
                    transport=transport, start_method=start_method) as pool:
        return pool.map(pairs, scoring, block_rows=block_rows,
                        timeout_s=timeout_s, pruning=pruning, metrics=metrics)


def run_campaign_split(
    pairs: Sequence[ChromosomePair],
    devices: Sequence[DeviceSpec],
    *,
    config: ChainConfig | None = None,
) -> CampaignResult:
    """Run pairs concurrently, one whole pair per device (LPT order).

    Each device processes its queue of pairs back-to-back as a
    single-device chain; the campaign ends when the last device drains.
    """
    if not pairs:
        raise ConfigError("campaign needs at least one pair")
    if not devices:
        raise ConfigError("campaign needs at least one device")
    order = sorted(range(len(pairs)), key=lambda i: pairs[i].cells, reverse=True)
    device_clock = [0.0] * len(devices)
    placed: list[tuple[int, int]] = []  # (pair index, device index)
    cache: dict[tuple[int, int], float] = {}

    def pair_time(i: int, d: int) -> float:
        key = (i, d)
        if key not in cache:
            chain = MultiGpuChain([devices[d]], config=config)
            res = chain.run(PhantomWorkload(pairs[i].human_len, pairs[i].chimp_len))
            cache[key] = res.total_time_s
        return cache[key]

    for i in order:
        finish = [device_clock[d] + pair_time(i, d) for d in range(len(devices))]
        d = finish.index(min(finish))
        placed.append((i, d))
        device_clock[d] = finish[d]

    items: list[CampaignItem] = []
    per_device_clock = [0.0] * len(devices)
    for i, d in placed:
        t = pair_time(i, d)
        start = per_device_clock[d]
        per_device_clock[d] = start + t
        items.append(CampaignItem(pair=pairs[i], start_s=start, end_s=start + t,
                                  gcups=pairs[i].cells / t / 1e9))
    items.sort(key=lambda item: item.pair.name)
    return CampaignResult(strategy="split", items=items, makespan_s=max(device_clock))
