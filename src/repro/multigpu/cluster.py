"""Multi-node chains: the paper's strategy extended across hosts.

The PPoPP 2014 system chains GPUs inside one host; the same wavefront
decomposition extends to a *cluster* — the direction this system family
later took — by letting border segments cross node boundaries over the
network.  :class:`ClusterChain` arranges the devices of several
:class:`Node` objects into one logical chain; channels between devices of
the same node are plain :class:`~repro.comm.channel.BorderChannel`, while
channels at node boundaries are
:class:`~repro.comm.network.InterNodeChannel` with a per-boundary
:class:`~repro.comm.network.NetworkLink`.

Everything else — proportional partitioning over *all* devices, circular
buffering, compute/timing duality, the exactness guarantees — is inherited
from :class:`~repro.multigpu.chain.MultiGpuChain`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..comm.channel import BorderChannel
from ..comm.network import InterNodeChannel, NetworkLink
from ..device.engine import Engine
from ..device.gpu import SimulatedGPU
from ..device.spec import DeviceSpec
from ..errors import ConfigError
from .chain import ChainConfig, MultiGpuChain
from .partition import Slab


@dataclass(frozen=True)
class Node:
    """One host: a name, its devices (in chain order), and its NIC link
    toward the *next* node in the chain (unused on the last node)."""

    name: str
    devices: tuple[DeviceSpec, ...]
    uplink: NetworkLink = field(default_factory=lambda: NetworkLink(gbps=1.25, name="10GbE"))

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigError(f"node {self.name!r} has no devices")


class ClusterChain(MultiGpuChain):
    """A chain whose devices span several nodes (see module docstring)."""

    def __init__(
        self,
        nodes: Sequence[Node],
        *,
        config: ChainConfig | None = None,
        partition: list[Slab] | None = None,
    ) -> None:
        if not nodes:
            raise ConfigError("need at least one node")
        self.nodes = list(nodes)
        devices: list[DeviceSpec] = []
        #: node index of each flattened device
        self._node_of: list[int] = []
        for ni, node in enumerate(self.nodes):
            for spec in node.devices:
                devices.append(spec)
                self._node_of.append(ni)
        super().__init__(devices, config=config, partition=partition)

    def boundary_links(self) -> list[NetworkLink | None]:
        """Per channel g→g+1: the network link crossed, or None (intra-node)."""
        links: list[NetworkLink | None] = []
        for g in range(len(self.specs) - 1):
            a, b = self._node_of[g], self._node_of[g + 1]
            links.append(self.nodes[a].uplink if a != b else None)
        return links

    def _make_channel(self, engine: Engine, gpus: list[SimulatedGPU], g: int) -> BorderChannel:
        link = self.boundary_links()[g]
        if link is None:
            return super()._make_channel(engine, gpus, g)
        return InterNodeChannel(
            engine, gpus[g], gpus[g + 1], link,
            capacity=self.config.channel_capacity,
            device_slots=self.config.device_slots,
        )


def min_internode_overlap_width(
    src: DeviceSpec,
    dst: DeviceSpec,
    link: NetworkLink,
    block_rows: int,
) -> int:
    """Minimum slab width hiding an *inter-node* border exchange.

    Same bisection as :func:`repro.multigpu.overlap.min_overlap_width`, but
    the per-segment cost includes the network hop (the max of the three
    pipelined hops).
    """
    from .overlap import segment_bytes

    nbytes = segment_bytes(block_rows)
    cost = max(src.transfer_time(nbytes), link.transfer_time(nbytes),
               dst.transfer_time(nbytes))
    lo, hi = 1, 1
    while block_rows * hi / src.effective_rate(hi) < cost:
        hi *= 2
        if hi > 1 << 40:
            raise ConfigError("no feasible overlap width for this link")
    while lo < hi:
        mid = (lo + hi) // 2
        if block_rows * mid / src.effective_rate(mid) >= cost:
            hi = mid
        else:
            lo = mid + 1
    return lo
