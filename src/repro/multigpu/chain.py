"""The multi-GPU chain engine — the paper's primary contribution.

One huge Smith-Waterman matrix is computed cooperatively by a **logical
chain of GPUs**: device *g* owns a vertical slab of columns and sweeps it
in block rows of height ``block_rows``; after each block row it ships the
slab's rightmost border column (H and E values, plus the diagonal corner)
to device *g+1* through a :class:`~repro.comm.channel.BorderChannel`
(D2H → host circular buffer → H2D).  Device *g+1* can start its block row
*r* as soon as it has (a) its own block row *r-1* and (b) the border for
*r* from the left — so the devices form a software pipeline of depth
``len(devices)`` over the block rows, and with slabs wide enough the
border transfers hide entirely behind compute (the paper's circular-buffer
overlap claim).

Two execution modes share this engine:

* **compute mode** (``MatrixWorkload``): every block is *really* computed
  by the vectorised kernel; borders carry real arrays; the result's score
  and end point are bit-exact (tested against the single-kernel sweep).
* **timing mode** (``PhantomWorkload``): blocks carry only their sizes;
  the virtual clock advances identically, so paper-scale (megabase)
  configurations can be swept in milliseconds of wall time.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..comm.channel import BorderChannel, BorderSegment
from ..comm.ringbuf import RingStats
from ..comm.scoreboard import LocalScoreboard
from ..device.engine import Engine
from ..device.gpu import GpuCounters, SimulatedGPU
from ..device.spec import DeviceSpec
from ..errors import ConfigError
from ..obs.instruments import (EngineInstruments, finalize_run_metrics,
                               record_heuristic)
from ..seq.scoring import Scoring
from ..sw.batched import BlockJob, KernelWorkspace, cached_profile, sweep_wavefront, validate_kernel
from ..sw.blocks import BlockSpec, pruned_border_result
from ..sw.compiled import sweep_block_compiled
from ..sw.compiled import warmup as compiled_warmup
from ..sw.constants import DTYPE, NEG_INF, DpPolicy, resolve_dp_dtype, validate_dp_dtype
from ..sw.kernel import BestCell, sweep_block
from ..sw.pruning import BlockPruner
from ..sw.xdrop import (DEFAULT_BAND_WIDTH, DEFAULT_XDROP_X, assess_heuristic,
                        band_intersects, validate_mode, xdrop_score)
from .partition import Slab, proportional_partition

#: Bytes per border row: H (int32) + E (int32).
BORDER_BYTES_PER_ROW = 8
#: Fixed bytes per segment: the diagonal corner value.
BORDER_BYTES_FIXED = 4


@dataclass(frozen=True)
class ChainConfig:
    """Tuning knobs of the chain engine.

    Attributes
    ----------
    block_rows:
        Height of one block row (the paper's external-diagonal step and
        border-segment granularity).
    channel_capacity:
        Slots in each host circular buffer (the paper's mechanism; 1
        degenerates to rendezvous — ablation X1).
    device_slots:
        Device-side staging slots on each end of a channel (double
        buffering by default).
    async_transfers:
        True (default) spawns sender/receiver processes so transfers
        overlap compute; False runs them inline (ablation: no hiding).
    kernel:
        Compute-mode block kernel: ``"scalar"`` calls
        :func:`~repro.sw.kernel.sweep_block` per block; ``"batched"``
        routes blocks through :func:`~repro.sw.batched.sweep_wavefront`
        with a per-run :class:`~repro.sw.batched.KernelWorkspace`, so the
        sweeps reuse scratch instead of reallocating every block row;
        ``"compiled"`` calls the numba-jitted fused sweep
        (:func:`~repro.sw.compiled.sweep_block_compiled`; JIT-warmed once
        before the event loop starts so compile time never lands inside a
        virtual compute span).  Bit-identical results every way; phantom
        runs ignore it.
    pruning:
        Enables distributed block pruning (compute mode only): every
        device checks each slab block row against the chain-wide best
        score on a shared :class:`~repro.comm.scoreboard.LocalScoreboard`
        and skips block rows that provably cannot improve it, emitting
        restart borders instead.  Scores and end points are unchanged
        (see INTERNALS.md section 7); only similar sequences prune much.
    mode:
        Alignment tier (compute mode only): ``"exact"`` (default),
        ``"banded"`` (restrict to the static band ``|j - i| <=
        band_width``; slab block rows that miss the band are skipped
        outright, compounding with pruning), ``"xdrop"`` (origin-anchored
        X-drop extension — the sequential frontier runs inline and is
        charged to the first device), or ``"auto"`` (banded first, exact
        re-run when the confidence check fails; see INTERNALS.md
        section 10).  Heuristic scores never exceed the exact score.
    band_width:
        Half-width of the static band for ``mode="banded"``/``"auto"``.
    xdrop_x:
        Drop threshold for ``mode="xdrop"``.
    dp_dtype:
        Kernel-internal DP dtype policy (compute mode): ``"auto"``
        (default) resolves to the narrowest dtype guaranteed overflow-free
        for the widest slab, ``"int32"``/``"int16"``/``"int8"`` force a
        policy (narrow ones escalate overflowing blocks back to int32 per
        block; scores stay bit-identical).  Borders stay int32 on the
        wire either way.
    """

    block_rows: int = 512
    channel_capacity: int = 4
    device_slots: int = 2
    async_transfers: bool = True
    kernel: str = "scalar"
    pruning: bool = False
    mode: str = "exact"
    band_width: int = DEFAULT_BAND_WIDTH
    xdrop_x: int = DEFAULT_XDROP_X
    dp_dtype: str = "auto"

    def __post_init__(self) -> None:
        if self.block_rows <= 0:
            raise ConfigError("block_rows must be positive")
        if self.channel_capacity <= 0:
            raise ConfigError("channel_capacity must be positive")
        if self.device_slots <= 0:
            raise ConfigError("device_slots must be positive")
        validate_kernel(self.kernel)
        validate_mode(self.mode)
        if self.band_width < 0:
            raise ConfigError("band_width must be >= 0")
        if self.xdrop_x <= 0:
            raise ConfigError("xdrop_x must be positive")
        validate_dp_dtype(self.dp_dtype)


class MatrixWorkload:
    """Compute-mode workload: real sequences, real DP cells."""

    def __init__(self, a_codes: np.ndarray, b_codes: np.ndarray, scoring: Scoring) -> None:
        if a_codes.size == 0 or b_codes.size == 0:
            raise ConfigError("sequences must be non-empty")
        self.a = a_codes
        self.b = b_codes
        self.scoring = scoring
        self.rows = int(a_codes.size)
        self.cols = int(b_codes.size)
        self.phantom = False


class PhantomWorkload:
    """Timing-mode workload: only the matrix dimensions."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ConfigError("matrix dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.scoring: Scoring | None = None
        self.phantom = True


@dataclass
class GpuReport:
    """Per-device outcome."""

    name: str
    slab: Slab
    counters: GpuCounters
    finished_at: float
    #: Distributed-pruning decisions this device made / took (compute
    #: mode with ``ChainConfig.pruning`` only; zero otherwise).
    blocks_checked: int = 0
    blocks_pruned: int = 0
    #: Slab block rows skipped because they miss the static band
    #: (``ChainConfig.mode == "banded"`` only).
    blocks_skipped_band: int = 0
    #: Narrow/wide split of this device's swept blocks (zeros unless a
    #: narrow DP dtype policy was active).
    blocks_narrow: int = 0
    blocks_wide: int = 0
    dtype_escalations: int = 0


@dataclass
class ChainResult:
    """Outcome of one chain run.

    ``best`` is meaningful only in compute mode (phantom runs report the
    empty cell).  ``gcups`` is measured on the virtual clock — the figure
    the paper reports.
    """

    best: BestCell
    total_time_s: float
    cells: int
    gpus: list[GpuReport]
    channels: list[RingStats]
    config: ChainConfig
    partition: list[Slab]
    #: set when the run stopped early (``stop_row``): resume with
    #: ``chain.run(workload, resume=result.checkpoint)``.
    checkpoint: "object | None" = None
    #: Heuristic-tier fields: the requested mode, the tier that produced
    #: the reported score, and whether ``mode="auto"`` fell back to exact.
    mode: str = "exact"
    tier: str = "exact"
    escalated: bool = False
    #: DP dtype policy the run resolved to (compute mode; phantom runs
    #: and the xdrop tier report the int32 default).
    dp_dtype: str = "int32"

    @property
    def gcups(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.cells / self.total_time_s / 1e9

    @property
    def score(self) -> int:
        return self.best.score if self.best.row >= 0 else 0

    @property
    def blocks_checked(self) -> int:
        """Distributed-pruning decisions across the chain (0 if disabled)."""
        return sum(g.blocks_checked for g in self.gpus)

    @property
    def blocks_pruned(self) -> int:
        return sum(g.blocks_pruned for g in self.gpus)

    @property
    def blocks_skipped_band(self) -> int:
        """Slab block rows skipped by the static band (0 unless banded)."""
        return sum(g.blocks_skipped_band for g in self.gpus)

    @property
    def blocks_narrow(self) -> int:
        """Blocks the narrow DP kernel answered (0 on int32 runs)."""
        return sum(g.blocks_narrow for g in self.gpus)

    @property
    def blocks_wide(self) -> int:
        """Blocks computed wide despite a narrow policy."""
        return sum(g.blocks_wide for g in self.gpus)

    @property
    def dtype_escalations(self) -> int:
        """Narrow sweeps recomputed in int32 after overflow detection."""
        return sum(g.dtype_escalations for g in self.gpus)

    @property
    def pruned_ratio(self) -> float:
        checked = self.blocks_checked
        return self.blocks_pruned / checked if checked else 0.0

    def breakdown(self) -> list[dict[str, float]]:
        """Per-GPU compute/transfer/wait/idle fractions of the makespan."""
        return [g.counters.breakdown(self.total_time_s) for g in self.gpus]


class MultiGpuChain:
    """Configured chain of simulated devices over one workload."""

    def __init__(
        self,
        devices: Sequence[DeviceSpec],
        *,
        config: ChainConfig | None = None,
        partition: list[Slab] | None = None,
    ) -> None:
        if not devices:
            raise ConfigError("need at least one device")
        self.specs = list(devices)
        self.config = config or ChainConfig()
        self._partition = partition

    def _make_channel(self, engine: Engine, gpus: list[SimulatedGPU], g: int) -> BorderChannel:
        """Channel between devices *g* and *g+1*; cluster variants override
        this to insert network hops at host boundaries."""
        return BorderChannel(
            engine, gpus[g], gpus[g + 1],
            capacity=self.config.channel_capacity,
            device_slots=self.config.device_slots,
        )

    def partition_for(self, n_cols: int) -> list[Slab]:
        """The slab layout used for *n_cols* columns (proportional by
        default, or the explicit partition passed at construction)."""
        if self._partition is not None:
            if self._partition[-1].col1 != n_cols:
                raise ConfigError("explicit partition does not match matrix width")
            return self._partition
        return proportional_partition(n_cols, [s.gcups for s in self.specs])

    # -- the run -------------------------------------------------------------
    def run(
        self,
        workload: MatrixWorkload | PhantomWorkload,
        *,
        tracer=None,
        resume=None,
        stop_row: int | None = None,
        metrics=None,
        events=None,
        _finalize_metrics: bool = True,
    ) -> ChainResult:
        """Execute the workload; pass a :class:`repro.device.trace.Tracer`
        to record per-device activity intervals.

        ``resume`` accepts a :class:`~repro.multigpu.checkpoint.ChainCheckpoint`
        to continue a previous run; ``stop_row`` ends this run exactly at
        that matrix row (the block row containing it is truncated, and the
        result carries a ``checkpoint`` to resume from).  Virtual time
        accumulates across segments.

        ``metrics`` accepts a :class:`~repro.obs.registry.MetricsRegistry`
        to collect the standard per-device instrument set (block and
        border counters, sweep latency histograms — on the **virtual**
        clock, matching the rest of this engine's timing).  ``events``
        accepts an :class:`~repro.obs.events.EventJournal`; the simulated
        engine journals ``run_start``/``run_end`` (plus
        ``heuristic_escalation`` under ``mode="auto"`` and a summary
        ``dtype_escalation``) — there are no processes to spawn or lose,
        so the per-worker lifecycle events stay with the real-process
        engines.
        """
        cfg = self.config
        m, n = workload.rows, workload.cols
        if events is not None and _finalize_metrics:
            events.emit("run_start", backend="sim", mode=cfg.mode,
                        rows=m, cols=n, devices=len(self.specs),
                        kernel=cfg.kernel, pruning=cfg.pruning)
        if cfg.mode != "exact":
            if workload.phantom:
                raise ConfigError(
                    "heuristic modes require a compute-mode workload")
            if resume is not None or stop_row is not None:
                raise ConfigError(
                    "heuristic modes do not support resume/stop_row")
            if cfg.mode == "xdrop":
                return self._run_xdrop(workload, tracer=tracer,
                                       metrics=metrics, events=events,
                                       _finalize_metrics=_finalize_metrics)
            if cfg.mode == "auto":
                return self._run_auto(workload, tracer=tracer,
                                      metrics=metrics, events=events)
        slabs = self.partition_for(n)
        if len(slabs) != len(self.specs):
            raise ConfigError("partition size != device count")

        # DP dtype policy (compute mode): resolved once for the run, with
        # the *widest* slab as the effective sweep width — every device
        # then shares one policy, so borders and escalation semantics are
        # uniform across the chain.
        dp_policy: DpPolicy | None = None
        dp_name = "int32"
        if not workload.phantom:
            eff_cols = max(s.cols for s in slabs)
            policy = resolve_dp_dtype(cfg.dp_dtype, workload.scoring,
                                      block_cols=eff_cols, m=m, n=n,
                                      local=True)
            dp_name = policy.name
            dp_policy = policy if policy.narrow else None
        dtype_counts = [[0, 0, 0] for _ in self.specs]  # narrow, wide, esc

        start_row = 0
        elapsed_before = 0.0
        if resume is not None:
            if resume.row >= m:
                raise ConfigError("checkpoint is at or beyond the matrix end")
            if resume.phantom != workload.phantom:
                raise ConfigError("checkpoint mode does not match workload mode")
            if not resume.phantom and resume.h_row.shape != (n,):
                raise ConfigError("checkpoint width does not match the matrix")
            start_row = resume.row
            elapsed_before = resume.elapsed_s
        end_row = m if stop_row is None else min(m, max(start_row + 1, stop_row))

        engine = Engine()
        gpus = [SimulatedGPU(engine, spec, i, tracer) for i, spec in enumerate(self.specs)]
        channels = [self._make_channel(engine, gpus, g) for g in range(len(gpus) - 1)]
        instruments = ([EngineInstruments(metrics, gpu.name) for gpu in gpus]
                       if metrics is not None else None)

        row_edges = list(range(start_row, end_row, cfg.block_rows)) + [end_row]
        n_block_rows = len(row_edges) - 1
        bests: list[BestCell] = [BestCell.none() for _ in gpus]
        if resume is not None and resume.best.row >= 0:
            bests[0] = resume.best
        finished_at = [0.0] * len(gpus)
        final_h: list[np.ndarray | None] = [None] * len(gpus)
        final_f: list[np.ndarray | None] = [None] * len(gpus)

        profile = None
        workspace = None
        if not workload.phantom:
            # LRU-cached: repeated comparisons against the same horizontal
            # sequence (batch campaigns, resumed runs) skip the rebuild.
            profile = cached_profile(workload.b, workload.scoring)
            if cfg.kernel == "batched":
                # Shared across the simulated devices: their sweeps never
                # interleave (each work thunk runs atomically inside the
                # single-threaded event loop).
                workspace = KernelWorkspace()
            elif cfg.kernel == "compiled":
                # JIT-warm before the event loop: the simulated clock is
                # virtual, but the host wall time callers measure around
                # run() should not fold numba compiles into block 0.
                compiled_warmup()

        # Distributed pruning: one pruner per device, all publishing into
        # one in-process scoreboard (the lock-free SharedScoreboard plays
        # this role for the real-process engines).  Seeded from the resume
        # best so a continued run prunes against everything already found.
        # Static band (mode="banded"): slab block rows whose block misses
        # |j - i| <= band_width are skipped outright — before the pruner
        # even looks — and emit the same restart borders.
        band_hw = (cfg.band_width
                   if cfg.mode == "banded" and not workload.phantom else None)
        band_skips = [0] * len(gpus)

        scoreboard = None
        pruners: list[BlockPruner] | None = None
        if cfg.pruning and not workload.phantom:
            scoreboard = LocalScoreboard()
            pruners = [BlockPruner(match=workload.scoring.match) for _ in gpus]
            if resume is not None and resume.best.row >= 0:
                scoreboard.publish(0, resume.best.score)

        def gpu_proc(g: int):
            gpu = gpus[g]
            slab = slabs[g]
            w = slab.cols
            in_ch = channels[g - 1] if g > 0 else None
            out_ch = channels[g] if g < len(gpus) - 1 else None

            # Rolling top border of this slab (compute mode only).
            if not workload.phantom:
                if resume is not None:
                    h_top = resume.h_row[slab.col0 : slab.col1].astype(DTYPE, copy=True)
                    f_top = resume.f_row[slab.col0 : slab.col1].astype(DTYPE, copy=True)
                    prev_right_last = int(resume.h_row[slab.col1 - 1])
                else:
                    h_top = np.zeros(w, dtype=DTYPE)
                    f_top = np.full(w, NEG_INF, dtype=DTYPE)
                    prev_right_last = 0  # H(r0-1, col1-1): right neighbour's corner
            scoring = workload.scoring

            for r in range(n_block_rows):
                r0, r1 = row_edges[r], row_edges[r + 1]
                rows = r1 - r0

                payload_in = None
                if in_ch is not None:
                    t0 = engine.now
                    payload_in = yield in_ch.consume()
                    gpu.record_wait(t0)
                    if instruments is not None:
                        instruments[g].border_received(
                            rows * BORDER_BYTES_PER_ROW + BORDER_BYTES_FIXED)
                if out_ch is not None:
                    t0 = engine.now
                    yield out_ch.reserve_out_slot()
                    gpu.record_wait(t0)

                work = None
                pruned = False
                if not workload.phantom:
                    if in_ch is not None:
                        h_left, e_left, corner = payload_in.payload
                    else:
                        h_left = np.zeros(rows, dtype=DTYPE)
                        e_left = np.full(rows, NEG_INF, dtype=DTYPE)
                        corner = 0

                    spec = BlockSpec(r0, r1, slab.col0, slab.col1)
                    skipped_band = (band_hw is not None
                                    and not band_intersects(spec, band_hw))
                    if skipped_band:
                        band_skips[g] += 1
                        if instruments is not None:
                            instruments[g].block_skipped_band()
                    elif pruners is not None:
                        pruned = pruners[g].should_prune(
                            spec,
                            m,
                            n,
                            int(h_top.max(initial=NEG_INF)),
                            int(h_left.max(initial=NEG_INF)),
                            scoreboard.read(),
                        )

                    if pruned or skipped_band:
                        # Skip the device sweep entirely: emit restart
                        # borders (legal lower bounds) and charge no
                        # virtual compute time — the pruning/band payoff.
                        result = pruned_border_result(spec)
                        if gpu.tracer is not None:
                            gpu.tracer.record(
                                gpu.name, "band-skip" if skipped_band else "pruned",
                                engine.now, engine.now)
                        if pruned and instruments is not None:
                            instruments[g].block_pruned()
                        pruned = True
                    else:
                        a_slice = workload.a[r0:r1]
                        p_slice = profile[:, slab.col0 : slab.col1]
                        ht, ft = h_top, f_top

                        if cfg.kernel == "batched":
                            def work(a=a_slice, p=p_slice, ht=ht, ft=ft,
                                     hl=h_left, el=e_left, c=corner):
                                job = BlockJob(a, p, ht, ft, hl, el, c)
                                return sweep_wavefront([job], scoring, local=True,
                                                       workspace=workspace,
                                                       dp=dp_policy)[0]
                        elif cfg.kernel == "compiled":
                            def work(a=a_slice, p=p_slice, ht=ht, ft=ft,
                                     hl=h_left, el=e_left, c=corner):
                                return sweep_block_compiled(
                                    a, p, ht, ft, hl, el, c, scoring,
                                    local=True, dp=dp_policy)
                        else:
                            def work(a=a_slice, p=p_slice, ht=ht, ft=ft,
                                     hl=h_left, el=e_left, c=corner):
                                return sweep_block(a, p, ht, ft, hl, el, c,
                                                   scoring, local=True,
                                                   dp=dp_policy)

                if not pruned:
                    t_c0 = engine.now
                    result = yield from gpu.compute(rows * w, w, work, block_rows=rows)
                    if instruments is not None:
                        instruments[g].block_computed(engine.now - t_c0,
                                                      cells=rows * w)
                    if dp_policy is not None and not workload.phantom:
                        narrow = int(result.dtype == dp_policy.name)
                        esc = int(result.escalated)
                        dtype_counts[g][0] += narrow
                        dtype_counts[g][1] += 1 - narrow
                        dtype_counts[g][2] += esc
                        if instruments is not None:
                            instruments[g].block_dtype(
                                narrow=narrow, wide=1 - narrow,
                                escalations=esc)

                if not workload.phantom:
                    h_top = result.h_bottom
                    f_top = result.f_bottom
                    cell = result.best.shifted(r0, slab.col0)
                    if cell.better_than(bests[g]):
                        bests[g] = cell
                        if scoreboard is not None:
                            scoreboard.publish(g, bests[g].score)

                if out_ch is not None:
                    nbytes = rows * BORDER_BYTES_PER_ROW + BORDER_BYTES_FIXED
                    if instruments is not None:
                        instruments[g].border_sent(nbytes)
                    if workload.phantom:
                        payload = None
                    else:
                        payload = (result.h_right, result.e_right, prev_right_last)
                        prev_right_last = int(result.h_right[-1])
                    segment = BorderSegment(index=r, nbytes=nbytes, payload=payload)
                    if cfg.async_transfers:
                        engine.process(out_ch.sender(segment), f"send{g}:{r}")
                    else:
                        yield from out_ch.send_sync(segment)
            finished_at[g] = engine.now
            if not workload.phantom:
                final_h[g] = h_top
                final_f[g] = f_top

        for g in range(len(gpus)):
            engine.process(gpu_proc(g), f"gpu{g}")
        for ch in channels:
            engine.process(ch.receiver_pump(n_block_rows), f"pump:{ch.label}")
            for i, aux in enumerate(ch.aux_processes(n_block_rows)):
                engine.process(aux, f"aux{i}:{ch.label}")

        total = elapsed_before + engine.run()

        best = BestCell.none()
        for cell in bests:
            if cell.better_than(best):
                best = cell
        reports = [
            GpuReport(name=gpus[g].name, slab=slabs[g], counters=gpus[g].counters,
                      finished_at=finished_at[g],
                      blocks_checked=pruners[g].blocks_checked if pruners else 0,
                      blocks_pruned=pruners[g].blocks_pruned if pruners else 0,
                      blocks_skipped_band=band_skips[g],
                      blocks_narrow=dtype_counts[g][0],
                      blocks_wide=dtype_counts[g][1],
                      dtype_escalations=dtype_counts[g][2])
            for g in range(len(gpus))
        ]
        checkpoint = None
        if end_row < m:
            from .checkpoint import ChainCheckpoint

            if workload.phantom:
                h_row = f_row = None
            else:
                h_row = np.concatenate([h for h in final_h if h is not None])
                f_row = np.concatenate([f for f in final_f if f is not None])
            checkpoint = ChainCheckpoint(
                row=end_row, h_row=h_row, f_row=f_row, best=best, elapsed_s=total
            )
        result = ChainResult(
            best=best,
            total_time_s=total,
            # Cumulative across resumed segments: rows [0, end_row) over the
            # accumulated virtual time, so ``gcups`` stays meaningful.
            cells=end_row * n,
            gpus=reports,
            channels=[ch.host_ring.stats for ch in channels],
            config=cfg,
            partition=slabs,
            checkpoint=checkpoint,
            mode=cfg.mode,
            tier="banded" if cfg.mode == "banded" else "exact",
            dp_dtype=dp_name,
        )
        if metrics is not None and _finalize_metrics:
            finalize_run_metrics(
                metrics, backend="sim",
                blocks_checked=result.blocks_checked,
                blocks_pruned=result.blocks_pruned,
                wall_time_s=total, gcups=result.gcups)
        if events is not None and _finalize_metrics:
            total_esc = sum(c[2] for c in dtype_counts)
            if total_esc > 0:
                events.emit("dtype_escalation", dp_dtype=dp_name,
                            escalations=total_esc)
            events.emit("run_end", status="ok", score=int(best.score),
                        virtual_time_s=round(total, 6), tier=result.tier)
        return result

    def _run_xdrop(
        self,
        workload: MatrixWorkload,
        *,
        tracer=None,
        metrics=None,
        events=None,
        _finalize_metrics: bool = True,
    ) -> ChainResult:
        """``mode="xdrop"``: the extension frontier is a sequential
        anti-diagonal sweep with no block decomposition, so it runs
        inline and its cells are charged to the first device (the rest of
        the chain stays idle — a documented scheduling decision, not a
        limitation of the virtual clock)."""
        cfg = self.config
        m, n = workload.rows, workload.cols
        slabs = self.partition_for(n)
        xo = xdrop_score(workload.a, workload.b, workload.scoring, cfg.xdrop_x)

        engine = Engine()
        gpus = [SimulatedGPU(engine, spec, i, tracer)
                for i, spec in enumerate(self.specs)]
        instruments = ([EngineInstruments(metrics, gpu.name) for gpu in gpus]
                       if metrics is not None else None)

        def proc():
            t0 = engine.now
            yield from gpus[0].compute(max(1, xo.cells_computed), n,
                                       block_rows=cfg.block_rows)
            if instruments is not None:
                instruments[0].block_computed(engine.now - t0,
                                              cells=xo.cells_computed)

        engine.process(proc(), "gpu0")
        total = engine.run()
        reports = [
            GpuReport(name=gpus[g].name, slab=slabs[g],
                      counters=gpus[g].counters,
                      finished_at=total if g == 0 else 0.0)
            for g in range(len(gpus))
        ]
        result = ChainResult(
            best=xo.best,
            total_time_s=total,
            cells=m * n,
            gpus=reports,
            channels=[],
            config=cfg,
            partition=slabs,
            mode="xdrop",
            tier="xdrop",
        )
        if metrics is not None and _finalize_metrics:
            finalize_run_metrics(
                metrics, backend="sim", blocks_checked=0, blocks_pruned=0,
                wall_time_s=total, gcups=result.gcups)
        if events is not None and _finalize_metrics:
            events.emit("run_end", status="ok", score=int(xo.best.score),
                        virtual_time_s=round(total, 6), tier="xdrop")
        return result

    def _run_auto(
        self,
        workload: MatrixWorkload,
        *,
        tracer=None,
        metrics=None,
        events=None,
    ) -> ChainResult:
        """``mode="auto"``: banded heuristic first; re-run exact only when
        the confidence check fails.  The reported virtual time sums the
        tiers actually run, and ``tier``/``escalated`` say who answered."""
        cfg = self.config
        m, n = workload.rows, workload.cols
        sub = copy.copy(self)  # preserves cluster subclasses' channels
        sub.config = replace(cfg, mode="banded")
        heur = sub.run(workload, tracer=tracer, metrics=metrics,
                       _finalize_metrics=False)
        decision = assess_heuristic(heur.best, m, n, workload.scoring,
                                    band_half_width=cfg.band_width)
        if decision.confident:
            result = heur
            result.config = cfg
            result.mode, result.tier = "auto", "banded"
        else:
            if events is not None:
                events.emit(
                    "heuristic_escalation", tier="exact",
                    heur_score=int(heur.best.score),
                    band_width=cfg.band_width,
                    reason="confidence check rejected the banded score")
            sub.config = replace(cfg, mode="exact")
            exact = sub.run(workload, tracer=tracer, metrics=metrics,
                            _finalize_metrics=False)
            result = exact
            result.config = cfg
            result.total_time_s += heur.total_time_s
            result.mode, result.tier = "auto", "exact"
            result.escalated = True
        if metrics is not None:
            record_heuristic(metrics, backend="sim",
                             tier=result.tier, escalated=result.escalated)
            finalize_run_metrics(
                metrics, backend="sim",
                blocks_checked=result.blocks_checked,
                blocks_pruned=result.blocks_pruned,
                wall_time_s=result.total_time_s, gcups=result.gcups)
        if events is not None:
            events.emit("run_end", status="ok", score=int(result.best.score),
                        virtual_time_s=round(result.total_time_s, 6),
                        tier=result.tier, escalated=result.escalated)
        return result


def align_multi_gpu(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    devices: Sequence[DeviceSpec],
    *,
    config: ChainConfig | None = None,
    tracer=None,
    metrics=None,
    events=None,
) -> ChainResult:
    """Convenience wrapper: compute-mode chain run over real sequences."""
    chain = MultiGpuChain(devices, config=config)
    return chain.run(MatrixWorkload(a_codes, b_codes, scoring),
                     tracer=tracer, metrics=metrics, events=events)


def time_multi_gpu(
    rows: int,
    cols: int,
    devices: Sequence[DeviceSpec],
    *,
    config: ChainConfig | None = None,
    partition: list[Slab] | None = None,
) -> ChainResult:
    """Convenience wrapper: timing-mode run at arbitrary (paper) scale."""
    chain = MultiGpuChain(devices, config=config, partition=partition)
    return chain.run(PhantomWorkload(rows, cols))
