"""Real-process chain: the paper's dataflow on actual parallel workers.

Everything else in :mod:`repro.multigpu` runs on a simulated clock; this
module executes the same column-slab / border-column dataflow across
**real OS processes**, one per slab, communicating borders over pipes in
the style of MPI point-to-point messaging (fixed-size raw-byte messages
into preallocated buffers, as the mpi4py guide recommends for NumPy
arrays).  On a multi-core host the workers genuinely overlap; the result
is bit-identical to every other engine (same kernels, same border
contract).

This is the bridge from the simulation to a real deployment: replace the
pipe transport with ``mpi4py`` send/recv (or CUDA-aware MPI) and each
worker's kernel with a device kernel, and the orchestration is unchanged.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..seq.scoring import Scoring
from ..sw.constants import DTYPE, NEG_INF
from ..sw.kernel import BestCell, build_profile, sweep_block
from .partition import Slab, equal_partition


@dataclass(frozen=True)
class ProcessChainResult:
    """Outcome of a real-process run (wall-clock, not virtual, time)."""

    best: BestCell
    wall_time_s: float
    cells: int
    workers: int

    @property
    def score(self) -> int:
        return self.best.score if self.best.row >= 0 else 0

    @property
    def gcups(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.cells / self.wall_time_s / 1e9


def _worker(
    worker_id: int,
    a_codes: np.ndarray,
    b_slab: np.ndarray,
    slab: Slab,
    scoring: Scoring,
    block_rows: int,
    recv_conn,
    send_conn,
    result_queue,
) -> None:
    """One slab's sweep loop (runs in a child process)."""
    try:
        profile = build_profile(b_slab, scoring)
        w = slab.cols
        m = int(a_codes.size)
        h_top = np.zeros(w, dtype=DTYPE)
        f_top = np.full(w, NEG_INF, dtype=DTYPE)
        prev_right_last = 0
        best = BestCell.none()

        row_edges = list(range(0, m, block_rows)) + [m]
        for r0, r1 in zip(row_edges, row_edges[1:]):
            rows = r1 - r0
            if recv_conn is not None:
                corner = int.from_bytes(recv_conn.recv_bytes(8), "little", signed=True)
                h_left = np.frombuffer(recv_conn.recv_bytes(rows * 4), dtype=DTYPE).copy()
                e_left = np.frombuffer(recv_conn.recv_bytes(rows * 4), dtype=DTYPE).copy()
            else:
                corner = 0
                h_left = np.zeros(rows, dtype=DTYPE)
                e_left = np.full(rows, NEG_INF, dtype=DTYPE)

            result = sweep_block(
                a_codes[r0:r1], profile, h_top, f_top, h_left, e_left,
                corner, scoring, local=True,
            )
            h_top = result.h_bottom
            f_top = result.f_bottom
            cell = result.best.shifted(r0, slab.col0)
            if cell.better_than(best):
                best = cell

            if send_conn is not None:
                send_conn.send_bytes(
                    int(prev_right_last).to_bytes(8, "little", signed=True))
                send_conn.send_bytes(result.h_right.tobytes())
                send_conn.send_bytes(result.e_right.tobytes())
                prev_right_last = int(result.h_right[-1])

        result_queue.put((worker_id, best.score, best.row, best.col, None))
    except Exception as exc:  # surface the failure to the parent
        result_queue.put((worker_id, 0, -1, -1, repr(exc)))


def align_multi_process(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    workers: int = 2,
    block_rows: int = 512,
    timeout_s: float = 300.0,
) -> ProcessChainResult:
    """Exact SW across *workers* real processes (see module docstring).

    Raises :class:`ConfigError` on bad parameters and ``RuntimeError``
    when a worker fails or the run times out.
    """
    if workers <= 0:
        raise ConfigError("workers must be positive")
    if block_rows <= 0:
        raise ConfigError("block_rows must be positive")
    m, n = int(a_codes.size), int(b_codes.size)
    if m == 0 or n == 0:
        raise ConfigError("sequences must be non-empty")
    if n < workers:
        raise ConfigError("matrix narrower than the worker count")

    slabs = equal_partition(n, workers)
    ctx = mp.get_context("fork")
    result_queue = ctx.Queue()
    pipes = [ctx.Pipe(duplex=False) for _ in range(workers - 1)]

    procs = []
    t0 = time.perf_counter()
    for g, slab in enumerate(slabs):
        recv_conn = pipes[g - 1][0] if g > 0 else None
        send_conn = pipes[g][1] if g < workers - 1 else None
        proc = ctx.Process(
            target=_worker,
            args=(g, a_codes, b_codes[slab.col0:slab.col1].copy(), slab,
                  scoring, block_rows, recv_conn, send_conn, result_queue),
            name=f"mgsw-worker-{g}",
        )
        proc.start()
        procs.append(proc)

    best = BestCell.none()
    failures = []
    try:
        for _ in range(workers):
            worker_id, score, row, col, err = result_queue.get(timeout=timeout_s)
            if err is not None:
                failures.append(f"worker {worker_id}: {err}")
            else:
                cell = BestCell(score, row, col)
                if cell.better_than(best):
                    best = cell
    except Exception as exc:
        failures.append(f"collection failed: {exc!r}")
    finally:
        for proc in procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join()
    wall = time.perf_counter() - t0
    if failures:
        raise RuntimeError("; ".join(failures))
    return ProcessChainResult(best=best, wall_time_s=wall, cells=m * n,
                              workers=workers)
