"""Real-process chain: the paper's dataflow on actual parallel workers.

Everything else in :mod:`repro.multigpu` runs on a simulated clock; this
module executes the same column-slab / border-column dataflow across
**real OS processes**, one per slab.  Two border transports implement the
paper's host circular buffer:

* ``"shm"`` (default) — a :class:`~repro.comm.shmring.ShmRing` per slab
  boundary: a bounded circular buffer in POSIX shared memory that carries
  H/E border columns without pickling or pipe copies, the real-world
  analogue of the simulated :class:`~repro.comm.ringbuf.SimRingBuffer`.
* ``"pipe"`` — one OS pipe per boundary with raw-byte framed messages
  (MPI point-to-point style), kept as the baseline the transport
  benchmark compares against.

On a multi-core host the workers genuinely overlap; the result is
bit-identical to every other engine (same kernels, same border contract).
This is the bridge from the simulation to a real deployment: replace the
transport with CUDA-aware MPI and each worker's kernel with a device
kernel, and the orchestration is unchanged.

Robustness contract: worker failures are detected (a worker that raises
reports its exception; a worker that *dies* is noticed by the parent's
liveness poll and by its neighbours' border timeouts), every phase is
bounded by a timeout, failures propagate as one deterministic
:class:`RuntimeError` listing the failed workers in id order, and shared
memory segments are unlinked on every exit path.

With ``max_restarts > 0`` failures become recoverable (INTERNALS.md
section 9): workers publish block-row state into a shared-memory
:class:`~repro.multigpu.checkpoint.CheckpointArea` on a fixed row ladder,
and on a failed attempt the supervisor tears the attempt down, drops the
workers that *died* from the partition
(:func:`~repro.multigpu.partition.surviving_partition`), and resumes
every survivor from the newest matrix row all slabs had checkpointed —
under a :class:`~repro.multigpu.checkpoint.RetryPolicy` bounding restart
count and backoff.  Scores stay exact: the resumed chain recomputes every
row past the checkpoint from genuine DP state.

For batch workloads prefer :class:`repro.multigpu.pool.WorkerPool`, which
keeps the slab workers alive across comparisons.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..comm.progress import ProgressBoard
from ..comm.scoreboard import SharedScoreboard
from ..comm.shmring import HEADER_BYTES, HEADER_STRUCT, ShmRing
from ..device.trace import Tracer, WallClockRecorder, merge_wall_records
from ..errors import CommError, ConfigError
from ..obs.heartbeat import HeartbeatMonitor
from ..obs.instruments import (EngineInstruments, finalize_run_metrics,
                               record_heuristic, record_recovery)
from ..obs.registry import MetricsRegistry
from ..perf.metrics import gcups as _metrics_gcups
from ..seq.scoring import Scoring
from ..sw.batched import BlockJob, KernelWorkspace, cached_profile, sweep_wavefront, validate_kernel
from ..sw.blocks import BlockSpec, pruned_border_result
from ..sw.compiled import sweep_block_compiled
from ..sw.compiled import warmup as compiled_warmup
from ..sw.constants import (DTYPE, NEG_INF, DpPolicy, resolve_dp_dtype,
                            validate_dp_dtype)
from ..sw.kernel import BestCell, sweep_block
from ..sw.pruning import BlockPruner
from ..sw.xdrop import (DEFAULT_BAND_WIDTH, DEFAULT_XDROP_X, assess_heuristic,
                        band_intersects, validate_mode, xdrop_score)
from .checkpoint import CheckpointArea, RetryPolicy
from .partition import Slab, proportional_partition, surviving_partition

#: Supported border transports.
TRANSPORTS = ("shm", "pipe")

#: Grace period between noticing a dead worker and declaring it failed
#: (its final result message may still be in flight through the queue).
_DEATH_GRACE_S = 1.0


def pick_context(start_method: str | None = None) -> mp.context.BaseContext:
    """The multiprocessing context the chain runs on.

    ``fork`` where the platform offers it (cheapest: workers inherit the
    sequences), otherwise ``spawn``; an explicit *start_method* overrides
    the choice.  All worker arguments are spawn-safe, so every method the
    platform supports works.
    """
    methods = mp.get_all_start_methods()
    if start_method is None:
        start_method = "fork" if "fork" in methods else "spawn"
    if start_method not in methods:
        raise ConfigError(
            f"start method {start_method!r} not available here (have {methods})")
    return mp.get_context(start_method)


class PipeLink:
    """Border link over an OS pipe: one framed raw-byte message per border.

    Same wire format and ``send_border``/``recv_border`` interface as
    :class:`ShmRing`, so slab workers are transport-agnostic.  Sends
    cannot time out (the OS pipe buffer provides the back-pressure);
    receives poll with a timeout.
    """

    def __init__(self, recv_conn, send_conn, label: str = "pipelink") -> None:
        self._recv = recv_conn
        self._send = send_conn
        self.label = label

    def send_border(self, h: np.ndarray, e: np.ndarray, corner: int,
                    timeout: float | None = None) -> None:
        payload = HEADER_STRUCT.pack(int(h.size), int(corner)) + h.tobytes() + e.tobytes()
        self._send.send_bytes(payload)

    def recv_border(self, timeout: float | None = None) -> tuple[np.ndarray, np.ndarray, int]:
        if timeout is not None and not self._recv.poll(timeout):
            raise CommError(
                f"{self.label}: recv timed out after {timeout}s (producer "
                f"stalled or dead)")
        buf = self._recv.recv_bytes()
        rows, corner = HEADER_STRUCT.unpack_from(buf, 0)
        h = np.frombuffer(buf, dtype=DTYPE, count=rows, offset=HEADER_BYTES).copy()
        e = np.frombuffer(buf, dtype=DTYPE, count=rows,
                          offset=HEADER_BYTES + 4 * rows).copy()
        return h, e, int(corner)


@dataclass(frozen=True)
class ProcessChainResult:
    """Outcome of a real-process run (wall-clock, not virtual, time).

    ``tracer`` holds per-worker wall-clock intervals (actors ``worker0``,
    ``worker1``, ...) recorded through the
    :class:`~repro.device.trace.WallClockRecorder` adapter, so the same
    breakdown/utilisation/overlap queries work as for simulated runs.
    """

    best: BestCell
    wall_time_s: float
    cells: int
    workers: int
    partition: tuple[Slab, ...] = ()
    transport: str = "pipe"
    start_method: str = "fork"
    tracer: Tracer | None = None
    kernel: str = "scalar"
    #: Distributed-pruning accounting (zeros unless ``pruning`` was on):
    #: chain-wide totals plus per-worker ``(checked, pruned)`` pairs.
    pruning: bool = False
    blocks_checked: int = 0
    blocks_pruned: int = 0
    worker_blocks: tuple = ()
    #: Recovery accounting (zeros unless ``max_restarts`` allowed a resume):
    #: attempts resumed after a failure, and matrix rows swept again because
    #: they lay past the newest consistent checkpoint when the failure hit.
    restarts: int = 0
    rows_recomputed: int = 0
    #: Heuristic-tier fields: the requested mode, the tier that produced
    #: the reported score, whether ``mode="auto"`` fell back to exact, and
    #: slab block rows skipped because they miss the static band.
    mode: str = "exact"
    tier: str = "exact"
    escalated: bool = False
    blocks_skipped_band: int = 0
    #: DP dtype policy the run resolved to and its chain-wide
    #: narrow/wide block split (zeros on plain int32 runs).
    dp_dtype: str = "int32"
    blocks_narrow: int = 0
    blocks_wide: int = 0
    dtype_escalations: int = 0

    @property
    def score(self) -> int:
        return self.best.score if self.best.row >= 0 else 0

    @property
    def pruned_ratio(self) -> float:
        return self.blocks_pruned / self.blocks_checked if self.blocks_checked else 0.0

    @property
    def gcups(self) -> float:
        """Wall-clock GCUPS via :func:`repro.perf.metrics.gcups`.

        One behaviour library-wide: a non-positive elapsed time raises
        ``ValueError`` (it can only arise from a corrupted result).
        """
        return _metrics_gcups(self.cells, self.wall_time_s)

    def breakdown(self) -> list[dict[str, float]]:
        """Per-worker compute/transfer/wait/idle fractions of the wall time
        (same shape as :meth:`repro.multigpu.chain.ChainResult.breakdown`)."""
        if self.tracer is None:
            return []
        out = []
        for g in range(self.workers):
            actor = f"worker{g}"
            compute = self.tracer.total(actor, "compute") / self.wall_time_s
            transfer = (self.tracer.total(actor, "d2h")
                        + self.tracer.total(actor, "h2d")) / self.wall_time_s
            wait = self.tracer.total(actor, "wait") / self.wall_time_s
            entry = {
                "compute": compute,
                "transfer": transfer,
                "wait": wait,
                "idle": max(0.0, 1.0 - compute - transfer - wait),
            }
            if self.pruning and g < len(self.worker_blocks):
                checked, pruned = self.worker_blocks[g]
                entry["blocks_checked"] = float(checked)
                entry["blocks_pruned"] = float(pruned)
            out.append(entry)
        return out


@dataclass(frozen=True)
class SlabOutcome:
    """What one slab sweep found: its best cell + skip/prune counters."""

    best: BestCell
    blocks_checked: int = 0
    blocks_pruned: int = 0
    blocks_skipped_band: int = 0
    blocks_narrow: int = 0
    blocks_wide: int = 0
    dtype_escalations: int = 0


def sweep_slab(
    a_codes: np.ndarray,
    b_slab: np.ndarray,
    slab: Slab,
    scoring: Scoring,
    block_rows: int,
    recv_link,
    send_link,
    recorder: WallClockRecorder,
    border_timeout_s: float | None,
    fault_block: int | None = None,
    kernel: str = "scalar",
    workspace: KernelWorkspace | None = None,
    n_cols: int | None = None,
    pruner: BlockPruner | None = None,
    scoreboard: SharedScoreboard | None = None,
    slot: int = 0,
    instruments: EngineInstruments | None = None,
    progress: ProgressBoard | None = None,
    start_row: int = 0,
    h_init: np.ndarray | None = None,
    f_init: np.ndarray | None = None,
    checkpoints: CheckpointArea | None = None,
    checkpoint_blocks: int = 1,
    band_half_width: int | None = None,
    dp: DpPolicy | None = None,
) -> SlabOutcome:
    """One slab's sweep loop (the body of every real-process worker).

    *recv_link* / *send_link* are border transports (``None`` at the chain
    ends); *fault_block* is a test-only hook that kills the process just
    before computing that block row (failure-injection tests).  *kernel*
    selects the block sweep: ``"batched"`` runs each block row through
    :func:`~repro.sw.batched.sweep_wavefront` with a slab-lifetime
    workspace, so persistent pool workers stop reallocating scratch.
    The profile is content-LRU-cached per process, so a pool worker that
    sees the same slab repeatedly skips the rebuild.

    Distributed pruning: pass a :class:`~repro.sw.pruning.BlockPruner`, a
    :class:`~repro.comm.scoreboard.SharedScoreboard`, this worker's *slot*
    and the full matrix width *n_cols* (the bound needs ``n - col0``, and
    a worker only sees its own slab).  Each block row is checked against
    the chain-wide best before sweeping; pruned rows emit restart borders
    (:func:`~repro.sw.blocks.pruned_border_result`) and are recorded as
    zero-length ``pruned`` spans.  Scoreboard reads may be stale — safe by
    monotonicity (see :mod:`repro.comm.scoreboard`).

    Static band (``mode="banded"``): with *band_half_width*, block rows
    whose slab block misses the band ``|j - i| <= band_half_width`` are
    skipped outright — before the pruner even looks — emitting the same
    restart borders (``band-skip`` spans; the result is the banded best,
    a lower bound of the unrestricted optimum).

    Telemetry (both optional, off the hot path when ``None``):
    *instruments* receives per-block counters and sweep latencies
    (:mod:`repro.obs.instruments`); *progress* is the shared-memory
    heartbeat board this worker beats into at every phase transition —
    ``rows_done`` carries the last *completed* matrix row, so the parent
    watchdog can report exactly where a stalled worker got to.

    Recovery (INTERNALS.md section 9): pass *checkpoints* to publish this
    slab's DP state on the checkpoint ladder — after every
    ``checkpoint_blocks``-th block row, plus the final row — so a later
    attempt can resume; *start_row*/*h_init*/*f_init* resume the sweep at
    matrix row *start_row* from that published state (``h_init``/``f_init``
    are H/F of row ``start_row - 1`` across the slab).  The border
    contract is unchanged: every worker of an attempt resumes from the
    *same* row, so the first border a resumed worker receives is for rows
    ``[start_row, start_row + rows)`` and its first corner is
    ``h_init[-1]`` — exactly ``H[start_row-1, col0-1]`` of its right
    neighbour's view.

    DP dtype: *dp* (a narrow :class:`~repro.sw.constants.DpPolicy`,
    resolved by the parent so the whole chain shares one policy) routes
    eligible block sweeps through the narrow kernel; overflowing blocks
    escalate to int32 transparently.  Borders stay int32 on the wire.
    """
    profile = cached_profile(b_slab, scoring)
    if kernel == "batched" and workspace is None:
        workspace = KernelWorkspace()
    w = slab.cols
    m = int(a_codes.size)
    n = int(n_cols) if n_cols is not None else slab.col1
    if start_row > 0:
        if h_init is None or f_init is None:
            raise CommError("resuming needs h_init and f_init")
        h_top = np.asarray(h_init, dtype=DTYPE).copy()
        f_top = np.asarray(f_init, dtype=DTYPE).copy()
        prev_right_last = int(h_top[-1])
    else:
        h_top = np.zeros(w, dtype=DTYPE)
        f_top = np.full(w, NEG_INF, dtype=DTYPE)
        prev_right_last = 0
    best = BestCell.none()
    ckpt_stride = max(1, int(checkpoint_blocks)) * block_rows
    blocks_skipped_band = 0
    blocks_narrow = blocks_wide = dtype_escalations = 0

    row_edges = list(range(start_row, m, block_rows)) + [m]
    for block_index, (r0, r1) in enumerate(zip(row_edges, row_edges[1:])):
        rows = r1 - r0
        if recv_link is not None:
            if progress is not None:
                progress.beat(slot, r0, "wait")
            with recorder.span("wait"):
                h_left, e_left, corner = recv_link.recv_border(timeout=border_timeout_s)
            if h_left.size != rows:
                raise CommError(
                    f"border for rows [{r0}, {r1}) carried {h_left.size} rows")
            if instruments is not None:
                instruments.border_received(
                    h_left.nbytes + e_left.nbytes + HEADER_BYTES)
        else:
            corner = 0
            h_left = np.zeros(rows, dtype=DTYPE)
            e_left = np.full(rows, NEG_INF, dtype=DTYPE)

        if fault_block is not None and block_index == fault_block:
            os._exit(3)  # simulated hard crash: no exception, no result

        pruned = False
        skipped_band = False
        spec = BlockSpec(r0, r1, slab.col0, slab.col1)
        if band_half_width is not None and not band_intersects(
                spec, band_half_width):
            skipped_band = True
            blocks_skipped_band += 1
        elif pruner is not None:
            pruned = pruner.should_prune(
                spec,
                m,
                n,
                int(h_top.max(initial=NEG_INF)),
                int(h_left.max(initial=NEG_INF)),
                scoreboard.read(),
            )
        if skipped_band:
            if progress is not None:
                progress.beat(slot, r0, "pruned")
            with recorder.span("band-skip"):
                result = pruned_border_result(spec)
            if instruments is not None:
                instruments.block_skipped_band()
        elif pruned:
            if progress is not None:
                progress.beat(slot, r0, "pruned")
            with recorder.span("pruned"):
                result = pruned_border_result(spec)
            if instruments is not None:
                instruments.block_pruned()
        else:
            if progress is not None:
                progress.beat(slot, r0, "compute")
            with recorder.span("compute"):
                if kernel == "batched":
                    job = BlockJob(a_codes[r0:r1], profile, h_top, f_top,
                                   h_left, e_left, corner)
                    result = sweep_wavefront([job], scoring, local=True,
                                             workspace=workspace, dp=dp)[0]
                elif kernel == "compiled":
                    result = sweep_block_compiled(
                        a_codes[r0:r1], profile, h_top, f_top, h_left, e_left,
                        corner, scoring, local=True, dp=dp,
                    )
                else:
                    result = sweep_block(
                        a_codes[r0:r1], profile, h_top, f_top, h_left, e_left,
                        corner, scoring, local=True, dp=dp,
                    )
            if instruments is not None:
                _, span_start, span_end = recorder.records[-1]
                instruments.block_computed(span_end - span_start,
                                           cells=rows * w)
            if dp is not None:
                narrow = int(result.dtype == dp.name)
                esc = int(result.escalated)
                blocks_narrow += narrow
                blocks_wide += 1 - narrow
                dtype_escalations += esc
                if instruments is not None:
                    instruments.block_dtype(narrow=narrow, wide=1 - narrow,
                                            escalations=esc)
        h_top = result.h_bottom
        f_top = result.f_bottom
        cell = result.best.shifted(r0, slab.col0)
        if cell.better_than(best):
            best = cell
            if scoreboard is not None:
                scoreboard.publish(slot, best.score)

        if send_link is not None:
            if progress is not None:
                progress.beat(slot, r0, "send")
            with recorder.span("d2h"):
                send_link.send_border(result.h_right, result.e_right,
                                      prev_right_last, timeout=border_timeout_s)
            if instruments is not None:
                instruments.border_sent(
                    result.h_right.nbytes + result.e_right.nbytes + HEADER_BYTES)
            prev_right_last = int(result.h_right[-1])
        if checkpoints is not None and (r1 == m or r1 % ckpt_stride == 0):
            if progress is not None:
                progress.beat(slot, r0, "checkpoint")
            with recorder.span("checkpoint"):
                checkpoints.publish(
                    slot, r1, h_top, f_top, best,
                    pruner.blocks_checked if pruner is not None else 0,
                    pruner.blocks_pruned if pruner is not None else 0)
            if instruments is not None:
                instruments.checkpoint_published()
        if progress is not None:
            progress.beat(slot, r1, "idle")
    if progress is not None:
        progress.beat(slot, m, "done")
    return SlabOutcome(
        best=best,
        blocks_checked=pruner.blocks_checked if pruner is not None else 0,
        blocks_pruned=pruner.blocks_pruned if pruner is not None else 0,
        blocks_skipped_band=blocks_skipped_band,
        blocks_narrow=blocks_narrow,
        blocks_wide=blocks_wide,
        dtype_escalations=dtype_escalations,
    )


def _worker(
    worker_id: int,
    a_codes: np.ndarray,
    b_slab: np.ndarray,
    slab: Slab,
    scoring: Scoring,
    block_rows: int,
    recv_link,
    send_link,
    result_queue,
    origin: float,
    border_timeout_s: float,
    fault_block: int | None,
    kernel: str,
    n_cols: int | None = None,
    scoreboard: SharedScoreboard | None = None,
    progress: ProgressBoard | None = None,
    collect_metrics: bool = False,
    resume_state: tuple | None = None,
    checkpoints: CheckpointArea | None = None,
    checkpoint_blocks: int = 1,
    band_half_width: int | None = None,
    dp: DpPolicy | None = None,
) -> None:
    """One-shot slab worker (runs in a child process).

    Result message layout (parsed positionally by :func:`collect_results`,
    which reads ``msg[0]`` as the key and ``msg[-2]`` as the error):
    ``(worker_id, score, row, col, blocks_checked, blocks_pruned,
    blocks_skipped_band, blocks_narrow, blocks_wide, dtype_escalations,
    metrics_snapshot, err, records)``.
    ``metrics_snapshot`` is the
    worker registry's :meth:`~repro.obs.registry.MetricsRegistry.snapshot`
    (``None`` unless *collect_metrics*) — a plain dict, so it crosses any
    start-method's queue; the parent merges it into its own registry.

    *resume_state* is ``(start_row, h_init, f_init)`` when this attempt
    resumes from a checkpoint; *checkpoints* is the shared checkpoint
    area this worker publishes into (see :func:`sweep_slab`).
    """
    recorder = WallClockRecorder(origin)
    registry = MetricsRegistry() if collect_metrics else None
    instruments = (EngineInstruments(registry, f"worker{worker_id}")
                   if registry is not None else None)
    pruner = (BlockPruner(match=scoring.match)
              if scoreboard is not None else None)
    start_row, h_init, f_init = (resume_state if resume_state is not None
                                 else (0, None, None))
    try:
        if kernel == "compiled":
            # JIT-warm before the first block so compile time lands in an
            # explicit tracer span instead of the first compute span (and
            # hence the block_sweep_seconds histogram / progress rates).
            if progress is not None:
                progress.beat(worker_id, start_row, "warmup")
            with recorder.span("warmup"):
                compiled_warmup()
        outcome = sweep_slab(a_codes, b_slab, slab, scoring, block_rows,
                             recv_link, send_link, recorder, border_timeout_s,
                             fault_block, kernel, n_cols=n_cols,
                             pruner=pruner, scoreboard=scoreboard,
                             slot=worker_id, instruments=instruments,
                             progress=progress,
                             start_row=start_row, h_init=h_init, f_init=f_init,
                             checkpoints=checkpoints,
                             checkpoint_blocks=checkpoint_blocks,
                             band_half_width=band_half_width, dp=dp)
        best = outcome.best
        result_queue.put(
            (worker_id, best.score, best.row, best.col,
             outcome.blocks_checked, outcome.blocks_pruned,
             outcome.blocks_skipped_band,
             outcome.blocks_narrow, outcome.blocks_wide,
             outcome.dtype_escalations,
             registry.snapshot() if registry is not None else None,
             None, recorder.records))
    except Exception as exc:  # surface the failure to the parent
        result_queue.put(
            (worker_id, 0, -1, -1, 0, 0, 0, 0, 0, 0,
             registry.snapshot() if registry is not None else None,
             repr(exc), recorder.records))
    finally:
        if scoreboard is not None:
            scoreboard.close()
        if progress is not None:
            progress.close()
        if checkpoints is not None:
            checkpoints.close()


def _validate_args(a_codes, b_codes, workers, block_rows, transport, weights,
                   capacity, kernel="scalar") -> None:
    if workers <= 0:
        raise ConfigError("workers must be positive")
    if block_rows <= 0:
        raise ConfigError("block_rows must be positive")
    if transport not in TRANSPORTS:
        raise ConfigError(f"unknown transport {transport!r}; expected one of {TRANSPORTS}")
    validate_kernel(kernel)
    if capacity <= 0:
        raise ConfigError("capacity must be positive")
    if weights is not None and len(weights) != workers:
        raise ConfigError("weights length must equal the worker count")
    m, n = int(a_codes.size), int(b_codes.size)
    if m == 0 or n == 0:
        raise ConfigError("sequences must be non-empty")
    if n < workers:
        raise ConfigError("matrix narrower than the worker count")


def collect_results(
    result_queue,
    procs: Sequence,
    pending: set,
    deadline: float,
    describe=lambda key: f"worker {key}",
):
    """Drain one result message per pending key, robustly.

    Polls the queue, watching the worker processes for silent deaths; a
    key whose process dies without reporting (grace period for in-flight
    messages) becomes a failure.  Returns ``(messages, failures)`` where
    *messages* maps key -> the raw queue message and *failures* is a list
    of ``(key, description, kind)`` tuples in key order, with *kind* one
    of ``"died"`` (process gone without a result), ``"error"`` (worker
    reported an exception) or ``"timeout"`` (no result by *deadline*).
    The kind is what recovery keys off: only *died* workers are dropped
    from the partition.  Shared by the one-shot chain and the persistent
    pool.

    An already-expired *deadline* is handled deterministically: results
    that are sitting in the queue are still drained (``get_nowait``) and
    the blocking get's timeout is clamped to a small positive floor, so a
    late caller never passes a negative timeout down to the queue and
    never discards a result that had in fact arrived in time.
    """
    messages: dict = {}
    failures: list[tuple[int, str, str]] = []
    dead_since: dict = {}
    while pending:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            # Deadline elapsed: drain whatever already arrived, then
            # declare the rest timed out — deterministic even when the
            # caller's deadline was already in the past on entry.
            while pending:
                try:
                    msg = result_queue.get_nowait()
                except queue_mod.Empty:
                    break
                key, err = msg[0], msg[-2]
                if key not in pending:
                    continue
                pending.discard(key)
                if err is not None:
                    failures.append((key, f"{describe(key)}: {err}", "error"))
                else:
                    messages[key] = msg
            for key in sorted(pending):
                failures.append(
                    (key, f"{describe(key)}: no result before the timeout",
                     "timeout"))
            break
        try:
            msg = result_queue.get(timeout=min(0.2, max(0.01, remaining)))
        except queue_mod.Empty:
            now = time.monotonic()
            newly_failed = []
            for key in sorted(pending):
                proc = procs[key]
                if proc.is_alive():
                    dead_since.pop(key, None)
                    continue
                first_seen = dead_since.setdefault(key, now)
                if now - first_seen >= _DEATH_GRACE_S:
                    newly_failed.append(key)
            for key in newly_failed:
                pending.discard(key)
                failures.append(
                    (key, f"{describe(key)}: died with exit code "
                          f"{procs[key].exitcode} before reporting a result",
                     "died"))
            if failures and not pending:
                break
            continue
        key, err, payload = msg[0], msg[-2], msg
        if key not in pending:
            continue  # stale message from an earlier, failed run
        pending.discard(key)
        if err is not None:
            failures.append((key, f"{describe(key)}: {err}", "error"))
        else:
            messages[key] = payload
    return messages, sorted(failures)


def checkpoint_history_for(workers: int, capacity: int,
                           checkpoint_blocks: int) -> int:
    """Ring depth that keeps the laggard's newest row in every leader's ring.

    Adjacent slabs drift by at most *capacity* block rows (the border
    ring's depth bounds how far ahead a producer can run), so across a
    *workers*-long chain the spread is ``(workers - 1) * capacity`` block
    rows — ``ceil`` of that in checkpoint-ladder units, plus slack for
    the final-row entry and one in-flight publish.
    """
    per_link = -(-capacity // max(1, checkpoint_blocks))  # ceil division
    return max(4, (workers - 1) * per_link + 2)


def _run_attempt(
    ctx,
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    slabs: Sequence[Slab],
    *,
    block_rows: int,
    transport: str,
    capacity: int,
    timeout_s: float,
    border_timeout_s: float,
    kernel: str,
    origin: float,
    scoreboard: SharedScoreboard | None,
    checkpoints: CheckpointArea | None,
    checkpoint_blocks: int,
    collect_metrics: bool,
    metrics: MetricsRegistry | None,
    heartbeat_s: float | None,
    on_stall,
    want_progress: bool,
    resume: tuple | None,
    fault: tuple[int, int] | None,
    band_half_width: int | None = None,
    dp: DpPolicy | None = None,
    events=None,
    timeline=None,
    attempt: int = 0,
):
    """Run the slab workers once over ``[resume_row, m)``.

    One *attempt* of :func:`align_multi_process`: fresh result queue,
    border links and progress board (so no message from a previous,
    failed attempt can leak in), workers started over the given *slabs*,
    results collected under the attempt's deadline, everything but the
    cross-attempt state (scoreboard, checkpoint area) torn down.

    Returns ``(messages, failures, progress_rows)`` where *progress_rows*
    is the last completed matrix row per worker as the attempt ended —
    the supervisor's source for ``rows_recomputed``.
    """
    workers = len(slabs)
    n = int(b_codes.size)
    result_queue = ctx.Queue()
    rings: list[ShmRing] = []
    links: list = []
    parent_conns: list = []
    if transport == "shm":
        for g in range(workers - 1):
            ring = ShmRing(ctx, capacity, block_rows, label=f"border{g}->{g + 1}")
            rings.append(ring)
            links.append(ring)
    else:
        for g in range(workers - 1):
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            parent_conns.extend([recv_conn, send_conn])
            links.append(PipeLink(recv_conn, send_conn, label=f"border{g}->{g + 1}"))

    progress = (ProgressBoard(workers, label="chain-progress")
                if want_progress else None)
    if timeline is not None and progress is not None:
        # Workers beat *absolute* matrix rows (resume attempts start
        # partway up), so the per-worker target is simply m.
        timeline.attach(progress, rows=int(a_codes.size),
                        cols_per_worker=[s.cols for s in slabs],
                        attempt=attempt)
    procs: list = []
    monitor = None
    progress_rows: list[int] = [0] * workers
    clean_exit = False
    try:
        for g, slab in enumerate(slabs):
            recv_link = links[g - 1] if g > 0 else None
            send_link = links[g] if g < workers - 1 else None
            fault_block = fault[1] if fault is not None and fault[0] == g else None
            resume_state = None
            if resume is not None:
                row, h_full, f_full = resume
                resume_state = (row, h_full[slab.col0:slab.col1].copy(),
                                f_full[slab.col0:slab.col1].copy())
            proc = ctx.Process(
                target=_worker,
                args=(g, a_codes, b_codes[slab.col0:slab.col1].copy(), slab,
                      scoring, block_rows, recv_link, send_link, result_queue,
                      origin, border_timeout_s, fault_block, kernel,
                      n, scoreboard, progress, collect_metrics,
                      resume_state, checkpoints, checkpoint_blocks,
                      band_half_width, dp),
                name=f"mgsw-worker-{g}",
            )
            proc.start()
            procs.append(proc)
            if events is not None:
                events.emit("worker_spawn", worker=g, attempt=attempt,
                            pid=proc.pid, slab_cols=slab.cols)

        describe = lambda key: f"worker {key}"  # noqa: E731
        if progress is not None and heartbeat_s is not None:
            # With a checkpoint area armed, a hard stall (a worker wedged
            # well past the soft threshold) is escalated to a kill so the
            # ordinary death path — and recovery — takes over.
            on_hard = None
            hard_stall_s = None
            if checkpoints is not None:
                hard_stall_s = 2.0 * heartbeat_s

                def on_hard(report, _procs=procs):
                    proc = _procs[report.worker]
                    if proc.is_alive():
                        proc.kill()

            monitor = HeartbeatMonitor(progress, stall_after_s=heartbeat_s,
                                       on_stall=on_stall,
                                       hard_stall_s=hard_stall_s,
                                       on_hard_stall=on_hard, metrics=metrics,
                                       events=events)
            monitor.start()
            describe = lambda key: f"worker {key} ({monitor.describe(key)})"  # noqa: E731

        deadline = time.monotonic() + timeout_s
        messages, failures = collect_results(
            result_queue, procs, set(range(workers)), deadline,
            describe=describe)
        clean_exit = not failures
        return messages, failures, progress_rows
    finally:
        if monitor is not None:
            monitor.stop()
        for proc in procs:
            # On the failure path neighbours may be blocked on a border
            # that will never arrive — don't wait out their timeouts.
            if not clean_exit and proc.is_alive():
                proc.terminate()
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join()
        if progress is not None:
            if timeline is not None:
                # Final sample before the segment goes away: the last
                # frame records how far the attempt actually got.
                timeline.detach()
            # Sample after every worker stopped: the honest "how far did
            # each slab get" record the supervisor charges recomputation to.
            for sample in progress.snapshot():
                progress_rows[sample.worker] = sample.rows_done
            progress.unlink()
        result_queue.close()
        for conn in parent_conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for ring in rings:
            ring.unlink()


def align_multi_process(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    workers: int = 2,
    block_rows: int = 512,
    timeout_s: float = 300.0,
    transport: str = "shm",
    start_method: str | None = None,
    weights: Sequence[float] | None = None,
    capacity: int = 4,
    border_timeout_s: float = 60.0,
    tracer: Tracer | None = None,
    kernel: str = "scalar",
    pruning: bool = False,
    metrics: MetricsRegistry | None = None,
    heartbeat_s: float | None = None,
    on_stall=None,
    max_restarts: int = 0,
    restart_backoff_s: float = 0.5,
    retry: RetryPolicy | None = None,
    checkpoint_blocks: int = 4,
    mode: str = "exact",
    band_width: int = DEFAULT_BAND_WIDTH,
    xdrop_x: int = DEFAULT_XDROP_X,
    dp_dtype: str = "auto",
    events=None,
    timeline=None,
    _fault: tuple[int, int] | None = None,
    _finalize_metrics: bool = True,
) -> ProcessChainResult:
    """Exact SW across *workers* real processes (see module docstring).

    Parameters mirror the simulated chain where they exist there:
    *weights* sizes slabs proportionally to per-worker speed (equal by
    default, via :func:`~repro.multigpu.partition.proportional_partition`),
    *capacity* is the border ring depth, *transport* picks shared memory
    or pipes, *start_method* overrides the fork-else-spawn default,
    *kernel* selects the scalar or batched block sweep (bit-identical;
    see :func:`sweep_slab`).  *pruning* enables distributed block pruning
    against a chain-wide :class:`~repro.comm.scoreboard.SharedScoreboard`
    (exact: scores and end cells are unchanged; see INTERNALS.md
    section 7).  Pass a :class:`~repro.device.trace.Tracer`
    to collect per-worker wall-clock intervals (one is created on the
    result regardless).

    Telemetry (INTERNALS.md section 8): pass a
    :class:`~repro.obs.registry.MetricsRegistry` to collect per-worker
    counters/histograms (spawn-safe snapshot-and-merge); *heartbeat_s*
    turns on the shared-memory progress board plus a parent-side
    :class:`~repro.obs.heartbeat.HeartbeatMonitor` that flags workers
    silent beyond that many seconds (calling *on_stall* per episode) and
    enriches worker-death errors with the victim's last completed row
    and phase.

    Live telemetry (INTERNALS.md section 13): *events* accepts an
    :class:`~repro.obs.events.EventJournal` — the supervisor journals
    ``run_start``/``run_end``, per-worker ``worker_spawn``/``worker_death``,
    recovery ``checkpoint``/``restart_attempt`` and summary
    ``dtype_escalation`` records, and the heartbeat watchdog adds
    ``stall`` events.  *timeline* accepts a
    :class:`~repro.obs.timeseries.TimeSeriesSampler`; it is attached to
    each attempt's progress board (the board is created whenever a
    sampler is armed, even without *heartbeat_s*) and detached with a
    final frame as the attempt ends, so one ring spans every recovery
    attempt.

    Recovery (INTERNALS.md section 9): with ``max_restarts > 0`` (or an
    explicit :class:`~repro.multigpu.checkpoint.RetryPolicy` via *retry*)
    workers checkpoint their block-row state every *checkpoint_blocks*
    block rows into a shared-memory
    :class:`~repro.multigpu.checkpoint.CheckpointArea`, and a failed
    attempt is resumed instead of raised: workers that *died* are dropped
    from the partition (:func:`~repro.multigpu.partition.surviving_partition`),
    the survivors restart from the newest matrix row every slab had
    checkpointed, and the run only raises once the policy is exhausted or
    the failure is classified permanent.  Each attempt gets the full
    *timeout_s* budget.  Recovery is visible on the result
    (``restarts``/``rows_recomputed``), in the metrics registry
    (``worker_restarts``/``rows_recomputed``) and as supervisor
    ``recovery`` spans on the tracer.  When *heartbeat_s* is also set,
    workers silent for twice that long are killed by the watchdog so
    hard stalls enter the same recovery path as crashes.

    Heuristic tier (INTERNALS.md section 10): *mode* selects ``"exact"``
    (default), ``"banded"`` (slab block rows that miss the static band
    ``|j - i| <= band_width`` are skipped outright, compounding with
    pruning), ``"xdrop"`` (origin-anchored X-drop extension with
    threshold *xdrop_x*; the sequential frontier runs inline in the
    parent — no workers are spawned), or ``"auto"`` (banded first, exact
    re-run when the confidence check fails; the result's
    ``tier``/``escalated`` fields say which tier answered).  Heuristic
    scores never exceed the exact score.

    DP dtype (INTERNALS.md section 11): *dp_dtype* selects the
    kernel-internal compute dtype — ``"auto"`` (default) resolves to the
    narrowest policy guaranteed overflow-free for the widest slab of the
    current attempt, explicit narrow names escalate overflowing blocks
    back to int32 per block.  Scores are bit-identical either way, and
    the int32 border wire format is unchanged.

    Raises :class:`ConfigError` on bad parameters and ``RuntimeError``
    when a worker fails or the run times out.  ``_fault`` is a test-only
    hook: ``(worker_id, block_index)`` crashes that worker at that block
    (first attempt only, so recovery tests observe exactly one crash).
    """
    _validate_args(a_codes, b_codes, workers, block_rows, transport, weights,
                   capacity, kernel)
    validate_mode(mode)
    validate_dp_dtype(dp_dtype)
    if band_width < 0:
        raise ConfigError("band_width must be >= 0")
    if xdrop_x <= 0:
        raise ConfigError("xdrop_x must be positive")
    if mode == "xdrop":
        # The X-drop frontier is one sequential anti-diagonal sweep with
        # no block decomposition to distribute — it runs inline in the
        # parent (a documented scheduling decision; no workers spawn).
        if events is not None and _finalize_metrics:
            events.emit("run_start", backend="process", mode="xdrop",
                        rows=int(a_codes.size), cols=int(b_codes.size),
                        workers=0)
        t0 = time.perf_counter()
        xo = xdrop_score(a_codes, b_codes, scoring, xdrop_x)
        wall = time.perf_counter() - t0
        result = ProcessChainResult(
            best=xo.best, wall_time_s=wall,
            cells=int(a_codes.size) * int(b_codes.size),
            workers=0, partition=(), transport=transport,
            start_method=pick_context(start_method).get_start_method(),
            tracer=tracer if tracer is not None else Tracer(),
            kernel=kernel, mode="xdrop", tier="xdrop")
        if metrics is not None and _finalize_metrics:
            finalize_run_metrics(
                metrics, backend="process", blocks_checked=0,
                blocks_pruned=0, wall_time_s=wall, gcups=result.gcups)
        if events is not None and _finalize_metrics:
            events.emit("run_end", status="ok", score=int(xo.best.score),
                        wall_time_s=round(wall, 6), restarts=0, tier="xdrop")
        return result
    if mode == "auto":
        return _align_process_auto(
            a_codes, b_codes, scoring,
            workers=workers, block_rows=block_rows, timeout_s=timeout_s,
            transport=transport, start_method=start_method, weights=weights,
            capacity=capacity, border_timeout_s=border_timeout_s,
            tracer=tracer, kernel=kernel, pruning=pruning, metrics=metrics,
            heartbeat_s=heartbeat_s, on_stall=on_stall,
            max_restarts=max_restarts, restart_backoff_s=restart_backoff_s,
            retry=retry, checkpoint_blocks=checkpoint_blocks,
            band_width=band_width, dp_dtype=dp_dtype,
            events=events, timeline=timeline)
    band_half_width = band_width if mode == "banded" else None
    if retry is None:
        retry = RetryPolicy(max_restarts=max_restarts,
                            backoff_s=restart_backoff_s)
    m, n = int(a_codes.size), int(b_codes.size)
    weights_now = list(weights) if weights is not None else [1.0] * workers
    slabs = proportional_partition(n, weights_now)
    ctx = pick_context(start_method)
    result_tracer = tracer if tracer is not None else Tracer()
    recovery = retry.max_restarts > 0
    scoreboard = SharedScoreboard(workers) if pruning else None
    checkpoints: CheckpointArea | None = None

    restarts = 0
    rows_recomputed_total = 0
    resume: tuple | None = None          # (row, h_full, f_full)
    base_best = BestCell.none()
    base_checked = base_pruned = 0
    dp_name = "int32"
    total_narrow = total_wide = total_esc = 0
    if events is not None and _finalize_metrics:
        events.emit("run_start", backend="process", mode=mode,
                    rows=m, cols=n, workers=workers, kernel=kernel,
                    transport=transport, pruning=pruning,
                    max_restarts=retry.max_restarts)
    origin = time.perf_counter()
    try:
        while True:
            # The DP dtype policy is resolved per attempt against the
            # *current* partition's widest slab — recovery can widen the
            # surviving slabs, and ``"auto"`` must stay overflow-free.
            dp_policy = resolve_dp_dtype(
                dp_dtype, scoring,
                block_cols=max(s.cols for s in slabs), m=m, n=n, local=True)
            dp_name = dp_policy.name
            dp = dp_policy if dp_policy.narrow else None
            if recovery:
                checkpoints = CheckpointArea(
                    [s.cols for s in slabs],
                    history=checkpoint_history_for(len(slabs), capacity,
                                                   checkpoint_blocks),
                    label="chain-ckpt")
            messages, failures, progress_rows = _run_attempt(
                ctx, a_codes, b_codes, scoring, slabs,
                block_rows=block_rows, transport=transport, capacity=capacity,
                timeout_s=timeout_s, border_timeout_s=border_timeout_s,
                kernel=kernel, origin=origin, scoreboard=scoreboard,
                checkpoints=checkpoints, checkpoint_blocks=checkpoint_blocks,
                collect_metrics=metrics is not None, metrics=metrics,
                heartbeat_s=heartbeat_s, on_stall=on_stall,
                want_progress=(heartbeat_s is not None or recovery
                               or timeline is not None),
                resume=resume,
                fault=_fault if restarts == 0 else None,
                band_half_width=band_half_width, dp=dp,
                events=events, timeline=timeline, attempt=restarts)

            # Fold whatever this attempt reported — survivors of a failed
            # attempt still deliver honest trace records and counters.
            attempt_best = BestCell.none()
            worker_blocks = []
            attempt_skipped_band = 0
            for g in sorted(messages):
                (_wid, score, row, col, checked, pruned, skipped_band,
                 narrow, wide, esc, msnap, _err, records) = messages[g]
                merge_wall_records(result_tracer, f"worker{g}", records)
                if metrics is not None and msnap is not None:
                    metrics.merge_snapshot(msnap)
                worker_blocks.append((int(checked), int(pruned)))
                attempt_skipped_band += int(skipped_band)
                total_narrow += int(narrow)
                total_wide += int(wide)
                total_esc += int(esc)
                cell = BestCell(score, row, col)
                if cell.better_than(attempt_best):
                    attempt_best = cell

            if not failures:
                wall = time.perf_counter() - origin
                best = (attempt_best if attempt_best.better_than(base_best)
                        else base_best)
                result = ProcessChainResult(
                    best=best, wall_time_s=wall, cells=m * n,
                    workers=len(slabs),
                    partition=tuple(slabs), transport=transport,
                    start_method=ctx.get_start_method(), tracer=result_tracer,
                    kernel=kernel,
                    pruning=pruning,
                    blocks_checked=base_checked
                    + sum(c for c, _ in worker_blocks),
                    blocks_pruned=base_pruned
                    + sum(p for _, p in worker_blocks),
                    worker_blocks=tuple(worker_blocks),
                    restarts=restarts,
                    rows_recomputed=rows_recomputed_total,
                    mode=mode,
                    tier="banded" if mode == "banded" else "exact",
                    blocks_skipped_band=attempt_skipped_band,
                    dp_dtype=dp_name,
                    blocks_narrow=total_narrow,
                    blocks_wide=total_wide,
                    dtype_escalations=total_esc,
                )
                if metrics is not None and _finalize_metrics:
                    finalize_run_metrics(
                        metrics, backend="process",
                        blocks_checked=result.blocks_checked,
                        blocks_pruned=result.blocks_pruned,
                        wall_time_s=wall, gcups=result.gcups)
                if events is not None:
                    if total_esc > 0:
                        events.emit("dtype_escalation", dp_dtype=dp_name,
                                    escalations=total_esc,
                                    blocks_narrow=total_narrow,
                                    blocks_wide=total_wide)
                    if _finalize_metrics:
                        events.emit("run_end", status="ok",
                                    score=int(best.score),
                                    wall_time_s=round(wall, 6),
                                    restarts=restarts, tier=result.tier)
                return result

            # -- failed attempt ------------------------------------------------
            if events is not None:
                for key, desc, kind in failures:
                    events.emit("worker_death", worker=key, attempt=restarts,
                                kind=kind, detail=desc)
            descs = [desc for _key, desc, _kind in failures]
            if (not recovery or restarts >= retry.max_restarts
                    or any(retry.is_permanent(d) for d in descs)):
                if events is not None and _finalize_metrics:
                    events.emit("run_end", status="failed",
                                restarts=restarts,
                                detail="; ".join(descs))
                raise RuntimeError("; ".join(descs))

            fail_t = time.perf_counter() - origin
            died = [key for key, _desc, kind in failures if kind == "died"]
            if died:
                # PartitionError here means no survivors (or the matrix
                # cannot host them) — that is a permanent failure too.
                try:
                    slabs, weights_now = surviving_partition(
                        n, weights_now, died)
                except Exception as exc:
                    raise RuntimeError(
                        "; ".join(descs)
                        + f"; recovery impossible: {exc!r}") from None

            resume_row = resume[0] if resume is not None else 0
            r_new = checkpoints.consistent_row()
            if events is not None:
                events.emit("checkpoint", attempt=restarts,
                            consistent_row=r_new)
            ckpt_best = checkpoints.best_overall()
            if ckpt_best.better_than(base_best):
                base_best = ckpt_best
            if r_new > resume_row:
                h_full, f_full, _b, checked_at, pruned_at = \
                    checkpoints.assemble(r_new)
                base_checked += checked_at
                base_pruned += pruned_at
                resume = (r_new, h_full, f_full)
                resume_row = r_new
            checkpoints.unlink()
            checkpoints = None

            rows_recomputed = sum(
                max(0, rows_done - resume_row) for rows_done in progress_rows)
            rows_recomputed_total += rows_recomputed
            restarts += 1
            if metrics is not None:
                record_recovery(metrics, backend="process",
                                rows_recomputed=rows_recomputed)
            if events is not None:
                events.emit("restart_attempt", attempt=restarts,
                            resume_row=resume_row,
                            workers_left=len(slabs),
                            rows_recomputed=rows_recomputed)
            time.sleep(retry.delay_s(restarts - 1))
            result_tracer.record("supervisor", "recovery", fail_t,
                                 time.perf_counter() - origin)
    finally:
        if scoreboard is not None:
            scoreboard.unlink()
        if checkpoints is not None:
            checkpoints.unlink()


def _align_process_auto(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    band_width: int,
    metrics: MetricsRegistry | None,
    **kwargs,
) -> ProcessChainResult:
    """``mode="auto"`` for the process chain: banded heuristic first, exact
    re-run only when :func:`~repro.sw.xdrop.assess_heuristic` rejects the
    heuristic answer.  The reported wall time sums the tiers actually run;
    ``tier``/``escalated`` say which one answered."""
    from dataclasses import replace as _replace

    events = kwargs.get("events")
    m, n = int(a_codes.size), int(b_codes.size)
    if events is not None:
        events.emit("run_start", backend="process", mode="auto",
                    rows=m, cols=n, workers=kwargs.get("workers", 2),
                    band_width=band_width)
    heur = align_multi_process(
        a_codes, b_codes, scoring, mode="banded", band_width=band_width,
        metrics=metrics, _finalize_metrics=False, **kwargs)
    decision = assess_heuristic(heur.best, m, n, scoring,
                                band_half_width=band_width)
    if decision.confident:
        result = _replace(heur, mode="auto", tier="banded")
    else:
        if events is not None:
            events.emit("heuristic_escalation", tier="exact",
                        heur_score=int(heur.best.score),
                        band_width=band_width,
                        reason="confidence check rejected the banded score")
        exact = align_multi_process(
            a_codes, b_codes, scoring, mode="exact",
            metrics=metrics, _finalize_metrics=False, **kwargs)
        result = _replace(
            exact,
            wall_time_s=heur.wall_time_s + exact.wall_time_s,
            mode="auto", tier="exact", escalated=True)
    if metrics is not None:
        record_heuristic(metrics, backend="process",
                         tier=result.tier, escalated=result.escalated)
        finalize_run_metrics(
            metrics, backend="process",
            blocks_checked=result.blocks_checked,
            blocks_pruned=result.blocks_pruned,
            wall_time_s=result.wall_time_s, gcups=result.gcups)
    if events is not None:
        events.emit("run_end", status="ok", score=int(result.best.score),
                    wall_time_s=round(result.wall_time_s, 6),
                    restarts=result.restarts, tier=result.tier,
                    escalated=result.escalated)
    return result
