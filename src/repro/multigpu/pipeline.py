"""End-to-end convenience: distributed score pass + exact traceback.

The paper's system runs stage 1 (the score pass, >99% of the work at
megabase scale) across the GPU chain, then retrieves the alignment with
the cheaper host-side stages.  :func:`align_and_trace` packages that flow:

1. stage 1 on the simulated multi-GPU chain (exact score + end point,
   virtual-clock GCUPS),
2. stage 2's anchored reverse pass for the start point,
3. stage 3's Myers-Miller (optionally crossing-point partitioned)
   reconstruction, validated by re-scoring,
4. a consistency check that the chain and the host stages agree on the
   score and end point — any divergence raises, because it would mean a
   border-exchange bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..device.spec import DeviceSpec
from ..errors import AlignmentError
from ..seq.scoring import Scoring
from ..sw.alignment import Alignment
from ..sw.stages import align_local, align_local_partitioned, stage1_score
from .chain import ChainConfig, ChainResult, MatrixWorkload, MultiGpuChain


@dataclass(frozen=True)
class TracedResult:
    """Distributed score run plus the reconstructed alignment."""

    chain: ChainResult
    alignment: Alignment

    @property
    def score(self) -> int:
        return self.chain.score

    @property
    def gcups(self) -> float:
        return self.chain.gcups


def align_and_trace(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    devices: Sequence[DeviceSpec],
    *,
    config: ChainConfig | None = None,
    partitioned: bool = False,
    special_interval: int = 512,
) -> TracedResult:
    """Run the full pipeline (see module docstring).

    ``partitioned=True`` uses the crossing-point-partitioned traceback
    (bounded working set); otherwise the monolithic stage-2/3 path.
    """
    chain = MultiGpuChain(devices, config=config)
    chain_result = chain.run(MatrixWorkload(a_codes, b_codes, scoring))

    if chain_result.score <= 0:
        empty = Alignment(score=0, ops="", start_i=0, end_i=0, start_j=0, end_j=0)
        return TracedResult(chain=chain_result, alignment=empty)

    # Cross-check the distributed stage 1 against the host sweep before
    # spending traceback time on it.
    host = stage1_score(a_codes, b_codes, scoring)
    if (host.score, host.end_i, host.end_j) != (
        chain_result.score, chain_result.best.row, chain_result.best.col
    ):
        raise AlignmentError(
            "multi-GPU chain and host stage 1 disagree: "
            f"chain=({chain_result.score}, {chain_result.best.row}, "
            f"{chain_result.best.col}) host=({host.score}, {host.end_i}, {host.end_j})"
        )

    if partitioned:
        alignment = align_local_partitioned(
            a_codes, b_codes, scoring, special_interval=special_interval
        )
    else:
        alignment = align_local(a_codes, b_codes, scoring)
    alignment.validate(a_codes, b_codes, scoring)
    if alignment.score != chain_result.score:
        raise AlignmentError(
            f"traceback produced score {alignment.score}, chain reported "
            f"{chain_result.score}"
        )
    return TracedResult(chain=chain_result, alignment=alignment)
