"""Persistent slab-worker pool: amortise process startup across runs.

:func:`~repro.multigpu.procchain.align_multi_process` forks (or spawns) a
fresh set of slab workers per comparison — fine for one megabase matrix,
wasteful for batch workloads that push many pairs through the same
machine (:mod:`repro.multigpu.batch` campaigns, clustering sweeps).  A
:class:`WorkerPool` starts the workers and the shared-memory border rings
**once** and reuses them for every subsequent comparison:

* each worker blocks on its private task queue between comparisons;
* the border rings (one :class:`~repro.comm.shmring.ShmRing` per slab
  boundary, or a pipe pair under ``transport="pipe"``) are created at
  pool construction, sized for the pool's maximum block height, and drain
  back to empty at the end of every successful comparison, so no per-run
  setup or teardown remains on the hot path;
* slab widths are proportional to the pool's *weights* (heterogeneous
  worker speeds), recomputed per comparison for its matrix width.

Failure semantics: any worker error or death marks the pool **broken**
(the transports' cursors can no longer be trusted) and raises
``RuntimeError``; a broken or closed pool refuses further work.  Use the
pool as a context manager — ``close()`` always stops the workers and
unlinks the shared memory.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from ..comm.progress import ProgressBoard
from ..comm.scoreboard import SharedScoreboard
from ..comm.shmring import ShmRing
from ..device.trace import Tracer, WallClockRecorder, merge_wall_records
from ..errors import ConfigError
from ..obs.heartbeat import HeartbeatMonitor
from ..obs.instruments import EngineInstruments, finalize_run_metrics
from ..obs.registry import MetricsRegistry
from ..seq.scoring import Scoring
from ..sw.batched import KernelWorkspace, validate_kernel
from ..sw.kernel import BestCell
from ..sw.pruning import BlockPruner
from .partition import proportional_partition
from .procchain import (
    TRANSPORTS,
    PipeLink,
    ProcessChainResult,
    collect_results,
    pick_context,
    sweep_slab,
)


def _pool_worker(worker_id, task_queue, result_queue, recv_link, send_link,
                 scoreboard, progress=None):
    """Long-lived slab worker: one task per comparison, ``None`` to exit.

    Result message layout matches the one-shot worker's (see
    :func:`~repro.multigpu.procchain._worker`): the metrics snapshot and
    counters sit before the error slot because :func:`collect_results`
    reads ``msg[-2]`` as err.  A fresh per-comparison registry keeps the
    snapshots additive — the parent merges them, so pool-lifetime totals
    still accumulate there.
    """
    workspace = KernelWorkspace()  # persists across comparisons
    while True:
        task = task_queue.get()
        if task is None:
            break
        (a_codes, b_slab, slab, scoring, block_rows, origin,
         border_timeout_s, kernel, n_cols, pruning, collect_metrics) = task
        recorder = WallClockRecorder(origin)
        registry = MetricsRegistry() if collect_metrics else None
        instruments = (EngineInstruments(registry, f"worker{worker_id}")
                       if registry is not None else None)
        # Fresh pruner per comparison: counters must not leak across runs
        # (the parent resets the scoreboard before enqueueing the tasks).
        pruner = BlockPruner(match=scoring.match) if pruning else None
        try:
            outcome = sweep_slab(a_codes, b_slab, slab, scoring, block_rows,
                                 recv_link, send_link, recorder, border_timeout_s,
                                 kernel=kernel, workspace=workspace,
                                 n_cols=n_cols,
                                 pruner=pruner,
                                 scoreboard=scoreboard if pruning else None,
                                 slot=worker_id, instruments=instruments,
                                 progress=progress)
            best = outcome.best
            result_queue.put(
                (worker_id, best.score, best.row, best.col,
                 outcome.blocks_checked, outcome.blocks_pruned,
                 registry.snapshot() if registry is not None else None,
                 None, recorder.records))
        except Exception as exc:
            result_queue.put(
                (worker_id, 0, -1, -1, 0, 0,
                 registry.snapshot() if registry is not None else None,
                 repr(exc), recorder.records))
            break  # transport state is suspect; die and let the pool break
    if progress is not None:
        progress.close()


class WorkerPool:
    """A fixed set of live slab workers serving many comparisons.

    Parameters
    ----------
    workers:
        Number of slab processes (chain length).
    weights:
        Relative per-worker speeds for proportional slab widths
        (default: equal).
    max_block_rows:
        Largest ``block_rows`` any comparison may use — it sizes the
        shared-memory ring slots once, at construction.
    capacity, transport, start_method, border_timeout_s:
        As in :func:`~repro.multigpu.procchain.align_multi_process`.
    """

    def __init__(
        self,
        workers: int,
        *,
        weights: Sequence[float] | None = None,
        max_block_rows: int = 2048,
        capacity: int = 4,
        transport: str = "shm",
        start_method: str | None = None,
        border_timeout_s: float = 60.0,
    ) -> None:
        if workers <= 0:
            raise ConfigError("workers must be positive")
        if max_block_rows <= 0:
            raise ConfigError("max_block_rows must be positive")
        if capacity <= 0:
            raise ConfigError("capacity must be positive")
        if transport not in TRANSPORTS:
            raise ConfigError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}")
        if weights is not None and len(weights) != workers:
            raise ConfigError("weights length must equal the worker count")

        self.workers = workers
        self.weights = list(weights) if weights is not None else [1.0] * workers
        self.max_block_rows = max_block_rows
        self.transport = transport
        self.border_timeout_s = border_timeout_s
        self._ctx = pick_context(start_method)
        self.start_method = self._ctx.get_start_method()
        self._broken = False
        self._closed = False

        self._rings: list[ShmRing] = []
        links: list = []
        self._parent_conns: list = []
        if transport == "shm":
            for g in range(workers - 1):
                ring = ShmRing(self._ctx, capacity, max_block_rows,
                               label=f"pool-border{g}->{g + 1}")
                self._rings.append(ring)
                links.append(ring)
        else:
            for g in range(workers - 1):
                recv_conn, send_conn = self._ctx.Pipe(duplex=False)
                self._parent_conns.extend([recv_conn, send_conn])
                links.append(PipeLink(recv_conn, send_conn,
                                      label=f"pool-border{g}->{g + 1}"))

        self._result_queue = self._ctx.Queue()
        self._task_queues = [self._ctx.Queue() for _ in range(workers)]
        # One scoreboard for the pool's lifetime (reset per pruning run).
        self._scoreboard = SharedScoreboard(workers, label="pool-scoreboard")
        # One heartbeat board for the pool's lifetime (reset per run);
        # workers always beat into it — it is one shared-memory store per
        # phase transition — and align() decides whether anyone watches.
        self._progress = ProgressBoard(workers, label="pool-progress")
        self._procs = []
        for g in range(workers):
            recv_link = links[g - 1] if g > 0 else None
            send_link = links[g] if g < workers - 1 else None
            proc = self._ctx.Process(
                target=_pool_worker,
                args=(g, self._task_queues[g], self._result_queue,
                      recv_link, send_link, self._scoreboard, self._progress),
                name=f"mgsw-pool-{g}",
            )
            proc.daemon = True
            proc.start()
            self._procs.append(proc)

    # -- lifecycle -----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        return self._broken

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (stable across comparisons)."""
        return [proc.pid for proc in self._procs]

    def close(self) -> None:
        """Stop the workers and release the shared memory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for q in self._task_queues:
            try:
                q.put_nowait(None)
            except Exception:  # pragma: no cover - full/broken queue
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join()
        for q in [*self._task_queues, self._result_queue]:
            q.close()
        for conn in self._parent_conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for ring in self._rings:
            ring.unlink()
        self._scoreboard.unlink()
        self._progress.unlink()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the work ------------------------------------------------------------
    def align(
        self,
        a_codes: np.ndarray,
        b_codes: np.ndarray,
        scoring: Scoring,
        *,
        block_rows: int = 512,
        timeout_s: float = 300.0,
        tracer: Tracer | None = None,
        kernel: str = "scalar",
        pruning: bool = False,
        metrics: MetricsRegistry | None = None,
        heartbeat_s: float | None = None,
        on_stall=None,
    ) -> ProcessChainResult:
        """Exact SW over the pool's worker chain (bit-identical to every
        other engine); raises ``RuntimeError`` on worker failure/timeout.

        *pruning* turns on distributed block pruning against the pool's
        shared scoreboard (reset before each comparison, so scores from
        one pair never prune another).  Telemetry mirrors
        :func:`~repro.multigpu.procchain.align_multi_process`: *metrics*
        collects per-worker counters (merged into the same registry run
        after run, so pool-lifetime totals accumulate); *heartbeat_s*
        arms a watchdog over the pool's progress board for this
        comparison and enriches failure diagnostics with each stalled
        worker's last completed row."""
        if self._closed:
            raise ConfigError("pool is closed")
        if self._broken:
            raise ConfigError("pool is broken by an earlier failure")
        validate_kernel(kernel)
        if block_rows <= 0:
            raise ConfigError("block_rows must be positive")
        if block_rows > self.max_block_rows:
            raise ConfigError(
                f"block_rows {block_rows} exceeds the pool's max_block_rows "
                f"{self.max_block_rows}")
        m, n = int(a_codes.size), int(b_codes.size)
        if m == 0 or n == 0:
            raise ConfigError("sequences must be non-empty")
        if n < self.workers:
            raise ConfigError("matrix narrower than the worker count")

        slabs = proportional_partition(n, self.weights)
        if pruning:
            # Safe: no comparison is in flight here (align is serial and
            # the previous run's workers have all reported).
            self._scoreboard.reset()
        self._progress.reset()  # same serial-point argument as the scoreboard
        origin = time.perf_counter()
        for g, slab in enumerate(slabs):
            self._task_queues[g].put(
                (a_codes, b_codes[slab.col0:slab.col1].copy(), slab, scoring,
                 block_rows, origin, self.border_timeout_s, kernel, n, pruning,
                 metrics is not None))

        describe = lambda g: f"pool worker {g}"  # noqa: E731
        monitor = None
        if heartbeat_s is not None:
            monitor = HeartbeatMonitor(self._progress, stall_after_s=heartbeat_s,
                                       on_stall=on_stall, metrics=metrics)
            monitor.start()
            describe = lambda g: f"pool worker {g} ({monitor.describe(g)})"  # noqa: E731
        try:
            deadline = time.monotonic() + timeout_s
            messages, failures = collect_results(
                self._result_queue, self._procs, set(range(self.workers)),
                deadline, describe=describe)
            wall = time.perf_counter() - origin
        finally:
            if monitor is not None:
                monitor.stop()
        if failures:
            self._broken = True
            raise RuntimeError("; ".join(failures))

        result_tracer = tracer if tracer is not None else Tracer()
        best = BestCell.none()
        worker_blocks = []
        for g in sorted(messages):
            (_wid, score, row, col, checked, pruned,
             msnap, _err, records) = messages[g]
            merge_wall_records(result_tracer, f"worker{g}", records)
            if metrics is not None and msnap is not None:
                metrics.merge_snapshot(msnap)
            worker_blocks.append((int(checked), int(pruned)))
            cell = BestCell(score, row, col)
            if cell.better_than(best):
                best = cell
        result = ProcessChainResult(
            best=best, wall_time_s=wall, cells=m * n, workers=self.workers,
            partition=tuple(slabs), transport=self.transport,
            start_method=self.start_method, tracer=result_tracer,
            kernel=kernel,
            pruning=pruning,
            blocks_checked=sum(c for c, _ in worker_blocks),
            blocks_pruned=sum(p for _, p in worker_blocks),
            worker_blocks=tuple(worker_blocks),
        )
        if metrics is not None:
            finalize_run_metrics(
                metrics, backend="pool",
                blocks_checked=result.blocks_checked,
                blocks_pruned=result.blocks_pruned,
                wall_time_s=wall, gcups=result.gcups)
        return result

    def map(
        self,
        pairs: Iterable[tuple[np.ndarray, np.ndarray]],
        scoring: Scoring,
        *,
        block_rows: int = 512,
        timeout_s: float = 300.0,
        kernel: str = "scalar",
        pruning: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> list[ProcessChainResult]:
        """Run every ``(a, b)`` pair through the pool, in order.

        A shared *metrics* registry accumulates across the whole batch
        (counters are additive; each run's merge adds on top)."""
        return [
            self.align(a, b, scoring, block_rows=block_rows,
                       timeout_s=timeout_s, kernel=kernel, pruning=pruning,
                       metrics=metrics)
            for a, b in pairs
        ]
