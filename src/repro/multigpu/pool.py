"""Persistent slab-worker pool: amortise process startup across runs.

:func:`~repro.multigpu.procchain.align_multi_process` forks (or spawns) a
fresh set of slab workers per comparison — fine for one megabase matrix,
wasteful for batch workloads that push many pairs through the same
machine (:mod:`repro.multigpu.batch` campaigns, clustering sweeps).  A
:class:`WorkerPool` starts the workers and the shared-memory border rings
**once** and reuses them for every subsequent comparison:

* each worker blocks on its private task queue between comparisons;
* the border rings (one :class:`~repro.comm.shmring.ShmRing` per slab
  boundary, or a pipe pair under ``transport="pipe"``) are created at
  pool construction, sized for the pool's maximum block height, and drain
  back to empty at the end of every successful comparison, so no per-run
  setup or teardown remains on the hot path;
* slab widths are proportional to the pool's *weights* (heterogeneous
  worker speeds), recomputed per comparison for its matrix width.

Failure semantics: any worker error or death marks the pool **broken**
(the transports' cursors can no longer be trusted) and raises
``RuntimeError``; a broken or closed pool refuses further work.  With
``max_restarts > 0`` on :meth:`WorkerPool.align` the pool instead
*recovers*: the comparison's state is checkpointed into a shared-memory
:class:`~repro.multigpu.checkpoint.CheckpointArea`, the pool tears down
and respawns its workers and transports (dropping the dead, re-splitting
columns across the survivors), and the comparison resumes from the
newest row every slab had checkpointed (INTERNALS.md section 9).  Use
the pool as a context manager — ``close()`` always stops the workers and
unlinks the shared memory.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from dataclasses import replace

from ..comm.progress import ProgressBoard
from ..comm.scoreboard import SharedScoreboard
from ..comm.shmring import ShmRing
from ..device.trace import Tracer, WallClockRecorder, merge_wall_records
from ..errors import ConfigError
from ..obs.heartbeat import HeartbeatMonitor
from ..obs.instruments import (EngineInstruments, finalize_run_metrics,
                               record_heuristic, record_recovery)
from ..obs.registry import MetricsRegistry
from ..seq.scoring import Scoring
from ..sw.backend import KERNELS
from ..sw.batched import KernelWorkspace, validate_kernel
from ..sw.compiled import warmup as compiled_warmup
from ..sw.constants import resolve_dp_dtype, validate_dp_dtype
from ..sw.kernel import BestCell
from ..sw.pruning import BlockPruner
from ..sw.xdrop import (DEFAULT_BAND_WIDTH, DEFAULT_XDROP_X, assess_heuristic,
                        validate_mode, xdrop_score)
from .checkpoint import CheckpointArea, RetryPolicy
from .partition import proportional_partition
from .procchain import (
    TRANSPORTS,
    PipeLink,
    ProcessChainResult,
    checkpoint_history_for,
    collect_results,
    pick_context,
    sweep_slab,
)


def _pool_worker(worker_id, task_queue, result_queue, recv_link, send_link,
                 scoreboard, progress=None, warm_kernels=()):
    """Long-lived slab worker: one task per comparison, ``None`` to exit.

    Result message layout matches the one-shot worker's (see
    :func:`~repro.multigpu.procchain._worker`): the metrics snapshot and
    counters sit before the error slot because :func:`collect_results`
    reads ``msg[-2]`` as err.  A fresh per-comparison registry keeps the
    snapshots additive — the parent merges them, so pool-lifetime totals
    still accumulate there.

    JIT warmup runs **once per process**, never per block: kernels named
    in *warm_kernels* compile at spawn (before the worker even blocks on
    its queue); otherwise the first ``kernel="compiled"`` task pays one
    lazy warmup wrapped in a ``warmup`` recorder span, so the compile
    cost is visible in the merged trace instead of inflating that task's
    first compute interval.

    The task tuple's tail carries the recovery fields: *resume_state*
    (``(start_row, h_init, f_init)`` or ``None``), the per-attempt
    *checkpoints* area (attached on unpickle, closed after the task),
    *checkpoint_blocks*, the test-only *fault_block* crash hook, the
    static *band_half_width* (``None`` unless ``mode="banded"``), and the
    narrow :class:`~repro.sw.constants.DpPolicy` *dp* (``None`` for plain
    int32; the tiny frozen dataclass pickles cleanly).
    """
    workspace = KernelWorkspace()  # persists across comparisons
    warmed = False
    if "compiled" in warm_kernels:
        if progress is not None:
            progress.beat(worker_id, 0, "warmup")
        compiled_warmup()  # spawn-time compile: no task is waiting yet
        warmed = True
        if progress is not None:
            progress.beat(worker_id, 0, "idle")
    while True:
        task = task_queue.get()
        if task is None:
            break
        (a_codes, b_slab, slab, scoring, block_rows, origin,
         border_timeout_s, kernel, n_cols, pruning, collect_metrics,
         resume_state, checkpoints, checkpoint_blocks, fault_block,
         band_half_width, dp) = task
        recorder = WallClockRecorder(origin)
        registry = MetricsRegistry() if collect_metrics else None
        instruments = (EngineInstruments(registry, f"worker{worker_id}")
                       if registry is not None else None)
        # Fresh pruner per comparison: counters must not leak across runs
        # (the parent resets the scoreboard before enqueueing the tasks).
        pruner = BlockPruner(match=scoring.match) if pruning else None
        start_row, h_init, f_init = (resume_state if resume_state is not None
                                     else (0, None, None))
        try:
            if kernel == "compiled" and not warmed:
                # Lazy once-per-process warm: the span lands in this
                # task's recorder so the merged trace shows the compile.
                if progress is not None:
                    progress.beat(worker_id, start_row, "warmup")
                with recorder.span("warmup"):
                    compiled_warmup()
                warmed = True
            outcome = sweep_slab(a_codes, b_slab, slab, scoring, block_rows,
                                 recv_link, send_link, recorder, border_timeout_s,
                                 fault_block,
                                 kernel=kernel, workspace=workspace,
                                 n_cols=n_cols,
                                 pruner=pruner,
                                 scoreboard=scoreboard if pruning else None,
                                 slot=worker_id, instruments=instruments,
                                 progress=progress,
                                 start_row=start_row, h_init=h_init,
                                 f_init=f_init, checkpoints=checkpoints,
                                 checkpoint_blocks=checkpoint_blocks,
                                 band_half_width=band_half_width, dp=dp)
            best = outcome.best
            result_queue.put(
                (worker_id, best.score, best.row, best.col,
                 outcome.blocks_checked, outcome.blocks_pruned,
                 outcome.blocks_skipped_band,
                 outcome.blocks_narrow, outcome.blocks_wide,
                 outcome.dtype_escalations,
                 registry.snapshot() if registry is not None else None,
                 None, recorder.records))
        except Exception as exc:
            result_queue.put(
                (worker_id, 0, -1, -1, 0, 0, 0, 0, 0, 0,
                 registry.snapshot() if registry is not None else None,
                 repr(exc), recorder.records))
            if checkpoints is not None:
                checkpoints.close()
            break  # transport state is suspect; die and let the pool break
        if checkpoints is not None:
            checkpoints.close()
    if progress is not None:
        progress.close()


class WorkerPool:
    """A fixed set of live slab workers serving many comparisons.

    Parameters
    ----------
    workers:
        Number of slab processes (chain length).
    weights:
        Relative per-worker speeds for proportional slab widths
        (default: equal).
    max_block_rows:
        Largest ``block_rows`` any comparison may use — it sizes the
        shared-memory ring slots once, at construction.
    capacity, transport, start_method, border_timeout_s:
        As in :func:`~repro.multigpu.procchain.align_multi_process`.
    warm_kernels:
        Kernel backends every worker pre-compiles **at spawn**, before
        the first task (e.g. ``("compiled",)``) — batch campaigns pay
        the JIT cost once per process instead of skewing the first
        comparison.  Kernels not listed here still warm lazily (once
        per process) on their first use.
    events:
        Optional :class:`~repro.obs.events.EventJournal` shared by the
        pool's whole lifetime: every (re-)spawn journals
        ``worker_spawn``, every :meth:`align` journals its lifecycle
        (``run_start``/``worker_death``/``checkpoint``/
        ``restart_attempt``/``slab_rebalance``/``run_end``), and the
        per-run heartbeat watchdog adds ``stall`` events.
    """

    def __init__(
        self,
        workers: int,
        *,
        weights: Sequence[float] | None = None,
        max_block_rows: int = 2048,
        capacity: int = 4,
        transport: str = "shm",
        start_method: str | None = None,
        border_timeout_s: float = 60.0,
        warm_kernels: Sequence[str] = (),
        events=None,
    ) -> None:
        if workers <= 0:
            raise ConfigError("workers must be positive")
        if max_block_rows <= 0:
            raise ConfigError("max_block_rows must be positive")
        if capacity <= 0:
            raise ConfigError("capacity must be positive")
        if transport not in TRANSPORTS:
            raise ConfigError(
                f"unknown transport {transport!r}; expected one of {TRANSPORTS}")
        if weights is not None and len(weights) != workers:
            raise ConfigError("weights length must equal the worker count")
        for k in warm_kernels:
            if k not in KERNELS:
                raise ConfigError(
                    f"unknown warm kernel {k!r}; expected one of {KERNELS}")

        self.workers = workers
        self.warm_kernels = tuple(warm_kernels)
        self.weights = list(weights) if weights is not None else [1.0] * workers
        self.max_block_rows = max_block_rows
        self.capacity = capacity
        self.transport = transport
        self.border_timeout_s = border_timeout_s
        self._ctx = pick_context(start_method)
        self.start_method = self._ctx.get_start_method()
        self.events = events
        self._broken = False
        self._closed = False

        #: Last :class:`~repro.multigpu.autotune.RebalanceDecision` made by
        #: an ``align(rebalance=True)`` run (``None`` until one completes).
        self.last_rebalance = None

        # One scoreboard for the pool's lifetime (reset per pruning run).
        # Sized for the initial worker count — a recovery re-spawn only
        # ever shrinks the chain, so the slots stay sufficient.
        self._scoreboard = SharedScoreboard(workers, label="pool-scoreboard")
        # One heartbeat board for the pool's lifetime (reset per run);
        # workers always beat into it — it is one shared-memory store per
        # phase transition — and align() decides whether anyone watches.
        self._progress = ProgressBoard(workers, label="pool-progress")
        self._spawn_workers()

    def _spawn_workers(self) -> None:
        """Create the transports, queues and worker processes for the
        current ``self.workers``/``self.weights`` (construction, and again
        after a recovery re-spawn)."""
        workers = self.workers
        self._rings: list[ShmRing] = []
        links: list = []
        self._parent_conns: list = []
        if self.transport == "shm":
            for g in range(workers - 1):
                ring = ShmRing(self._ctx, self.capacity, self.max_block_rows,
                               label=f"pool-border{g}->{g + 1}")
                self._rings.append(ring)
                links.append(ring)
        else:
            for g in range(workers - 1):
                recv_conn, send_conn = self._ctx.Pipe(duplex=False)
                self._parent_conns.extend([recv_conn, send_conn])
                links.append(PipeLink(recv_conn, send_conn,
                                      label=f"pool-border{g}->{g + 1}"))

        self._result_queue = self._ctx.Queue()
        self._task_queues = [self._ctx.Queue() for _ in range(workers)]
        self._procs = []
        for g in range(workers):
            recv_link = links[g - 1] if g > 0 else None
            send_link = links[g] if g < workers - 1 else None
            proc = self._ctx.Process(
                target=_pool_worker,
                args=(g, self._task_queues[g], self._result_queue,
                      recv_link, send_link, self._scoreboard, self._progress,
                      self.warm_kernels),
                name=f"mgsw-pool-{g}",
            )
            proc.daemon = True
            proc.start()
            self._procs.append(proc)
            if self.events is not None:
                self.events.emit("worker_spawn", worker=g, pid=proc.pid,
                                 pool=True)

    def _teardown_workers(self, *, graceful: bool) -> list[str]:
        """Stop the current workers and release their per-spawn resources
        (everything except the pool-lifetime scoreboard/progress boards).
        Every step is attempted; the error strings are returned."""
        errors: list[str] = []
        if graceful:
            for q in self._task_queues:
                try:
                    q.put_nowait(None)
                except Exception:  # pragma: no cover - full/broken queue
                    pass
        for proc in self._procs:
            try:
                if not graceful and proc.is_alive():
                    proc.terminate()
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join()
            except Exception as exc:  # pragma: no cover - platform noise
                errors.append(f"stopping {proc.name}: {exc!r}")
        for q in [*self._task_queues, self._result_queue]:
            try:
                q.close()
            except Exception as exc:  # pragma: no cover - platform noise
                errors.append(f"closing queue: {exc!r}")
        for conn in self._parent_conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for ring in self._rings:
            try:
                ring.unlink()
            except Exception as exc:
                errors.append(f"unlinking ring {ring.label!r}: {exc!r}")
        return errors

    def _rebuild(self, dead: Sequence[int]) -> None:
        """Recovery re-spawn: kill the current attempt's workers, drop the
        *dead* ones from the partition weights, and bring up a fresh set
        of workers and transports (ring cursors of a failed attempt can
        never be trusted).  Raises :class:`ConfigError` when nobody
        survives."""
        self._teardown_workers(graceful=False)
        if dead:
            gone = set(int(d) for d in dead)
            self.weights = [w for i, w in enumerate(self.weights)
                            if i not in gone]
            self.workers = len(self.weights)
        if self.workers == 0:
            raise ConfigError("no surviving workers to re-spawn")
        self._spawn_workers()

    # -- lifecycle -----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        return self._broken

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (stable across comparisons)."""
        return [proc.pid for proc in self._procs]

    def close(self) -> None:
        """Stop the workers and release the shared memory (idempotent).

        Exception-safe: every teardown step is attempted even when an
        earlier one raises (a ring whose segment is already gone must not
        leak the scoreboard and progress segments behind it); the errors
        are aggregated into one ``RuntimeError`` at the end.  A second
        call is a no-op regardless of how the first one went.
        """
        if self._closed:
            return
        self._closed = True
        errors = self._teardown_workers(graceful=True)
        try:
            self._scoreboard.unlink()
        except Exception as exc:
            errors.append(f"unlinking scoreboard: {exc!r}")
        try:
            self._progress.unlink()
        except Exception as exc:
            errors.append(f"unlinking progress board: {exc!r}")
        if errors:
            raise RuntimeError(
                "pool close encountered errors (all teardown steps were "
                "attempted): " + "; ".join(errors))

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the work ------------------------------------------------------------
    def align(
        self,
        a_codes: np.ndarray,
        b_codes: np.ndarray,
        scoring: Scoring,
        *,
        block_rows: int = 512,
        timeout_s: float = 300.0,
        tracer: Tracer | None = None,
        kernel: str = "scalar",
        pruning: bool = False,
        metrics: MetricsRegistry | None = None,
        heartbeat_s: float | None = None,
        on_stall=None,
        max_restarts: int = 0,
        restart_backoff_s: float = 0.5,
        retry: RetryPolicy | None = None,
        checkpoint_blocks: int = 4,
        mode: str = "exact",
        band_width: int = DEFAULT_BAND_WIDTH,
        xdrop_x: int = DEFAULT_XDROP_X,
        dp_dtype: str = "auto",
        rebalance: bool = False,
        rebalance_threshold: float = 0.25,
        timeline=None,
        _fault: tuple[int, int] | None = None,
        _finalize_metrics: bool = True,
    ) -> ProcessChainResult:
        """Exact SW over the pool's worker chain (bit-identical to every
        other engine); raises ``RuntimeError`` on worker failure/timeout.

        *mode* selects the alignment tier, exactly as in
        :func:`~repro.multigpu.procchain.align_multi_process`:
        ``"banded"`` skips slab block rows outside the static band of
        half-width *band_width*, ``"xdrop"`` runs the origin-anchored
        X-drop extension inline in the parent (threshold *xdrop_x*), and
        ``"auto"`` answers with the banded heuristic unless the
        confidence check fails, in which case the exact chain re-runs.

        *pruning* turns on distributed block pruning against the pool's
        shared scoreboard (reset before each comparison, so scores from
        one pair never prune another).  Telemetry mirrors
        :func:`~repro.multigpu.procchain.align_multi_process`: *metrics*
        collects per-worker counters (merged into the same registry run
        after run, so pool-lifetime totals accumulate); *heartbeat_s*
        arms a watchdog over the pool's progress board for this
        comparison and enriches failure diagnostics with each stalled
        worker's last completed row.

        Recovery mirrors
        :func:`~repro.multigpu.procchain.align_multi_process` too: with
        ``max_restarts > 0`` (or an explicit *retry* policy) a failed
        attempt checkpoint-resumes instead of breaking the pool — the
        pool's workers and transports are re-spawned (dead workers
        dropped from ``self.weights``, so later comparisons inherit the
        shrunken chain), and the comparison restarts from the newest row
        every slab had published.  The pool is only marked broken when
        the policy is exhausted or the failure is permanent.  ``_fault``
        is the test-only ``(worker_id, block_index)`` crash hook, first
        attempt only.

        *dp_dtype* selects the kernel-internal DP dtype exactly as in
        :func:`~repro.multigpu.procchain.align_multi_process` (resolved
        per attempt against the widest slab; bit-identical scores).

        Online re-balancing: with ``rebalance=True`` the comparison's
        progress board is sampled while the chain runs, per-worker
        capacity is estimated from each worker's observed row rate and
        compute share, and when the estimated capacity shares drift from
        ``self.weights`` by more than *rebalance_threshold* (relative)
        the pool's weights are updated **for subsequent comparisons** —
        the paper's heterogeneous slab split, measured instead of
        declared.  The decision is recorded on ``self.last_rebalance``
        and, when *metrics* is given, as a ``slab_rebalances`` counter
        plus per-worker ``worker_rows_per_s`` gauges.

        *timeline* accepts a
        :class:`~repro.obs.timeseries.TimeSeriesSampler`: it is attached
        to the pool's progress board for each attempt of this comparison
        (after the per-attempt reset) and detached with a final frame as
        the attempt ends — see
        :func:`~repro.multigpu.procchain.align_multi_process` for the
        event-journal counterpart (the pool's journal is pool-lifetime,
        passed at construction).
        """
        if self._closed:
            raise ConfigError("pool is closed")
        if self._broken:
            raise ConfigError("pool is broken by an earlier failure")
        validate_kernel(kernel)
        validate_mode(mode)
        validate_dp_dtype(dp_dtype)
        if band_width < 0:
            raise ConfigError("band_width must be non-negative")
        if rebalance_threshold <= 0:
            raise ConfigError("rebalance_threshold must be positive")
        if xdrop_x <= 0:
            raise ConfigError("xdrop_x must be positive")
        if a_codes.size == 0 or b_codes.size == 0:
            raise ConfigError("sequences must be non-empty")
        if mode == "xdrop":
            if self.events is not None and _finalize_metrics:
                self.events.emit("run_start", backend="pool", mode="xdrop",
                                 rows=int(a_codes.size),
                                 cols=int(b_codes.size), workers=0)
            t0 = time.perf_counter()
            xo = xdrop_score(a_codes, b_codes, scoring, xdrop_x)
            wall = time.perf_counter() - t0
            result = ProcessChainResult(
                best=xo.best, wall_time_s=wall,
                cells=int(a_codes.size) * int(b_codes.size),
                workers=0, partition=(), transport=self.transport,
                start_method=self.start_method,
                tracer=tracer or Tracer(), kernel=kernel,
                mode="xdrop", tier="xdrop")
            if metrics is not None and _finalize_metrics:
                finalize_run_metrics(
                    metrics, backend="pool", blocks_checked=0,
                    blocks_pruned=0, wall_time_s=wall, gcups=result.gcups)
            if self.events is not None and _finalize_metrics:
                self.events.emit("run_end", status="ok",
                                 score=int(xo.best.score),
                                 wall_time_s=round(wall, 6), restarts=0,
                                 tier="xdrop")
            return result
        if mode == "auto":
            return self._align_auto(
                a_codes, b_codes, scoring, block_rows=block_rows,
                timeout_s=timeout_s, tracer=tracer, kernel=kernel,
                pruning=pruning, metrics=metrics, heartbeat_s=heartbeat_s,
                on_stall=on_stall, max_restarts=max_restarts,
                restart_backoff_s=restart_backoff_s, retry=retry,
                checkpoint_blocks=checkpoint_blocks, band_width=band_width,
                dp_dtype=dp_dtype, rebalance=rebalance,
                rebalance_threshold=rebalance_threshold, timeline=timeline)
        band_half_width = band_width if mode == "banded" else None
        if block_rows <= 0:
            raise ConfigError("block_rows must be positive")
        if block_rows > self.max_block_rows:
            raise ConfigError(
                f"block_rows {block_rows} exceeds the pool's max_block_rows "
                f"{self.max_block_rows}")
        m, n = int(a_codes.size), int(b_codes.size)
        if m == 0 or n == 0:
            raise ConfigError("sequences must be non-empty")
        if n < self.workers:
            raise ConfigError("matrix narrower than the worker count")
        if retry is None:
            retry = RetryPolicy(max_restarts=max_restarts,
                                backoff_s=restart_backoff_s)
        recovery = retry.max_restarts > 0

        result_tracer = tracer if tracer is not None else Tracer()
        restarts = 0
        rows_recomputed_total = 0
        resume: tuple | None = None          # (row, h_full, f_full)
        base_best = BestCell.none()
        base_checked = base_pruned = 0
        dp_name = "int32"
        total_narrow = total_wide = total_esc = 0
        checkpoints: CheckpointArea | None = None
        if self.events is not None and _finalize_metrics:
            self.events.emit("run_start", backend="pool", mode=mode,
                             rows=m, cols=n, workers=self.workers,
                             kernel=kernel, pruning=pruning,
                             max_restarts=retry.max_restarts)
        origin = time.perf_counter()
        try:
            while True:
                slabs = proportional_partition(n, self.weights)
                dp_policy = resolve_dp_dtype(
                    dp_dtype, scoring,
                    block_cols=max(s.cols for s in slabs), m=m, n=n,
                    local=True)
                dp_name = dp_policy.name
                dp = dp_policy if dp_policy.narrow else None
                if pruning:
                    # Safe: no comparison is in flight here (align is serial
                    # and the previous run's workers have all reported).
                    self._scoreboard.reset()
                self._progress.reset()  # same serial-point argument
                if timeline is not None:
                    timeline.attach(self._progress, rows=m,
                                    cols_per_worker=[s.cols for s in slabs],
                                    attempt=restarts)
                if recovery:
                    checkpoints = CheckpointArea(
                        [s.cols for s in slabs],
                        history=checkpoint_history_for(
                            len(slabs), self.capacity, checkpoint_blocks),
                        label="pool-ckpt")
                for g, slab in enumerate(slabs):
                    resume_state = None
                    if resume is not None:
                        row, h_full, f_full = resume
                        resume_state = (row,
                                        h_full[slab.col0:slab.col1].copy(),
                                        f_full[slab.col0:slab.col1].copy())
                    fault_block = (_fault[1] if _fault is not None
                                   and _fault[0] == g and restarts == 0
                                   else None)
                    self._task_queues[g].put(
                        (a_codes, b_codes[slab.col0:slab.col1].copy(), slab,
                         scoring, block_rows, origin, self.border_timeout_s,
                         kernel, n, pruning, metrics is not None,
                         resume_state, checkpoints, checkpoint_blocks,
                         fault_block, band_half_width, dp))

                describe = lambda g: f"pool worker {g}"  # noqa: E731
                monitor = None
                if heartbeat_s is not None:
                    on_hard = None
                    hard_stall_s = None
                    if recovery:
                        hard_stall_s = 2.0 * heartbeat_s
                        procs_now = self._procs

                        def on_hard(report, _procs=procs_now):
                            proc = _procs[report.worker]
                            if proc.is_alive():
                                proc.kill()

                    monitor = HeartbeatMonitor(
                        self._progress, stall_after_s=heartbeat_s,
                        on_stall=on_stall, hard_stall_s=hard_stall_s,
                        on_hard_stall=on_hard, metrics=metrics,
                        events=self.events)
                    monitor.start()
                    describe = lambda g: f"pool worker {g} ({monitor.describe(g)})"  # noqa: E731
                sampler = None
                if rebalance:
                    from .autotune import ProgressRateSampler
                    sampler = ProgressRateSampler(self._progress)
                    sampler.start()
                try:
                    deadline = time.monotonic() + timeout_s
                    messages, failures = collect_results(
                        self._result_queue, self._procs,
                        set(range(self.workers)), deadline, describe=describe)
                    wall = time.perf_counter() - origin
                finally:
                    if sampler is not None:
                        sampler.stop()
                    if monitor is not None:
                        monitor.stop()
                    if timeline is not None:
                        # Always per attempt: the board is pool-lifetime
                        # and resets at the top of the next one.
                        timeline.detach()

                attempt_best = BestCell.none()
                worker_blocks = []
                attempt_skipped_band = 0
                for g in sorted(messages):
                    (_wid, score, row, col, checked, pruned, skipped_band,
                     narrow, wide, esc, msnap, _err, records) = messages[g]
                    merge_wall_records(result_tracer, f"worker{g}", records)
                    if metrics is not None and msnap is not None:
                        metrics.merge_snapshot(msnap)
                    worker_blocks.append((int(checked), int(pruned)))
                    attempt_skipped_band += int(skipped_band)
                    total_narrow += int(narrow)
                    total_wide += int(wide)
                    total_esc += int(esc)
                    cell = BestCell(score, row, col)
                    if cell.better_than(attempt_best):
                        attempt_best = cell

                if not failures:
                    if checkpoints is not None:
                        checkpoints.unlink()
                        checkpoints = None
                    if sampler is not None:
                        self._apply_rebalance(sampler, slabs,
                                              rebalance_threshold, metrics)
                    best = (attempt_best
                            if attempt_best.better_than(base_best)
                            else base_best)
                    result = ProcessChainResult(
                        best=best, wall_time_s=wall, cells=m * n,
                        workers=self.workers,
                        partition=tuple(slabs), transport=self.transport,
                        start_method=self.start_method, tracer=result_tracer,
                        kernel=kernel,
                        pruning=pruning,
                        blocks_checked=base_checked
                        + sum(c for c, _ in worker_blocks),
                        blocks_pruned=base_pruned
                        + sum(p for _, p in worker_blocks),
                        worker_blocks=tuple(worker_blocks),
                        restarts=restarts,
                        rows_recomputed=rows_recomputed_total,
                        mode=mode,
                        tier="banded" if mode == "banded" else "exact",
                        blocks_skipped_band=attempt_skipped_band,
                        dp_dtype=dp_name,
                        blocks_narrow=total_narrow,
                        blocks_wide=total_wide,
                        dtype_escalations=total_esc,
                    )
                    if metrics is not None and _finalize_metrics:
                        finalize_run_metrics(
                            metrics, backend="pool",
                            blocks_checked=result.blocks_checked,
                            blocks_pruned=result.blocks_pruned,
                            wall_time_s=wall, gcups=result.gcups)
                    if self.events is not None:
                        if total_esc > 0:
                            self.events.emit(
                                "dtype_escalation", dp_dtype=dp_name,
                                escalations=total_esc,
                                blocks_narrow=total_narrow,
                                blocks_wide=total_wide)
                        if _finalize_metrics:
                            self.events.emit(
                                "run_end", status="ok",
                                score=int(best.score),
                                wall_time_s=round(wall, 6),
                                restarts=restarts, tier=result.tier)
                    return result

                # -- failed attempt --------------------------------------------
                if self.events is not None:
                    for key, desc, kind in failures:
                        self.events.emit("worker_death", worker=key,
                                         attempt=restarts, kind=kind,
                                         detail=desc)
                descs = [desc for _key, desc, _kind in failures]
                if (not recovery or restarts >= retry.max_restarts
                        or any(retry.is_permanent(d) for d in descs)):
                    self._broken = True
                    if self.events is not None and _finalize_metrics:
                        self.events.emit("run_end", status="failed",
                                         restarts=restarts,
                                         detail="; ".join(descs))
                    raise RuntimeError("; ".join(descs))

                fail_t = time.perf_counter() - origin
                died = [key for key, _desc, kind in failures
                        if kind == "died"]
                try:
                    self._rebuild(died)
                except Exception as exc:
                    self._broken = True
                    raise RuntimeError(
                        "; ".join(descs)
                        + f"; recovery impossible: {exc!r}") from None
                # The board still holds this attempt's final beats (reset
                # happens at the top of the next attempt) — the honest
                # "how far did each slab get" record.
                progress_rows = [s.rows_done
                                 for s in self._progress.snapshot()]

                resume_row = resume[0] if resume is not None else 0
                r_new = checkpoints.consistent_row()
                if self.events is not None:
                    self.events.emit("checkpoint", attempt=restarts,
                                     consistent_row=r_new)
                ckpt_best = checkpoints.best_overall()
                if ckpt_best.better_than(base_best):
                    base_best = ckpt_best
                if r_new > resume_row:
                    h_full, f_full, _b, checked_at, pruned_at = \
                        checkpoints.assemble(r_new)
                    base_checked += checked_at
                    base_pruned += pruned_at
                    resume = (r_new, h_full, f_full)
                    resume_row = r_new
                checkpoints.unlink()
                checkpoints = None

                rows_recomputed = sum(
                    max(0, rows_done - resume_row)
                    for rows_done in progress_rows)
                rows_recomputed_total += rows_recomputed
                restarts += 1
                if metrics is not None:
                    record_recovery(metrics, backend="pool",
                                    rows_recomputed=rows_recomputed)
                if self.events is not None:
                    self.events.emit("restart_attempt", attempt=restarts,
                                     resume_row=resume_row,
                                     workers_left=self.workers,
                                     rows_recomputed=rows_recomputed)
                time.sleep(retry.delay_s(restarts - 1))
                result_tracer.record("supervisor", "recovery", fail_t,
                                     time.perf_counter() - origin)
        finally:
            if checkpoints is not None:
                checkpoints.unlink()

    def _apply_rebalance(self, sampler, slabs, threshold, metrics) -> None:
        """Act on one comparison's progress samples: estimate per-worker
        capacity from observed row rate and compute share, update
        ``self.weights`` when the drift against the current shares
        exceeds *threshold* (relative).  Applies to *subsequent*
        comparisons only — the finished one already ran."""
        from .autotune import estimate_capacities, rebalance_weights

        capacities = estimate_capacities(sampler, slabs)
        decision = rebalance_weights(self.weights, capacities,
                                     threshold=threshold)
        self.last_rebalance = decision
        if metrics is not None:
            gauge = metrics.gauge(
                "worker_rows_per_s",
                help="observed matrix-row completion rate per pool worker")
            for g, rate in enumerate(sampler.rates()):
                gauge.set(rate, device=f"worker{g}")
        if decision.fired:
            old_weights = list(self.weights)
            self.weights = list(decision.new_weights)
            if metrics is not None:
                metrics.counter(
                    "slab_rebalances",
                    help="pool weight updates fired by online re-balancing",
                ).inc(1, backend="pool")
            if self.events is not None:
                self.events.emit(
                    "slab_rebalance",
                    old_weights=[round(w, 4) for w in old_weights],
                    new_weights=[round(w, 4) for w in self.weights])

    def _align_auto(
        self,
        a_codes: np.ndarray,
        b_codes: np.ndarray,
        scoring: Scoring,
        *,
        band_width: int,
        metrics: MetricsRegistry | None,
        **kwargs,
    ) -> ProcessChainResult:
        """``mode="auto"`` on the pool: banded heuristic first, exact
        re-run over the same live workers only when
        :func:`~repro.sw.xdrop.assess_heuristic` rejects the answer."""
        m, n = int(a_codes.size), int(b_codes.size)
        if self.events is not None:
            self.events.emit("run_start", backend="pool", mode="auto",
                             rows=m, cols=n, workers=self.workers,
                             band_width=band_width)
        heur = self.align(a_codes, b_codes, scoring, mode="banded",
                          band_width=band_width, metrics=metrics,
                          _finalize_metrics=False, **kwargs)
        decision = assess_heuristic(heur.best, m, n, scoring,
                                    band_half_width=band_width)
        if decision.confident:
            result = replace(heur, mode="auto", tier="banded")
        else:
            if self.events is not None:
                self.events.emit(
                    "heuristic_escalation", tier="exact",
                    heur_score=int(heur.best.score), band_width=band_width,
                    reason="confidence check rejected the banded score")
            exact = self.align(a_codes, b_codes, scoring, mode="exact",
                               metrics=metrics, _finalize_metrics=False,
                               **kwargs)
            result = replace(
                exact,
                wall_time_s=heur.wall_time_s + exact.wall_time_s,
                mode="auto", tier="exact", escalated=True)
        if metrics is not None:
            record_heuristic(metrics, backend="pool",
                             tier=result.tier, escalated=result.escalated)
            finalize_run_metrics(
                metrics, backend="pool",
                blocks_checked=result.blocks_checked,
                blocks_pruned=result.blocks_pruned,
                wall_time_s=result.wall_time_s, gcups=result.gcups)
        if self.events is not None:
            self.events.emit("run_end", status="ok",
                             score=int(result.best.score),
                             wall_time_s=round(result.wall_time_s, 6),
                             restarts=result.restarts, tier=result.tier,
                             escalated=result.escalated)
        return result

    def map(
        self,
        pairs: Iterable[tuple[np.ndarray, np.ndarray]],
        scoring: Scoring,
        *,
        block_rows: int = 512,
        timeout_s: float = 300.0,
        kernel: str = "scalar",
        pruning: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> list[ProcessChainResult]:
        """Run every ``(a, b)`` pair through the pool, in order.

        A shared *metrics* registry accumulates across the whole batch
        (counters are additive; each run's merge adds on top)."""
        return [
            self.align(a, b, scoring, block_rows=block_rows,
                       timeout_s=timeout_s, kernel=kernel, pruning=pruning,
                       metrics=metrics)
            for a, b in pairs
        ]
