"""Column partitioning of the DP matrix across GPUs.

The paper splits the single huge matrix **column-wise** into one vertical
slab per GPU, sized **proportionally to each device's compute power** so
heterogeneous devices sweep their block rows at the same pace (a chain
advances at the rate of its slowest stage).  ``equal`` splits are the
baseline the heterogeneity experiment (F2) compares against.

Invariants (property-tested): slabs cover ``[0, n)`` exactly, in order,
without overlap; every slab is at least ``min_cols`` wide; proportional
splits deviate from the ideal fraction by less than one ``align`` unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import PartitionError


@dataclass(frozen=True)
class Slab:
    """Columns ``[col0, col1)`` assigned to device ``device_index``."""

    device_index: int
    col0: int
    col1: int

    def __post_init__(self) -> None:
        if self.col0 < 0 or self.col1 <= self.col0:
            raise PartitionError(f"degenerate slab {self!r}")

    @property
    def cols(self) -> int:
        return self.col1 - self.col0


def _validate(slabs: list[Slab], n_cols: int) -> list[Slab]:
    if not slabs:
        raise PartitionError("empty partition")
    if slabs[0].col0 != 0 or slabs[-1].col1 != n_cols:
        raise PartitionError(f"partition does not cover [0, {n_cols})")
    for left, right in zip(slabs, slabs[1:]):
        if left.col1 != right.col0:
            raise PartitionError(f"gap/overlap between {left} and {right}")
    return slabs


def proportional_partition(
    n_cols: int,
    weights: Sequence[float],
    *,
    min_cols: int = 1,
    align: int = 1,
) -> list[Slab]:
    """Split *n_cols* proportionally to *weights* (device GCUPS ratings).

    Widths are rounded to multiples of *align* (except the last slab,
    which absorbs the remainder) using cumulative rounding so the total
    is exact and no slab drifts more than one alignment unit from its
    ideal share.
    """
    k = len(weights)
    if k == 0:
        raise PartitionError("need at least one weight")
    if n_cols < k * max(min_cols, 1):
        raise PartitionError(f"{n_cols} columns cannot host {k} slabs of >= {min_cols}")
    if any(w <= 0 for w in weights):
        raise PartitionError("weights must be positive")
    if align <= 0 or min_cols <= 0:
        raise PartitionError("align and min_cols must be positive")

    total_w = float(sum(weights))
    # Cumulative ideal boundaries, rounded to the alignment grid.
    edges = [0]
    acc = 0.0
    for w in weights[:-1]:
        acc += w
        edge = round(n_cols * acc / total_w / align) * align
        edges.append(edge)
    edges.append(n_cols)

    # Enforce monotonicity and the minimum width by nudging edges forward.
    for i in range(1, k):
        lo = edges[i - 1] + min_cols
        hi = n_cols - (k - i) * min_cols
        if lo > hi:
            raise PartitionError("min_cols constraint infeasible")
        edges[i] = min(max(edges[i], lo), hi)

    slabs = [Slab(i, edges[i], edges[i + 1]) for i in range(k)]
    return _validate(slabs, n_cols)


def equal_partition(n_cols: int, k: int, *, min_cols: int = 1) -> list[Slab]:
    """Split *n_cols* into *k* near-equal slabs (heterogeneity baseline)."""
    return proportional_partition(n_cols, [1.0] * k, min_cols=min_cols)


def explicit_partition(n_cols: int, widths: Sequence[int]) -> list[Slab]:
    """Build a partition from explicit widths (must sum to *n_cols*)."""
    if sum(widths) != n_cols:
        raise PartitionError(f"widths sum to {sum(widths)}, need {n_cols}")
    slabs = []
    edge = 0
    for i, w in enumerate(widths):
        if w <= 0:
            raise PartitionError("widths must be positive")
        slabs.append(Slab(i, edge, edge + w))
        edge += w
    return _validate(slabs, n_cols)


def surviving_partition(
    n_cols: int,
    weights: Sequence[float],
    dead: Sequence[int],
    *,
    min_cols: int = 1,
    align: int = 1,
) -> tuple[list[Slab], list[float]]:
    """Re-partition *n_cols* across the workers that survived a failure.

    *dead* holds the original worker indices to drop; the remaining
    weights keep their relative order and the returned slabs are
    renumbered 0..k'-1 (``device_index`` is the *new* worker index).
    Returns ``(slabs, surviving_weights)`` so the caller can recurse on
    a further failure.
    """
    gone = set(int(d) for d in dead)
    survivors = [float(w) for i, w in enumerate(weights) if i not in gone]
    if not survivors:
        raise PartitionError("no surviving workers to re-partition across")
    slabs = proportional_partition(n_cols, survivors,
                                   min_cols=min_cols, align=align)
    return slabs, survivors


def imbalance(slabs: Sequence[Slab], weights: Sequence[float]) -> float:
    """Worst relative deviation of ``cols/weight`` across slabs.

    0 means perfectly proportional; the chain's steady-state slowdown
    relative to the ideal is roughly ``1 + imbalance``.
    """
    if len(slabs) != len(weights):
        raise PartitionError("slabs and weights differ in length")
    per_unit = [s.cols / w for s, w in zip(slabs, weights)]
    lo, hi = min(per_unit), max(per_unit)
    return (hi - lo) / hi if hi > 0 else 0.0
