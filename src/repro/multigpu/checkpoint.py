"""Checkpoint/restart for chain runs.

Paper-scale comparisons run for hours; the system family supports stopping
and resuming a comparison at a matrix-row boundary.  A consistent
checkpoint of the chain is exactly the DP state of one full matrix row:

* the row index,
* the H and F values of that row across the *whole* width (compute mode),
* the best cell found so far,
* the virtual time already spent.

Nothing about in-flight borders needs saving because checkpoints are
taken with the pipeline drained (the run simply stops after a block-row
boundary; resuming re-fills the pipeline, whose cost is the fill time the
overlap model predicts).

:func:`save_checkpoint` / :func:`load_checkpoint` serialise to ``.npz``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..sw.kernel import BestCell


@dataclass(frozen=True)
class ChainCheckpoint:
    """Resumable state at a matrix-row boundary (see module docstring)."""

    row: int                      #: rows [0, row) are done
    h_row: np.ndarray | None      #: H of row ``row-1`` across the full width
    f_row: np.ndarray | None      #: F of row ``row-1``
    best: BestCell                #: best cell over the completed rows
    elapsed_s: float              #: virtual time spent so far

    def __post_init__(self) -> None:
        if self.row <= 0:
            raise ConfigError("checkpoint row must be positive")
        if (self.h_row is None) != (self.f_row is None):
            raise ConfigError("h_row and f_row must both be present or absent")
        if self.elapsed_s < 0:
            raise ConfigError("elapsed_s must be >= 0")

    @property
    def phantom(self) -> bool:
        """True for timing-mode checkpoints (no DP state carried)."""
        return self.h_row is None


def save_checkpoint(path: str | os.PathLike, ckpt: ChainCheckpoint) -> None:
    """Serialise a checkpoint to an ``.npz`` file."""
    arrays = dict(
        row=np.int64(ckpt.row),
        elapsed=np.float64(ckpt.elapsed_s),
        best=np.array([ckpt.best.score, ckpt.best.row, ckpt.best.col], dtype=np.int64),
        phantom=np.bool_(ckpt.phantom),
    )
    if not ckpt.phantom:
        arrays["h_row"] = ckpt.h_row
        arrays["f_row"] = ckpt.f_row
    np.savez(path, **arrays)


def load_checkpoint(path: str | os.PathLike) -> ChainCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    with np.load(path) as data:
        best = BestCell(int(data["best"][0]), int(data["best"][1]), int(data["best"][2]))
        phantom = bool(data["phantom"])
        return ChainCheckpoint(
            row=int(data["row"]),
            h_row=None if phantom else data["h_row"].copy(),
            f_row=None if phantom else data["f_row"].copy(),
            best=best,
            elapsed_s=float(data["elapsed"]),
        )
