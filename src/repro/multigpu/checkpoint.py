"""Checkpoint/restart for chain runs — on disk and in shared memory.

Paper-scale comparisons run for hours; the system family supports stopping
and resuming a comparison at a matrix-row boundary.  A consistent
checkpoint of the chain is exactly the DP state of one full matrix row:

* the row index,
* the H and F values of that row across the *whole* width (compute mode),
* the best cell found so far,
* the virtual time already spent.

Nothing about in-flight borders needs saving because checkpoints are
taken with the pipeline drained (the run simply stops after a block-row
boundary; resuming re-fills the pipeline, whose cost is the fill time the
overlap model predicts).

:func:`save_checkpoint` / :func:`load_checkpoint` serialise to ``.npz``.

The same row-state idea powers live fault tolerance on the real-process
engines (INTERNALS.md section 9): every slab worker periodically
publishes its slab's slice of a block-row boundary — H/F values, best
cell, pruning counters — into a :class:`CheckpointArea`, a small
POSIX-shared-memory segment the *parent* owns, so the state survives any
worker's death.  After a failure the supervisor assembles the newest
row every slab published (:meth:`CheckpointArea.consistent_row` /
:meth:`CheckpointArea.assemble`), re-partitions the matrix across the
surviving workers, and resumes from that row under a :class:`RetryPolicy`
instead of aborting the whole comparison.
"""

from __future__ import annotations

import os
import struct
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from ..errors import CommError, ConfigError
from ..sw.constants import DTYPE
from ..sw.kernel import BestCell


@dataclass(frozen=True)
class ChainCheckpoint:
    """Resumable state at a matrix-row boundary (see module docstring)."""

    row: int                      #: rows [0, row) are done
    h_row: np.ndarray | None      #: H of row ``row-1`` across the full width
    f_row: np.ndarray | None      #: F of row ``row-1``
    best: BestCell                #: best cell over the completed rows
    elapsed_s: float              #: virtual time spent so far

    def __post_init__(self) -> None:
        if self.row <= 0:
            raise ConfigError("checkpoint row must be positive")
        if (self.h_row is None) != (self.f_row is None):
            raise ConfigError("h_row and f_row must both be present or absent")
        if self.elapsed_s < 0:
            raise ConfigError("elapsed_s must be >= 0")

    @property
    def phantom(self) -> bool:
        """True for timing-mode checkpoints (no DP state carried)."""
        return self.h_row is None


def _npz_path(path: str | os.PathLike) -> str:
    """The path ``np.savez`` actually writes for *path*.

    ``np.savez`` silently appends ``.npz`` to extension-less paths, so
    without normalisation ``load_checkpoint(p)`` fails with
    ``FileNotFoundError`` on the very path that was passed to
    ``save_checkpoint(p)``.  Both functions route through this helper so
    any spelling round-trips.
    """
    p = os.fspath(path)
    return p if p.endswith(".npz") else p + ".npz"


def save_checkpoint(path: str | os.PathLike, ckpt: ChainCheckpoint) -> None:
    """Serialise a checkpoint to an ``.npz`` file (the suffix is appended
    when *path* lacks it, matching what :func:`load_checkpoint` opens)."""
    arrays = dict(
        row=np.int64(ckpt.row),
        elapsed=np.float64(ckpt.elapsed_s),
        best=np.array([ckpt.best.score, ckpt.best.row, ckpt.best.col], dtype=np.int64),
        phantom=np.bool_(ckpt.phantom),
    )
    if not ckpt.phantom:
        arrays["h_row"] = ckpt.h_row
        arrays["f_row"] = ckpt.f_row
    np.savez(_npz_path(path), **arrays)


def load_checkpoint(path: str | os.PathLike) -> ChainCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint` under either
    spelling of the path (with or without the ``.npz`` suffix)."""
    exact = os.fspath(path)
    with np.load(exact if os.path.exists(exact) else _npz_path(path)) as data:
        best = BestCell(int(data["best"][0]), int(data["best"][1]), int(data["best"][2]))
        phantom = bool(data["phantom"])
        return ChainCheckpoint(
            row=int(data["row"]),
            h_row=None if phantom else data["h_row"].copy(),
            f_row=None if phantom else data["f_row"].copy(),
            best=best,
            elapsed_s=float(data["elapsed"]),
        )


# ---------------------------------------------------------------------------
# Live recovery: retry policy + shared-memory per-slab checkpoint area
# ---------------------------------------------------------------------------

#: Worker-raised exception types that re-executing cannot fix: the same
#: inputs would fail the same way, so the supervisor must not retry them.
_PERMANENT_MARKERS = ("ConfigError(", "PartitionError(")


@dataclass(frozen=True)
class RetryPolicy:
    """How the real-process supervisors respond to a failed attempt.

    ``max_restarts`` bounds how many times one comparison may be resumed
    (0 keeps the old fail-fast behaviour); between attempts the
    supervisor sleeps an exponential backoff.  Worker failures whose
    error text names a deterministic configuration error are classified
    *permanent* and never retried — re-dispatching the same bad inputs
    cannot succeed.
    """

    max_restarts: int = 0
    backoff_s: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigError("backoff times must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")

    def delay_s(self, restarts_done: int) -> float:
        """Backoff before restart number ``restarts_done + 1``."""
        return min(self.max_backoff_s,
                   self.backoff_s * self.backoff_multiplier ** restarts_done)

    @staticmethod
    def is_permanent(failure: str) -> bool:
        """True when *failure* (a worker error description) is one
        re-execution cannot fix (see :data:`_PERMANENT_MARKERS`)."""
        return any(marker in failure for marker in _PERMANENT_MARKERS)


#: Prefix of every segment this module creates (leak checks grep for it).
CHECKPOINT_NAME_PREFIX = "mgswckpt"

#: Per-entry header: row, score, best_row, best_col, checked, pruned.
_ENTRY_HEADER = struct.Struct("<qqqqqq")


@dataclass(frozen=True)
class SlabCheckpoint:
    """One slab's published row state: rows ``[0, row)`` of the slab are
    done, ``h``/``f`` are H and F of row ``row - 1`` across the slab."""

    slot: int
    row: int
    h: np.ndarray
    f: np.ndarray
    best: BestCell
    blocks_checked: int
    blocks_pruned: int


class CheckpointArea:
    """Shared-memory per-slab checkpoint board for the process engines.

    One POSIX-shared-memory segment, owned by the *parent*, holding a
    small ring of row-state entries per slab (``history`` deep, newest
    overwrites oldest).  Each slab worker publishes into its own ring on
    the global checkpoint ladder (every ``checkpoint_blocks`` block rows,
    plus the final row), so the rows published by different slabs line
    up and a full matrix row can be reassembled after a crash.

    Consistency argument — why post-mortem reads are safe:

    * each ring has exactly one writer (its worker), and the per-slab
      entry *count* is stored **last**, so a worker killed mid-publish
      (even SIGKILL) leaves the previously published entries intact and
      the torn entry invisible;
    * the supervisor only reads the area **after** every worker of the
      failed attempt has been joined or killed, so there are no
      concurrent writers at read time at all;
    * ``history`` is sized from the border-ring capacity: adjacent slabs
      can drift by at most ``capacity`` block rows, so the newest row of
      the laggard is always still present in every leader's ring.  If it
      ever is not (defence in depth), :meth:`consistent_row` returns 0
      and the run restarts from scratch — slower, never wrong.

    The object is spawn-safe (pickling ships only the segment name and
    geometry; children re-attach on unpickle and must :meth:`close`);
    the creator must :meth:`unlink`.
    """

    def __init__(self, widths: Sequence[int], *, history: int = 4,
                 label: str = "checkpoints") -> None:
        if not widths:
            raise CommError("checkpoint area needs at least one slab")
        if any(int(w) <= 0 for w in widths):
            raise CommError("slab widths must be positive")
        if history <= 0:
            raise CommError("checkpoint history must be positive")
        self.widths = tuple(int(w) for w in widths)
        self.n_slots = len(self.widths)
        self.history = int(history)
        self.label = label
        # Per-slab region: one int64 publish count, then `history` entries
        # of (header + H + F), each sized for that slab's width.
        self._entry_bytes = tuple(
            _ENTRY_HEADER.size + 2 * 4 * w for w in self.widths)
        self._offsets = []
        off = 0
        for eb in self._entry_bytes:
            self._offsets.append(off)
            off += 8 + self.history * eb
        name = f"{CHECKPOINT_NAME_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:12]}"
        self._shm = shared_memory.SharedMemory(name=name, create=True, size=off)
        self.name = self._shm.name
        self._owner = True
        self._closed = False
        for slot in range(self.n_slots):
            self._count_view(slot)[0] = 0

    def _count_view(self, slot: int) -> np.ndarray:
        return np.frombuffer(self._shm.buf, dtype=np.int64, count=1,
                             offset=self._offsets[slot])

    def _entry_offset(self, slot: int, index: int) -> int:
        return self._offsets[slot] + 8 + index * self._entry_bytes[slot]

    # -- pickling (spawn-safe hand-off to worker processes) -----------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_shm"] = None
        state["_owner"] = False
        state["_closed"] = False
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._shm = shared_memory.SharedMemory(name=self.name)

    # -- worker side ---------------------------------------------------------
    def publish(self, slot: int, row: int, h: np.ndarray, f: np.ndarray,
                best: BestCell, blocks_checked: int = 0,
                blocks_pruned: int = 0) -> None:
        """Publish *slot*'s state at *row* (single writer per slab ring).

        The entry payload is written first and the ring count last, so a
        writer killed at any point never corrupts an already-published
        entry (class docstring).
        """
        if not 0 <= slot < self.n_slots:
            raise CommError(
                f"{self.label}: slot {slot} outside [0, {self.n_slots})")
        w = self.widths[slot]
        if h.size != w or f.size != w:
            raise CommError(
                f"{self.label}: slot {slot} expects width {w}, "
                f"got H={h.size} F={f.size}")
        count = int(self._count_view(slot)[0])
        off = self._entry_offset(slot, count % self.history)
        buf = self._shm.buf
        _ENTRY_HEADER.pack_into(buf, off, int(row), int(best.score),
                                int(best.row), int(best.col),
                                int(blocks_checked), int(blocks_pruned))
        view = np.frombuffer(buf, dtype=DTYPE, count=2 * w,
                             offset=off + _ENTRY_HEADER.size)
        view[:w] = h
        view[w:] = f
        del view
        self._count_view(slot)[0] = count + 1  # count last: commit point

    # -- supervisor side (read only after the attempt is torn down) ----------
    def entries(self, slot: int) -> list[SlabCheckpoint]:
        """Valid entries of *slot*'s ring, oldest first."""
        if not 0 <= slot < self.n_slots:
            raise CommError(
                f"{self.label}: slot {slot} outside [0, {self.n_slots})")
        count = int(self._count_view(slot)[0])
        valid = min(count, self.history)
        out = []
        w = self.widths[slot]
        for k in range(count - valid, count):
            off = self._entry_offset(slot, k % self.history)
            row, score, brow, bcol, checked, pruned = _ENTRY_HEADER.unpack_from(
                self._shm.buf, off)
            view = np.frombuffer(self._shm.buf, dtype=DTYPE, count=2 * w,
                                 offset=off + _ENTRY_HEADER.size)
            out.append(SlabCheckpoint(
                slot=slot, row=int(row), h=view[:w].copy(), f=view[w:].copy(),
                best=BestCell(int(score), int(brow), int(bcol)),
                blocks_checked=int(checked), blocks_pruned=int(pruned)))
        return out

    def newest_row(self, slot: int) -> int:
        """The newest row *slot* published (0 before any publish)."""
        entries = self.entries(slot)
        return entries[-1].row if entries else 0

    def consistent_row(self) -> int:
        """Newest matrix row present in **every** slab's ring (0 if none).

        This is the resume point: rows ``[0, consistent_row())`` are
        fully captured across the whole width, so the chain can restart
        there with any new partition.
        """
        common: set[int] | None = None
        for slot in range(self.n_slots):
            rows = {e.row for e in self.entries(slot)}
            common = rows if common is None else common & rows
            if not common:
                return 0
        return max(common) if common else 0

    def assemble(self, row: int) -> tuple[np.ndarray, np.ndarray, BestCell, int, int]:
        """Full-width DP state at *row*: ``(H, F, best, checked, pruned)``.

        H/F are the concatenated per-slab slices of matrix row
        ``row - 1``; *best* is the best cell over every published entry
        (monotone, so folding newer-than-*row* bests is safe — any cell
        they name was truly scored); the counters sum the per-slab work
        retained at *row*.
        """
        h_parts, f_parts = [], []
        best = BestCell.none()
        checked = pruned = 0
        for slot in range(self.n_slots):
            entries = self.entries(slot)
            at_row = [e for e in entries if e.row == row]
            if not at_row:
                raise CommError(
                    f"{self.label}: slab {slot} has no entry at row {row}")
            h_parts.append(at_row[-1].h)
            f_parts.append(at_row[-1].f)
            checked += at_row[-1].blocks_checked
            pruned += at_row[-1].blocks_pruned
            for e in entries:
                if e.best.better_than(best):
                    best = e.best
        return (np.concatenate(h_parts), np.concatenate(f_parts),
                best, checked, pruned)

    def best_overall(self) -> BestCell:
        """Best cell over every published entry of every slab."""
        best = BestCell.none()
        for slot in range(self.n_slots):
            for e in self.entries(slot):
                if e.best.better_than(best):
                    best = e.best
        return best

    # -- teardown ------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed or self._shm is None:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS (creator only; idempotent)."""
        if not self._owner or self._shm is None:
            return
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._owner = False

    def __enter__(self) -> "CheckpointArea":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()
