"""Shared-memory border ring: the real-world analogue of :mod:`.ringbuf`.

:class:`~repro.comm.ringbuf.SimRingBuffer` models the paper's host
circular buffer on a virtual clock; this module is the same bounded-FIFO
discipline over **real** OS shared memory, used by the real-process chain
(:mod:`repro.multigpu.procchain`) to move H/E border columns between slab
workers without pickling or pipe copies.

Design
------
One :class:`ShmRing` connects exactly one producer process to one
consumer process (slab *g* -> slab *g+1*), mirroring the paper's one
buffer per GPU boundary.  The ring is a single
:class:`multiprocessing.shared_memory.SharedMemory` segment holding
``capacity`` fixed-size slots; each slot carries one border message::

    [ rows : int64 | corner : int64 | H : rows * int32 | E : rows * int32 ]

Flow control is two counting semaphores (the classic single-producer /
single-consumer construction):

* ``free``   — starts at ``capacity``; the producer acquires one per
  ``send_border`` (blocking while the ring is full),
* ``filled`` — starts at 0; the consumer acquires one per
  ``recv_border`` (blocking while the ring is empty).

Because each side is a single process, the write and read cursors need no
locking: each side advances its own private cursor after the matching
semaphore acquire, and the semaphores guarantee the cursors never cross.
Messages are therefore delivered in FIFO order with release/acquire
ordering (the semaphore pair is the ordering fence), and the producer can
run ahead of the consumer by up to ``capacity`` border segments — exactly
the overlap-window semantics of the simulated ring.

Robustness: both operations accept a timeout and raise
:class:`~repro.errors.CommError` when it expires — a crashed peer
surfaces as a timeout on the survivor's side rather than a hang.  The
*creating* process owns the segment and must call :meth:`unlink` (the
chain drivers do so in a ``finally``); attached processes only ever
:meth:`close` their mapping.

The object is spawn-safe: pickling it (as a ``Process`` argument) ships
only the segment name and the semaphores, and the child re-attaches on
unpickle.
"""

from __future__ import annotations

import os
import struct
import uuid
from multiprocessing import shared_memory

import numpy as np

from ..errors import CommError
from ..sw.constants import DTYPE

#: Per-slot header: rows (int64) then corner (int64).
HEADER_BYTES = 16
HEADER_STRUCT = struct.Struct("<qq")

#: Prefix of every segment this module creates (leak checks grep for it).
SHM_NAME_PREFIX = "mgswring"


def list_segments(prefix: str = SHM_NAME_PREFIX) -> list[str]:
    """Names of live POSIX shared-memory segments starting with *prefix*.

    Linux exposes them as ``/dev/shm`` entries; on platforms without that
    directory the check degrades to "none visible" rather than failing.
    Used by teardown tests and the CI leak check to assert that every
    ``mgswring``/``mgswboard``/``mgswbeat``/``mgswckpt`` segment is gone
    after a run.
    """
    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith(prefix))
    except OSError:  # pragma: no cover - non-Linux
        return []


def slot_bytes_for(max_rows: int) -> int:
    """Size of one slot holding up to *max_rows* border rows (H + E int32)."""
    if max_rows <= 0:
        raise CommError("max_rows must be positive")
    return HEADER_BYTES + 2 * 4 * max_rows


class ShmRing:
    """Bounded SPSC FIFO of border messages in POSIX shared memory.

    Parameters
    ----------
    ctx:
        A ``multiprocessing`` context (fork or spawn); supplies the
        semaphores so they match the start method of the worker processes.
    capacity:
        Number of slots — how far the producer may run ahead.
    max_rows:
        Largest border column (in rows) one message may carry; the block
        row height of the run bounds this.
    label:
        Human-readable name used in error messages.
    """

    def __init__(self, ctx, capacity: int, max_rows: int, *, label: str = "shmring") -> None:
        if capacity <= 0:
            raise CommError("ring capacity must be positive")
        self.capacity = capacity
        self.max_rows = max_rows
        self.slot_bytes = slot_bytes_for(max_rows)
        self.label = label
        name = f"{SHM_NAME_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:12]}"
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=capacity * self.slot_bytes)
        self.name = self._shm.name
        self._free = ctx.Semaphore(capacity)
        self._filled = ctx.Semaphore(0)
        self._wpos = 0  # producer-private slot cursor
        self._rpos = 0  # consumer-private slot cursor
        self._owner = True
        self._closed = False
        self.sent = 0
        self.received = 0

    # -- pickling (spawn-safe hand-off to worker processes) -----------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_shm"] = None
        state["_owner"] = False
        state["_closed"] = False
        return state

    def __setstate__(self, state):
        # Re-attach in the worker process.  CPython < 3.13 registers the
        # attach with the (shared) resource tracker too; that is harmless
        # here — the tracker's cache is a set, so the duplicate collapses
        # and the creator's unlink() removes the single entry.
        self.__dict__.update(state)
        self._shm = shared_memory.SharedMemory(name=self.name)

    # -- producer side -------------------------------------------------------
    def send_border(self, h: np.ndarray, e: np.ndarray, corner: int,
                    timeout: float | None = None) -> None:
        """Copy one ``(H, E, corner)`` border message into the next slot.

        Blocks while the ring is full; raises :class:`CommError` after
        *timeout* seconds (``None`` blocks forever).
        """
        rows = int(h.size)
        if rows == 0 or rows > self.max_rows:
            raise CommError(
                f"{self.label}: message of {rows} rows outside (0, {self.max_rows}]")
        if e.size != rows:
            raise CommError(f"{self.label}: H and E lengths differ")
        if not self._free.acquire(timeout=timeout):
            raise CommError(
                f"{self.label}: send timed out after {timeout}s (ring full; "
                f"consumer stalled or dead)")
        off = (self._wpos % self.capacity) * self.slot_bytes
        buf = self._shm.buf
        HEADER_STRUCT.pack_into(buf, off, rows, int(corner))
        view = np.frombuffer(buf, dtype=DTYPE, count=2 * rows,
                             offset=off + HEADER_BYTES)
        view[:rows] = h
        view[rows:] = e
        del view
        self._wpos += 1
        self.sent += 1
        self._filled.release()

    # -- consumer side -------------------------------------------------------
    def recv_border(self, timeout: float | None = None) -> tuple[np.ndarray, np.ndarray, int]:
        """Next ``(H, E, corner)`` message, copied out of shared memory.

        Blocks while the ring is empty; raises :class:`CommError` after
        *timeout* seconds (``None`` blocks forever).
        """
        if not self._filled.acquire(timeout=timeout):
            raise CommError(
                f"{self.label}: recv timed out after {timeout}s (ring empty; "
                f"producer stalled or dead)")
        off = (self._rpos % self.capacity) * self.slot_bytes
        buf = self._shm.buf
        rows, corner = HEADER_STRUCT.unpack_from(buf, off)
        if rows <= 0 or rows > self.max_rows:
            raise CommError(f"{self.label}: corrupt slot header (rows={rows})")
        view = np.frombuffer(buf, dtype=DTYPE, count=2 * rows,
                             offset=off + HEADER_BYTES)
        h = view[:rows].copy()
        e = view[rows:].copy()
        del view
        self._rpos += 1
        self.received += 1
        self._free.release()
        return h, e, int(corner)

    # -- teardown ------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed or self._shm is None:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS (creator only; idempotent)."""
        if not self._owner or self._shm is None:
            return
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._owner = False

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()
