"""Border channel between neighbouring GPUs: D2H → host ring → H2D.

The paper's communication path for one border segment is:

1. the producer GPU's async copy engine moves the segment to a free slot
   of a **host circular buffer** (D2H over the producer's PCIe link);
2. a CPU thread hands the slot to the consumer side;
3. the consumer GPU's copy engine pulls it in (H2D over its own link),
   freeing the slot.

:class:`BorderChannel` models exactly that: a slot semaphore (the circular
buffer's capacity), the two PCIe hops charged to each GPU's copy engines,
and a small device-side ring on each end so transfers overlap compute
(double buffering).  Setting ``capacity=1`` and/or using the synchronous
send/recv paths degenerates to rendezvous communication — the ablations.

Segments are opaque to the channel except for their byte size; in
compute mode they carry real ``(h_right, e_right, corner)`` arrays, in
timing mode just metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..device.engine import Engine, Semaphore
from ..device.gpu import SimulatedGPU
from ..errors import CommError
from .ringbuf import SimRingBuffer


@dataclass(frozen=True)
class BorderSegment:
    """One block row's border: payload plus transfer-size accounting."""

    index: int          #: block-row index this border belongs to
    nbytes: int         #: transfer size (H + E columns, plus the corner)
    payload: Any = None  #: real border arrays in compute mode, None in timing mode


class BorderChannel:
    """One directed link from GPU ``src`` to GPU ``dst`` (see module doc)."""

    def __init__(
        self,
        engine: Engine,
        src: SimulatedGPU,
        dst: SimulatedGPU,
        *,
        capacity: int = 4,
        device_slots: int = 2,
        label: str = "",
    ) -> None:
        if capacity <= 0:
            raise CommError("channel capacity must be positive")
        if device_slots <= 0:
            raise CommError("device_slots must be positive")
        self.engine = engine
        self.src = src
        self.dst = dst
        self.label = label or f"ch{src.index}->{dst.index}"
        self.host_slots = Semaphore(engine, capacity, f"{self.label}.slots")
        self.host_ring = SimRingBuffer(engine, capacity, f"{self.label}.host")
        # Device-side staging: producer output slots and consumer input ring.
        self.src_out_slots = Semaphore(engine, device_slots, f"{self.label}.srcout")
        self.dst_in_ring = SimRingBuffer(engine, device_slots, f"{self.label}.dstin")
        self.segments_sent = 0
        self.segments_received = 0

    # -- asynchronous path (the paper's mechanism) ---------------------------
    def reserve_out_slot(self):
        """Process step for the producer: wait for a device output slot.

        The producer GPU acquires a slot *before* computing a block row so
        its compute stalls only when the whole buffering chain (device
        slots + host circular buffer) is full — exactly the backpressure
        the real system has.
        """
        return self.src_out_slots.acquire()

    def sender(self, segment: BorderSegment):
        """Process: stage one segment out (D2H, then into the host ring).

        Spawn one per block row; FIFO order is preserved by the engine's
        deterministic scheduling plus the copy-engine lock.
        """
        yield self.host_slots.acquire()
        yield from self.src.copy_to_host(segment.nbytes)
        self.src_out_slots.release()
        yield self.host_ring.put(segment)
        self.segments_sent += 1

    def receiver_pump(self, total_segments: int):
        """Process: continuously pull segments to the consumer's device.

        Runs for the lifetime of the transfer (one per channel): host ring
        → H2D on the destination GPU → device input ring.  The consumer's
        compute loop takes from :attr:`dst_in_ring`.
        """
        for _ in range(total_segments):
            segment = yield self.host_ring.get()
            yield from self.dst.copy_to_device(segment.nbytes)
            self.host_slots.release()
            yield self.dst_in_ring.put(segment)
            self.segments_received += 1

    def consume(self):
        """Event for the consumer's compute loop: the next border segment."""
        return self.dst_in_ring.get()

    def aux_processes(self, total_segments: int):
        """Extra processes a channel variant needs (none for intra-node);
        the chain engine spawns everything this yields."""
        return iter(())

    # -- synchronous path (ablation) ----------------------------------------
    def send_sync(self, segment: BorderSegment):
        """Process: blocking send — the producer stalls through D2H and
        until the host slot is free (no overlap)."""
        yield self.host_slots.acquire()
        yield from self.src.copy_to_host(segment.nbytes)
        self.src_out_slots.release()
        yield self.host_ring.put(segment)
        self.segments_sent += 1

    def recv_sync(self):
        """Process: blocking receive — the consumer stalls through H2D."""
        segment = yield self.host_ring.get()
        yield from self.dst.copy_to_device(segment.nbytes)
        self.host_slots.release()
        self.segments_received += 1
        return segment
