"""Circular buffer — the paper's mechanism for hiding communication.

Border columns produced by GPU *g* are consumed by GPU *g+1* at a
(generally different) rate.  A bounded circular buffer between them lets
the producer run ahead by up to ``capacity`` segments, absorbing rate
jitter; a capacity of 1 degenerates to synchronous rendezvous (every
border handoff stalls one side), which is exactly the ablation experiment
X1 measures.

Two implementations share the FIFO semantics:

* :class:`RingBuffer` — a plain in-memory circular buffer (fixed-size
  slot array, head/tail indices), used directly by unit and property
  tests and anywhere no virtual time is involved.
* :class:`SimRingBuffer` — the same discipline on the virtual clock:
  ``put``/``get`` return engine events that block while the buffer is
  full/empty, and the time each side spends blocked is recorded — the
  overlap experiments read precisely these counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import BufferClosed, CommError
from ..device.engine import Engine, Event


class RingBuffer:
    """Bounded FIFO over a fixed slot array (no simulation semantics).

    ``push`` raises when full and ``pop`` when empty — callers own the
    flow control.  This mirrors how the real system lays out host memory:
    segments are written in place into pre-allocated slots.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise CommError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._slots: list[Any] = [None] * capacity
        self._head = 0  # next slot to pop
        self._size = 0
        self.pushed = 0
        self.popped = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    @property
    def empty(self) -> bool:
        return self._size == 0

    def push(self, item: Any) -> None:
        if self.full:
            raise CommError("push into full ring buffer")
        self._slots[(self._head + self._size) % self.capacity] = item
        self._size += 1
        self.pushed += 1
        self.peak_occupancy = max(self.peak_occupancy, self._size)

    def pop(self) -> Any:
        if self.empty:
            raise CommError("pop from empty ring buffer")
        item = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._size -= 1
        self.popped += 1
        return item


@dataclass
class RingStats:
    """Blocking accounting for one simulated ring buffer."""

    producer_blocked_s: float = 0.0
    consumer_blocked_s: float = 0.0
    puts: int = 0
    gets: int = 0
    peak_occupancy: int = 0


class SimRingBuffer:
    """Blocking circular buffer on the virtual clock.

    Usage from engine processes::

        yield ring.put(segment)     # blocks while full
        segment = yield ring.get()  # blocks while empty

    ``close()`` wakes every waiting getter with :class:`BufferClosed` once
    the buffer drains; a closed buffer rejects further puts.
    """

    def __init__(self, engine: Engine, capacity: int, label: str = "ring") -> None:
        if capacity <= 0:
            raise CommError("ring buffer capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.label = label
        self._ring = RingBuffer(capacity)
        self._put_waiters: list[tuple[Event, Any, float]] = []
        self._get_waiters: list[tuple[Event, float]] = []
        self._closed = False
        self.stats = RingStats()

    def __len__(self) -> int:
        return len(self._ring)

    # -- producer side -----------------------------------------------------
    def put(self, item: Any) -> Event:
        """Event that fires when *item* has entered the buffer."""
        if self._closed:
            raise BufferClosed(f"{self.label}: put after close")
        evt = self.engine.event(f"{self.label}.put")
        if not self._ring.full:
            self._deliver(item)
            evt.succeed()
        else:
            self._put_waiters.append((evt, item, self.engine.now))
        return evt

    # -- consumer side -------------------------------------------------------
    def get(self) -> Event:
        """Event carrying the next item; blocks (virtually) while empty."""
        evt = self.engine.event(f"{self.label}.get")
        if not self._ring.empty:
            evt.succeed(self._take())
        elif self._closed:
            evt.fail(BufferClosed(f"{self.label}: closed and drained"))
        else:
            self._get_waiters.append((evt, self.engine.now))
        return evt

    def close(self) -> None:
        """No more puts; waiting getters fail once the buffer is drained."""
        self._closed = True
        if self._ring.empty:
            for evt, _t0 in self._get_waiters:
                evt.fail(BufferClosed(f"{self.label}: closed and drained"))
            self._get_waiters.clear()

    # -- internals -----------------------------------------------------------
    def _deliver(self, item: Any) -> None:
        if self._get_waiters:
            evt, t0 = self._get_waiters.pop(0)
            self.stats.consumer_blocked_s += self.engine.now - t0
            self.stats.puts += 1
            self.stats.gets += 1
            evt.succeed(item)
        else:
            self._ring.push(item)
            self.stats.puts += 1
            self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._ring))

    def _take(self) -> Any:
        item = self._ring.pop()
        self.stats.gets += 1
        if self._put_waiters:
            evt, pending, t0 = self._put_waiters.pop(0)
            self.stats.producer_blocked_s += self.engine.now - t0
            self._ring.push(pending)
            self.stats.puts += 1
            self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._ring))
            evt.succeed()
        elif self._closed and self._ring.empty:
            for evt, _t0 in self._get_waiters:
                evt.fail(BufferClosed(f"{self.label}: closed and drained"))
            self._get_waiters.clear()
        return item
