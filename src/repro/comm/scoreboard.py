"""Best-score scoreboards: the shared state behind distributed pruning.

Block pruning (:mod:`repro.sw.pruning`) compares a block's score upper
bound against the best alignment score found *anywhere* so far.  On one
device that is a local variable; across a chain of engines it is shared
state, and this module provides it in two flavours behind one interface:

* :class:`LocalScoreboard` — a plain in-process maximum, used by the
  simulated :class:`~repro.multigpu.chain.MultiGpuChain` whose device
  processes all run inside one event loop;
* :class:`SharedScoreboard` — a lock-free shared-memory scoreboard for
  the real-process engines (:func:`~repro.multigpu.procchain.align_multi_process`
  and the persistent :class:`~repro.multigpu.pool.WorkerPool`).

Why lock-free is safe here
--------------------------
The scoreboard holds **one int64 slot per worker** in a single
:class:`multiprocessing.shared_memory.SharedMemory` segment.  Every slot
has exactly one writer (its worker), so a publish is a plain aligned
8-byte store — no read-modify-write race exists, and each slot is
monotonically non-decreasing because the writer only stores strictly
larger values (*compare-and-raise*).  Readers take the max over all
slots without any synchronisation, so a read may be **stale** (miss a
publish in flight) but never *wrong*: every value ever stored is the
score of a real alignment, hence a legal lower bound of the final
optimum.

Staleness is exactly what makes distributed pruning exact: the pruning
criterion skips a block only when its upper bound cannot beat the best
score read from the scoreboard.  A lagged read under-estimates the true
best, which can only make the criterion *more* conservative — a stale
scoreboard prunes less, never wrongly.  (INTERNALS.md section 7 gives
the full argument.)

Because there are no locks or blocking operations anywhere, a worker
that dies mid-publish cannot wedge any reader: the surviving workers
keep reading whatever the dead worker last stored (an aligned int64
store is indivisible on the supported platforms, so no torn value is
ever observed).  The failure-injection tests in
``tests/test_scoreboard.py`` exercise exactly this.
"""

from __future__ import annotations

import os
import uuid
from multiprocessing import shared_memory

import numpy as np

from ..errors import CommError

#: Prefix of every segment this module creates (leak checks grep for it).
SCOREBOARD_NAME_PREFIX = "mgswboard"

#: Bytes per worker slot (one int64).
SLOT_BYTES = 8


class LocalScoreboard:
    """In-process scoreboard: a monotonic best-score maximum.

    Mirrors :class:`SharedScoreboard`'s interface so the simulated chain
    and the real-process engines share one pruning code path.  The
    ``slot`` argument is accepted for parity and ignored — all callers
    live in one process, so a single maximum suffices.
    """

    __slots__ = ("_best",)

    def __init__(self) -> None:
        self._best = 0

    def publish(self, slot: int, score: int) -> None:
        """Raise the scoreboard to *score* if it improves (monotonic)."""
        if score > self._best:
            self._best = score

    def read(self) -> int:
        """The best score published so far (0 before any publish)."""
        return self._best

    def reset(self) -> None:
        """Forget every published score (between comparisons)."""
        self._best = 0


class SharedScoreboard:
    """Lock-free cross-process scoreboard: one int64 slot per worker.

    Parameters
    ----------
    n_slots:
        Number of writer slots — one per slab worker.  Each worker must
        publish only to its own slot (the single-writer invariant that
        makes the design lock-free; see the module docstring).
    label:
        Human-readable name used in error messages.

    The object is spawn-safe: pickling it (as a ``Process`` argument)
    ships only the segment name, and the child re-attaches on unpickle.
    The creating process owns the segment and must call :meth:`unlink`;
    attached processes only ever :meth:`close` their mapping.
    """

    def __init__(self, n_slots: int, *, label: str = "scoreboard") -> None:
        if n_slots <= 0:
            raise CommError("scoreboard needs at least one slot")
        self.n_slots = n_slots
        self.label = label
        name = f"{SCOREBOARD_NAME_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:12]}"
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=n_slots * SLOT_BYTES)
        self.name = self._shm.name
        self._owner = True
        self._closed = False
        self._slots().fill(0)

    def _slots(self) -> np.ndarray:
        return np.frombuffer(self._shm.buf, dtype=np.int64, count=self.n_slots)

    # -- pickling (spawn-safe hand-off to worker processes) -----------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_shm"] = None
        state["_owner"] = False
        state["_closed"] = False
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._shm = shared_memory.SharedMemory(name=self.name)

    # -- the scoreboard ------------------------------------------------------
    def publish(self, slot: int, score: int) -> None:
        """Compare-and-raise *slot* to *score* (single writer per slot).

        A plain aligned store — never blocks, never takes a lock, so a
        publisher can die at any point without affecting anyone else.
        """
        if not 0 <= slot < self.n_slots:
            raise CommError(
                f"{self.label}: slot {slot} outside [0, {self.n_slots})")
        slots = self._slots()
        if score > int(slots[slot]):
            slots[slot] = score

    def read(self) -> int:
        """Max over all slots, clamped to >= 0 (read-mostly, non-blocking).

        May lag concurrent publishes — safe by monotonicity (module
        docstring): a stale best only prunes less, never wrongly.
        """
        return max(0, int(self._slots().max()))

    def reset(self) -> None:
        """Zero every slot (creator only, between comparisons — callers
        must ensure no comparison is in flight)."""
        self._slots().fill(0)

    # -- teardown ------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed or self._shm is None:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS (creator only; idempotent)."""
        if not self._owner or self._shm is None:
            return
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._owner = False

    def __enter__(self) -> "SharedScoreboard":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()
