"""Inter-node border channel: D2H → NIC → NIC → H2D.

The paper runs its chain inside one host; its natural extension (and the
direction the system family later took) is a chain spanning *nodes*, where
a border segment crossing a host boundary additionally traverses the
network.  :class:`InterNodeChannel` models that path:

1. producer GPU D2H into the sender-side host ring (as intra-node),
2. a relay process moves the segment across a shared :class:`NetworkLink`
   (bandwidth + latency, serialised per link),
3. the segment lands in the receiver-side host ring,
4. the consumer GPU's pump performs the H2D (as intra-node).

The interface matches :class:`~repro.comm.channel.BorderChannel`, so the
chain engine treats both identically; the extra hop simply raises the
channel's per-segment cost — and therefore the minimum slab width at which
communication still hides.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.engine import Engine, Semaphore
from ..device.gpu import SimulatedGPU
from ..errors import CommError
from .channel import BorderChannel
from .ringbuf import SimRingBuffer


@dataclass(frozen=True)
class NetworkLink:
    """One NIC-to-NIC link shared by every channel crossing it."""

    gbps: float
    latency_s: float = 20e-6
    name: str = "net"

    def __post_init__(self) -> None:
        if self.gbps <= 0:
            raise CommError("network bandwidth must be positive")
        if self.latency_s < 0:
            raise CommError("network latency must be >= 0")

    def transfer_time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise CommError("nbytes must be >= 0")
        return self.latency_s + nbytes / (self.gbps * 1e9)


class InterNodeChannel(BorderChannel):
    """A border channel whose segments additionally cross a network link."""

    def __init__(
        self,
        engine: Engine,
        src: SimulatedGPU,
        dst: SimulatedGPU,
        link: NetworkLink,
        *,
        capacity: int = 4,
        device_slots: int = 2,
        label: str = "",
    ) -> None:
        super().__init__(engine, src, dst, capacity=capacity,
                         device_slots=device_slots, label=label)
        self.link = link
        # Receiver-side host ring; the base class's host_ring is the
        # sender-side staging area.
        self.recv_ring = SimRingBuffer(engine, capacity, f"{self.label}.recv")
        self.recv_slots = Semaphore(engine, capacity, f"{self.label}.recvslots")
        self._net_lock = Semaphore(engine, 1, f"{self.label}.netlock")
        self.net_busy_s = 0.0

    def relay(self, total_segments: int):
        """Process: move segments across the network link (spawn one)."""
        for _ in range(total_segments):
            segment = yield self.host_ring.get()
            yield self.recv_slots.acquire()
            yield self._net_lock.acquire()
            duration = self.link.transfer_time(segment.nbytes)
            start = self.engine.now
            yield self.engine.timeout(duration, f"{self.label} net {segment.nbytes}B")
            self.net_busy_s += self.engine.now - start
            self._net_lock.release()
            self.host_slots.release()
            yield self.recv_ring.put(segment)

    def receiver_pump(self, total_segments: int):
        """Process: receiver-side H2D from the receive ring."""
        for _ in range(total_segments):
            segment = yield self.recv_ring.get()
            yield from self.dst.copy_to_device(segment.nbytes)
            self.recv_slots.release()
            yield self.dst_in_ring.put(segment)
            self.segments_received += 1

    def aux_processes(self, total_segments: int):
        """Extra processes this channel needs (the network relay)."""
        yield self.relay(total_segments)

    def recv_sync(self):
        """Synchronous receive across the network (ablation path)."""
        segment = yield self.host_ring.get()
        duration = self.link.transfer_time(segment.nbytes)
        yield self.engine.timeout(duration)
        self.host_slots.release()
        yield from self.dst.copy_to_device(segment.nbytes)
        self.segments_received += 1
        return segment

    def segment_cost(self, nbytes: int, *, pipelined: bool = True) -> float:
        """Per-segment steady-state cost including the network hop."""
        d2h = self.src.spec.transfer_time(nbytes)
        h2d = self.dst.spec.transfer_time(nbytes)
        net = self.link.transfer_time(nbytes)
        return max(d2h, net, h2d) if pipelined else d2h + net + h2d
