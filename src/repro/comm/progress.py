"""Shared-memory progress board: live worker heartbeats for the watchdog.

The real-process engines detect a *dead* worker quickly (the parent polls
``Process.is_alive``), but a worker that is merely *stuck* — wedged on a
border that will never arrive, spinning in a kernel, or starved by the
scheduler — looks healthy until its border timeout finally fires.  The
:class:`ProgressBoard` closes that gap: every slab worker publishes
``(rows_done, phase, last_beat)`` into its own slot of a small
POSIX-shared-memory segment (the same single-writer layout as the pruning
:class:`~repro.comm.scoreboard.SharedScoreboard` that lives next to it),
and a parent-side watchdog (:class:`repro.obs.heartbeat.HeartbeatMonitor`)
reads the board without any synchronisation.

Why lock-free reads are safe here
---------------------------------
Each slot has exactly one writer (its worker), every field is an aligned
8-byte store, and the *beat timestamp is stored last*: a reader that sees
a fresh timestamp therefore sees row/phase values at least as fresh as
the previous beat.  ``rows_done`` is monotonically non-decreasing and the
timestamps come from ``time.monotonic()`` (CLOCK_MONOTONIC — system-wide
on the supported platforms), so "how long has this worker been silent"
is a plain subtraction in the parent, immune to wall-clock steps.  A
stale read can only *under*-report progress, which makes the watchdog
conservative — it may flag a worker a poll late, never wrongly early by
more than the poll interval.

Single-host clock domain
------------------------
``time.monotonic()`` (CLOCK_MONOTONIC) is system-wide *within one host*
but has an arbitrary, boot-relative epoch: beat timestamps from two
different machines are **not comparable**, and neither are readings
taken on one host against beats stored on another.  Every consumer in
this repository (heartbeat watchdog, rate samplers, time-series
sampler) runs in the same host's process tree as the writers, so the
subtraction in :meth:`ProgressSample.silent_s` is well-defined — and it
still clamps at zero, because even same-host readers can race one
in-flight store and observe a beat "from the future" by a few
microseconds.  A future cross-node replication layer (ROADMAP item 1's
gossip protocol) must therefore ship *derived* quantities (rows done,
phase, seconds-of-silence measured by the origin host), never raw beat
timestamps; :meth:`ProgressBoard.__setstate__` asserts the same-host
invariant at unpickle time so a violation fails loudly instead of
producing nonsense silence readings.
"""

from __future__ import annotations

import os
import platform
import time
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import CommError

#: Prefix of every segment this module creates (leak checks grep for it).
PROGRESS_NAME_PREFIX = "mgswbeat"

#: Worker phases, in the order they occur inside one block row.  The
#: board stores the index; readers translate back through this tuple.
#: ``warmup`` (appended last to keep older encodings stable) marks the
#: one-time per-process JIT compile of the compiled kernel backend —
#: rate samplers treat it like ``idle``: no rows are advancing.
PHASES = ("idle", "wait", "compute", "pruned", "send", "done", "checkpoint",
          "warmup")

#: Bytes per worker slot: rows_done (int64) + phase (int64) + beat (float64).
SLOT_BYTES = 24


@dataclass(frozen=True)
class ProgressSample:
    """One slot's state as read by the parent (possibly slightly stale)."""

    worker: int
    rows_done: int
    phase: str
    last_beat: float  #: ``time.monotonic()`` of the last beat; 0.0 = never

    @property
    def started(self) -> bool:
        return self.last_beat > 0.0

    def silent_s(self, now: float | None = None) -> float:
        """Seconds since the last beat (0.0 for a worker that never beat).

        Clamped at zero: a reader racing an in-flight beat store (or
        handed a *now* captured just before the beat) can see a
        timestamp slightly in the future, and "negative silence" must
        never propagate into stall math.  Beat timestamps are only
        comparable within one host (module docstring) — a genuinely
        cross-host reading would be rejected at unpickle time by
        :meth:`ProgressBoard.__setstate__` long before reaching here.
        """
        if not self.started:
            return 0.0
        return max(0.0, (time.monotonic() if now is None else now) - self.last_beat)


class ProgressBoard:
    """Lock-free cross-process heartbeat board: one slot per worker.

    Mirrors :class:`~repro.comm.scoreboard.SharedScoreboard`'s lifecycle:
    the object is spawn-safe (pickling ships only the segment name; the
    child re-attaches on unpickle), the creator owns the segment and must
    :meth:`unlink` it, attached processes only :meth:`close` their
    mapping.
    """

    def __init__(self, n_slots: int, *, label: str = "progress") -> None:
        if n_slots <= 0:
            raise CommError("progress board needs at least one slot")
        self.n_slots = n_slots
        self.label = label
        #: Host that owns the clock domain of every beat timestamp —
        #: checked on unpickle (module docstring: monotonic clocks do
        #: not compare across hosts).
        self.host = platform.node()
        name = f"{PROGRESS_NAME_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:12]}"
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=n_slots * SLOT_BYTES)
        self.name = self._shm.name
        self._owner = True
        self._closed = False
        self._rows_view().fill(0)
        self._phases_view().fill(0)
        self._beats_view().fill(0.0)

    # Three parallel arrays in one segment: all int64/float64 stores are
    # aligned 8-byte writes (the single-writer lock-free contract).
    def _rows_view(self) -> np.ndarray:
        return np.frombuffer(self._shm.buf, dtype=np.int64, count=self.n_slots)

    def _phases_view(self) -> np.ndarray:
        return np.frombuffer(self._shm.buf, dtype=np.int64, count=self.n_slots,
                             offset=8 * self.n_slots)

    def _beats_view(self) -> np.ndarray:
        return np.frombuffer(self._shm.buf, dtype=np.float64, count=self.n_slots,
                             offset=16 * self.n_slots)

    # -- pickling (spawn-safe hand-off to worker processes) -----------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_shm"] = None
        state["_owner"] = False
        state["_closed"] = False
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Same-host invariant: beat timestamps are time.monotonic()
        # readings, whose epoch is boot-relative — comparable only
        # within the creating host.  A board shipped to another machine
        # (e.g. by a future cross-node gossip layer, ROADMAP item 1)
        # must replicate derived state instead of attaching here.
        here = platform.node()
        if self.host != here:
            raise CommError(
                f"{self.label}: progress board created on host "
                f"{self.host!r} cannot attach on {here!r} — monotonic "
                "beat timestamps are not comparable across hosts "
                "(replicate derived progress, not the raw board)")
        self._shm = shared_memory.SharedMemory(name=self.name)

    # -- the board -----------------------------------------------------------
    def beat(self, slot: int, rows_done: int, phase: str) -> None:
        """Publish this worker's progress (single writer per slot).

        ``rows_done`` must be non-decreasing per slot; the beat timestamp
        is stored *last* so readers never see a fresh beat with stale
        row/phase values (module docstring).
        """
        if not 0 <= slot < self.n_slots:
            raise CommError(
                f"{self.label}: slot {slot} outside [0, {self.n_slots})")
        try:
            code = PHASES.index(phase)
        except ValueError:
            raise CommError(
                f"{self.label}: unknown phase {phase!r}; expected one of {PHASES}"
            ) from None
        self._rows_view()[slot] = int(rows_done)
        self._phases_view()[slot] = code
        self._beats_view()[slot] = time.monotonic()

    def read(self, slot: int) -> ProgressSample:
        """One slot's state (non-blocking; may lag by one store)."""
        if not 0 <= slot < self.n_slots:
            raise CommError(
                f"{self.label}: slot {slot} outside [0, {self.n_slots})")
        return ProgressSample(
            worker=slot,
            rows_done=int(self._rows_view()[slot]),
            phase=PHASES[int(self._phases_view()[slot]) % len(PHASES)],
            last_beat=float(self._beats_view()[slot]),
        )

    def snapshot(self) -> tuple[ProgressSample, ...]:
        """Every slot's state, in worker order."""
        return tuple(self.read(slot) for slot in range(self.n_slots))

    def reset(self) -> None:
        """Zero every slot (creator, between comparisons — callers must
        ensure no comparison is in flight)."""
        self._rows_view().fill(0)
        self._phases_view().fill(0)
        self._beats_view().fill(0.0)

    # -- teardown ------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed or self._shm is None:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS (creator only; idempotent)."""
        if not self._owner or self._shm is None:
            return
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._owner = False

    def __enter__(self) -> "ProgressBoard":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink() if self._owner else self.close()
