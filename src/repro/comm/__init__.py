"""Communication substrate: circular buffers and border channels."""

from .channel import BorderChannel, BorderSegment
from .network import InterNodeChannel, NetworkLink
from .progress import PHASES, ProgressBoard, ProgressSample
from .ringbuf import RingBuffer, RingStats, SimRingBuffer
from .scoreboard import LocalScoreboard, SharedScoreboard
from .shmring import ShmRing

__all__ = [
    "BorderChannel",
    "BorderSegment",
    "InterNodeChannel",
    "LocalScoreboard",
    "NetworkLink",
    "PHASES",
    "ProgressBoard",
    "ProgressSample",
    "RingBuffer",
    "RingStats",
    "SharedScoreboard",
    "ShmRing",
    "SimRingBuffer",
]
