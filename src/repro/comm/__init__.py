"""Communication substrate: circular buffers and border channels."""

from .channel import BorderChannel, BorderSegment
from .network import InterNodeChannel, NetworkLink
from .ringbuf import RingBuffer, RingStats, SimRingBuffer
from .shmring import ShmRing

__all__ = [
    "BorderChannel",
    "BorderSegment",
    "InterNodeChannel",
    "NetworkLink",
    "RingBuffer",
    "RingStats",
    "ShmRing",
    "SimRingBuffer",
]
