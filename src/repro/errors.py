"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one type at an API boundary.  Subsystems raise the most specific
subclass that applies; constructors and validators raise early, at the point
where the inconsistent input enters the library.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SequenceError(ReproError):
    """Invalid sequence data (bad characters, bad encoding, empty input)."""


class FastaError(SequenceError):
    """Malformed FASTA input or output failure."""


class ScoringError(ReproError):
    """Inconsistent scoring parameters (e.g. negative gap penalties)."""


class PartitionError(ReproError):
    """Invalid matrix partition (non-covering, overlapping, or empty slabs)."""


class DeviceError(ReproError):
    """Invalid simulated-device specification or device state misuse."""


class CommError(ReproError):
    """Communication substrate misuse (closed channel, buffer protocol)."""


class BufferClosed(CommError):
    """Operation on a ring buffer / channel after it has been closed."""


class SimulationError(ReproError):
    """Discrete-event engine error (deadlock, negative delay, misuse)."""


class DeadlockError(SimulationError):
    """The event engine ran out of events while processes were still waiting."""


class AlignmentError(ReproError):
    """Traceback/alignment reconstruction failed an internal consistency check."""


class ConfigError(ReproError):
    """Invalid run configuration (block sizes, buffer capacities, etc.)."""


class ObsError(ReproError):
    """Telemetry subsystem misuse or malformed telemetry artifact
    (metric type conflicts, manifest/trace schema violations)."""


class ServeError(ReproError):
    """Serving-layer failure (protocol violation, unreachable daemon,
    admission refusal — see :class:`repro.serve.jobs.AdmissionError`)."""
