"""repro — multi-GPU megabase Smith-Waterman (PPoPP 2014 reproduction).

The library reproduces "Fine-grain parallel megabase sequence comparison
with multiple heterogeneous GPUs" (De Sandes et al., PPoPP 2014): one huge
exact Smith-Waterman matrix computed by a logical chain of (simulated)
GPUs that exchange border columns through circular buffers.

Quick start::

    import repro
    from repro.device import ENV1_HETEROGENEOUS

    a, b = repro.workloads.synthesize_pair(repro.workloads.get_pair("chr22"),
                                           scale=2e-4)
    result = repro.align_multi_gpu(a, b, repro.seq.DNA_DEFAULT,
                                   ENV1_HETEROGENEOUS)
    print(result.score, f"{result.gcups:.1f} GCUPS (virtual)")

Sub-packages:

===================  ====================================================
``repro.seq``        alphabet, encoding, scoring, FASTA IO
``repro.workloads``  synthetic chromosome pairs (the paper's datasets)
``repro.sw``         SW kernels, blocks, pruning, traceback stages
``repro.device``     virtual-time engine + simulated GPUs
``repro.comm``       circular buffers + border channels
``repro.multigpu``   the paper's multi-GPU chain (core contribution)
``repro.baselines``  single-GPU / CPU / inter-task comparators
``repro.perf``       GCUPS metrics and report tables
``repro.obs``        telemetry: metrics, manifests, traces, watchdogs
===================  ====================================================
"""

from . import baselines, comm, device, multigpu, obs, perf, seq, stats, sw, workloads
from .errors import ReproError
from .multigpu import (
    ChainConfig,
    ChainResult,
    ProcessChainResult,
    WorkerPool,
    align_multi_gpu,
    align_multi_process,
    time_multi_gpu,
)
from .sw import align_local, sw_score

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "comm",
    "device",
    "multigpu",
    "obs",
    "perf",
    "seq",
    "stats",
    "sw",
    "workloads",
    "ReproError",
    "ChainConfig",
    "ChainResult",
    "ProcessChainResult",
    "WorkerPool",
    "align_multi_gpu",
    "align_multi_process",
    "time_multi_gpu",
    "align_local",
    "sw_score",
    "__version__",
]
