"""Live status endpoint: `/metrics` (Prometheus) + `/status` (JSON).

A stdlib-only HTTP server (no new dependencies) that exposes a *running*
comparison — the direct enabler for the alignment-as-a-service roadmap
item, and immediately scrapeable by any Prometheus agent:

* ``GET /metrics`` — the supervisor registry rendered by
  :meth:`~repro.obs.registry.MetricsRegistry.to_prometheus`
  (text exposition format 0.0.4);
* ``GET /status`` — JSON: the newest timeline frames from the
  :class:`~repro.obs.timeseries.TimeSeriesSampler` (progress, rates,
  ETA), plus the :class:`~repro.obs.events.EventJournal` tail;
* ``GET /healthz`` — liveness probe (``ok``).

The server runs on a daemon thread (`ThreadingHTTPServer`, so a slow
scraper never blocks the next one) and only ever *reads* the registry,
sampler ring and journal tail — all of which are internally locked or
append-only — so scrapes cannot perturb a run beyond their own CPU
time; the X13 benchmark bounds the whole live stack (< 5% wall clock).

Enable from the CLI with ``mgsw align --serve-metrics PORT`` (port 0
picks a free one and prints it).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ObsError

#: Content type Prometheus scrapers expect from a 0.0.4 text endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Frames /status returns (newest last) — enough for a dashboard's
#: recent-rate sparkline without shipping the whole ring every scrape.
STATUS_FRAMES = 40

#: Journal-tail events /status returns.
STATUS_EVENTS = 40


class StatusServer:
    """Background HTTP server over a registry / sampler / journal trio.

    Any of the three sources may be ``None``: ``/metrics`` then serves
    an empty exposition and ``/status`` omits the missing sections, so
    the server is usable from the earliest point of a run (before the
    first frame exists) and from engines that only carry a registry.

    Parameters
    ----------
    registry, sampler, journal:
        The live sources (:class:`~repro.obs.registry.MetricsRegistry`,
        :class:`~repro.obs.timeseries.TimeSeriesSampler`,
        :class:`~repro.obs.events.EventJournal`).
    port:
        TCP port to bind (0 = ephemeral; read :attr:`port` after
        construction).
    host:
        Bind address — loopback by default: the endpoint is telemetry,
        not an authenticated API.
    """

    def __init__(self, *, registry=None, sampler=None, journal=None,
                 port: int = 0, host: str = "127.0.0.1") -> None:
        if not 0 <= port <= 65535:
            raise ObsError(f"port {port} outside [0, 65535]")
        self.registry = registry
        self.sampler = sampler
        self.journal = journal
        self._routes: dict[str, object] = {}
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # quiet: telemetry, not access logs
                pass

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = server.render_metrics().encode()
                        ctype = PROMETHEUS_CONTENT_TYPE
                    elif path == "/status":
                        body = json.dumps(server.render_status()).encode()
                        ctype = "application/json"
                    elif path == "/healthz":
                        body, ctype = b"ok\n", "text/plain"
                    else:
                        rendered = server.render_route(path)
                        if rendered is None:
                            self.send_error(404, "unknown path "
                                            "(try /metrics, /status, /healthz)")
                            return
                        body = json.dumps(rendered).encode()
                        ctype = "application/json"
                except Exception as exc:  # pragma: no cover - defensive
                    self.send_error(500, f"telemetry render failed: {exc!r}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        try:
            self._httpd = ThreadingHTTPServer((host, port), Handler)
        except OSError as exc:
            raise ObsError(f"cannot bind status server on {host}:{port}: {exc}")
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # -- renderers (also the programmatic API the tests hit directly) --------
    def register(self, prefix: str, handler) -> None:
        """Mount *handler* under *prefix* (e.g. ``"/jobs"``).

        *handler* is called as ``handler(subpath)`` where ``subpath`` is
        the path remainder after the prefix (``None`` for the prefix
        itself, the string after the ``/`` otherwise) and must return a
        JSON-serialisable object, or ``None`` for a 404.  The serve
        daemon mounts ``/jobs`` and ``/jobs/<id>`` this way.
        """
        if not prefix.startswith("/") or prefix.rstrip("/") != prefix:
            raise ObsError(f"route prefix {prefix!r} must look like '/jobs'")
        self._routes[prefix] = handler

    def render_route(self, path: str):
        """Resolve *path* against the registered routes (``None`` = 404)."""
        for prefix, handler in self._routes.items():
            if path == prefix:
                return handler(None)
            if path.startswith(prefix + "/"):
                return handler(path[len(prefix) + 1:])
        return None

    def render_metrics(self) -> str:
        return self.registry.to_prometheus() if self.registry is not None else ""

    def render_status(self) -> dict:
        doc: dict = {"serving": True}
        if self.journal is not None:
            doc["run_id"] = self.journal.run_id
            doc["events"] = self.journal.recent(STATUS_EVENTS)
        if self.sampler is not None:
            frames = self.sampler.frames()[-STATUS_FRAMES:]
            doc["frames"] = [f.to_json_dict() for f in frames]
            latest = frames[-1] if frames else None
            if latest is not None:
                doc["rows_done"] = latest.rows_done
                doc["rows_target"] = latest.rows_target
                doc["rows_per_s"] = latest.rows_per_s
                doc["eta_s"] = latest.eta_s
                doc["gcups"] = latest.gcups
                doc["restarts"] = latest.restarts
        return doc

    # -- lifecycle -----------------------------------------------------------
    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "StatusServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="mgsw-status-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and close the socket (idempotent).

        The listening socket is bound at *construction*, not at
        :meth:`start`, so a server that was built but never started
        still owns the port — ``server_close()`` must run
        unconditionally or the fd (and the port, until process exit)
        leaks.  ``server_close()`` is idempotent, so repeated calls and
        the never-started path are both safe.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
