"""Unified telemetry: metrics, run manifests, trace export, watchdogs.

The observability subsystem every engine emits into (see INTERNALS.md
section 8 for the architecture):

* :mod:`repro.obs.registry` — labelled counter/gauge/histogram registry
  with spawn-safe snapshot-and-merge across worker processes, exported
  as JSON or Prometheus text;
* :mod:`repro.obs.instruments` — the standard per-engine instrument set
  (``blocks_computed{device=...}``, border byte counters, block-sweep
  latency histograms);
* :mod:`repro.obs.manifest` — durable per-run manifests (run id, config,
  sequence digests, versions, result + metrics snapshots);
* :mod:`repro.obs.chrometrace` — Chrome trace-event export of
  :class:`~repro.device.trace.Tracer` timelines (loadable in Perfetto);
* :mod:`repro.obs.heartbeat` — parent-side watchdog over the
  shared-memory :class:`~repro.comm.progress.ProgressBoard`;
* :mod:`repro.obs.diff` — regression diff between two manifest/benchmark
  JSON documents (``mgsw perf diff``);
* :mod:`repro.obs.timeseries` — live time-series sampler over the
  progress board (bounded frame ring, ETA, ``timeline.jsonl`` spill);
* :mod:`repro.obs.events` — append-only structured event journal of run
  lifecycle events (``events.jsonl``);
* :mod:`repro.obs.exporter` — streaming status endpoint (``/metrics``
  Prometheus text + ``/status`` JSON) for a running comparison.

Sections 8 and 13 of INTERNALS.md cover the post-hoc and live halves
respectively.
"""

from .chrometrace import (
    KIND_COLOURS,
    load_chrome_trace,
    tracer_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from .diff import DiffEntry, diff_documents, flatten_scalars, format_diff
from .events import EVENT_KINDS, EventJournal, read_events, validate_event
from .exporter import StatusServer
from .heartbeat import DEFAULT_STALL_AFTER_S, HeartbeatMonitor, StallReport
from .instruments import EngineInstruments, finalize_run_metrics
from .manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    load_manifest,
    sequence_digest,
    validate_manifest,
    write_manifest,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .timeseries import (
    TimelineFrame,
    TimeSeriesSampler,
    WorkerFrame,
    read_timeline,
)

__all__ = [
    "Counter",
    "DEFAULT_STALL_AFTER_S",
    "DiffEntry",
    "EVENT_KINDS",
    "EngineInstruments",
    "EventJournal",
    "Gauge",
    "HeartbeatMonitor",
    "Histogram",
    "KIND_COLOURS",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "StallReport",
    "StatusServer",
    "TimeSeriesSampler",
    "TimelineFrame",
    "WorkerFrame",
    "build_manifest",
    "diff_documents",
    "finalize_run_metrics",
    "flatten_scalars",
    "format_diff",
    "load_chrome_trace",
    "load_manifest",
    "read_events",
    "read_timeline",
    "sequence_digest",
    "validate_event",
    "tracer_to_chrome",
    "validate_chrome_trace",
    "validate_manifest",
    "write_chrome_trace",
    "write_manifest",
]
