"""Live time-series sampling over the shared-memory progress board.

All earlier telemetry (INTERNALS.md section 8) is post-hoc: one final
metrics snapshot, one manifest, one trace — nothing says how a running
comparison is *going*.  The :class:`TimeSeriesSampler` closes that gap:
a background thread in the supervisor periodically (default 250 ms)
reads the :class:`~repro.comm.progress.ProgressBoard` plus a delta of
the local :class:`~repro.obs.registry.MetricsRegistry` and appends one
:class:`TimelineFrame` to a bounded ring — per-worker rows/s and phase,
GCUPS-so-far, prune/band-skip rates, restart count, and an ETA
(rows remaining ÷ smoothed aggregate rate).

Sampling is strictly read-only on the shared memory (the board is
single-writer per slot; see :mod:`repro.comm.progress` for why stale
reads are safe) and every registry read is a plain dictionary lookup in
the *parent's* registry, so arming the sampler costs the workers
nothing — the X13 benchmark pins the combined sampler + journal + HTTP
endpoint overhead under 5% wall clock.

Lifecycle: one sampler object spans a whole run, including recovery
re-partitions — the supervisor calls :meth:`attach` at the top of each
attempt (fresh board geometry, fresh attempt number) and
:meth:`detach` when the attempt ends; the frame ring and the JSONL
spill (``timeline.jsonl``) accumulate across attempts, so the timeline
of a recovered run shows the dip and the resume.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import IO, Sequence

from ..errors import ObsError

#: Default sampling period (seconds).
DEFAULT_INTERVAL_S = 0.25

#: Default frame-ring depth: 10 minutes of history at the default period.
DEFAULT_RING = 2400

#: Schema tag written into every spilled frame.
FRAME_SCHEMA = "mgsw.telemetry.frame/v1"

#: Exponential-moving-average weight for the per-worker rate estimate:
#: high enough to follow a real rate change within a few samples, low
#: enough that one scheduler hiccup does not swing the ETA.
RATE_EMA_ALPHA = 0.35


@dataclass(frozen=True)
class WorkerFrame:
    """One worker's state inside a :class:`TimelineFrame`."""

    worker: int
    rows_done: int
    phase: str
    rows_per_s: float      #: smoothed (EMA) matrix rows completed per second
    silent_s: float        #: seconds since the worker's last heartbeat
    stalled: bool          #: silent beyond the sampler's stall threshold


@dataclass(frozen=True)
class TimelineFrame:
    """One timestamped sample of the whole chain's progress."""

    t_s: float             #: seconds since the sampler first attached
    ts_unix: float         #: wall-clock timestamp of the sample
    attempt: int           #: recovery attempt the frame was sampled in
    rows_done: int         #: sum of per-worker completed rows
    rows_target: int       #: m x workers — the finish line for rows_done
    rows_per_s: float      #: smoothed aggregate rate (sum of worker EMAs)
    eta_s: float | None    #: rows remaining / rate (None until a rate exists)
    gcups: float           #: cells completed so far / elapsed, in 1e9 units
    prune_rate: float      #: blocks_pruned / blocks checked (0.0 early)
    band_skip_rate: float  #: blocks_skipped_band / blocks checked
    restarts: int          #: worker_restarts counter (registry delta source)
    workers: tuple[WorkerFrame, ...] = field(default_factory=tuple)

    def to_json_dict(self) -> dict:
        doc = asdict(self)
        doc["schema"] = FRAME_SCHEMA
        doc["workers"] = [asdict(w) for w in self.workers]
        return doc


#: Constructor fields of the two frame dataclasses, for forward-compat
#: filtering: a *newer* writer may add fields this reader does not know;
#: they are dropped rather than blowing up ``WorkerFrame(**w)`` with a
#: ``TypeError`` (which ``read_timeline`` would misread as a torn tail
#: and silently drop the whole file).  Missing *known* fields still
#: raise ``KeyError``/``TypeError`` — that really is a torn line.
_WORKER_FIELDS = frozenset(f.name for f in dataclass_fields(WorkerFrame))
_FRAME_FIELDS = frozenset(
    f.name for f in dataclass_fields(TimelineFrame)) - {"workers"}


def frame_from_json(doc: dict) -> TimelineFrame:
    """Rebuild a :class:`TimelineFrame` from one spilled JSONL record.

    Tolerates fields added by a newer schema (old readers must keep
    working on new writers' files); unknown keys at either level are
    ignored.
    """
    workers = tuple(
        WorkerFrame(**{k: v for k, v in w.items() if k in _WORKER_FIELDS})
        for w in doc.get("workers", ()))
    fields = {k: doc[k] for k in _FRAME_FIELDS}
    return TimelineFrame(workers=workers, **fields)


def read_timeline(path: str | Path) -> list[TimelineFrame]:
    """Load a ``timeline.jsonl`` spill, tolerating a torn final line."""
    frames: list[TimelineFrame] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    frames.append(frame_from_json(json.loads(line)))
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # torn tail from a crash mid-write
    except FileNotFoundError:
        return []
    return frames


class TimeSeriesSampler:
    """Background sampler: ProgressBoard + registry delta -> frame ring.

    Parameters
    ----------
    interval_s:
        Sampling period (default 250 ms).
    ring:
        Bounded frame-ring depth; the oldest frames fall off (the JSONL
        spill, when armed, keeps the full history).
    spill:
        Optional ``timeline.jsonl`` path — every frame is appended as
        one JSON line as it is sampled.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` (the
        *supervisor's* registry) read for prune/band-skip rates and the
        restart count.  Worker-side counters only merge into it at run
        end, so mid-run these reflect what the supervisor has seen —
        restarts update on every recovery, prune totals at completion.
    stall_after_s:
        Seconds of heartbeat silence after which a frame marks a worker
        ``stalled`` (display-only; the watchdog owns stall *handling*).
    """

    def __init__(self, *, interval_s: float = DEFAULT_INTERVAL_S,
                 ring: int = DEFAULT_RING,
                 spill: str | Path | None = None,
                 registry=None,
                 stall_after_s: float = 5.0) -> None:
        if interval_s <= 0:
            raise ObsError("interval_s must be positive")
        if ring <= 0:
            raise ObsError("ring must be positive")
        if stall_after_s <= 0:
            raise ObsError("stall_after_s must be positive")
        self.interval_s = interval_s
        self.stall_after_s = stall_after_s
        self._registry = registry
        self._frames: deque[TimelineFrame] = deque(maxlen=ring)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._spill_path = Path(spill) if spill is not None else None
        self._spill_fh: IO[str] | None = None
        if self._spill_path is not None:
            self._spill_path.parent.mkdir(parents=True, exist_ok=True)
            self._spill_fh = open(self._spill_path, "a", encoding="utf-8")
        # Per-attachment state (set by attach()).
        self._board = None
        self._attempt = 0
        self._rows_target = 0
        self._cols_per_worker: tuple[int, ...] = ()
        self._origin: float | None = None     # first attach, monotonic
        self._prev: list[tuple[float, int]] = []   # (t, rows) per worker
        self._ema: list[float | None] = []

    # -- attachment lifecycle ------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._board is not None

    def attach(self, board, *, rows: int,
               cols_per_worker: Sequence[int],
               attempt: int = 0) -> "TimeSeriesSampler":
        """Start sampling *board* for one attempt.

        *rows* is the matrix height every slab sweeps (``rows_done`` per
        worker finishes at it); *cols_per_worker* the slab widths (for
        cells-so-far -> GCUPS).  Re-attaching after :meth:`detach` keeps
        the accumulated frames and spill — recovery attempts extend one
        timeline.
        """
        if self._board is not None:
            raise ObsError("sampler already attached; detach() first")
        if len(cols_per_worker) != board.n_slots:
            raise ObsError("cols_per_worker length must match board slots")
        self._board = board
        self._attempt = int(attempt)
        self._rows_target = int(rows) * board.n_slots
        self._cols_per_worker = tuple(int(c) for c in cols_per_worker)
        if self._origin is None:
            self._origin = time.monotonic()
        now = time.monotonic()
        self._prev = [(now, 0)] * board.n_slots
        self._ema = [None] * board.n_slots
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="mgsw-timeseries", daemon=True)
        self._thread.start()
        return self

    def detach(self) -> None:
        """Stop the sampling thread and take one final frame (idempotent).

        The final sample means a completed run's last frame always shows
        ``rows_done == rows_target`` even when the run finished between
        periodic wake-ups.
        """
        if self._board is None:
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample_once()
        self._board = None

    def close(self) -> None:
        """Detach (if needed) and close the spill file."""
        self.detach()
        if self._spill_fh is not None:
            try:
                self._spill_fh.close()
            finally:
                self._spill_fh = None

    def __enter__(self) -> "TimeSeriesSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sampling ------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def sample_once(self) -> TimelineFrame | None:
        """Take one frame now (the thread's body; callable directly in
        tests and from :meth:`detach` for the final frame)."""
        board = self._board
        if board is None:
            return None
        now = time.monotonic()
        samples = board.snapshot()
        workers: list[WorkerFrame] = []
        rows_total = 0
        agg_rate = 0.0
        cells_done = 0
        for i, s in enumerate(samples):
            prev_t, prev_rows = self._prev[i]
            dt = now - prev_t
            inst = (s.rows_done - prev_rows) / dt if dt > 0 else 0.0
            ema = self._ema[i]
            ema = inst if ema is None else \
                RATE_EMA_ALPHA * inst + (1.0 - RATE_EMA_ALPHA) * ema
            self._ema[i] = ema
            self._prev[i] = (now, s.rows_done)
            silent = s.silent_s(now)
            workers.append(WorkerFrame(
                worker=i, rows_done=s.rows_done, phase=s.phase,
                rows_per_s=round(ema, 3), silent_s=round(silent, 3),
                stalled=bool(s.started and s.phase != "done"
                             and silent >= self.stall_after_s)))
            rows_total += s.rows_done
            if s.phase != "done":
                agg_rate += max(0.0, ema)
            cells_done += s.rows_done * self._cols_per_worker[i]

        elapsed = now - (self._origin if self._origin is not None else now)
        remaining = max(0, self._rows_target - rows_total)
        if remaining == 0:
            eta: float | None = 0.0
        elif agg_rate > 0:
            eta = remaining / agg_rate
        else:
            eta = None
        prune_rate = band_rate = 0.0
        restarts = 0
        if self._registry is not None:
            computed = self._registry.counter("blocks_computed").total()
            pruned = self._registry.counter("blocks_pruned").total()
            skipped = self._registry.counter("blocks_skipped_band").total()
            checked = computed + pruned + skipped
            if checked:
                prune_rate = pruned / checked
                band_rate = skipped / checked
            restarts = int(self._registry.counter("worker_restarts").total())
        frame = TimelineFrame(
            t_s=round(elapsed, 4),
            ts_unix=time.time(),
            attempt=self._attempt,
            rows_done=rows_total,
            rows_target=self._rows_target,
            rows_per_s=round(agg_rate, 3),
            eta_s=None if eta is None else round(eta, 3),
            gcups=round(cells_done / elapsed / 1e9, 6) if elapsed > 0 else 0.0,
            prune_rate=round(prune_rate, 4),
            band_skip_rate=round(band_rate, 4),
            restarts=restarts,
            workers=tuple(workers),
        )
        with self._lock:
            self._frames.append(frame)
            if self._spill_fh is not None:
                self._spill_fh.write(
                    json.dumps(frame.to_json_dict(), sort_keys=True) + "\n")
                self._spill_fh.flush()
        return frame

    # -- queries -------------------------------------------------------------
    def frames(self) -> tuple[TimelineFrame, ...]:
        """Every retained frame, oldest first."""
        with self._lock:
            return tuple(self._frames)

    def current(self) -> TimelineFrame | None:
        """The newest frame (``None`` before the first sample)."""
        with self._lock:
            return self._frames[-1] if self._frames else None

    def eta_s(self) -> float | None:
        """The newest frame's ETA estimate."""
        frame = self.current()
        return frame.eta_s if frame is not None else None
