"""Structured event journal: append-only JSONL of run lifecycle events.

The telemetry subsystem's metrics (:mod:`repro.obs.registry`) answer
"how much / how fast"; the event journal answers "what happened, when,
to whom".  Every discrete lifecycle transition the supervisors see —
run start/end, worker spawns and deaths, checkpoint assembly, restart
attempts, heuristic and dtype escalations, slab rebalances, heartbeat
stalls — is appended as one JSON line carrying correlation ids
(``run_id`` / ``worker`` / ``attempt``), so a recovery or rebalance is
reconstructable after the fact from ``events.jsonl`` alone.

Design constraints:

* **Append-only, line-oriented.**  One event = one JSON object = one
  line, flushed immediately; a crash mid-run loses at most the event
  being written, never corrupts earlier ones.  :func:`read_events`
  tolerates a torn final line for exactly that reason.
* **Supervisor-side emission.**  Events are emitted by the parent
  process (the supervisors in :mod:`repro.multigpu.procchain`,
  :mod:`repro.multigpu.pool`, :mod:`repro.multigpu.chain` and the
  heartbeat watchdog), never from slab workers — the journal needs no
  cross-process synchronisation, only a thread lock (the watchdog and
  samplers run on parent threads).
* **Closed taxonomy.**  :data:`EVENT_KINDS` pins the vocabulary;
  emitting an unknown kind raises, so dashboards and the `mgsw top`
  renderer can rely on the set (INTERNALS.md section 13).
* **Bounded memory.**  The in-memory tail (:meth:`EventJournal.recent`,
  what ``/status`` serves) is a ring; the full history lives on disk
  when a path is given.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import IO, Mapping

from ..errors import ObsError

#: Schema tag written into every event record.
EVENT_SCHEMA = "mgsw.telemetry.event/v1"

#: The closed event taxonomy (INTERNALS.md section 13).  Supervisors may
#: only emit these kinds; add here (and to the docs) before emitting a
#: new one.
EVENT_KINDS = (
    "run_start",            # a comparison began (backend, shape, config)
    "worker_spawn",         # a slab worker process started (pid)
    "worker_death",         # a worker died or errored (kind, detail)
    "checkpoint",           # supervisor assembled a consistent resume row
    "restart_attempt",      # a recovery attempt began (resume row, survivors)
    "heuristic_escalation", # mode=auto fell back to the exact tier
    "dtype_escalation",     # narrow DP blocks were recomputed in int32
    "slab_rebalance",       # pool weights updated from observed rates
    "stall",                # heartbeat watchdog flagged a silent worker
    "run_end",              # the comparison finished (score, wall time)
    # Serving-layer job lifecycle (INTERNALS.md section 14).  Each carries
    # a ``job`` correlation id alongside the journal's run id.
    "job_submit",           # a job passed admission and was enqueued
    "job_reject",           # admission control refused a job (429)
    "job_cache_hit",        # a job was answered from the result cache
    "job_start",            # the scheduler dispatched a job onto a pool
    "job_end",              # a job finished (status, score, latency)
)

#: Default in-memory tail length (what ``/status`` and `mgsw top` show).
DEFAULT_RECENT = 256


class EventJournal:
    """Append-only journal of lifecycle events for one (or more) runs.

    Parameters
    ----------
    path:
        Optional JSONL spill file (conventionally ``events.jsonl``).
        Opened in append mode so a journal can span a whole pool
        lifetime; ``None`` keeps the journal in memory only.
    run_id:
        Correlation id stamped on every event (defaults to a fresh
        UUID hex; the CLI passes the manifest's run id so the journal,
        manifest and timeline correlate).
    recent:
        In-memory ring length for :meth:`recent`.
    """

    def __init__(self, path: str | Path | None = None, *,
                 run_id: str | None = None,
                 recent: int = DEFAULT_RECENT) -> None:
        if recent <= 0:
            raise ObsError("recent must be positive")
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._recent: deque[dict] = deque(maxlen=recent)
        self._count = 0
        self._kind_counts: dict[str, int] = {}
        self._fh: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")

    # -- emission -------------------------------------------------------------
    def emit(self, event: str, *, worker: int | None = None,
             attempt: int | None = None, **fields) -> dict:
        """Append one event; returns the record written.

        *event* must come from :data:`EVENT_KINDS`.  Extra keyword
        *fields* land in the record verbatim (they must be
        JSON-serialisable); ``worker``/``attempt`` are the correlation
        ids and may be ``None`` for run-scoped events.
        """
        if event not in EVENT_KINDS:
            raise ObsError(
                f"unknown event kind {event!r}; expected one of {EVENT_KINDS}")
        record: dict = {
            "schema": EVENT_SCHEMA,
            "event": event,
            "run_id": self.run_id,
            "ts_unix": time.time(),
        }
        if worker is not None:
            record["worker"] = int(worker)
        if attempt is not None:
            record["attempt"] = int(attempt)
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        json.dumps(record)  # fail fast on non-serialisable fields
        with self._lock:
            record["seq"] = self._count
            self._count += 1
            self._kind_counts[event] = self._kind_counts.get(event, 0) + 1
            self._recent.append(record)
            if self._fh is not None:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")
                self._fh.flush()
        return record

    # -- queries --------------------------------------------------------------
    def recent(self, n: int | None = None) -> list[dict]:
        """The newest *n* events (all retained ones when ``None``), oldest
        first — the tail ``/status`` serves."""
        with self._lock:
            events = list(self._recent)
        return events if n is None else events[-n:]

    def count(self, event: str | None = None) -> int:
        """Events emitted so far — total, or of one *kind*.

        Kind counts are maintained as lifetime counters alongside the
        total, so they stay honest after the bounded in-memory ring has
        evicted old records (counting the ring would silently under-report
        on any journal older than ``recent`` events)."""
        with self._lock:
            if event is None:
                return self._count
            return self._kind_counts.get(event, 0)

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the spill file (idempotent; in-memory tail
        stays readable)."""
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                finally:
                    self._fh = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str | Path) -> list[dict]:
    """Load an ``events.jsonl`` file, tolerating a torn final line.

    The journal flushes per event, but a hard crash can still leave a
    partial last line; it is skipped rather than failing the whole read
    (the append-only format makes every earlier line complete).
    """
    events: list[dict] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn tail from a crash mid-write
    except FileNotFoundError:
        return []
    return events


def validate_event(record: Mapping) -> None:
    """Raise :class:`ObsError` when *record* is not a valid event."""
    problems = []
    if record.get("schema") != EVENT_SCHEMA:
        problems.append(f"schema must be {EVENT_SCHEMA!r}")
    if record.get("event") not in EVENT_KINDS:
        problems.append(f"unknown event kind {record.get('event')!r}")
    if not isinstance(record.get("run_id"), str):
        problems.append("run_id must be a string")
    if not isinstance(record.get("ts_unix"), (int, float)):
        problems.append("ts_unix must be a number")
    if problems:
        raise ObsError("invalid event: " + "; ".join(problems))
