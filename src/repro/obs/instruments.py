"""The standard engine instrument set, bound once per engine actor.

All four engines — the blocked single-device executor, the simulated
:class:`~repro.multigpu.chain.MultiGpuChain`, the one-shot process chain
and the persistent :class:`~repro.multigpu.pool.WorkerPool` — emit the
same metric families under the same names, labelled by ``device``:

=============================  ========= ====================================
``blocks_computed``            counter   block rows actually swept
``blocks_pruned``              counter   block rows skipped by pruning
``cells_computed``             counter   DP cells actually computed
``border_bytes_sent``          counter   border payload bytes shipped right
``border_bytes_received``      counter   border payload bytes consumed
``block_sweep_seconds``        histogram per-block sweep latency
``prune_rate``                 gauge     pruned / checked blocks (per run)
``blocks_skipped_band``        counter   blocks skipped by the static band
``heuristic_hits``             counter   auto runs answered by the heuristic
``escalations``                counter   auto runs re-run on the exact tier
``blocks_narrow``              counter   blocks computed in a narrow DP dtype
``blocks_wide``                counter   blocks computed wide under a narrow policy
``dtype_escalations``          counter   narrow sweeps redone in int32 (overflow)
=============================  ========= ====================================

Centralising the names here is what makes the cross-engine invariant
testable: for every engine, ``blocks_computed + blocks_pruned`` summed
over devices equals the number of block rows times the device count.
"""

from __future__ import annotations

from .registry import MetricsRegistry

#: Histogram buckets for block-sweep latencies: virtual-clock sweeps sit
#: in the sub-millisecond decades, wall-clock slab rows in the upper ones.
SWEEP_BUCKETS = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 30.0,
)


class EngineInstruments:
    """One engine actor's bound handles into a shared registry.

    Construction registers (or re-binds) the standard families; the
    per-call methods are cheap dictionary updates, safe on hot paths.
    """

    def __init__(self, registry: MetricsRegistry, device: str) -> None:
        self.registry = registry
        self.device = device
        self._blocks = registry.counter(
            "blocks_computed", help="block rows actually swept")
        self._pruned = registry.counter(
            "blocks_pruned", help="block rows skipped by distributed pruning")
        self._cells = registry.counter(
            "cells_computed", help="DP cells actually computed")
        self._sent = registry.counter(
            "border_bytes_sent", help="border payload bytes shipped downstream")
        self._received = registry.counter(
            "border_bytes_received", help="border payload bytes consumed")
        self._sweep = registry.histogram(
            "block_sweep_seconds", help="per-block-row sweep latency",
            buckets=SWEEP_BUCKETS)

    def block_computed(self, seconds: float, cells: int = 0) -> None:
        self._blocks.inc(1, device=self.device)
        if cells:
            self._cells.inc(cells, device=self.device)
        self._sweep.observe(seconds, device=self.device)

    def block_pruned(self, count: int = 1) -> None:
        self._pruned.inc(count, device=self.device)

    def block_skipped_band(self, count: int = 1) -> None:
        self.registry.counter(
            "blocks_skipped_band",
            help="blocks skipped because they miss the diagonal band",
        ).inc(count, device=self.device)

    def border_sent(self, nbytes: int) -> None:
        self._sent.inc(nbytes, device=self.device)

    def border_received(self, nbytes: int) -> None:
        self._received.inc(nbytes, device=self.device)

    def checkpoint_published(self) -> None:
        self.registry.counter(
            "checkpoints_published",
            help="row states published into the shared checkpoint area",
        ).inc(1, device=self.device)

    def block_dtype(self, *, narrow: int = 0, wide: int = 0,
                    escalations: int = 0) -> None:
        """Record the narrow/wide split of swept blocks under a narrow
        DP policy (never called when the policy is plain int32, so the
        counters stay absent — and cost nothing — on wide runs)."""
        record_dtype(self.registry, device=self.device,
                     narrow=narrow, wide=wide, escalations=escalations)


def record_dtype(registry: MetricsRegistry, *, device: str,
                 narrow: int = 0, wide: int = 0, escalations: int = 0) -> None:
    """Record the DP-dtype outcome of swept blocks on one device.

    ``blocks_narrow`` counts blocks the narrow kernel answered,
    ``blocks_wide`` blocks computed in int32 despite a narrow policy
    (overflow escalations plus entry-cap rejects), ``dtype_escalations``
    the narrow attempts that overflowed mid-sweep and were recomputed.
    Only fired when a narrow policy is active, so wide runs carry no
    extra metric series (the X9 overhead bound stays intact).
    """
    if narrow:
        registry.counter(
            "blocks_narrow",
            help="blocks computed in the narrow DP dtype",
        ).inc(narrow, device=device)
    if wide:
        registry.counter(
            "blocks_wide",
            help="blocks computed wide despite a narrow DP policy",
        ).inc(wide, device=device)
    if escalations:
        registry.counter(
            "dtype_escalations",
            help="narrow sweeps recomputed in int32 after overflow detection",
        ).inc(escalations, device=device)


def record_recovery(registry: MetricsRegistry, *, backend: str,
                    rows_recomputed: int) -> None:
    """Record one worker-failure recovery on the run's registry.

    ``worker_restarts`` counts recovery episodes (attempt resumptions),
    ``rows_recomputed`` the matrix rows swept again because they lay past
    the newest consistent checkpoint when the failure hit.
    """
    registry.counter(
        "worker_restarts",
        help="recoveries after a worker death (attempt resumptions)",
    ).inc(1, backend=backend)
    if rows_recomputed > 0:
        registry.counter(
            "rows_recomputed",
            help="matrix rows recomputed during checkpoint recovery",
        ).inc(rows_recomputed, backend=backend)


def record_heuristic(registry: MetricsRegistry, *, backend: str,
                     tier: str, escalated: bool) -> None:
    """Record which tier answered a ``mode="auto"`` run.

    ``heuristic_hits`` counts runs the heuristic tier answered outright;
    ``escalations`` counts runs re-run on the exact tier because the
    confidence check failed.  Exactly one of the two increments per
    auto-mode run.
    """
    if escalated:
        registry.counter(
            "escalations",
            help="auto-mode runs escalated to the exact tier",
        ).inc(1, backend=backend, tier=tier)
    else:
        registry.counter(
            "heuristic_hits",
            help="auto-mode runs answered by the heuristic tier",
        ).inc(1, backend=backend, tier=tier)


def finalize_run_metrics(registry: MetricsRegistry, *, backend: str,
                         blocks_checked: int, blocks_pruned: int,
                         wall_time_s: float, gcups: float) -> None:
    """Record the run-level summary gauges every engine publishes."""
    registry.counter("alignments_total",
                     help="alignments completed").inc(1, backend=backend)
    registry.gauge("prune_rate",
                   help="pruned / checked blocks of the last run").set(
        blocks_pruned / blocks_checked if blocks_checked else 0.0,
        backend=backend)
    registry.gauge("last_run_wall_time_s",
                   help="elapsed time of the last run").set(
        wall_time_s, backend=backend)
    registry.gauge("last_run_gcups",
                   help="throughput of the last run").set(gcups, backend=backend)
