"""Run manifests: a durable, machine-readable record of every run.

Every headline number this reproduction prints (GCUPS, pruned ratios,
speedups) is only as trustworthy as the record of *what produced it*.  A
manifest freezes that record per alignment: a run id, the full engine
configuration, content digests of the input sequences, the package /
NumPy / Python versions, the wall (or virtual) time, the perf-report
result dict and a final metrics snapshot — enough to re-run the exact
comparison and to `mgsw perf diff` two runs against each other.

The schema is versioned (:data:`MANIFEST_SCHEMA`) and enforced by
:func:`validate_manifest`, which the CI telemetry smoke step runs against
freshly produced artifacts.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
import uuid
from pathlib import Path
from typing import Mapping

import numpy as np

from ..errors import ObsError

#: Schema tag written into (and required of) every manifest.
MANIFEST_SCHEMA = "mgsw.telemetry.manifest/v1"

#: Top-level keys every manifest must carry, with their required types.
_REQUIRED: tuple[tuple[str, type], ...] = (
    ("schema", str),
    ("run_id", str),
    ("created_unix", (int, float)),
    ("tool", dict),
    ("environment", dict),
    ("backend", str),
    ("config", dict),
    ("sequences", dict),
    ("result", dict),
)


def sequence_digest(codes: np.ndarray) -> dict:
    """Content digest of an encoded sequence: length + SHA-256 of the bytes.

    Two runs with equal digests compared the same inputs, whatever file
    they were read from.
    """
    arr = np.ascontiguousarray(codes)
    return {
        "length": int(arr.size),
        "dtype": str(arr.dtype),
        "sha256": hashlib.sha256(arr.tobytes()).hexdigest(),
    }


def build_manifest(
    *,
    backend: str,
    config: Mapping,
    result: Mapping,
    sequences: Mapping | None = None,
    metrics: Mapping | None = None,
    command: list[str] | None = None,
    wall_time_s: float | None = None,
    run_id: str | None = None,
    extra: Mapping | None = None,
) -> dict:
    """Assemble a schema-valid manifest dict for one run.

    ``result`` is the JSON summary from :mod:`repro.perf.report`
    (``chain_result_dict`` / ``process_result_dict`` /
    ``single_result_dict``); ``metrics`` is a
    :meth:`~repro.obs.registry.MetricsRegistry.snapshot`.
    """
    from .. import __version__

    doc = {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id if run_id is not None else uuid.uuid4().hex,
        "created_unix": time.time(),
        "tool": {"name": "mgsw", "version": __version__},
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "backend": backend,
        "command": list(command) if command is not None else None,
        "config": dict(config),
        "sequences": {k: dict(v) for k, v in (sequences or {}).items()},
        "wall_time_s": wall_time_s,
        "result": dict(result),
        "metrics": dict(metrics) if metrics is not None else None,
    }
    if extra:
        doc["extra"] = dict(extra)
    validate_manifest(doc)
    return doc


def validate_manifest(doc: Mapping) -> None:
    """Raise :class:`ObsError` listing every schema violation in *doc*."""
    problems: list[str] = []
    if not isinstance(doc, Mapping):
        raise ObsError(f"manifest must be a mapping, got {type(doc).__name__}")
    for key, typ in _REQUIRED:
        if key not in doc:
            problems.append(f"missing required key {key!r}")
        elif not isinstance(doc[key], typ):
            problems.append(
                f"key {key!r} must be {getattr(typ, '__name__', typ)}, "
                f"got {type(doc[key]).__name__}")
    if doc.get("schema") not in (None, MANIFEST_SCHEMA):
        problems.append(
            f"unknown schema {doc['schema']!r} (expected {MANIFEST_SCHEMA!r})")
    tool = doc.get("tool")
    if isinstance(tool, Mapping) and ("name" not in tool or "version" not in tool):
        problems.append("tool must carry name and version")
    env = doc.get("environment")
    if isinstance(env, Mapping):
        for key in ("python", "numpy"):
            if key not in env:
                problems.append(f"environment must record the {key} version")
    for name, digest in (doc.get("sequences") or {}).items():
        if not isinstance(digest, Mapping) or "sha256" not in digest \
                or "length" not in digest:
            problems.append(f"sequence {name!r} digest needs sha256 and length")
    wall = doc.get("wall_time_s")
    if wall is not None and (not isinstance(wall, (int, float)) or wall < 0):
        problems.append("wall_time_s must be a non-negative number or null")
    if problems:
        raise ObsError("invalid manifest: " + "; ".join(problems))


def write_manifest(path: str | Path, manifest: Mapping) -> Path:
    """Validate and write *manifest* as pretty-printed JSON; returns the path."""
    validate_manifest(manifest)
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path: str | Path) -> dict:
    """Load a manifest JSON file (no validation — pair with
    :func:`validate_manifest` when the file is untrusted)."""
    with open(path) as fh:
        return json.load(fh)
