"""Regression diff between two telemetry/benchmark JSON documents.

``mgsw perf diff OLD NEW`` compares any two of the JSON artifacts this
repository produces — run manifests, ``BENCH_*.json`` benchmark records,
or metrics snapshots — by flattening each document to its numeric leaves
(dotted key paths) and classifying every shared key by direction:

* *higher-better* keys (``gcups``, ``speedup``, ``score``) regress when
  the new value drops by more than the threshold;
* *lower-better* keys (``*_time_s``, ``*_seconds``, ``overhead``)
  regress when the new value grows by more than the threshold;
* everything else is informational — reported, never failed on.

The CLI runs in report-only mode by default (CI wires it against the
checked-in ``benchmarks/BENCH_*.json`` files that way);
``--fail-on-regression`` turns regressions into a non-zero exit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

from ..perf.metrics import format_table

#: Key-path fragments that mark a metric where bigger is better.
#: Matched on *word-boundary segments* of the dotted path, never raw
#: substrings — ``score`` must classify ``result.score`` and
#: ``best_score`` but not a hypothetical ``scoreboard_reads`` (and
#: ``rate`` must not swallow ``separate_runs``).
_HIGHER_BETTER = ("gcups", "speedup", "score", "rate")
#: Key-path fragments that mark a metric where smaller is better.
_LOWER_BETTER = ("time_s", "seconds", "overhead", "latency", "blocked_s")
#: Key-path fragments that are identity/metadata, not quantities to diff.
#: Histogram internals (bucket edges and per-bucket counts) are shape, not
#: performance — without this they would inherit the parent metric's
#: ``seconds`` fragment and raise false regressions.
_IGNORED = ("created_unix", "run_id", "length", "end.", ".end",
            ".counts[", ".buckets[")


def flatten_scalars(doc, prefix: str = "") -> dict[str, float]:
    """All numeric leaves of *doc* as ``dotted.path -> value`` (bools and
    strings are skipped; list items are indexed)."""
    out: dict[str, float] = {}
    if isinstance(doc, Mapping):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_scalars(value, path))
    elif isinstance(doc, (list, tuple)):
        for i, value in enumerate(doc):
            out.update(flatten_scalars(value, f"{prefix}[{i}]"))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)):
        out[prefix] = float(doc)
    return out


def _segment_res(frags: tuple[str, ...]) -> tuple[re.Pattern, ...]:
    """One compiled pattern per fragment, anchored so the fragment must
    start and end on a path-segment boundary (``.``, ``_``, ``[``,
    start/end) — ``rate`` matches ``prune_rate`` and ``rate[0]`` but
    never ``separate`` or ``scoreboard``."""
    return tuple(
        re.compile(r"(?<![a-z0-9])" + re.escape(frag) + r"(?![a-z0-9])")
        for frag in frags)


_HIGHER_RES = _segment_res(_HIGHER_BETTER)
_LOWER_RES = _segment_res(_LOWER_BETTER)


def classify(key: str) -> str:
    """``"higher"``, ``"lower"`` or ``"info"`` for one flattened key."""
    low = key.lower()
    if any(frag in low for frag in _IGNORED):
        return "info"
    if any(pat.search(low) for pat in _HIGHER_RES):
        return "higher"
    if any(pat.search(low) for pat in _LOWER_RES):
        return "lower"
    return "info"


@dataclass(frozen=True)
class DiffEntry:
    """One shared numeric key compared across the two documents."""

    key: str
    old: float
    new: float
    direction: str  #: "higher" / "lower" / "info"

    @property
    def rel_change(self) -> float:
        """(new - old) / |old|; +/-inf when old == 0 and new differs."""
        if self.old == 0.0:
            return 0.0 if self.new == 0.0 else float("inf") * (1 if self.new > 0 else -1)
        return (self.new - self.old) / abs(self.old)

    def regressed(self, threshold: float) -> bool:
        if self.direction == "higher":
            return self.rel_change < -threshold
        if self.direction == "lower":
            return self.rel_change > threshold
        return False


def diff_documents(old: Mapping, new: Mapping, *,
                   threshold: float = 0.05) -> list[DiffEntry]:
    """Compare every key present in both documents, sorted worst-first.

    *threshold* is the relative-change tolerance used for the sort and
    by :meth:`DiffEntry.regressed`.
    """
    flat_old = flatten_scalars(old)
    flat_new = flatten_scalars(new)
    entries = [
        DiffEntry(key=key, old=flat_old[key], new=flat_new[key],
                  direction=classify(key))
        for key in sorted(set(flat_old) & set(flat_new))
    ]
    entries.sort(key=lambda e: (not e.regressed(threshold), -abs(e.rel_change)))
    return entries


def format_diff(entries: list[DiffEntry], *, threshold: float,
                max_rows: int = 40) -> str:
    """Human-readable diff report (regressions first, then biggest movers)."""
    if not entries:
        return "no shared numeric keys to compare"
    regressions = [e for e in entries if e.regressed(threshold)]
    rows = []
    for e in entries[:max_rows]:
        change = "n/a" if e.rel_change in (float("inf"), float("-inf")) \
            else f"{e.rel_change:+.1%}"
        flag = "REGRESSED" if e.regressed(threshold) else \
            ("improved" if e.direction != "info" and abs(e.rel_change) > threshold
             else "")
        rows.append([e.key, f"{e.old:g}", f"{e.new:g}", change, flag])
    lines = [format_table(["key", "old", "new", "change", ""], rows)]
    if len(entries) > max_rows:
        lines.append(f"... {len(entries) - max_rows} more keys unchanged/omitted")
    lines.append(
        f"{len(regressions)} regression(s) at threshold {threshold:.0%} "
        f"across {len(entries)} shared keys")
    return "\n".join(lines)
