"""Parent-side watchdog over the shared-memory progress board.

The real-process engines already notice *dead* workers (liveness polls)
and *wedged transports* (border timeouts), but both are slow, and
neither says what the worker was doing when it went quiet.  The
:class:`HeartbeatMonitor` closes the loop: slab workers beat into a
:class:`~repro.comm.progress.ProgressBoard` at every phase transition,
and a daemon thread in the parent polls the board, surfaces live
progress, flags workers silent beyond a threshold, and — crucially —
enriches the existing worker-death diagnostics with the stalled actor's
last completed row and phase (:meth:`HeartbeatMonitor.describe` feeds
:func:`~repro.multigpu.procchain.collect_results`'s ``describe`` hook).

The monitor only ever *reads* shared memory (lock-free; see
:mod:`repro.comm.progress` for why stale reads are safe), so it can
never slow down or wedge a worker — observability stays off the hot
path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..comm.progress import ProgressBoard, ProgressSample

#: Default seconds of silence before a started worker counts as stalled.
DEFAULT_STALL_AFTER_S = 5.0


@dataclass(frozen=True)
class StallReport:
    """One stalled worker, as the watchdog saw it."""

    worker: int
    rows_done: int
    phase: str
    silent_s: float

    def describe(self) -> str:
        return (f"worker {self.worker} stalled in phase {self.phase!r} "
                f"(last completed row {self.rows_done}, "
                f"silent {self.silent_s:.1f}s)")


class HeartbeatMonitor:
    """Watchdog thread over one :class:`~repro.comm.progress.ProgressBoard`.

    Parameters
    ----------
    board:
        The progress board the workers beat into.
    stall_after_s:
        Seconds of silence after which a *started* worker is flagged
        (workers that never beat are the liveness poll's problem — they
        may still be importing).
    poll_interval_s:
        Watchdog wake-up period; stall detection lags true silence by at
        most this much.
    on_stall:
        Optional callback invoked once per worker per stall episode with
        a :class:`StallReport` (e.g. the CLI's live stderr warning).  A
        worker that resumes beating is re-armed.
    hard_stall_s:
        Optional escalation threshold (must exceed ``stall_after_s``):
        a worker silent this long is considered *unrecoverable in place*
        and ``on_hard_stall`` fires once for it — the recovery-enabled
        engines pass a callback that kills the wedged process so the
        normal death path (and checkpoint recovery) takes over.  Hard
        stalls do not re-arm: killing is one-way.
    on_hard_stall:
        Callback for hard stalls (requires ``hard_stall_s``).
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; the
        monitor maintains ``worker_rows_done{device=...}`` gauges and a
        ``worker_stalls`` counter on it.
    events:
        Optional :class:`~repro.obs.events.EventJournal`; the monitor
        emits exactly one ``stall`` event per stall episode (same
        re-arm semantics as *on_stall*: a worker that resumes beating
        and stalls again produces a new event), with ``hard=True`` on
        the one-shot hard-stall escalation.
    """

    def __init__(
        self,
        board: ProgressBoard,
        *,
        stall_after_s: float = DEFAULT_STALL_AFTER_S,
        poll_interval_s: float = 0.2,
        on_stall: Callable[[StallReport], None] | None = None,
        hard_stall_s: float | None = None,
        on_hard_stall: Callable[[StallReport], None] | None = None,
        metrics=None,
        events=None,
    ) -> None:
        if stall_after_s <= 0:
            raise ValueError("stall_after_s must be positive")
        if hard_stall_s is not None and hard_stall_s <= stall_after_s:
            raise ValueError("hard_stall_s must exceed stall_after_s")
        self.board = board
        self.stall_after_s = stall_after_s
        self.hard_stall_s = hard_stall_s
        self.poll_interval_s = max(0.01, poll_interval_s)
        self.on_stall = on_stall
        self.on_hard_stall = on_hard_stall
        self._metrics = metrics
        self._events = events
        self._flagged: set[int] = set()
        self._hard_flagged: set[int] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- queries (usable with or without the thread running) -----------------
    def status(self) -> tuple[ProgressSample, ...]:
        """Live progress: one (possibly slightly stale) sample per worker."""
        return self.board.snapshot()

    def stalled(self, now: float | None = None) -> list[StallReport]:
        """Workers that have started, not finished, and gone silent."""
        now = time.monotonic() if now is None else now
        out = []
        for sample in self.board.snapshot():
            if not sample.started or sample.phase == "done":
                continue
            silent = sample.silent_s(now)
            if silent >= self.stall_after_s:
                out.append(StallReport(sample.worker, sample.rows_done,
                                       sample.phase, silent))
        return out

    def describe(self, worker: int) -> str:
        """One-line heartbeat diagnosis for *worker* — appended to the
        engine's worker-death error messages."""
        sample = self.board.read(worker)
        if not sample.started:
            return "never heartbeat"
        return (f"last completed row {sample.rows_done}, "
                f"phase {sample.phase!r}, "
                f"silent {sample.silent_s():.1f}s")

    # -- the watchdog thread -------------------------------------------------
    def _tick(self) -> None:
        reports = {r.worker: r for r in self.stalled()}
        for worker, report in reports.items():
            if worker not in self._flagged:
                self._flagged.add(worker)
                if self._metrics is not None:
                    self._metrics.counter(
                        "worker_stalls",
                        help="heartbeat silences beyond the stall threshold",
                    ).inc(1, device=f"worker{worker}")
                if self._events is not None:
                    self._events.emit(
                        "stall", worker=worker, phase=report.phase,
                        rows_done=report.rows_done,
                        silent_s=round(report.silent_s, 3))
                if self.on_stall is not None:
                    self.on_stall(report)
        # Re-arm workers that resumed beating.
        self._flagged &= set(reports)
        if self.hard_stall_s is not None:
            for worker, report in reports.items():
                if (report.silent_s >= self.hard_stall_s
                        and worker not in self._hard_flagged):
                    self._hard_flagged.add(worker)
                    if self._metrics is not None:
                        self._metrics.counter(
                            "worker_hard_stalls",
                            help="silences past the hard-stall threshold "
                                 "(worker presumed wedged)",
                        ).inc(1, device=f"worker{worker}")
                    if self._events is not None:
                        self._events.emit(
                            "stall", worker=worker, phase=report.phase,
                            rows_done=report.rows_done,
                            silent_s=round(report.silent_s, 3), hard=True)
                    if self.on_hard_stall is not None:
                        self.on_hard_stall(report)
        if self._metrics is not None:
            gauge = self._metrics.gauge(
                "worker_rows_done", help="rows completed per worker (live)")
            for sample in self.board.snapshot():
                if sample.started:
                    gauge.set(sample.rows_done, device=f"worker{sample.worker}")

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            self._tick()

    def start(self) -> "HeartbeatMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="mgsw-heartbeat", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (idempotent)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._tick()

    def __enter__(self) -> "HeartbeatMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
