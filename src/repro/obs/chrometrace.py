"""Chrome trace-event export: load any run's timeline in Perfetto.

Converts the :class:`~repro.device.trace.Tracer` interval log — whether
it came from the simulated chain's virtual clock or from
:func:`~repro.device.trace.merge_wall_records` folding real workers'
wall-clock spans — into the Chrome trace-event JSON object format
(``{"traceEvents": [...]}``), which ``ui.perfetto.dev`` and
``chrome://tracing`` both load directly.

Layout: one process, one track (thread) per actor in
:meth:`~repro.device.trace.Tracer.actors` order, named through ``M``
metadata events.  Every interval becomes a complete (``"X"``) event with
its kind as name and category and a stable colour per kind (``cname``),
so pruned and wait spans are visually distinct from compute at a glance.
Timestamps are microseconds, as the format requires; virtual seconds map
to "virtual microseconds" unchanged, which keeps relative durations
exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from ..device.trace import KINDS, Tracer
from ..errors import ObsError

#: Stable Chrome trace colour name per interval kind (the viewer's
#: reserved palette): compute green, transfers orange/yellow, waits grey,
#: pruned spans a distinct "good news" light green.
KIND_COLOURS = {
    "compute": "thread_state_running",
    "d2h": "thread_state_iowait",
    "h2d": "thread_state_runnable",
    "wait": "thread_state_sleeping",
    "pruned": "good",
    "checkpoint": "grey",
    "recovery": "terrible",
    "band-skip": "good",
    "warmup": "generic_work",
}

#: Microseconds per tracer time unit (tracer intervals are seconds).
_US_PER_S = 1e6


def tracer_to_chrome(
    tracer: Tracer,
    *,
    process_name: str = "mgsw",
    pid: int = 1,
) -> dict:
    """Render *tracer* as a Chrome trace-event document (see module doc)."""
    events: list[dict] = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": process_name},
    }]
    tids = {actor: i + 1 for i, actor in enumerate(tracer.actors())}
    for actor, tid in tids.items():
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": actor},
        })
        # Keep track order == actor order in the viewer.
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_sort_index",
            "args": {"sort_index": tid},
        })
    for iv in tracer.intervals:
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": tids[iv.actor],
            "name": iv.kind,
            "cat": iv.kind,
            "ts": iv.start * _US_PER_S,
            "dur": iv.duration * _US_PER_S,
            "cname": KIND_COLOURS[iv.kind],
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs.chrometrace",
            "kinds": list(KINDS),
            "actors": list(tids),
            "clamped_records": tracer.clamped_records,
        },
    }


def validate_chrome_trace(doc: Mapping) -> None:
    """Raise :class:`ObsError` if *doc* is not a loadable trace-event file.

    Checks the subset of the trace-event format the exporter relies on —
    the object form, per-event phase/pid/tid, and non-negative numeric
    ``ts``/``dur`` on complete events — which is what Perfetto's importer
    requires of our output.
    """
    problems: list[str] = []
    if not isinstance(doc, Mapping):
        raise ObsError("trace must be a JSON object (the object format)")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ObsError("trace must carry a traceEvents array")
    for i, ev in enumerate(events):
        if not isinstance(ev, Mapping):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"event {i}: missing phase 'ph'")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"event {i}: {key} must be an integer")
        if ph == "X":
            for key in ("ts", "dur"):
                val = ev.get(key)
                if not isinstance(val, (int, float)) or val < 0:
                    problems.append(
                        f"event {i}: complete event needs numeric {key} >= 0")
            if not isinstance(ev.get("name"), str):
                problems.append(f"event {i}: complete event needs a name")
        elif ph == "M" and not isinstance(ev.get("args"), Mapping):
            problems.append(f"event {i}: metadata event needs args")
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
    if problems:
        raise ObsError("invalid chrome trace: " + "; ".join(problems))


def write_chrome_trace(path: str | Path, tracer: Tracer | Mapping, **kwargs) -> Path:
    """Export *tracer* to *path* as validated trace-event JSON.

    Accepts either a :class:`~repro.device.trace.Tracer` (converted via
    :func:`tracer_to_chrome` with **kwargs**) or an already-built trace
    document.
    """
    doc = dict(tracer) if isinstance(tracer, Mapping) \
        else tracer_to_chrome(tracer, **kwargs)
    validate_chrome_trace(doc)
    path = Path(path)
    path.write_text(json.dumps(doc) + "\n")
    return path


def load_chrome_trace(path: str | Path) -> dict:
    """Load a trace-event JSON file (pair with :func:`validate_chrome_trace`)."""
    with open(path) as fh:
        return json.load(fh)
