"""Cross-process metrics registry: counters, gauges and histograms.

Every engine (the blocked single-device executor, the simulated
:class:`~repro.multigpu.chain.MultiGpuChain`, the real-process chain and
the persistent :class:`~repro.multigpu.pool.WorkerPool`) emits the same
instrument set into a :class:`MetricsRegistry` — ``blocks_computed``,
``blocks_pruned``, ``border_bytes_sent`` counters labelled by device,
block-sweep latency histograms, ``prune_rate`` gauges — so one pipeline
feeds the run manifests, the CLI's ``--telemetry`` output and the
Prometheus text endpoint alike.

Cross-process collection is **snapshot-and-merge**: a worker process
builds its own registry (nothing shared, nothing locked on the hot
path), serialises it with :meth:`MetricsRegistry.snapshot` — a plain
JSON-safe dict, so it crosses a spawn-context result queue without
custom pickling — and the parent folds it in with
:meth:`MetricsRegistry.merge_snapshot`.  Merge semantics per type:

* **counters** and **histograms** are additive (series with equal labels
  sum; histogram bucket layouts must match);
* **gauges** are last-write-wins (engines label per-worker gauges by
  device, so distinct workers never collide).

Metric and label names follow the Prometheus data model
(``[a-zA-Z_:][a-zA-Z0-9_:]*``); :meth:`MetricsRegistry.to_prometheus`
renders the standard text exposition format and
:meth:`MetricsRegistry.to_json` the snapshot dict.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Iterable, Mapping

from ..errors import ObsError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): spans sub-millisecond virtual-clock
#: block sweeps up to multi-second wall-clock slab rows.
DEFAULT_BUCKETS = (
    1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 30.0,
)


def _check_name(name: str) -> None:
    if not _NAME_RE.match(name):
        raise ObsError(f"invalid metric name {name!r}")


def _labelkey(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    for k in labels:
        if not _LABEL_RE.match(k):
            raise ObsError(f"invalid label name {k!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format 0.0.4:
    backslash, double-quote and newline must be ``\\\\``, ``\\"`` and
    ``\\n`` respectively (backslash first, or it would re-escape the
    escapes)."""
    return (value.replace("\\", r"\\")
                 .replace('"', r'\"')
                 .replace("\n", r"\n"))


def _fmt_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing labelled counter family."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[tuple, float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name}: negative increment {amount}")
        key = _labelkey(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        return self._series.get(_labelkey(labels), 0)

    def total(self) -> float:
        """Sum over every label combination (e.g. all devices)."""
        return sum(self._series.values())


class Gauge:
    """A labelled gauge family: set to the latest observed value."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[tuple, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._series[_labelkey(labels)] = float(value)

    def value(self, **labels: str) -> float:
        key = _labelkey(labels)
        if key not in self._series:
            raise ObsError(f"gauge {self.name}: no sample for labels {dict(key)}")
        return self._series[key]


class Histogram:
    """A labelled histogram family with fixed upper-bound buckets.

    Each series holds per-bucket counts (plus a +Inf overflow bucket),
    the running sum and the observation count — the Prometheus layout, so
    merge is element-wise addition and export is mechanical.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ObsError(f"histogram {self.name}: needs at least one bucket")
        self._series: dict[tuple, dict] = {}

    def _data(self, key: tuple) -> dict:
        if key not in self._series:
            self._series[key] = {
                "counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0,
            }
        return self._series[key]

    def observe(self, value: float, **labels: str) -> None:
        data = self._data(_labelkey(labels))
        data["counts"][bisect_left(self.buckets, value)] += 1
        data["sum"] += float(value)
        data["count"] += 1

    def count(self, **labels: str) -> int:
        key = _labelkey(labels)
        return self._series[key]["count"] if key in self._series else 0

    def sum(self, **labels: str) -> float:
        key = _labelkey(labels)
        return self._series[key]["sum"] if key in self._series else 0.0


class MetricsRegistry:
    """One process's metric families, keyed by name (see module docstring)."""

    def __init__(self) -> None:
        self._families: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: str, factory):
        _check_name(name)
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = factory()
            return fam
        if fam.kind != kind:
            raise ObsError(
                f"metric {name!r} already registered as a {fam.kind}, "
                f"requested as a {kind}")
        return fam

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        fam = self._get(name, "histogram", lambda: Histogram(name, help, buckets))
        if fam.buckets != tuple(sorted(float(b) for b in buckets)):
            raise ObsError(f"histogram {name!r} re-registered with different buckets")
        return fam

    def families(self) -> list[Counter | Gauge | Histogram]:
        return [self._families[name] for name in sorted(self._families)]

    # -- snapshot / merge (the spawn-safe cross-process pipeline) ------------
    def snapshot(self) -> dict:
        """JSON-safe dump of every family — the worker->parent wire format."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for fam in self.families():
            if fam.kind == "histogram":
                out["histograms"][fam.name] = {
                    "help": fam.help,
                    "buckets": list(fam.buckets),
                    "series": [
                        {"labels": dict(key), "counts": list(d["counts"]),
                         "sum": d["sum"], "count": d["count"]}
                        for key, d in sorted(fam._series.items())
                    ],
                }
            else:
                out[fam.kind + "s"][fam.name] = {
                    "help": fam.help,
                    "series": [
                        {"labels": dict(key), "value": value}
                        for key, value in sorted(fam._series.items())
                    ],
                }
        return out

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold one :meth:`snapshot` into this registry (module docstring:
        counters/histograms add, gauges take the incoming value)."""
        for name, doc in snap.get("counters", {}).items():
            fam = self.counter(name, doc.get("help", ""))
            for series in doc["series"]:
                fam.inc(series["value"], **series["labels"])
        for name, doc in snap.get("gauges", {}).items():
            fam = self.gauge(name, doc.get("help", ""))
            for series in doc["series"]:
                fam.set(series["value"], **series["labels"])
        for name, doc in snap.get("histograms", {}).items():
            fam = self.histogram(name, doc.get("help", ""), doc["buckets"])
            for series in doc["series"]:
                if len(series["counts"]) != len(fam.buckets) + 1:
                    raise ObsError(
                        f"histogram {name!r}: snapshot bucket layout mismatch")
                data = fam._data(_labelkey(series["labels"]))
                for i, c in enumerate(series["counts"]):
                    data["counts"][i] += c
                data["sum"] += series["sum"]
                data["count"] += series["count"]

    # -- exports -------------------------------------------------------------
    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for fam in self.families():
            if fam.help:
                lines.append(f"# HELP {fam.name} {fam.help}")
            lines.append(f"# TYPE {fam.name} {fam.kind}")
            if fam.kind == "histogram":
                for key, data in sorted(fam._series.items()):
                    cumulative = 0
                    for bound, count in zip(fam.buckets, data["counts"]):
                        cumulative += count
                        le_key = key + (("le", f"{bound:g}"),)
                        lines.append(
                            f"{fam.name}_bucket{_fmt_labels(le_key)} {cumulative}")
                    cumulative += data["counts"][-1]
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(f"{fam.name}_bucket{_fmt_labels(inf_key)} {cumulative}")
                    lines.append(f"{fam.name}_sum{_fmt_labels(key)} {data['sum']:g}")
                    lines.append(f"{fam.name}_count{_fmt_labels(key)} {data['count']}")
            else:
                for key, value in sorted(fam._series.items()):
                    lines.append(f"{fam.name}{_fmt_labels(key)} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")
