"""NCBI-format substitution matrix parser.

BLOSUM/PAM matrices are distributed as whitespace-separated tables with a
``#`` comment header, a column-label row, and one row-labelled line per
residue (the format of NCBI's ``data/BLOSUM62`` files).  This module
parses them into :class:`~repro.seq.protein.CustomScoring` so users can
drop in any matrix file; the embedded BLOSUM62 is validated against the
parser in the tests (write → parse → identical).
"""

from __future__ import annotations

import io
import os

import numpy as np

from ..errors import ScoringError
from .protein import AMINO_ACIDS, CustomScoring


def parse_ncbi_matrix(
    source: str | os.PathLike | io.TextIOBase,
    *,
    gap_open: int = 10,
    gap_extend: int = 1,
) -> CustomScoring:
    """Parse an NCBI-format matrix file into a :class:`CustomScoring`.

    The matrix is re-ordered into the library's amino-acid code order;
    labels the library does not model (``*``, ``B``, ``Z``, ``J``, ``U``,
    ``O``) are ignored, and any of the 21 modelled residues missing from
    the file is an error.
    """
    own = False
    if isinstance(source, (str, os.PathLike)):
        handle: io.TextIOBase = open(source, "r", encoding="ascii")
        own = True
    else:
        handle = source
    try:
        columns: list[str] | None = None
        rows: dict[str, list[int]] = {}
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if columns is None:
                if any(len(p) != 1 for p in parts):
                    raise ScoringError("malformed column-label row")
                columns = [p.upper() for p in parts]
                continue
            label = parts[0].upper()
            if len(label) != 1:
                raise ScoringError(f"malformed row label {parts[0]!r}")
            try:
                values = [int(v) for v in parts[1:]]
            except ValueError as exc:
                raise ScoringError(f"non-integer score in row {label}: {exc}") from exc
            if len(values) != len(columns):
                raise ScoringError(
                    f"row {label} has {len(values)} values, expected {len(columns)}"
                )
            rows[label] = values
        if columns is None:
            raise ScoringError("no matrix found in input")
    finally:
        if own:
            handle.close()

    matrix = np.zeros((len(AMINO_ACIDS), len(AMINO_ACIDS)), dtype=np.int32)
    col_index = {label: k for k, label in enumerate(columns)}
    for i, aa_i in enumerate(AMINO_ACIDS):
        if aa_i not in rows:
            raise ScoringError(f"matrix is missing residue {aa_i!r}")
        row = rows[aa_i]
        for j, aa_j in enumerate(AMINO_ACIDS):
            if aa_j not in col_index:
                raise ScoringError(f"matrix is missing column {aa_j!r}")
            matrix[i, j] = row[col_index[aa_j]]
    return CustomScoring(matrix=matrix, gap_open=gap_open, gap_extend=gap_extend)


def format_ncbi_matrix(scoring: CustomScoring, *, comment: str = "") -> str:
    """Render a :class:`CustomScoring` in NCBI matrix format."""
    lines = []
    if comment:
        lines.extend(f"# {c}" for c in comment.splitlines())
    lines.append("  " + "  ".join(AMINO_ACIDS))
    for i, aa in enumerate(AMINO_ACIDS):
        cells = " ".join(f"{int(v):3d}" for v in scoring.matrix[i])
        lines.append(f"{aa} {cells}")
    return "\n".join(lines) + "\n"
