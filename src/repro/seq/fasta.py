"""Minimal, robust FASTA reading and writing for chromosome-scale files.

Reading is streaming and memory-lean: lines are accumulated as bytes and
encoded to a single ``uint8`` code array per record.  Only what megabase
comparison needs is supported — no quality scores, no alignments.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import FastaError
from . import encoding


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: ``name`` (first word of the header), full
    ``description`` (header minus ``>``), and encoded ``codes``."""

    name: str
    description: str
    codes: np.ndarray

    def __len__(self) -> int:
        return int(self.codes.size)

    @property
    def text(self) -> str:
        """The sequence as an ASCII string (materialises the whole thing)."""
        return encoding.decode(self.codes)


def iter_fasta(source: str | os.PathLike | io.TextIOBase, *, strict: bool = False) -> Iterator[FastaRecord]:
    """Yield :class:`FastaRecord` objects from a path or open text handle.

    Raises :class:`~repro.errors.FastaError` on structural problems
    (sequence data before any header, empty record, empty file).
    """
    own = False
    if isinstance(source, (str, os.PathLike)):
        handle: io.TextIOBase = open(source, "r", encoding="ascii", errors="replace")
        own = True
    else:
        handle = source
    try:
        header: str | None = None
        chunks: list[bytes] = []
        saw_any = False
        for line in handle:
            line = line.rstrip("\r\n")
            if not line:
                continue
            if line.startswith(">"):
                if header is not None:
                    yield _make_record(header, chunks, strict)
                elif chunks:
                    raise FastaError("sequence data before first FASTA header")
                header = line[1:].strip()
                chunks = []
                saw_any = True
            elif line.startswith(";"):
                continue  # old-style comment line
            else:
                if header is None:
                    raise FastaError("sequence data before first FASTA header")
                chunks.append(line.encode("ascii", errors="replace"))
        if header is not None:
            yield _make_record(header, chunks, strict)
        elif not saw_any:
            raise FastaError("empty FASTA input")
    finally:
        if own:
            handle.close()


def _make_record(header: str, chunks: list[bytes], strict: bool) -> FastaRecord:
    if not chunks:
        raise FastaError(f"record {header!r} has no sequence data")
    codes = encoding.encode(b"".join(chunks), strict=strict)
    name = header.split()[0] if header else ""
    return FastaRecord(name=name, description=header, codes=codes)


def read_fasta(source: str | os.PathLike | io.TextIOBase, *, strict: bool = False) -> list[FastaRecord]:
    """Read every record of a FASTA file into a list."""
    return list(iter_fasta(source, strict=strict))


def read_single(source: str | os.PathLike | io.TextIOBase, *, strict: bool = False) -> FastaRecord:
    """Read a FASTA file that must contain exactly one record."""
    records = read_fasta(source, strict=strict)
    if len(records) != 1:
        raise FastaError(f"expected exactly one record, found {len(records)}")
    return records[0]


def write_fasta(
    target: str | os.PathLike | io.TextIOBase,
    records: FastaRecord | list[FastaRecord],
    *,
    width: int = 70,
) -> None:
    """Write one or more records, wrapping sequence lines at *width*."""
    if width <= 0:
        raise FastaError("line width must be positive")
    if isinstance(records, FastaRecord):
        records = [records]
    own = False
    if isinstance(target, (str, os.PathLike)):
        handle: io.TextIOBase = open(target, "w", encoding="ascii")
        own = True
    else:
        handle = target
    try:
        for rec in records:
            handle.write(f">{rec.description or rec.name}\n")
            text = rec.text
            for start in range(0, len(text), width):
                handle.write(text[start : start + width])
                handle.write("\n")
    finally:
        if own:
            handle.close()
