"""Protein alphabet and substitution-matrix scoring.

The paper's system is DNA-only, but the Smith-Waterman substrate it rests
on is alphabet-agnostic: the kernels only consume a substitution matrix
and affine gap penalties.  This module provides the protein side —
the 20 amino acids plus ``X`` (unknown), the BLOSUM62 matrix, and a
:class:`CustomScoring` satisfying the same protocol as
:class:`repro.seq.scoring.Scoring` — so the library doubles as a general
pairwise aligner (the CUDASW++ lineage's domain).

Protein sequences use their own code space (0..20); do not mix them with
DNA codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ScoringError, SequenceError

#: Amino acids in BLOSUM order; index == code.  ``X`` is the unknown.
AMINO_ACIDS: str = "ARNDCQEGHILKMFPSTWYVX"

#: Alphabet size including X.
PROTEIN_ALPHABET_SIZE: int = len(AMINO_ACIDS)

_LUT = np.full(256, PROTEIN_ALPHABET_SIZE - 1, dtype=np.uint8)  # default X
for _i, _aa in enumerate(AMINO_ACIDS):
    _LUT[ord(_aa)] = _i
    _LUT[ord(_aa.lower())] = _i
# Common ambiguity codes map to their conventional stand-ins or X.
_LUT[ord("B")] = AMINO_ACIDS.index("N")
_LUT[ord("Z")] = AMINO_ACIDS.index("Q")
_LUT[ord("J")] = AMINO_ACIDS.index("L")
_LUT[ord("U")] = AMINO_ACIDS.index("C")
_LUT[ord("O")] = AMINO_ACIDS.index("K")
for _c in "bzjuo":
    _LUT[ord(_c)] = _LUT[ord(_c.upper())]

_CODE_TO_ASCII = np.frombuffer(AMINO_ACIDS.encode(), dtype=np.uint8).copy()


def encode_protein(text: str | bytes) -> np.ndarray:
    """Encode an amino-acid string into a uint8 code array (unknown → X)."""
    if isinstance(text, str):
        raw = np.frombuffer(text.encode("ascii", errors="replace"), dtype=np.uint8)
    elif isinstance(text, (bytes, bytearray)):
        raw = np.frombuffer(bytes(text), dtype=np.uint8)
    else:
        raise SequenceError(f"cannot encode object of type {type(text).__name__}")
    return _LUT[raw]


def decode_protein(codes: np.ndarray) -> str:
    """Decode protein codes back to an amino-acid string."""
    if codes.dtype != np.uint8 or codes.ndim != 1 or (
        codes.size and int(codes.max()) >= PROTEIN_ALPHABET_SIZE
    ):
        raise SequenceError("decode_protein expects a 1-D uint8 protein code array")
    return _CODE_TO_ASCII[codes].tobytes().decode("ascii")


# BLOSUM62, rows/cols in AMINO_ACIDS order (X row/col uses the standard
# -1/-4 conventions folded to -1 against everything, -1 with itself).
_BLOSUM62_ROWS = """
 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -1
-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1
-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3 -1
-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3 -1
 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -1
-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2 -1
-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2 -1
 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1
-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3 -1
-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -1
-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -1
-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2 -1
-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -1
-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -1
-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -1
 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2 -1
 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1
-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -1
-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -1
 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -1
-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1
"""

BLOSUM62: np.ndarray = np.array(
    [[int(v) for v in line.split()] for line in _BLOSUM62_ROWS.strip().splitlines()],
    dtype=np.int32,
)
assert BLOSUM62.shape == (PROTEIN_ALPHABET_SIZE, PROTEIN_ALPHABET_SIZE)


@dataclass(frozen=True)
class CustomScoring:
    """Arbitrary substitution-matrix scoring with affine gaps.

    Satisfies the protocol every kernel in :mod:`repro.sw` consumes
    (``matrix``, ``gap_open``, ``gap_extend``, ``match`` as the best
    per-column gain used by pruning bounds).
    """

    matrix: np.ndarray
    gap_open: int = 10
    gap_extend: int = 1
    match: int = field(init=False)

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=np.int32)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ScoringError("substitution matrix must be square")
        if not np.array_equal(m, m.T):
            raise ScoringError("substitution matrix must be symmetric")
        if self.gap_open < 0:
            raise ScoringError("gap_open must be >= 0")
        if self.gap_extend <= 0:
            raise ScoringError("gap_extend must be positive")
        best = int(m.max())
        if best <= 0:
            raise ScoringError("matrix must reward at least one pairing")
        object.__setattr__(self, "matrix", m)
        object.__setattr__(self, "match", best)

    @property
    def gap_first(self) -> int:
        return self.gap_open + self.gap_extend

    def gap_cost(self, length: int) -> int:
        if length < 0:
            raise ScoringError("gap length must be >= 0")
        return 0 if length == 0 else self.gap_open + length * self.gap_extend


#: The classic protein scheme: BLOSUM62 with gap open 10, extend 1.
BLOSUM62_SCORING = CustomScoring(matrix=BLOSUM62, gap_open=10, gap_extend=1)
