"""DNA alphabet definition and character-level utilities.

The library works on nucleotide sequences over ``A C G T`` with ``N`` as the
single ambiguity symbol (anything that is not one of the four bases is read
as ``N``, matching what megabase chromosome FASTA files contain after
repeat-masking).  Sequences are stored as ``numpy.uint8`` code arrays; the
codes are stable public API:

====  =====
base  code
====  =====
A     0
C     1
G     2
T     3
N     4
====  =====
"""

from __future__ import annotations

import numpy as np

#: Canonical base order; index == code.
BASES: str = "ACGTN"

#: Code assigned to each of the four unambiguous bases.
A, C, G, T, N = range(5)

#: Number of symbols in the alphabet (including ``N``).
ALPHABET_SIZE: int = 5

#: Complement code table: ``COMPLEMENT[code]`` is the code of the complement.
COMPLEMENT: np.ndarray = np.array([T, G, C, A, N], dtype=np.uint8)

# 256-entry lookup: ASCII byte -> code.  Lower/upper case accepted; every
# other byte maps to N's code + 1 used as a sentinel for *strict* decoding,
# while the lenient table maps unknown bytes straight to N.
_STRICT_INVALID = np.uint8(255)

LENIENT_LUT: np.ndarray = np.full(256, N, dtype=np.uint8)
STRICT_LUT: np.ndarray = np.full(256, _STRICT_INVALID, dtype=np.uint8)
for _i, _b in enumerate(BASES):
    LENIENT_LUT[ord(_b)] = _i
    LENIENT_LUT[ord(_b.lower())] = _i
    STRICT_LUT[ord(_b)] = _i
    STRICT_LUT[ord(_b.lower())] = _i

# IUPAC ambiguity codes are accepted leniently and strictly as N (this is
# what chromosome-scale aligners do: they never reward an ambiguous match).
for _b in "RYSWKMBDHV":
    LENIENT_LUT[ord(_b)] = N
    LENIENT_LUT[ord(_b.lower())] = N
    STRICT_LUT[ord(_b)] = N
    STRICT_LUT[ord(_b.lower())] = N

#: Decode table: code -> ASCII byte.
CODE_TO_ASCII: np.ndarray = np.frombuffer(BASES.encode(), dtype=np.uint8).copy()


def is_valid_code_array(codes: np.ndarray) -> bool:
    """Return True when *codes* is a uint8 array whose values are all < 5."""
    return (
        isinstance(codes, np.ndarray)
        and codes.dtype == np.uint8
        and codes.ndim == 1
        and (codes.size == 0 or int(codes.max(initial=0)) < ALPHABET_SIZE)
    )
