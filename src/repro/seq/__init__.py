"""Sequence substrate: alphabet, encoding, scoring, FASTA IO.

Public surface::

    from repro.seq import encode, decode, reverse_complement
    from repro.seq import Scoring, DNA_DEFAULT
    from repro.seq import read_fasta, write_fasta, FastaRecord
"""

from .alphabet import ALPHABET_SIZE, BASES, A, C, G, T, N
from .encoding import decode, encode, pack_2bit, reverse_complement, unpack_2bit
from .fasta import FastaRecord, iter_fasta, read_fasta, read_single, write_fasta
from .protein import (
    AMINO_ACIDS,
    BLOSUM62,
    BLOSUM62_SCORING,
    PROTEIN_ALPHABET_SIZE,
    CustomScoring,
    decode_protein,
    encode_protein,
)
from .matrixio import format_ncbi_matrix, parse_ncbi_matrix
from .scoring import DNA_DEFAULT, LINEAR_GAPS, Scoring
from .twobit import load_2bit, save_2bit

__all__ = [
    "ALPHABET_SIZE",
    "BASES",
    "A",
    "C",
    "G",
    "T",
    "N",
    "encode",
    "decode",
    "reverse_complement",
    "pack_2bit",
    "unpack_2bit",
    "FastaRecord",
    "iter_fasta",
    "read_fasta",
    "read_single",
    "write_fasta",
    "Scoring",
    "DNA_DEFAULT",
    "LINEAR_GAPS",
    "AMINO_ACIDS",
    "BLOSUM62",
    "BLOSUM62_SCORING",
    "PROTEIN_ALPHABET_SIZE",
    "CustomScoring",
    "decode_protein",
    "encode_protein",
    "load_2bit",
    "save_2bit",
    "format_ncbi_matrix",
    "parse_ncbi_matrix",
]
