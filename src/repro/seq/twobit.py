"""Persistent 2-bit sequence format (.mg2b).

Chromosome-scale pipelines keep sequences on disk between stages; storing
them 2-bit packed (plus an N bitmap) quarters the footprint and matches
the in-memory layout :func:`repro.seq.encoding.pack_2bit` produces, so
loading is a couple of ``frombuffer`` calls.

Layout (little-endian)::

    offset  size  field
    0       4     magic  b"MG2B"
    4       4     version (currently 1)
    8       8     sequence length in bases (u64)
    16      8     packed payload size in bytes (u64)
    24      8     N-mask size in bytes (u64)
    32      ...   packed bases (4 per byte)
    ...     ...   N bitmap (1 bit per base)
"""

from __future__ import annotations

import os
import struct

import numpy as np

from ..errors import SequenceError
from .encoding import pack_2bit, unpack_2bit

MAGIC = b"MG2B"
VERSION = 1
_HEADER = struct.Struct("<4sIQQQ")


def save_2bit(path: str | os.PathLike, codes: np.ndarray) -> int:
    """Write an encoded sequence as .mg2b; returns bytes written."""
    packed, mask, length = pack_2bit(codes)
    header = _HEADER.pack(MAGIC, VERSION, length, packed.nbytes, mask.nbytes)
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(packed.tobytes())
        fh.write(mask.tobytes())
    return _HEADER.size + packed.nbytes + mask.nbytes


def load_2bit(path: str | os.PathLike) -> np.ndarray:
    """Read an .mg2b file back into a code array."""
    with open(path, "rb") as fh:
        raw = fh.read(_HEADER.size)
        if len(raw) != _HEADER.size:
            raise SequenceError(f"{path}: truncated header")
        magic, version, length, packed_size, mask_size = _HEADER.unpack(raw)
        if magic != MAGIC:
            raise SequenceError(f"{path}: not an mg2b file (magic {magic!r})")
        if version != VERSION:
            raise SequenceError(f"{path}: unsupported version {version}")
        expected_packed = (length + 3) // 4
        expected_mask = (length + 7) // 8 if length else 0
        if packed_size != expected_packed or mask_size != expected_mask:
            raise SequenceError(f"{path}: inconsistent section sizes")
        packed = np.frombuffer(fh.read(packed_size), dtype=np.uint8)
        mask = np.frombuffer(fh.read(mask_size), dtype=np.uint8)
        if packed.size != packed_size or mask.size != mask_size:
            raise SequenceError(f"{path}: truncated payload")
    return unpack_2bit(packed, mask, int(length))
