"""Scoring schemes for nucleotide Smith-Waterman with affine gaps.

The default parameters are the ones the CUDAlign family uses for DNA
(match ``+1``, mismatch ``-3``, first gap base ``-5``, each further gap base
``-2``), expressed here as ``gap_open = 3`` and ``gap_extend = 2`` with the
convention that a gap of length ``L`` costs ``gap_open + L * gap_extend``.

``N`` never matches anything (including another ``N``): comparisons touching
an ambiguous base score the mismatch penalty, which is what megabase DNA
aligners do so that masked repeat runs cannot inflate the score.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ScoringError
from . import alphabet


@dataclass(frozen=True)
class Scoring:
    """Affine-gap nucleotide scoring scheme.

    Attributes
    ----------
    match:
        Score added when two identical unambiguous bases align. Must be > 0
        for local alignment to be meaningful.
    mismatch:
        Score added when two different (or ambiguous) bases align.
        Must be <= 0.
    gap_open:
        One-time penalty charged when a gap is opened (non-negative).
        A gap of length ``L`` costs ``gap_open + L * gap_extend``.
    gap_extend:
        Per-base gap penalty (positive).
    """

    match: int = 1
    mismatch: int = -3
    gap_open: int = 3
    gap_extend: int = 2
    #: 5x5 substitution matrix derived from match/mismatch (int32); computed
    #: in __post_init__ and cached on the instance.
    matrix: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ScoringError(f"match score must be positive, got {self.match}")
        if self.mismatch > 0:
            raise ScoringError(f"mismatch score must be <= 0, got {self.mismatch}")
        if self.gap_open < 0:
            raise ScoringError(f"gap_open must be >= 0, got {self.gap_open}")
        if self.gap_extend <= 0:
            raise ScoringError(f"gap_extend must be positive, got {self.gap_extend}")
        m = np.full((alphabet.ALPHABET_SIZE, alphabet.ALPHABET_SIZE), self.mismatch, dtype=np.int32)
        for i in range(4):
            m[i, i] = self.match
        # N vs anything (incl. N) is a mismatch.
        m[alphabet.N, :] = self.mismatch
        m[:, alphabet.N] = self.mismatch
        object.__setattr__(self, "matrix", m)

    @property
    def gap_first(self) -> int:
        """Cost of the first base of a gap (``gap_open + gap_extend``)."""
        return self.gap_open + self.gap_extend

    def substitution_profile(self, query: np.ndarray) -> np.ndarray:
        """Pre-compute the query profile used by the vectorised kernels.

        Returns an ``(ALPHABET_SIZE, len(query))`` int32 array ``P`` where
        ``P[b, i] == matrix[query[i], b]``: row ``b`` is the score vector of
        aligning every query base against subject base ``b``.  Kernels then
        fetch a whole row per subject base instead of gathering per cell.
        """
        return self.matrix[query.astype(np.intp), :].T.copy()

    def gap_cost(self, length: int) -> int:
        """Total penalty of a gap of *length* bases (0 length costs 0)."""
        if length < 0:
            raise ScoringError("gap length must be >= 0")
        return 0 if length == 0 else self.gap_open + length * self.gap_extend


#: The scheme used throughout the paper's system for DNA.
DNA_DEFAULT = Scoring(match=1, mismatch=-3, gap_open=3, gap_extend=2)

#: A blunter scheme handy in tests (no gap-open, pure linear gaps).
LINEAR_GAPS = Scoring(match=1, mismatch=-1, gap_open=0, gap_extend=1)
