"""Conversion between text sequences and ``uint8`` code arrays.

Encoding is vectorised through a 256-entry lookup table (one fused take per
megabase — this is the idiom the whole library uses for hot paths: no Python
loops over bases).  Two policies exist:

* ``strict=False`` (default): any unrecognised byte becomes ``N``, the way
  chromosome aligners treat masked/ambiguous regions.
* ``strict=True``: unrecognised bytes raise :class:`~repro.errors.SequenceError`.
"""

from __future__ import annotations

import numpy as np

from ..errors import SequenceError
from . import alphabet


def encode(text: str | bytes | bytearray | np.ndarray, *, strict: bool = False) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` code array.

    Parameters
    ----------
    text:
        ASCII sequence (``str``/``bytes``) or an already-encoded ``uint8``
        code array (returned unchanged after validation).
    strict:
        When True, raise on bytes outside ``ACGTN``/IUPAC instead of mapping
        them to ``N``.

    Returns
    -------
    numpy.ndarray
        1-D ``uint8`` array of base codes (see :mod:`repro.seq.alphabet`).
    """
    if isinstance(text, np.ndarray):
        if not alphabet.is_valid_code_array(text):
            raise SequenceError("array input must be a 1-D uint8 code array with values < 5")
        return text
    if isinstance(text, str):
        raw = np.frombuffer(text.encode("ascii", errors="replace"), dtype=np.uint8)
    elif isinstance(text, (bytes, bytearray)):
        raw = np.frombuffer(bytes(text), dtype=np.uint8)
    else:
        raise SequenceError(f"cannot encode object of type {type(text).__name__}")

    if strict:
        codes = alphabet.STRICT_LUT[raw]
        if codes.size and int(codes.max(initial=0)) == 255:
            bad = raw[codes == 255][0]
            raise SequenceError(f"invalid base byte {bad!r} ({chr(int(bad))!r}) in strict mode")
        return codes
    return alphabet.LENIENT_LUT[raw]


def decode(codes: np.ndarray) -> str:
    """Decode a ``uint8`` code array back into an ASCII string."""
    if not alphabet.is_valid_code_array(codes):
        raise SequenceError("decode expects a 1-D uint8 code array with values < 5")
    return alphabet.CODE_TO_ASCII[codes].tobytes().decode("ascii")


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Return the reverse complement of an encoded sequence (new array)."""
    if not alphabet.is_valid_code_array(codes):
        raise SequenceError("reverse_complement expects a code array")
    return alphabet.COMPLEMENT[codes[::-1]]


def pack_2bit(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Pack a code array into 2 bits/base plus an N-mask bitmap.

    This mirrors the memory layout GPU aligners use to fit megabase
    sequences in device memory; the simulator's footprint model charges
    bytes according to this packing.

    Returns ``(packed, n_mask, length)`` where *packed* holds 4 bases per
    byte (A..T only; N is stored as A and flagged in *n_mask*), and
    *n_mask* is a bit-per-base bitmap of ambiguous positions.
    """
    if not alphabet.is_valid_code_array(codes):
        raise SequenceError("pack_2bit expects a code array")
    n = codes.size
    is_n = codes == alphabet.N
    two_bit = np.where(is_n, np.uint8(0), codes).astype(np.uint8)
    pad = (-n) % 4
    if pad:
        two_bit = np.concatenate([two_bit, np.zeros(pad, dtype=np.uint8)])
    two_bit = two_bit.reshape(-1, 4)
    packed = (
        two_bit[:, 0]
        | (two_bit[:, 1] << 2)
        | (two_bit[:, 2] << 4)
        | (two_bit[:, 3] << 6)
    ).astype(np.uint8)
    n_mask = np.packbits(is_n)
    return packed, n_mask, n


def unpack_2bit(packed: np.ndarray, n_mask: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_2bit`."""
    if length < 0:
        raise SequenceError("length must be non-negative")
    b = packed.astype(np.uint8)
    out = np.empty((b.size, 4), dtype=np.uint8)
    out[:, 0] = b & 3
    out[:, 1] = (b >> 2) & 3
    out[:, 2] = (b >> 4) & 3
    out[:, 3] = (b >> 6) & 3
    codes = out.reshape(-1)[:length].copy()
    if length:
        is_n = np.unpackbits(n_mask)[:length].astype(bool)
        codes[is_n] = alphabet.N
    return codes
