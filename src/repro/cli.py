"""Command-line interface: the ``mgsw`` tool.

Subcommands:

* ``mgsw generate`` — write a synthetic homologous chromosome pair as FASTA;
* ``mgsw align A.fa B.fa`` — exact multi-GPU comparison (score, end point,
  virtual GCUPS; ``--trace`` also reconstructs the alignment).
  ``--backend sim`` (default) runs the simulated device chain;
  ``--backend process`` runs the same dataflow on real OS processes with
  shared-memory border rings (``--workers``, ``--transport``,
  ``--start-method``) and reports wall-clock GCUPS;
* ``mgsw time ROWS COLS`` — timing-mode run at arbitrary (paper) scale;
* ``mgsw tune ROWS COLS`` — autotune block height + buffer capacity;
* ``mgsw campaign`` — the 4-pair paper campaign, both strategies;
* ``mgsw stats`` — Karlin-Altschul significance thresholds;
* ``mgsw dotplot A.fa B.fa`` — coarse text dotplot;
* ``mgsw devices`` — list the built-in device presets and environments;
* ``mgsw perf trace-export`` — run a comparison and export its timeline
  as Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``);
* ``mgsw perf diff OLD NEW`` — regression diff between two telemetry /
  benchmark JSON documents (report-only unless ``--fail-on-regression``);
* ``mgsw top DIR`` — live per-worker progress table rendered from a
  running ``mgsw align --telemetry DIR`` (follows until ``run_end``);
* ``mgsw serve`` — long-lived alignment service: admission-controlled
  fair-share job queue over persistent worker pools, digest-keyed
  result cache, live ``/jobs`` + ``/metrics`` status endpoint
  (INTERNALS.md section 14);
* ``mgsw submit A.fa B.fa`` — send one job to a running daemon and
  (by default) wait for its result;
* ``mgsw jobs`` — list a running daemon's jobs, queue and cache stats.

``mgsw align --telemetry DIR`` additionally writes the full telemetry
bundle for the run — ``manifest.json``, ``metrics.json``,
``metrics.prom``, ``trace.json``, plus the live ``events.jsonl`` event
journal and ``timeline.jsonl`` progress frames — and, on the process
backend, arms the live heartbeat watchdog (``--heartbeat-s``).
``mgsw align --serve-metrics PORT`` streams the same live state over
HTTP while the run goes: ``/metrics`` is Prometheus text, ``/status``
JSON progress + ETA + recent events (INTERNALS.md section 13).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import seq, workloads
from .device import spec as device_spec
from .device.spec import DeviceSpec
from .errors import ReproError
from .multigpu import (
    TRANSPORTS,
    ChainConfig,
    align_multi_gpu,
    align_multi_process,
    autotune,
    run_campaign_chained,
    run_campaign_split,
    time_multi_gpu,
)
from .perf import format_table, humanize_cells, humanize_time
from .sw import DP_DTYPE_CHOICES, KERNEL_CHOICES, align_local, resolve_kernel
from .sw.xdrop import DEFAULT_BAND_WIDTH, DEFAULT_XDROP_X, MODES

#: Name -> preset mapping for --gpu flags.
PRESETS: dict[str, DeviceSpec] = {
    "gtx560ti": device_spec.GTX_560_TI,
    "gtx580": device_spec.GTX_580,
    "gtx680": device_spec.GTX_680,
    "k20": device_spec.TESLA_K20,
    "m2090": device_spec.TESLA_M2090,
}

ENVIRONMENTS: dict[str, tuple[DeviceSpec, ...]] = {
    "env1": device_spec.ENV1_HETEROGENEOUS,
    "env2": device_spec.ENV2_HOMOGENEOUS,
}


def _devices_from_args(args: argparse.Namespace) -> tuple[DeviceSpec, ...]:
    if args.env:
        return ENVIRONMENTS[args.env]
    if args.gpu:
        return tuple(PRESETS[name] for name in args.gpu)
    return ENVIRONMENTS["env1"]


def _add_device_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--env", choices=sorted(ENVIRONMENTS), default=None,
                   help="named GPU environment (default: env1)")
    p.add_argument("--gpu", action="append", choices=sorted(PRESETS), default=None,
                   help="add one device by preset name (repeatable)")
    p.add_argument("--block-rows", type=int, default=512,
                   help="block row height (border segment granularity)")
    p.add_argument("--buffer", type=int, default=4,
                   help="circular-buffer capacity in segments")


def _write_telemetry(outdir, *, backend, config, res, registry, tracer,
                     a, b, wall_time_s, command=None):
    """Write the full telemetry bundle for one run into *outdir*."""
    from pathlib import Path

    from .obs import (
        build_manifest,
        sequence_digest,
        tracer_to_chrome,
        write_chrome_trace,
        write_manifest,
    )
    from .perf.report import result_dict

    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(
        backend=backend,
        config=config,
        result=result_dict(res),
        sequences={"a": sequence_digest(a), "b": sequence_digest(b)},
        metrics=registry.snapshot(),
        command=command,
        wall_time_s=wall_time_s,
    )
    write_manifest(outdir / "manifest.json", manifest)
    (outdir / "metrics.json").write_text(registry.to_json(indent=2) + "\n")
    (outdir / "metrics.prom").write_text(registry.to_prometheus())
    write_chrome_trace(outdir / "trace.json", tracer_to_chrome(tracer))
    bundle = "manifest.json, metrics.json, metrics.prom, trace.json"
    if (outdir / "events.jsonl").exists():
        bundle += ", events.jsonl, timeline.jsonl"
    print(f"telemetry written to {outdir}/ ({bundle})")


def cmd_align(args: argparse.Namespace) -> int:
    import time as time_mod
    from pathlib import Path

    a = seq.read_single(args.seq_a).codes
    b = seq.read_single(args.seq_b).codes
    title = f"{args.seq_a} vs {args.seq_b}"
    telemetry = args.telemetry is not None
    serve = getattr(args, "serve_metrics", None) is not None
    live = telemetry or serve
    registry = tracer = None
    journal = sampler = server = None
    if telemetry:
        from .device.trace import Tracer

        tracer = Tracer()
    if live:
        # Live telemetry (INTERNALS.md section 13): the journal and
        # sampler always run when any telemetry consumer is armed; the
        # spill files land next to the post-hoc bundle under --telemetry,
        # and --serve-metrics streams them over HTTP while the run goes.
        from .obs import EventJournal, MetricsRegistry, TimeSeriesSampler

        registry = MetricsRegistry()
        outdir = Path(args.telemetry) if telemetry else None
        journal = EventJournal(
            outdir / "events.jsonl" if outdir is not None else None)
        sampler = TimeSeriesSampler(
            spill=outdir / "timeline.jsonl" if outdir is not None else None,
            registry=registry)
        if serve:
            from .obs import StatusServer

            server = StatusServer(registry=registry, sampler=sampler,
                                  journal=journal, port=args.serve_metrics)
            server.start()
            print(f"[mgsw] serving {server.url}/metrics (Prometheus) and "
                  f"{server.url}/status (JSON)", file=sys.stderr)
    try:
        return _run_align(args, a, b, title, telemetry=telemetry,
                          registry=registry, tracer=tracer,
                          journal=journal, sampler=sampler,
                          time_mod=time_mod)
    finally:
        # Stop the HTTP server *first*: a scrape landing after the
        # sampler/journal close would otherwise render from closed
        # sources (the sampler's final frame is taken by close(), but
        # the journal's spill handle would already be gone).
        if server is not None:
            server.stop()
        if sampler is not None:
            sampler.close()
        if journal is not None:
            journal.close()


def _run_align(args, a, b, title, *, telemetry, registry, tracer,
               journal, sampler, time_mod) -> int:
    if args.backend == "process":
        from .perf.report import process_report

        heartbeat_s = args.heartbeat_s
        if heartbeat_s is None and telemetry:
            from .obs import DEFAULT_STALL_AFTER_S

            heartbeat_s = DEFAULT_STALL_AFTER_S
        if heartbeat_s is not None and heartbeat_s <= 0:
            heartbeat_s = None  # --heartbeat-s 0 disables the watchdog

        def on_stall(report):
            print(f"[mgsw] {report.describe()}", file=sys.stderr)

        # Resolve before spawning: an explicit --kernel compiled without
        # numba fails here with a clean ConfigError; --kernel auto
        # degrades to the best backend this host can actually run.
        kernel = resolve_kernel(args.kernel)
        t0 = time_mod.perf_counter()
        res = align_multi_process(
            a, b, seq.DNA_DEFAULT,
            workers=args.workers,
            block_rows=args.block_rows,
            capacity=args.buffer,
            transport=args.transport,
            start_method=args.start_method,
            kernel=kernel,
            pruning=args.pruning,
            mode=args.mode,
            band_width=args.band_width,
            xdrop_x=args.xdrop_x,
            dp_dtype=args.dp_dtype,
            tracer=tracer,
            metrics=registry,
            heartbeat_s=heartbeat_s,
            on_stall=on_stall if heartbeat_s is not None else None,
            max_restarts=args.max_restarts,
            restart_backoff_s=args.restart_backoff_s,
            events=journal,
            timeline=sampler,
        )
        wall = time_mod.perf_counter() - t0
        print(process_report(res, title=title))
        if sampler is not None and sampler.frames():
            from .perf.report import timeline_report

            section = timeline_report(sampler.frames())
            if section:
                print()
                print(section)
        if telemetry:
            config = {
                "backend": "process", "workers": args.workers,
                "block_rows": args.block_rows, "capacity": args.buffer,
                "transport": args.transport,
                "start_method": res.start_method, "kernel": kernel,
                "kernel_requested": args.kernel,
                "pruning": args.pruning, "heartbeat_s": heartbeat_s,
                "max_restarts": args.max_restarts,
                "restart_backoff_s": args.restart_backoff_s,
                "mode": args.mode, "band_width": args.band_width,
                "xdrop_x": args.xdrop_x, "dp_dtype": args.dp_dtype,
            }
            _write_telemetry(args.telemetry, backend="process", config=config,
                             res=res, registry=registry, tracer=res.tracer,
                             a=a, b=b, wall_time_s=wall,
                             command=getattr(args, "_argv", None))
    else:
        from .perf.report import chain_report

        devices = _devices_from_args(args)
        # --kernel auto consults the measured device autotuner (the
        # chain's first device stands in for the host probe).
        kernel = resolve_kernel(args.kernel, spec=devices[0],
                                scoring=seq.DNA_DEFAULT,
                                block_rows=args.block_rows,
                                dp_dtype=args.dp_dtype)
        cfg = ChainConfig(block_rows=args.block_rows, channel_capacity=args.buffer,
                          kernel=kernel, pruning=args.pruning,
                          mode=args.mode, band_width=args.band_width,
                          xdrop_x=args.xdrop_x, dp_dtype=args.dp_dtype)
        t0 = time_mod.perf_counter()
        res = align_multi_gpu(a, b, seq.DNA_DEFAULT, devices, config=cfg,
                              tracer=tracer, metrics=registry,
                              events=journal)
        wall = time_mod.perf_counter() - t0
        print(chain_report(res, title=title))
        if telemetry:
            config = {
                "backend": "sim", "devices": [d.name for d in devices],
                "block_rows": args.block_rows, "buffer": args.buffer,
                "kernel": kernel, "kernel_requested": args.kernel,
                "pruning": args.pruning,
                "mode": args.mode, "band_width": args.band_width,
                "xdrop_x": args.xdrop_x, "dp_dtype": args.dp_dtype,
            }
            _write_telemetry(args.telemetry, backend="sim", config=config,
                             res=res, registry=registry, tracer=tracer,
                             a=a, b=b, wall_time_s=wall,
                             command=getattr(args, "_argv", None))
    if args.trace and res.score > 0:
        aln = align_local(a, b, seq.DNA_DEFAULT)
        print(aln.pretty(a, b))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    pair = workloads.get_pair(args.pair)
    human, chimp = workloads.synthesize_pair(pair, scale=args.scale, seed=args.seed)
    seq.write_fasta(args.out_a, seq.FastaRecord(
        name=f"human_{pair.name}", description=f"synthetic {pair.human_label} scale={args.scale}",
        codes=human))
    seq.write_fasta(args.out_b, seq.FastaRecord(
        name=f"chimp_{pair.name}", description=f"synthetic {pair.chimp_label} scale={args.scale}",
        codes=chimp))
    print(f"wrote {args.out_a} ({len(human)} bp) and {args.out_b} ({len(chimp)} bp)")
    return 0


def cmd_time(args: argparse.Namespace) -> int:
    devices = _devices_from_args(args)
    cfg = ChainConfig(block_rows=args.block_rows, channel_capacity=args.buffer)
    res = time_multi_gpu(args.rows, args.cols, devices, config=cfg)
    print(f"matrix: {args.rows} x {args.cols} = {humanize_cells(args.rows * args.cols)}")
    print(f"virtual time: {humanize_time(res.total_time_s)}  ->  {res.gcups:.2f} GCUPS")
    for g, bd in zip(res.gpus, res.breakdown()):
        print(f"  {g.name}: {g.slab.cols} cols  compute={bd['compute']:.1%} "
              f"wait={bd['wait']:.1%} idle={bd['idle']:.1%}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    devices = _devices_from_args(args)
    result = autotune(devices, args.rows, args.cols, measured=args.measured)
    print(f"devices: {', '.join(d.name for d in devices)}")
    print(f"matrix : {args.rows:,} x {args.cols:,}")
    print(f"choice : block_rows={result.config.block_rows} "
          f"buffer={result.config.channel_capacity}")
    mode = "measured (event simulator)" if result.measured else "analytic model"
    print(f"model  : {result.predicted_gcups:.2f} GCUPS predicted by the "
          f"{mode} ({humanize_time(result.predicted_total_s)}), "
          f"{result.evaluated} candidates evaluated")
    if args.measured:
        analytic = autotune(devices, args.rows, args.cols, measured=False)
        print(f"analytic pick for comparison: "
              f"block_rows={analytic.config.block_rows} "
              f"buffer={analytic.config.channel_capacity} "
              f"({analytic.predicted_gcups:.2f} GCUPS predicted)")
    if args.verify:
        sim = time_multi_gpu(args.rows, args.cols, devices, config=result.config)
        print(f"simulated: {sim.gcups:.2f} GCUPS ({humanize_time(sim.total_time_s)})")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    devices = _devices_from_args(args)
    cfg = ChainConfig(block_rows=args.block_rows, channel_capacity=args.buffer)
    pairs = list(workloads.PAPER_PAIRS)
    for strategy, runner in (("chained", run_campaign_chained),
                             ("split", run_campaign_split)):
        res = runner(pairs, devices, config=cfg)
        print(f"\n{strategy}: makespan {humanize_time(res.makespan_s)}, "
              f"aggregate {res.aggregate_gcups:.2f} GCUPS, "
              f"mean latency {humanize_time(res.mean_latency_s)}")
        rows = [
            [item.pair.name, humanize_time(item.start_s), humanize_time(item.end_s),
             f"{item.gcups:.2f}"]
            for item in res.items
        ]
        print(format_table(["pair", "start", "end", "GCUPS"], rows))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .stats import dna_statistics

    st = dna_statistics(seq.DNA_DEFAULT, k_samples=args.samples, seed=args.seed)
    print(f"scheme: match={seq.DNA_DEFAULT.match} mismatch={seq.DNA_DEFAULT.mismatch} "
          f"gap {seq.DNA_DEFAULT.gap_open}/{seq.DNA_DEFAULT.gap_extend}")
    print(f"lambda = {st.lam:.4f} (exact)   K = {st.k:.3f} (Monte-Carlo, "
          f"{args.samples} samples)")
    m, n = args.rows, args.cols
    print(f"\nfor an {m:,} x {n:,} comparison:")
    rows = []
    for e in (10.0, 1.0, 1e-3, 1e-10):
        s = st.score_for_evalue(e, m, n)
        rows.append([f"{e:g}", str(s), f"{st.bit_score(s):.1f}"])
    print(format_table(["E-value", "min score", "bits"], rows))
    return 0


def cmd_dotplot(args: argparse.Namespace) -> int:
    from .perf.dotplot import dotplot as make_dotplot

    a = seq.read_single(args.seq_a).codes
    b = seq.read_single(args.seq_b).codes
    plot = make_dotplot(a, b, seq.DNA_DEFAULT, tiles=args.tiles)
    print(f"dotplot of {len(a):,} bp vs {len(b):,} bp "
          f"({plot.tile_rows} x {plot.tile_cols} bp tiles)")
    print(plot.render(threshold=args.threshold))
    print(f"diagonal fraction: {plot.diagonal_fraction():.1%}")
    return 0


def cmd_perf_trace_export(args: argparse.Namespace) -> int:
    from .device.trace import Tracer
    from .obs import tracer_to_chrome, write_chrome_trace

    a = seq.read_single(args.seq_a).codes
    b = seq.read_single(args.seq_b).codes
    tracer = Tracer()
    kernel = resolve_kernel(args.kernel)
    if args.backend == "process":
        res = align_multi_process(
            a, b, seq.DNA_DEFAULT, workers=args.workers,
            block_rows=args.block_rows, capacity=args.buffer,
            transport=args.transport, kernel=kernel,
            pruning=args.pruning, tracer=tracer)
    else:
        devices = _devices_from_args(args)
        cfg = ChainConfig(block_rows=args.block_rows,
                          channel_capacity=args.buffer,
                          kernel=kernel, pruning=args.pruning)
        res = align_multi_gpu(a, b, seq.DNA_DEFAULT, devices, config=cfg,
                              tracer=tracer)
    doc = tracer_to_chrome(tracer)
    write_chrome_trace(args.out, doc)
    print(f"score {res.score}; wrote {len(doc['traceEvents'])} trace events "
          f"for {len(tracer.actors())} actor(s) to {args.out} "
          "(load in Perfetto or chrome://tracing)")
    return 0


def cmd_perf_diff(args: argparse.Namespace) -> int:
    import json

    from .obs import diff_documents, format_diff

    with open(args.old) as fh:
        old = json.load(fh)
    with open(args.new) as fh:
        new = json.load(fh)
    entries = diff_documents(old, new, threshold=args.threshold)
    print(f"diff: {args.old} -> {args.new}")
    print(format_diff(entries, threshold=args.threshold))
    if args.fail_on_regression and any(
            e.regressed(args.threshold) for e in entries):
        return 1
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Render the live per-worker progress table from a telemetry dir.

    Follows ``timeline.jsonl``/``events.jsonl`` (re-reading them every
    ``--interval``) until the journal carries a ``run_end`` event, then
    exits; ``--once`` renders a single snapshot and exits immediately
    (what CI and the tests use).
    """
    import time as time_mod
    from pathlib import Path

    from .obs import read_events, read_timeline
    from .perf.report import top_table

    outdir = Path(args.telemetry_dir)
    timeline_path = outdir / "timeline.jsonl"
    events_path = outdir / "events.jsonl"
    while True:
        frames = read_timeline(timeline_path)
        events = read_events(events_path)
        print(top_table(frames[-1] if frames else None, events=events))
        ended = any(e.get("event") == "run_end" for e in events)
        if args.once or ended:
            if ended and not args.once:
                print("run ended")
            return 0
        time_mod.sleep(args.interval)
        print()


def cmd_devices(_args: argparse.Namespace) -> int:
    rows = [
        [name, d.name, f"{d.gcups:.1f}", f"{d.pcie_gbps:.1f}", str(d.copy_engines)]
        for name, d in sorted(PRESETS.items())
    ]
    print(format_table(["preset", "device", "GCUPS", "PCIe GB/s", "copy engines"], rows))
    print()
    for name, env in ENVIRONMENTS.items():
        total = sum(d.gcups for d in env)
        print(f"{name}: {', '.join(d.name for d in env)}  (aggregate {total:.1f} GCUPS)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the alignment service until a shutdown request or Ctrl-C."""
    from .serve import ServeConfig, ServeDaemon

    config = ServeConfig(
        pools=args.pools, workers=args.workers,
        max_block_rows=args.max_block_rows, capacity=args.buffer,
        transport=args.transport, start_method=args.start_method,
        queue_depth=args.queue_depth, tenant_cap=args.tenant_cap,
        short_cells=args.short_cells, cache_entries=args.cache_entries,
        short_weight=args.short_weight, job_timeout_s=args.job_timeout_s,
        max_restarts=args.max_restarts)
    status_port = args.status_port if args.status_port >= 0 else None
    daemon = ServeDaemon(config, host=args.host, port=args.port,
                         status_port=status_port,
                         telemetry_dir=args.telemetry)
    print(f"[mgsw] serve listening on {args.host}:{daemon.port} "
          f"({config.pools} pool(s) x {config.workers} workers, "
          f"queue depth {config.queue_depth}, "
          f"cache {config.cache_entries} entries)", file=sys.stderr)
    if daemon.status_url is not None:
        print(f"[mgsw] status at {daemon.status_url}/jobs, "
              f"{daemon.status_url}/metrics, {daemon.status_url}/status",
              file=sys.stderr)
    try:
        daemon.serve_until_shutdown()
    except KeyboardInterrupt:
        daemon.stop()
    print("[mgsw] serve drained and stopped", file=sys.stderr)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running daemon; wait for the result by default."""
    import json

    from .serve import ServeClient

    fields: dict = {
        "path_a": args.seq_a, "path_b": args.seq_b,
        "tenant": args.tenant, "mode": args.mode,
        "band_width": args.band_width, "xdrop_x": args.xdrop_x,
        "dp_dtype": args.dp_dtype, "kernel": args.kernel,
        "block_rows": args.block_rows, "pruning": args.pruning,
        "use_cache": not args.no_cache,
    }
    if args.lane is not None:
        fields["lane"] = args.lane
    with ServeClient(args.host, args.port) as client:
        resp = client.submit(**fields)
        if not resp.get("ok"):
            print(f"error: daemon refused the job ({resp.get('code')}): "
                  f"{resp.get('error')}", file=sys.stderr)
            return 1
        job = resp["job"]
        if not args.no_wait and job["state"] not in ("done", "failed",
                                                     "cancelled"):
            resp = client.check(client.wait(
                job["id"], timeout_s=args.timeout_s))
            job = resp["job"]
    if args.json:
        print(json.dumps(job, indent=2))
        return 0 if job["state"] in ("done", "queued", "running") else 1
    cached = " (cache hit)" if job.get("cached") else ""
    print(f"{job['id']}: {job['state']}{cached}  lane={job['lane']} "
          f"tenant={job['tenant']}  {job['rows']:,} x {job['cols']:,}")
    result = job.get("result")
    if result is not None:
        print(f"  score {result['score']} at "
              f"({result['row']}, {result['col']})  tier={result['tier']} "
              f"dp={result['dp_dtype']}  {result['wall_time_s']:.3f}s "
              f"({result['gcups']:.2f} GCUPS)")
    if job.get("error"):
        print(f"  error: {job['error']}", file=sys.stderr)
    return 0 if job["state"] in ("done", "queued", "running") else 1


def cmd_jobs(args: argparse.Namespace) -> int:
    """List a running daemon's jobs plus queue/cache statistics."""
    import json

    from .serve import ServeClient

    with ServeClient(args.host, args.port) as client:
        listing = client.check(client.jobs(limit=args.limit))
        stats = client.stats()
    if args.json:
        print(json.dumps({"jobs": listing["jobs"], "queue": stats["queue"],
                          "cache": stats["cache"]}, indent=2))
        return 0
    rows = []
    for job in listing["jobs"]:
        result = job.get("result") or {}
        rows.append([
            job["id"], job["tenant"], job["lane"], job["state"],
            "hit" if job.get("cached") else "",
            f"{job['rows']:,}x{job['cols']:,}",
            str(result.get("score", "")),
            f"{job.get('wait_s', 0):.3f}",
            f"{job['run_s']:.3f}" if "run_s" in job else "",
        ])
    print(format_table(
        ["job", "tenant", "lane", "state", "cache", "size", "score",
         "wait s", "run s"], rows))
    q, cache = stats["queue"], stats["cache"]
    print(f"\nqueue: {q['queued']} queued ({q['queued_by_lane']['short']} "
          f"short / {q['queued_by_lane']['long']} long), "
          f"{q['running']} running, {q['total']} total"
          + (" [draining]" if q["closed"] else ""))
    print(f"cache: {cache['entries']}/{cache['max_entries']} entries, "
          f"{cache['hits']} hits / {cache['misses']} misses "
          f"({cache['hit_rate']:.1%} hit rate)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="mgsw", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("align", help="exact multi-GPU comparison of two FASTA files")
    p.add_argument("seq_a")
    p.add_argument("seq_b")
    p.add_argument("--trace", action="store_true", help="also reconstruct the alignment")
    p.add_argument("--backend", choices=("sim", "process"), default="sim",
                   help="sim: simulated device chain on the virtual clock; "
                        "process: real OS processes with shared-memory borders")
    p.add_argument("--workers", type=int, default=2,
                   help="slab worker count for --backend process")
    p.add_argument("--transport", choices=TRANSPORTS, default="shm",
                   help="border transport for --backend process")
    p.add_argument("--start-method", choices=("fork", "spawn", "forkserver"),
                   default=None,
                   help="multiprocessing start method (default: fork if "
                        "available, else spawn)")
    p.add_argument("--kernel", choices=KERNEL_CHOICES, default="scalar",
                   help="block sweep kernel: scalar (one block at a time), "
                        "batched (one NumPy sweep per row across all resident "
                        "blocks), compiled (numba-jitted fused row sweeps; "
                        "needs the optional '.[compiled]' extra), or auto "
                        "(measured pick among the backends this host can "
                        "run); scores are bit-identical")
    p.add_argument("--pruning", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="distributed block pruning against a chain-wide "
                        "best-score scoreboard (exact: same score and end "
                        "cell; pays off on similar sequences)")
    p.add_argument("--mode", choices=MODES, default="exact",
                   help="alignment tier: exact (default), banded (static "
                        "diagonal band, heuristic lower bound), xdrop "
                        "(origin-anchored X-drop extension), or auto "
                        "(heuristic first, exact re-run only when the "
                        "confidence check fails)")
    p.add_argument("--band-width", type=int, default=DEFAULT_BAND_WIDTH,
                   help="band half-width for --mode banded/auto "
                        f"(default {DEFAULT_BAND_WIDTH})")
    p.add_argument("--xdrop-x", type=int, default=DEFAULT_XDROP_X,
                   help="X-drop termination threshold for --mode xdrop "
                        f"(default {DEFAULT_XDROP_X})")
    p.add_argument("--dp-dtype", choices=DP_DTYPE_CHOICES, default="auto",
                   help="DP cell dtype: auto (default; narrowest type whose "
                        "headroom guarantees no escalation), int32, or a "
                        "saturating narrow type (int16/int8) with per-block "
                        "escalation back to int32 on overflow — final scores "
                        "are bit-identical either way")
    p.add_argument("--telemetry", metavar="DIR", default=None,
                   help="write the telemetry bundle (manifest.json, "
                        "metrics.json, metrics.prom, trace.json, plus the "
                        "live events.jsonl and timeline.jsonl) into DIR")
    p.add_argument("--serve-metrics", metavar="PORT", type=int, default=None,
                   help="serve live run status over HTTP while the "
                        "comparison runs: /metrics (Prometheus text) and "
                        "/status (JSON: progress frames, ETA, recent "
                        "events); 0 picks an ephemeral port")
    p.add_argument("--heartbeat-s", type=float, default=None,
                   help="stall threshold for the process-backend heartbeat "
                        "watchdog (default: on with --telemetry; 0 disables)")
    p.add_argument("--max-restarts", type=int, default=0,
                   help="process backend: resume up to this many times after "
                        "a worker failure from the shared-memory checkpoints "
                        "instead of aborting (0 = fail fast)")
    p.add_argument("--restart-backoff-s", type=float, default=0.5,
                   help="initial backoff before a recovery restart "
                        "(doubles per restart, capped at 30s)")
    _add_device_args(p)
    p.set_defaults(func=cmd_align)

    p = sub.add_parser("generate", help="write a synthetic homolog pair as FASTA")
    p.add_argument("pair", choices=[c.name for c in workloads.PAPER_PAIRS])
    p.add_argument("out_a")
    p.add_argument("out_b")
    p.add_argument("--scale", type=float, default=1e-3,
                   help="fraction of the real chromosome length (default 1e-3)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("time", help="timing-mode run at arbitrary scale")
    p.add_argument("rows", type=int)
    p.add_argument("cols", type=int)
    _add_device_args(p)
    p.set_defaults(func=cmd_time)

    p = sub.add_parser("tune", help="autotune block height and buffer capacity")
    p.add_argument("rows", type=int)
    p.add_argument("cols", type=int)
    p.add_argument("--verify", action="store_true",
                   help="also run the event simulator on the chosen config")
    p.add_argument("--measured", action="store_true",
                   help="score candidates with full event-simulator runs "
                        "instead of the analytic pipeline model (slower, "
                        "never worse on the simulated workload)")
    _add_device_args(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("campaign", help="run the 4-pair paper campaign, both strategies")
    _add_device_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("stats", help="Karlin-Altschul significance thresholds")
    p.add_argument("rows", type=int, nargs="?", default=35_194_566)
    p.add_argument("cols", type=int, nargs="?", default=35_083_970)
    p.add_argument("--samples", type=int, default=120)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("dotplot", help="coarse text dotplot of two FASTA files")
    p.add_argument("seq_a")
    p.add_argument("seq_b")
    p.add_argument("--tiles", type=int, default=24)
    p.add_argument("--threshold", type=float, default=0.15)
    p.set_defaults(func=cmd_dotplot)

    p = sub.add_parser(
        "top",
        help="live per-worker progress table from a --telemetry directory")
    p.add_argument("telemetry_dir",
                   help="directory holding timeline.jsonl / events.jsonl "
                        "(the --telemetry DIR of a running mgsw align)")
    p.add_argument("--once", action="store_true",
                   help="render one snapshot and exit (default: follow "
                        "until the journal records run_end)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh period in seconds while following")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("devices", help="list device presets and environments")
    p.set_defaults(func=cmd_devices)

    p = sub.add_parser(
        "serve",
        help="run the long-lived alignment service (INTERNALS.md section 14)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for the job listener")
    p.add_argument("--port", type=int, default=7741,
                   help="job listener TCP port (0 picks an ephemeral port)")
    p.add_argument("--status-port", type=int, default=0,
                   help="HTTP status/metrics port (0 = ephemeral; "
                        "-1 disables the endpoint)")
    p.add_argument("--pools", type=int, default=1,
                   help="concurrent worker pools (jobs running in parallel)")
    p.add_argument("--workers", type=int, default=2,
                   help="slab workers per pool")
    p.add_argument("--max-block-rows", type=int, default=2048,
                   help="largest per-job block height the pools accept")
    p.add_argument("--buffer", type=int, default=4,
                   help="border ring capacity in segments")
    p.add_argument("--transport", choices=TRANSPORTS, default="shm")
    p.add_argument("--start-method", choices=("fork", "spawn", "forkserver"),
                   default=None)
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission cap: most jobs queued at once (excess "
                        "submissions are refused with 429 semantics)")
    p.add_argument("--tenant-cap", type=int, default=16,
                   help="most queued+running jobs per tenant")
    p.add_argument("--short-cells", type=int, default=4_000_000,
                   help="effective-cell threshold below which a job rides "
                        "the short (priority) lane")
    p.add_argument("--short-weight", type=float, default=4.0,
                   help="short-lane picks per long-lane pick when both "
                        "lanes have work")
    p.add_argument("--cache-entries", type=int, default=1024,
                   help="result cache capacity (0 disables caching)")
    p.add_argument("--job-timeout-s", type=float, default=300.0,
                   help="per-job wall-clock limit on the pools")
    p.add_argument("--max-restarts", type=int, default=0,
                   help="per-job checkpoint-recovery budget")
    p.add_argument("--telemetry", metavar="DIR", default=None,
                   help="spill the daemon's events.jsonl into DIR")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit one alignment job to a running mgsw serve")
    p.add_argument("seq_a")
    p.add_argument("seq_b")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7741,
                   help="daemon job listener port")
    p.add_argument("--tenant", default="default",
                   help="tenant identity for fair-share accounting")
    p.add_argument("--mode", choices=MODES, default="exact")
    p.add_argument("--band-width", type=int, default=DEFAULT_BAND_WIDTH)
    p.add_argument("--xdrop-x", type=int, default=DEFAULT_XDROP_X)
    p.add_argument("--dp-dtype", choices=DP_DTYPE_CHOICES, default="auto")
    p.add_argument("--kernel", choices=KERNEL_CHOICES, default="scalar")
    p.add_argument("--block-rows", type=int, default=256)
    p.add_argument("--pruning", action=argparse.BooleanOptionalAction,
                   default=False)
    p.add_argument("--lane", choices=("short", "long"), default=None,
                   help="force a scheduling lane (default: classified by "
                        "estimated cost)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the digest-keyed result cache")
    p.add_argument("--no-wait", action="store_true",
                   help="return the job id immediately instead of waiting")
    p.add_argument("--timeout-s", type=float, default=600.0,
                   help="how long to wait for the result")
    p.add_argument("--json", action="store_true",
                   help="print the raw job record as JSON")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "jobs", help="list a running mgsw serve's jobs and stats")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7741,
                   help="daemon job listener port")
    p.add_argument("--limit", type=int, default=20,
                   help="newest jobs to list")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("perf", help="telemetry tooling: trace export and run diffs")
    perf_sub = p.add_subparsers(dest="perf_command", required=True)

    q = perf_sub.add_parser(
        "trace-export",
        help="run a comparison and export its timeline as Chrome trace JSON")
    q.add_argument("seq_a")
    q.add_argument("seq_b")
    q.add_argument("--out", default="trace.json",
                   help="output path for the Chrome trace-event JSON")
    q.add_argument("--backend", choices=("sim", "process"), default="process")
    q.add_argument("--workers", type=int, default=2,
                   help="slab worker count for --backend process")
    q.add_argument("--transport", choices=TRANSPORTS, default="shm")
    q.add_argument("--kernel", choices=KERNEL_CHOICES, default="scalar")
    q.add_argument("--pruning", action=argparse.BooleanOptionalAction,
                   default=False)
    _add_device_args(q)
    q.set_defaults(func=cmd_perf_trace_export)

    q = perf_sub.add_parser(
        "diff",
        help="regression diff between two telemetry/benchmark JSON files")
    q.add_argument("old")
    q.add_argument("new")
    q.add_argument("--threshold", type=float, default=0.05,
                   help="relative-change tolerance (default 5%%)")
    q.add_argument("--fail-on-regression", action="store_true",
                   help="exit non-zero when any key regresses (default: "
                        "report only)")
    q.set_defaults(func=cmd_perf_diff)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
