"""Command-line interface: the ``mgsw`` tool.

Subcommands:

* ``mgsw generate`` — write a synthetic homologous chromosome pair as FASTA;
* ``mgsw align A.fa B.fa`` — exact multi-GPU comparison (score, end point,
  virtual GCUPS; ``--trace`` also reconstructs the alignment).
  ``--backend sim`` (default) runs the simulated device chain;
  ``--backend process`` runs the same dataflow on real OS processes with
  shared-memory border rings (``--workers``, ``--transport``,
  ``--start-method``) and reports wall-clock GCUPS;
* ``mgsw time ROWS COLS`` — timing-mode run at arbitrary (paper) scale;
* ``mgsw tune ROWS COLS`` — autotune block height + buffer capacity;
* ``mgsw campaign`` — the 4-pair paper campaign, both strategies;
* ``mgsw stats`` — Karlin-Altschul significance thresholds;
* ``mgsw dotplot A.fa B.fa`` — coarse text dotplot;
* ``mgsw devices`` — list the built-in device presets and environments.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import seq, workloads
from .device import spec as device_spec
from .device.spec import DeviceSpec
from .errors import ReproError
from .multigpu import (
    TRANSPORTS,
    ChainConfig,
    align_multi_gpu,
    align_multi_process,
    autotune,
    run_campaign_chained,
    run_campaign_split,
    time_multi_gpu,
)
from .perf import format_table, humanize_cells, humanize_time
from .sw import KERNELS, align_local

#: Name -> preset mapping for --gpu flags.
PRESETS: dict[str, DeviceSpec] = {
    "gtx560ti": device_spec.GTX_560_TI,
    "gtx580": device_spec.GTX_580,
    "gtx680": device_spec.GTX_680,
    "k20": device_spec.TESLA_K20,
    "m2090": device_spec.TESLA_M2090,
}

ENVIRONMENTS: dict[str, tuple[DeviceSpec, ...]] = {
    "env1": device_spec.ENV1_HETEROGENEOUS,
    "env2": device_spec.ENV2_HOMOGENEOUS,
}


def _devices_from_args(args: argparse.Namespace) -> tuple[DeviceSpec, ...]:
    if args.env:
        return ENVIRONMENTS[args.env]
    if args.gpu:
        return tuple(PRESETS[name] for name in args.gpu)
    return ENVIRONMENTS["env1"]


def _add_device_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--env", choices=sorted(ENVIRONMENTS), default=None,
                   help="named GPU environment (default: env1)")
    p.add_argument("--gpu", action="append", choices=sorted(PRESETS), default=None,
                   help="add one device by preset name (repeatable)")
    p.add_argument("--block-rows", type=int, default=512,
                   help="block row height (border segment granularity)")
    p.add_argument("--buffer", type=int, default=4,
                   help="circular-buffer capacity in segments")


def cmd_align(args: argparse.Namespace) -> int:
    a = seq.read_single(args.seq_a).codes
    b = seq.read_single(args.seq_b).codes
    title = f"{args.seq_a} vs {args.seq_b}"
    if args.backend == "process":
        from .perf.report import process_report

        res = align_multi_process(
            a, b, seq.DNA_DEFAULT,
            workers=args.workers,
            block_rows=args.block_rows,
            capacity=args.buffer,
            transport=args.transport,
            start_method=args.start_method,
            kernel=args.kernel,
            pruning=args.pruning,
        )
        print(process_report(res, title=title))
    else:
        from .perf.report import chain_report

        devices = _devices_from_args(args)
        cfg = ChainConfig(block_rows=args.block_rows, channel_capacity=args.buffer,
                          kernel=args.kernel, pruning=args.pruning)
        res = align_multi_gpu(a, b, seq.DNA_DEFAULT, devices, config=cfg)
        print(chain_report(res, title=title))
    if args.trace and res.score > 0:
        aln = align_local(a, b, seq.DNA_DEFAULT)
        print(aln.pretty(a, b))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    pair = workloads.get_pair(args.pair)
    human, chimp = workloads.synthesize_pair(pair, scale=args.scale, seed=args.seed)
    seq.write_fasta(args.out_a, seq.FastaRecord(
        name=f"human_{pair.name}", description=f"synthetic {pair.human_label} scale={args.scale}",
        codes=human))
    seq.write_fasta(args.out_b, seq.FastaRecord(
        name=f"chimp_{pair.name}", description=f"synthetic {pair.chimp_label} scale={args.scale}",
        codes=chimp))
    print(f"wrote {args.out_a} ({len(human)} bp) and {args.out_b} ({len(chimp)} bp)")
    return 0


def cmd_time(args: argparse.Namespace) -> int:
    devices = _devices_from_args(args)
    cfg = ChainConfig(block_rows=args.block_rows, channel_capacity=args.buffer)
    res = time_multi_gpu(args.rows, args.cols, devices, config=cfg)
    print(f"matrix: {args.rows} x {args.cols} = {humanize_cells(args.rows * args.cols)}")
    print(f"virtual time: {humanize_time(res.total_time_s)}  ->  {res.gcups:.2f} GCUPS")
    for g, bd in zip(res.gpus, res.breakdown()):
        print(f"  {g.name}: {g.slab.cols} cols  compute={bd['compute']:.1%} "
              f"wait={bd['wait']:.1%} idle={bd['idle']:.1%}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    devices = _devices_from_args(args)
    result = autotune(devices, args.rows, args.cols)
    print(f"devices: {', '.join(d.name for d in devices)}")
    print(f"matrix : {args.rows:,} x {args.cols:,}")
    print(f"choice : block_rows={result.config.block_rows} "
          f"buffer={result.config.channel_capacity}")
    print(f"model  : {result.predicted_gcups:.2f} GCUPS predicted "
          f"({humanize_time(result.predicted_total_s)}), "
          f"{result.evaluated} candidates evaluated")
    if args.verify:
        sim = time_multi_gpu(args.rows, args.cols, devices, config=result.config)
        print(f"simulated: {sim.gcups:.2f} GCUPS ({humanize_time(sim.total_time_s)})")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    devices = _devices_from_args(args)
    cfg = ChainConfig(block_rows=args.block_rows, channel_capacity=args.buffer)
    pairs = list(workloads.PAPER_PAIRS)
    for strategy, runner in (("chained", run_campaign_chained),
                             ("split", run_campaign_split)):
        res = runner(pairs, devices, config=cfg)
        print(f"\n{strategy}: makespan {humanize_time(res.makespan_s)}, "
              f"aggregate {res.aggregate_gcups:.2f} GCUPS, "
              f"mean latency {humanize_time(res.mean_latency_s)}")
        rows = [
            [item.pair.name, humanize_time(item.start_s), humanize_time(item.end_s),
             f"{item.gcups:.2f}"]
            for item in res.items
        ]
        print(format_table(["pair", "start", "end", "GCUPS"], rows))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .stats import dna_statistics

    st = dna_statistics(seq.DNA_DEFAULT, k_samples=args.samples, seed=args.seed)
    print(f"scheme: match={seq.DNA_DEFAULT.match} mismatch={seq.DNA_DEFAULT.mismatch} "
          f"gap {seq.DNA_DEFAULT.gap_open}/{seq.DNA_DEFAULT.gap_extend}")
    print(f"lambda = {st.lam:.4f} (exact)   K = {st.k:.3f} (Monte-Carlo, "
          f"{args.samples} samples)")
    m, n = args.rows, args.cols
    print(f"\nfor an {m:,} x {n:,} comparison:")
    rows = []
    for e in (10.0, 1.0, 1e-3, 1e-10):
        s = st.score_for_evalue(e, m, n)
        rows.append([f"{e:g}", str(s), f"{st.bit_score(s):.1f}"])
    print(format_table(["E-value", "min score", "bits"], rows))
    return 0


def cmd_dotplot(args: argparse.Namespace) -> int:
    from .perf.dotplot import dotplot as make_dotplot

    a = seq.read_single(args.seq_a).codes
    b = seq.read_single(args.seq_b).codes
    plot = make_dotplot(a, b, seq.DNA_DEFAULT, tiles=args.tiles)
    print(f"dotplot of {len(a):,} bp vs {len(b):,} bp "
          f"({plot.tile_rows} x {plot.tile_cols} bp tiles)")
    print(plot.render(threshold=args.threshold))
    print(f"diagonal fraction: {plot.diagonal_fraction():.1%}")
    return 0


def cmd_devices(_args: argparse.Namespace) -> int:
    rows = [
        [name, d.name, f"{d.gcups:.1f}", f"{d.pcie_gbps:.1f}", str(d.copy_engines)]
        for name, d in sorted(PRESETS.items())
    ]
    print(format_table(["preset", "device", "GCUPS", "PCIe GB/s", "copy engines"], rows))
    print()
    for name, env in ENVIRONMENTS.items():
        total = sum(d.gcups for d in env)
        print(f"{name}: {', '.join(d.name for d in env)}  (aggregate {total:.1f} GCUPS)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="mgsw", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("align", help="exact multi-GPU comparison of two FASTA files")
    p.add_argument("seq_a")
    p.add_argument("seq_b")
    p.add_argument("--trace", action="store_true", help="also reconstruct the alignment")
    p.add_argument("--backend", choices=("sim", "process"), default="sim",
                   help="sim: simulated device chain on the virtual clock; "
                        "process: real OS processes with shared-memory borders")
    p.add_argument("--workers", type=int, default=2,
                   help="slab worker count for --backend process")
    p.add_argument("--transport", choices=TRANSPORTS, default="shm",
                   help="border transport for --backend process")
    p.add_argument("--start-method", choices=("fork", "spawn", "forkserver"),
                   default=None,
                   help="multiprocessing start method (default: fork if "
                        "available, else spawn)")
    p.add_argument("--kernel", choices=KERNELS, default="scalar",
                   help="block sweep kernel: scalar (one block at a time) or "
                        "batched (one NumPy sweep per row across all resident "
                        "blocks); scores are bit-identical")
    p.add_argument("--pruning", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="distributed block pruning against a chain-wide "
                        "best-score scoreboard (exact: same score and end "
                        "cell; pays off on similar sequences)")
    _add_device_args(p)
    p.set_defaults(func=cmd_align)

    p = sub.add_parser("generate", help="write a synthetic homolog pair as FASTA")
    p.add_argument("pair", choices=[c.name for c in workloads.PAPER_PAIRS])
    p.add_argument("out_a")
    p.add_argument("out_b")
    p.add_argument("--scale", type=float, default=1e-3,
                   help="fraction of the real chromosome length (default 1e-3)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("time", help="timing-mode run at arbitrary scale")
    p.add_argument("rows", type=int)
    p.add_argument("cols", type=int)
    _add_device_args(p)
    p.set_defaults(func=cmd_time)

    p = sub.add_parser("tune", help="autotune block height and buffer capacity")
    p.add_argument("rows", type=int)
    p.add_argument("cols", type=int)
    p.add_argument("--verify", action="store_true",
                   help="also run the event simulator on the chosen config")
    _add_device_args(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("campaign", help="run the 4-pair paper campaign, both strategies")
    _add_device_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("stats", help="Karlin-Altschul significance thresholds")
    p.add_argument("rows", type=int, nargs="?", default=35_194_566)
    p.add_argument("cols", type=int, nargs="?", default=35_083_970)
    p.add_argument("--samples", type=int, default=120)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("dotplot", help="coarse text dotplot of two FASTA files")
    p.add_argument("seq_a")
    p.add_argument("seq_b")
    p.add_argument("--tiles", type=int, default=24)
    p.add_argument("--threshold", type=float, default=0.15)
    p.set_defaults(func=cmd_dotplot)

    p = sub.add_parser("devices", help="list device presets and environments")
    p.set_defaults(func=cmd_devices)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
