"""Minimal discrete-event simulation engine (virtual time).

The paper's system is a pipeline of asynchronous actors: GPUs computing
block rows, copy engines moving border columns over PCIe, CPU threads
relaying them between devices, and circular buffers absorbing rate
mismatches.  Real wall-clock threads would make the reproduction
nondeterministic and would not scale past one core; instead, every actor
is a *process* (a Python generator) driven by this engine on a shared
virtual clock.  The performance claims (GCUPS, overlap, crossover points)
are read off the virtual clock, so they are exactly reproducible.

The API is a deliberately small subset of the SimPy style:

* ``engine.process(gen)`` registers a generator as a process.
* A process yields :class:`Timeout` to advance time, another process's
  :class:`Event` to wait for it, or an event obtained from a synchronised
  object (e.g. :meth:`repro.comm.ringbuf.SimRingBuffer.put`).
* ``engine.run()`` drives everything to completion and raises
  :class:`~repro.errors.DeadlockError` if processes remain blocked with no
  scheduled events.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from ..errors import DeadlockError, SimulationError

ProcessGen = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with :meth:`succeed` (optionally carrying a
    value) or :meth:`fail` (carrying an exception).  Every waiting process
    is resumed at the engine's current virtual time.
    """

    __slots__ = ("engine", "value", "exc", "_callbacks", "triggered", "dispatched", "label")

    def __init__(self, engine: "Engine", label: str = "") -> None:
        self.engine = engine
        self.value: Any = None
        self.exc: BaseException | None = None
        self._callbacks: list[Callable[["Event"], None]] = []
        self.triggered = False
        self.dispatched = False
        self.label = label

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.label or id(self)} already triggered")
        self.value = value
        self.triggered = True
        self.engine._schedule(0.0, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.label or id(self)} already triggered")
        self.exc = exc
        self.triggered = True
        self.engine._schedule(0.0, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.dispatched:
            # Late waiter on an already-dispatched event: resume it via the
            # queue so ordering semantics stay consistent.
            self._callbacks.append(fn)
            self.engine._schedule(0.0, self)
        else:
            self._callbacks.append(fn)

    def _dispatch(self) -> None:
        self.dispatched = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Timeout(Event):
    """An event that fires after a fixed virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, label: str = "") -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(engine, label or f"timeout({delay:g})")
        self.delay = delay
        self.triggered = True
        engine._schedule(delay, self)


class Process(Event):
    """A running generator; as an Event it fires when the generator ends,
    carrying its return value."""

    __slots__ = ("gen", "name", "waiting_on")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str = "") -> None:
        super().__init__(engine, name or getattr(gen, "__name__", "process"))
        self.gen = gen
        self.name = self.label
        self.waiting_on: Event | None = None
        boot = Event(engine, f"start:{self.name}")
        boot.add_callback(self._resume)
        boot.succeed()

    def _resume(self, evt: Event) -> None:
        self.waiting_on = None
        try:
            if evt.exc is not None:
                target = self.gen.throw(evt.exc)
            else:
                target = self.gen.send(evt.value)
        except StopIteration as stop:
            self.value = stop.value
            self.triggered = True
            self.engine._schedule(0.0, self)
            self.engine._active.discard(self)
            return
        except BaseException as exc:
            self.engine._active.discard(self)
            self.exc = exc
            self.triggered = True
            self.engine._schedule(0.0, self)
            self.engine._crashed.append((self, exc))
            return
        if not isinstance(target, Event):
            self.engine._active.discard(self)
            raise SimulationError(
                f"process {self.name} yielded {type(target).__name__}, expected an Event"
            )
        self.waiting_on = target
        target.add_callback(self._resume)


class Semaphore:
    """Counting semaphore with FIFO wakeup on the virtual clock.

    Used to model bounded buffer slots (host circular-buffer slots,
    device-side staging slots): ``yield sem.acquire()`` blocks while the
    count is zero; ``sem.release()`` wakes the longest-waiting acquirer.
    """

    def __init__(self, engine: "Engine", count: int, label: str = "sem") -> None:
        if count <= 0:
            raise SimulationError(f"{label}: semaphore count must be positive")
        self.engine = engine
        self.label = label
        self.count = count
        self.capacity = count
        self._waiters: list[Event] = []

    def acquire(self) -> Event:
        evt = self.engine.event(f"{self.label}.acquire")
        if self.count > 0:
            self.count -= 1
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            if self.count >= self.capacity:
                raise SimulationError(f"{self.label}: release beyond capacity")
            self.count += 1


class Engine:
    """The event loop: a priority queue of (time, tiebreak, event)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._active: set[Process] = set()
        self._crashed: list[tuple[Process, BaseException]] = []

    # -- construction ------------------------------------------------------
    def process(self, gen: ProcessGen, name: str = "") -> Process:
        proc = Process(self, gen, name)
        self._active.add(proc)
        return proc

    def event(self, label: str = "") -> Event:
        return Event(self, label)

    def timeout(self, delay: float, label: str = "") -> Timeout:
        return Timeout(self, delay, label)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event firing once every input event has fired."""
        events = list(events)
        gate = Event(self, "all_of")
        remaining = len(events)
        if remaining == 0:
            return gate.succeed([])

        def on_fire(_evt: Event) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                gate.succeed([e.value for e in events])

        for e in events:
            e.add_callback(on_fire)
        return gate

    # -- scheduling --------------------------------------------------------
    def _schedule(self, delay: float, event: Event) -> None:
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), event))

    def step(self) -> bool:
        """Dispatch the next event; False when the queue is empty."""
        if not self._queue:
            return False
        t, _seq, event = heapq.heappop(self._queue)
        if t < self.now:
            raise SimulationError("time went backwards")
        self.now = t
        event._dispatch()
        if self._crashed:
            proc, exc = self._crashed[0]
            raise SimulationError(f"process {proc.name} crashed: {exc!r}") from exc
        return True

    def run(self, until: float | None = None) -> float:
        """Run to completion (or to virtual time *until*); returns ``now``.

        Raises :class:`DeadlockError` if processes are still blocked when
        the event queue drains.
        """
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return self.now
            self.step()
        blocked = [p for p in self._active if not p.triggered]
        if blocked:
            detail = ", ".join(
                f"{p.name} waiting on {p.waiting_on.label if p.waiting_on else '?'}"
                for p in sorted(blocked, key=lambda p: p.name)
            )
            raise DeadlockError(f"simulation deadlocked with {len(blocked)} blocked processes: {detail}")
        return self.now
