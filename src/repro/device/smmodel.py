"""Intra-device execution model: SMs, thread blocks, internal wavefront.

The coarse occupancy curve in :class:`~repro.device.spec.DeviceSpec`
(``saturation_cols``) hides how a real GPU executes a slab.  The paper's
kernel family works like this: the slab's columns are divided among ``T``
concurrent thread blocks; within one *block row* (height ``R``) the thread
blocks form an internal wavefront — block ``t`` can process a row-step
only after block ``t-1`` finished the same step — so the block row is a
pipeline with ``T`` stages and ``K = R / rows_per_step`` steps.

This yields two first-order effects the experiments care about:

* **Occupancy**: a slab narrower than ``T_max * min_block_cols`` cannot
  fill every SM — ``T = min(sm_count, W // min_block_cols)``.
* **Internal fill/drain**: per block row, useful-step fraction is
  ``K / (K + T - 1)`` — small block heights starve the internal pipeline,
  the reason the kernel family prefers tall external diagonals.

``SMModel.effective_rate(W, R)`` combines both with the per-SM sustained
rate; :class:`~repro.device.spec.DeviceSpec` uses it when attached, and
falls back to the coarse curve otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError


@dataclass(frozen=True)
class SMModel:
    """Intra-device wavefront/occupancy model (see module docstring).

    Attributes
    ----------
    sm_count:
        Concurrent thread blocks the device sustains (SMs x blocks/SM).
    per_sm_gcups:
        Sustained rate of one thread block at full occupancy, in GCUPS.
        Peak device rate is ``sm_count * per_sm_gcups``.
    min_block_cols:
        Columns one thread block needs to keep its threads busy (thread
        count x unroll width).
    rows_per_step:
        Rows one internal wavefront step advances (the height of the
        registers-resident strip).
    """

    sm_count: int
    per_sm_gcups: float
    min_block_cols: int = 1024
    rows_per_step: int = 4

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise DeviceError("sm_count must be positive")
        if self.per_sm_gcups <= 0:
            raise DeviceError("per_sm_gcups must be positive")
        if self.min_block_cols <= 0:
            raise DeviceError("min_block_cols must be positive")
        if self.rows_per_step <= 0:
            raise DeviceError("rows_per_step must be positive")

    @property
    def peak_gcups(self) -> float:
        return self.sm_count * self.per_sm_gcups

    def concurrent_blocks(self, slab_cols: int) -> int:
        """Thread blocks a slab of *slab_cols* can keep busy."""
        if slab_cols <= 0:
            raise DeviceError("slab width must be positive")
        return max(1, min(self.sm_count, slab_cols // self.min_block_cols))

    def pipeline_efficiency(self, block_rows: int, t: int) -> float:
        """Useful fraction of the internal wavefront: ``K / (K + T - 1)``."""
        if block_rows <= 0:
            raise DeviceError("block_rows must be positive")
        k = max(1, block_rows // self.rows_per_step)
        return k / (k + t - 1)

    def effective_rate(self, slab_cols: int, block_rows: int) -> float:
        """Sustained cells/s for a (slab width, block height) pair."""
        t = self.concurrent_blocks(slab_cols)
        occupancy = t / self.sm_count
        eff = self.pipeline_efficiency(block_rows, t)
        return self.peak_gcups * 1e9 * occupancy * eff


def calibrated(
    peak_gcups: float,
    *,
    sm_count: int = 14,
    min_block_cols: int = 1024,
    rows_per_step: int = 4,
) -> SMModel:
    """An :class:`SMModel` whose wide-slab/tall-block asymptote equals
    *peak_gcups* (how the presets attach models without changing their
    headline ratings)."""
    return SMModel(
        sm_count=sm_count,
        per_sm_gcups=peak_gcups / sm_count,
        min_block_cols=min_block_cols,
        rows_per_step=rows_per_step,
    )
