"""Simulated-device specifications and the paper's GPU environments.

A :class:`DeviceSpec` captures what the performance model needs about a
GPU: its sustained Smith-Waterman throughput (GCUPS), its PCIe transfer
characteristics, its memory capacity, and an occupancy saturation width
(narrow matrix slabs under-fill the device's SMs, reducing throughput —
the reason the paper's partitioning keeps slabs wide).

The GCUPS ratings below are *calibrated*, not measured: the point of the
reproduction is the behaviour of the multi-GPU strategy (scaling shape,
heterogeneous balance, overlap crossovers), which depends on the devices'
relative rates and on transfer costs.  The heterogeneous environment's
rates are chosen so their sum matches the paper's headline aggregate
(140.36 GCUPS with 3 heterogeneous GPUs); see DESIGN.md's substitution
table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import DeviceError


@dataclass(frozen=True)
class DeviceSpec:
    """Performance model of one GPU.

    Attributes
    ----------
    name:
        Human-readable device name.
    gcups:
        Sustained single-device SW throughput, in billions of cells/s,
        on a wide slab (occupancy-saturated).
    pcie_gbps:
        PCIe effective bandwidth in GB/s (each direction; D2H and H2D are
        modelled as separate engines at this rate).
    pcie_latency_s:
        Fixed per-transfer latency (driver + DMA setup), seconds.
    mem_bytes:
        Device memory capacity; the footprint model checks slab buffers
        against it.
    saturation_cols:
        Slab width at which the device reaches half of its peak rate; the
        occupancy model is ``rate = gcups * width / (width + saturation_cols)``.
        0 disables the occupancy effect.
    copy_engines:
        1 = a single copy engine shared by D2H and H2D (transfers
        serialise); 2 = full-duplex (the paper-era Teslas and GTX-6xx).
    sm_model:
        Optional :class:`~repro.device.smmodel.SMModel`; when attached,
        :meth:`effective_rate` uses the principled intra-device wavefront
        model (occupancy + internal pipeline fill) instead of the coarse
        ``saturation_cols`` curve.
    """

    name: str
    gcups: float
    pcie_gbps: float = 6.0
    pcie_latency_s: float = 10e-6
    mem_bytes: int = 3 * 1024**3
    saturation_cols: int = 2048
    copy_engines: int = 2
    sm_model: "object | None" = None

    def __post_init__(self) -> None:
        if self.gcups <= 0:
            raise DeviceError(f"{self.name}: gcups must be positive")
        if self.pcie_gbps <= 0:
            raise DeviceError(f"{self.name}: pcie_gbps must be positive")
        if self.pcie_latency_s < 0:
            raise DeviceError(f"{self.name}: latency must be >= 0")
        if self.mem_bytes <= 0:
            raise DeviceError(f"{self.name}: mem_bytes must be positive")
        if self.saturation_cols < 0:
            raise DeviceError(f"{self.name}: saturation_cols must be >= 0")
        if self.copy_engines not in (1, 2):
            raise DeviceError(f"{self.name}: copy_engines must be 1 or 2")

    @property
    def cells_per_second(self) -> float:
        """Peak rate in cells/s."""
        return self.gcups * 1e9

    def effective_rate(self, slab_cols: int, block_rows: int | None = None) -> float:
        """Occupancy-adjusted rate (cells/s) for a slab of *slab_cols*.

        With an attached :attr:`sm_model` and a known *block_rows*, the
        intra-device wavefront model is used; otherwise the coarse
        saturation curve.
        """
        if slab_cols <= 0:
            raise DeviceError("slab width must be positive")
        if self.sm_model is not None and block_rows is not None:
            return self.sm_model.effective_rate(slab_cols, block_rows)
        if self.saturation_cols == 0:
            return self.cells_per_second
        return self.cells_per_second * slab_cols / (slab_cols + self.saturation_cols)

    def transfer_time(self, nbytes: int) -> float:
        """Virtual seconds to move *nbytes* over this device's PCIe link."""
        if nbytes < 0:
            raise DeviceError("nbytes must be >= 0")
        return self.pcie_latency_s + nbytes / (self.pcie_gbps * 1e9)

    def with_rate(self, gcups: float) -> "DeviceSpec":
        """A copy with a different throughput rating (for sweeps)."""
        return replace(self, gcups=gcups)


# --------------------------------------------------------------------------
# Paper-era presets.  Ratings are calibrated (see module docstring).
# --------------------------------------------------------------------------

#: Mid-range Fermi card (CUDAlign 2.1-era single-GPU results).
GTX_560_TI = DeviceSpec("GeForce GTX 560 Ti", gcups=23.0, pcie_gbps=5.0,
                        mem_bytes=1 * 1024**3, copy_engines=1)

#: High-end Fermi.
GTX_580 = DeviceSpec("GeForce GTX 580", gcups=32.4, pcie_gbps=5.5,
                     mem_bytes=int(1.5 * 1024**3), copy_engines=1)

#: Kepler consumer flagship.
GTX_680 = DeviceSpec("GeForce GTX 680", gcups=50.7, pcie_gbps=6.0,
                     mem_bytes=2 * 1024**3)

#: Kepler compute card (the fastest of the heterogeneous trio).
TESLA_K20 = DeviceSpec("Tesla K20", gcups=57.3, pcie_gbps=6.5,
                       mem_bytes=5 * 1024**3)

#: Fermi compute card (homogeneous cluster nodes).
TESLA_M2090 = DeviceSpec("Tesla M2090", gcups=28.5, pcie_gbps=6.0,
                         mem_bytes=6 * 1024**3)

#: Environment 1 of the evaluation: three heterogeneous GPUs in one host.
#: Aggregate peak = 140.4 GCUPS, matching the paper's 140.36 headline.
ENV1_HETEROGENEOUS: tuple[DeviceSpec, ...] = (GTX_580, GTX_680, TESLA_K20)

#: Environment 2: a homogeneous pair (cluster-node style).
ENV2_HOMOGENEOUS: tuple[DeviceSpec, ...] = (TESLA_M2090, TESLA_M2090)


def homogeneous(spec: DeviceSpec, count: int) -> tuple[DeviceSpec, ...]:
    """*count* copies of one device (for scaling sweeps)."""
    if count <= 0:
        raise DeviceError("count must be positive")
    return tuple(spec for _ in range(count))
