"""Simulated GPU substrate: virtual-time engine, device specs, devices."""

from .engine import Engine, Event, Process, Semaphore, Timeout
from .gpu import GpuCounters, SimulatedGPU
from .smmodel import SMModel, calibrated
from .trace import (
    Interval,
    Tracer,
    WallClockRecorder,
    merge_wall_records,
    render_gantt,
)
from .spec import (
    ENV1_HETEROGENEOUS,
    ENV2_HOMOGENEOUS,
    GTX_560_TI,
    GTX_580,
    GTX_680,
    TESLA_K20,
    TESLA_M2090,
    DeviceSpec,
    homogeneous,
)

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Semaphore",
    "Timeout",
    "Interval",
    "Tracer",
    "WallClockRecorder",
    "merge_wall_records",
    "render_gantt",
    "SMModel",
    "calibrated",
    "GpuCounters",
    "SimulatedGPU",
    "DeviceSpec",
    "homogeneous",
    "ENV1_HETEROGENEOUS",
    "ENV2_HOMOGENEOUS",
    "GTX_560_TI",
    "GTX_580",
    "GTX_680",
    "TESLA_K20",
    "TESLA_M2090",
]
