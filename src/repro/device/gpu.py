"""The simulated GPU: compute engine + PCIe copy engines + counters.

A :class:`SimulatedGPU` binds a :class:`~repro.device.spec.DeviceSpec` to a
virtual-time :class:`~repro.device.engine.Engine`.  Its three facilities:

* :meth:`compute` — charge virtual time for a block of DP cells at the
  device's occupancy-adjusted rate, while (optionally) *actually computing*
  the block through a caller-supplied thunk.  Correctness and timing are
  thus decoupled: the NumPy kernel produces bit-exact borders instantly in
  wall-clock terms, and the virtual clock models what the real device
  would have taken.
* :meth:`copy_to_host` / :meth:`copy_to_device` — PCIe transfers through
  the device's copy engine(s).  With one engine the two directions
  serialise (Fermi consumer cards); with two they are full duplex.
* Counters — busy/transfer/wait time per GPU, cells computed, bytes moved;
  the experiments' time-breakdown figures read these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import DeviceError
from .engine import Engine, Event
from .spec import DeviceSpec


@dataclass
class GpuCounters:
    """Virtual-time accounting for one device."""

    compute_s: float = 0.0
    d2h_s: float = 0.0
    h2d_s: float = 0.0
    wait_s: float = 0.0
    cells: int = 0
    bytes_out: int = 0
    bytes_in: int = 0

    @property
    def transfer_s(self) -> float:
        return self.d2h_s + self.h2d_s

    def breakdown(self, total_s: float) -> dict[str, float]:
        """Fractions of *total_s* spent per category (idle = remainder)."""
        if total_s <= 0:
            raise DeviceError("total time must be positive")
        busy = self.compute_s / total_s
        comm = self.transfer_s / total_s
        wait = self.wait_s / total_s
        return {
            "compute": busy,
            "transfer": comm,
            "wait": wait,
            "idle": max(0.0, 1.0 - busy - comm - wait),
        }


class _EngineLock:
    """A FIFO mutex on the event engine (models a single copy engine)."""

    def __init__(self, engine: Engine, label: str) -> None:
        self.engine = engine
        self.label = label
        self._locked = False
        self._waiters: list[Event] = []

    def acquire(self) -> Event:
        evt = self.engine.event(f"acquire:{self.label}")
        if not self._locked:
            self._locked = True
            evt.succeed()
        else:
            self._waiters.append(evt)
        return evt

    def release(self) -> None:
        if not self._locked:
            raise DeviceError(f"{self.label}: release without acquire")
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self._locked = False


class SimulatedGPU:
    """One device on the virtual clock (see module docstring)."""

    def __init__(self, engine: Engine, spec: DeviceSpec, index: int = 0,
                 tracer=None) -> None:
        self.engine = engine
        self.spec = spec
        self.index = index
        self.tracer = tracer  #: optional repro.device.trace.Tracer
        self.counters = GpuCounters()
        self._compute_lock = _EngineLock(engine, f"gpu{index}-compute")
        if spec.copy_engines == 1:
            shared = _EngineLock(engine, f"gpu{index}-copy")
            self._d2h_lock = shared
            self._h2d_lock = shared
        else:
            self._d2h_lock = _EngineLock(engine, f"gpu{index}-d2h")
            self._h2d_lock = _EngineLock(engine, f"gpu{index}-h2d")

    @property
    def name(self) -> str:
        return f"[{self.index}] {self.spec.name}"

    # -- processes ---------------------------------------------------------
    def compute(
        self,
        cells: int,
        slab_cols: int,
        work: Callable[[], Any] | None = None,
        block_rows: int | None = None,
    ):
        """Process: execute *cells* DP cells on the device.

        Charges ``cells / effective_rate(slab_cols, block_rows)`` of
        virtual time; runs *work* (the real NumPy block computation) at
        the start, returning its result when the virtual time has elapsed.
        """
        if cells <= 0:
            raise DeviceError("cells must be positive")
        yield self._compute_lock.acquire()
        try:
            result = work() if work is not None else None
            duration = cells / self.spec.effective_rate(slab_cols, block_rows)
            start = self.engine.now
            yield self.engine.timeout(duration, f"{self.name} compute {cells} cells")
            self.counters.compute_s += duration
            self.counters.cells += cells
            if self.tracer is not None:
                self.tracer.record(self.name, "compute", start, self.engine.now)
        finally:
            self._compute_lock.release()
        return result

    def copy_to_host(self, nbytes: int):
        """Process: D2H transfer of *nbytes* over PCIe."""
        yield self._d2h_lock.acquire()
        try:
            duration = self.spec.transfer_time(nbytes)
            start = self.engine.now
            yield self.engine.timeout(duration, f"{self.name} d2h {nbytes}B")
            self.counters.d2h_s += duration
            self.counters.bytes_out += nbytes
            if self.tracer is not None:
                self.tracer.record(self.name, "d2h", start, self.engine.now)
        finally:
            self._d2h_lock.release()

    def copy_to_device(self, nbytes: int):
        """Process: H2D transfer of *nbytes* over PCIe."""
        yield self._h2d_lock.acquire()
        try:
            duration = self.spec.transfer_time(nbytes)
            start = self.engine.now
            yield self.engine.timeout(duration, f"{self.name} h2d {nbytes}B")
            self.counters.h2d_s += duration
            self.counters.bytes_in += nbytes
            if self.tracer is not None:
                self.tracer.record(self.name, "h2d", start, self.engine.now)
        finally:
            self._h2d_lock.release()

    def record_wait(self, started_at: float) -> None:
        """Attribute elapsed virtual time since *started_at* to waiting."""
        self.counters.wait_s += self.engine.now - started_at
        if self.tracer is not None and self.engine.now > started_at:
            self.tracer.record(self.name, "wait", started_at, self.engine.now)
