"""Execution tracing: per-actor activity intervals on the virtual clock.

The paper's evaluation reasons about *where time goes* — which device is
computing, which is stalled on a border, when transfers run.  A
:class:`Tracer` records labelled intervals as actors report them and can
answer the questions the figures need:

* per-actor activity totals and utilisation,
* concurrency profile (how many devices compute at once),
* overlap between one actor's compute and another's transfers,
* an ASCII Gantt chart for quick inspection (``render_gantt``).

Tracing is opt-in: the chain engine accepts a tracer and reports compute /
transfer / wait intervals; nothing is recorded otherwise.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import SimulationError

#: Interval kinds the chain engines report.  ``pruned`` marks a block row
#: that was skipped by distributed block pruning — recorded as a (near)
#: zero-length span so traces count pruning decisions without charging
#: time for work that never ran.  ``checkpoint`` is a worker publishing
#: its row state into the shared checkpoint area; ``recovery`` is a
#: supervisor span covering teardown + re-partition + resume after a
#: worker failure.  ``band-skip`` marks a block skipped because it lies
#: entirely outside the static alignment band (``mode="banded"``) — like
#: ``pruned``, a zero-length bookkeeping span.
#: ``warmup`` marks one-time per-process setup (JIT compilation of the
#: compiled kernel backend) that deliberately runs *before* the first
#: block so it never pollutes compute spans or latency histograms.
KINDS = ("compute", "d2h", "h2d", "wait", "pruned", "checkpoint", "recovery",
         "band-skip", "warmup")


@dataclass(frozen=True)
class Interval:
    """One labelled activity span of one actor."""

    actor: str
    kind: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(f"interval ends before it starts: {self!r}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Tracer:
    """Collects :class:`Interval` records during a simulation run."""

    intervals: list[Interval] = field(default_factory=list)
    enabled: bool = True
    #: Records whose negative cross-process clock jitter was clamped by
    #: :func:`merge_wall_records` — nonzero values mean the worker clocks
    #: disagreed beyond ``perf_counter`` resolution, worth investigating
    #: rather than silently swallowing.
    clamped_records: int = 0

    def record(self, actor: str, kind: str, start: float, end: float) -> None:
        """Record one span (no-op when disabled; zero-length spans kept)."""
        if not self.enabled:
            return
        if kind not in KINDS:
            raise SimulationError(f"unknown interval kind {kind!r}; expected one of {KINDS}")
        self.intervals.append(Interval(actor, kind, start, end))

    # -- queries ------------------------------------------------------------
    def actors(self) -> list[str]:
        return sorted({iv.actor for iv in self.intervals})

    def total(self, actor: str, kind: str | None = None) -> float:
        """Summed duration for an actor (optionally one kind)."""
        return sum(
            iv.duration
            for iv in self.intervals
            if iv.actor == actor and (kind is None or iv.kind == kind)
        )

    def utilisation(self, actor: str, makespan: float, kind: str = "compute") -> float:
        """Fraction of *makespan* the actor spent in *kind* intervals."""
        if makespan <= 0:
            raise SimulationError("makespan must be positive")
        return self.total(actor, kind) / makespan

    def concurrency_profile(self, kind: str = "compute") -> list[tuple[float, int]]:
        """Step function of how many actors are simultaneously in *kind*.

        Returns ``[(time, active_count), ...]`` sorted by time; each entry
        holds until the next one.
        """
        events: list[tuple[float, int]] = []
        for iv in self.intervals:
            if iv.kind != kind or iv.duration == 0:
                continue
            events.append((iv.start, +1))
            events.append((iv.end, -1))
        events.sort()
        profile: list[tuple[float, int]] = []
        active = 0
        for t, delta in events:
            active += delta
            if profile and profile[-1][0] == t:
                profile[-1] = (t, active)
            else:
                profile.append((t, active))
        return profile

    def mean_concurrency(self, makespan: float, kind: str = "compute") -> float:
        """Time-averaged number of actors simultaneously in *kind*."""
        if makespan <= 0:
            raise SimulationError("makespan must be positive")
        profile = self.concurrency_profile(kind)
        if not profile:
            return 0.0
        area = 0.0
        for (t0, n), (t1, _n2) in zip(profile, profile[1:]):
            area += n * (t1 - t0)
        # last step runs to the makespan
        area += profile[-1][1] * max(0.0, makespan - profile[-1][0])
        return area / makespan

    def overlap(self, actor_a: str, kind_a: str, actor_b: str, kind_b: str) -> float:
        """Total time actor_a:kind_a and actor_b:kind_b run simultaneously.

        The quantity behind the paper's hiding claim: communication is
        hidden exactly when the channel's transfer intervals overlap the
        producer's compute intervals.
        """
        ivs_a = sorted(
            (iv.start, iv.end) for iv in self.intervals
            if iv.actor == actor_a and iv.kind == kind_a and iv.duration > 0
        )
        ivs_b = sorted(
            (iv.start, iv.end) for iv in self.intervals
            if iv.actor == actor_b and iv.kind == kind_b and iv.duration > 0
        )
        total = 0.0
        i = j = 0
        while i < len(ivs_a) and j < len(ivs_b):
            lo = max(ivs_a[i][0], ivs_b[j][0])
            hi = min(ivs_a[i][1], ivs_b[j][1])
            if hi > lo:
                total += hi - lo
            if ivs_a[i][1] <= ivs_b[j][1]:
                i += 1
            else:
                j += 1
        return total


class WallClockRecorder:
    """Wall-clock adapter for :class:`Tracer`: records real intervals.

    The simulated chain reports virtual-clock intervals straight into a
    :class:`Tracer`; real-process workers instead carry one of these,
    time their phases with ``time.perf_counter()`` against a shared
    *origin* (sampled once in the parent before the workers start), and
    ship the plain ``(kind, start, end)`` tuples back over the result
    queue.  :func:`merge_wall_records` then folds them into a
    :class:`Tracer` so every query — totals, utilisation, concurrency,
    overlap, the Gantt rendering — works identically for simulated and
    real runs.

    ``perf_counter`` is system-wide monotonic on the supported platforms,
    so intervals recorded in different processes share a time base.
    """

    def __init__(self, origin: float | None = None) -> None:
        self.origin = time.perf_counter() if origin is None else origin
        self.records: list[tuple[str, float, float]] = []

    @contextmanager
    def span(self, kind: str):
        """Record the wrapped statements as one *kind* interval."""
        if kind not in KINDS:
            raise SimulationError(f"unknown interval kind {kind!r}; expected one of {KINDS}")
        start = time.perf_counter() - self.origin
        try:
            yield
        finally:
            self.records.append((kind, start, time.perf_counter() - self.origin))


def merge_wall_records(
    tracer: Tracer, actor: str, records: list[tuple[str, float, float]]
) -> int:
    """Fold one worker's :class:`WallClockRecorder` output into *tracer*.

    Sub-resolution clock jitter across processes can produce spans that
    start before the shared origin or end before they start; those are
    clamped to legal intervals, **counted**, and the count is both
    returned and accumulated on ``tracer.clamped_records`` — cross-process
    clock skew stays visible instead of being swallowed.
    """
    clamped = 0
    for kind, start, end in records:
        if start < 0.0 or end < start:
            clamped += 1
        tracer.record(actor, kind, max(0.0, start), max(0.0, start, end))
    tracer.clamped_records += clamped
    return clamped


#: Glyph per interval kind in the Gantt rendering.
_GLYPHS = {"compute": "#", "d2h": ">", "h2d": "<", "wait": ".", "pruned": "x",
           "checkpoint": "c", "recovery": "!", "warmup": "w"}

#: Fixed tie-break priority for bucket glyphs: on equal durations the
#: *earlier* kind in :data:`KINDS` wins (compute over transfers over
#: waits), so charts are deterministic regardless of recording order.
_KIND_PRIORITY = {kind: len(KINDS) - i for i, kind in enumerate(KINDS)}


def render_gantt(tracer: Tracer, *, width: int = 100, makespan: float | None = None) -> str:
    """ASCII Gantt chart: one row per actor, *width* time buckets.

    Each bucket shows the kind that dominates it (compute ``#``, D2H ``>``,
    H2D ``<``, wait ``.``, idle space).  Zero-cost and sub-bucket intervals
    may be invisible; the chart is for eyeballing, the queries above are
    for asserting.
    """
    if width <= 0:
        raise SimulationError("width must be positive")
    if not tracer.intervals:
        return "(no intervals recorded)"
    end = makespan if makespan is not None else max(iv.end for iv in tracer.intervals)
    if end <= 0:
        return "(zero-length trace)"
    bucket = end / width

    lines = []
    label_w = max(len(a) for a in tracer.actors())
    for actor in tracer.actors():
        ivs = [iv for iv in tracer.intervals if iv.actor == actor and iv.duration > 0]
        per_bucket: list[dict[str, float]] = [dict() for _ in range(width)]
        for iv in ivs:
            b0 = min(width - 1, int(iv.start / bucket))
            b1 = min(width - 1, int(iv.end / bucket))
            for b in range(b0, b1 + 1):
                lo = max(iv.start, b * bucket)
                hi = min(iv.end, (b + 1) * bucket)
                if hi > lo:
                    per_bucket[b][iv.kind] = per_bucket[b].get(iv.kind, 0.0) + (hi - lo)
        row = []
        for b in range(width):
            if not per_bucket[b]:
                row.append(" ")
            else:
                kind = max(per_bucket[b],
                           key=lambda k: (per_bucket[b][k], _KIND_PRIORITY[k]))
                row.append(_GLYPHS[kind])
        lines.append(f"{actor.ljust(label_w)} |{''.join(row)}|")
    legend = ("legend: # compute   > D2H   < H2D   . wait   x pruned"
              "   c checkpoint   ! recovery   (space) idle")
    scale = f"0 {'-' * (label_w + width - 10)} {end:.3g}s"
    return "\n".join([*lines, legend, scale])
