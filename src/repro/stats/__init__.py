"""Alignment score statistics (Karlin-Altschul)."""

from .karlin import (
    UNIFORM_DNA,
    ScoreStatistics,
    dna_statistics,
    estimate_k,
    expected_score,
    solve_lambda,
)

__all__ = [
    "UNIFORM_DNA",
    "ScoreStatistics",
    "dna_statistics",
    "estimate_k",
    "expected_score",
    "solve_lambda",
]
