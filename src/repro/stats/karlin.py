"""Karlin-Altschul statistics for local alignment scores.

A raw Smith-Waterman score is only meaningful against the score
distribution of unrelated sequences.  For ungapped local alignment,
Karlin & Altschul (1990) showed the number of alignments scoring >= S
between random sequences of lengths m, n follows a Poisson law with mean

    E = K * m * n * exp(-lambda * S),

where ``lambda`` is the unique positive solution of

    sum_ij  p_i * q_j * exp(lambda * s_ij) = 1,

and ``K`` a computable constant.  The same functional form is used (with
empirically fitted parameters) for gapped scores — which is what every
practical aligner reports.  This module computes ``lambda`` exactly by
bisection, approximates ``K`` with the standard truncated-series
estimate, and provides E-value / bit-score / P-value conversions so the
examples can annotate chromosome comparisons the way real tools do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

#: Uniform ACGT composition (N excluded: statistics assume unambiguous).
UNIFORM_DNA = np.full(4, 0.25)


def expected_score(matrix: np.ndarray, p: np.ndarray, q: np.ndarray) -> float:
    """Mean per-pair score  sum_ij p_i q_j s_ij  (must be < 0)."""
    return float(p @ matrix.astype(np.float64) @ q)


def solve_lambda(
    matrix: np.ndarray,
    p: np.ndarray,
    q: np.ndarray,
    *,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """The positive root of ``sum p_i q_j exp(lambda s_ij) == 1``.

    Requires a valid local-alignment scheme: negative expected score and
    at least one positive entry — otherwise no positive root exists and
    :class:`ConfigError` is raised.
    """
    m = matrix.astype(np.float64)
    k = m.shape[0]
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != (k,) or q.shape != (k,):
        raise ConfigError("composition vectors must match the matrix dimension")
    if abs(p.sum() - 1.0) > 1e-9 or abs(q.sum() - 1.0) > 1e-9:
        raise ConfigError("composition vectors must sum to 1")
    if (p < 0).any() or (q < 0).any():
        raise ConfigError("composition probabilities must be non-negative")
    if expected_score(m, p, q) >= 0:
        raise ConfigError("expected score must be negative for local statistics")
    if m.max() <= 0:
        raise ConfigError("matrix needs at least one positive score")

    weights = np.outer(p, q)

    def phi(lam: float) -> float:
        return float((weights * np.exp(lam * m)).sum()) - 1.0

    # phi(0) = 0 with phi'(0) = E[s] < 0, and phi -> +inf; bracket the
    # positive root.
    lo = 1e-9
    while phi(lo) >= 0:  # pathological tiny-score schemes
        lo /= 10
        if lo < 1e-30:
            raise ConfigError("failed to bracket lambda")
    hi = 1.0
    while phi(hi) < 0:
        hi *= 2
        if hi > 1e6:
            raise ConfigError("failed to bracket lambda")
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if phi(mid) < 0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return 0.5 * (lo + hi)


#: Euler-Mascheroni constant (mean of the standard Gumbel distribution).
EULER_GAMMA = 0.5772156649015329


def estimate_k(
    scoring,
    lam: float,
    *,
    m: int = 400,
    n: int = 400,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of the Karlin-Altschul K constant.

    Local-alignment scores of random sequences follow a Gumbel law with
    location ``u = ln(K m n) / lambda`` and scale ``1/lambda``; since the
    Gumbel mean is ``u + gamma/lambda``, sampling SW scores of random
    pairs and inverting the mean yields K::

        K = exp(lambda * mean_score - gamma) / (m * n)

    Deterministic for a given *seed*.  This is how practical aligners fit
    gapped-statistics parameters (analytic K exists only for the ungapped
    lattice case); the unit tests validate the fit by checking that the
    resulting E-values predict empirical tail frequencies.
    """
    from ..sw.kernel import sw_score  # local import: stats must not force kernels

    if samples <= 0 or m <= 0 or n <= 0:
        raise ConfigError("samples and lengths must be positive")
    rng = np.random.default_rng(seed)
    scores = np.empty(samples, dtype=np.float64)
    for i in range(samples):
        a = rng.integers(0, 4, m).astype(np.uint8)
        b = rng.integers(0, 4, n).astype(np.uint8)
        best = sw_score(a, b, scoring)
        scores[i] = best.score if best.row >= 0 else 0
    mean = float(scores.mean())
    k = math.exp(lam * mean - EULER_GAMMA) / (m * n)
    if not (0 < k < 10):
        raise ConfigError(f"implausible K estimate {k}; check the scheme")
    return k


@dataclass(frozen=True)
class ScoreStatistics:
    """lambda/K bundle for one scoring scheme + composition."""

    lam: float
    k: float

    def evalue(self, score: int, m: int, n: int) -> float:
        """Expected number of chance alignments scoring >= *score*."""
        if m <= 0 or n <= 0:
            raise ConfigError("sequence lengths must be positive")
        return self.k * m * n * math.exp(-self.lam * score)

    def pvalue(self, score: int, m: int, n: int) -> float:
        """P(at least one chance alignment >= score) = 1 - exp(-E)."""
        return -math.expm1(-self.evalue(score, m, n))

    def bit_score(self, score: int) -> float:
        """Normalised score:  (lambda*S - ln K) / ln 2."""
        return (self.lam * score - math.log(self.k)) / math.log(2.0)

    def score_for_evalue(self, evalue: float, m: int, n: int) -> int:
        """Smallest integer score whose E-value is <= *evalue*."""
        if evalue <= 0:
            raise ConfigError("evalue must be positive")
        s = (math.log(self.k * m * n) - math.log(evalue)) / self.lam
        return int(math.ceil(s))


def dna_statistics(
    scoring,
    *,
    composition: np.ndarray | None = None,
    k_samples: int = 200,
    seed: int = 0,
) -> ScoreStatistics:
    """lambda (exact) and K (Monte-Carlo) for a DNA scheme."""
    comp = UNIFORM_DNA if composition is None else np.asarray(composition, float)
    sub = scoring.matrix[:4, :4]
    lam = solve_lambda(sub, comp, comp)
    k = estimate_k(scoring, lam, samples=k_samples, seed=seed)
    return ScoreStatistics(lam=lam, k=k)
