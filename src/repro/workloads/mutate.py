"""Mutation operators used to derive one homolog from another.

The paper compares human chromosomes against their chimpanzee homologs,
which differ by ~1.2% single-nucleotide substitutions plus ~3% indels and
occasional larger rearrangements.  These operators apply each class of
change with a configurable rate so the synthetic "chimp" sequence has a
calibrated identity to the synthetic "human" one.

All operators are vectorised; the only Python-level loop is over the
(few) large structural events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SequenceError


@dataclass(frozen=True)
class MutationProfile:
    """Rates of each mutation class, per base of the source sequence.

    Attributes
    ----------
    snp_rate:
        Probability that a base is substituted (human-chimp: ~0.012).
    indel_rate:
        Probability that an indel *event* starts at a base (~0.0008 events
        per base; lengths are geometric with mean ``indel_mean_len``).
    indel_mean_len:
        Mean indel length (geometric distribution).
    inversion_count / inversion_len:
        Number and length of large inversions (reverse-complement blocks).
    translocation_count / translocation_len:
        Number and length of block moves.
    """

    snp_rate: float = 0.012
    indel_rate: float = 0.0008
    indel_mean_len: float = 3.0
    inversion_count: int = 0
    inversion_len: int = 0
    translocation_count: int = 0
    translocation_len: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.snp_rate <= 1.0:
            raise SequenceError("snp_rate must be in [0, 1]")
        if not 0.0 <= self.indel_rate <= 1.0:
            raise SequenceError("indel_rate must be in [0, 1]")
        if self.indel_mean_len < 1.0:
            raise SequenceError("indel_mean_len must be >= 1")
        if min(self.inversion_count, self.inversion_len, self.translocation_count, self.translocation_len) < 0:
            raise SequenceError("structural-event parameters must be >= 0")


#: Calibrated to the human-chimp divergence the paper's workloads have.
HUMAN_CHIMP = MutationProfile(snp_rate=0.012, indel_rate=0.0008, indel_mean_len=3.0)

#: A heavier profile for stress tests (far-diverged homologs).
DIVERGED = MutationProfile(snp_rate=0.15, indel_rate=0.01, indel_mean_len=4.0)


def apply_snps(codes: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Substitute each unambiguous base with probability *rate*.

    Substitutions always change the base (a 'substitution' to the same base
    would silently lower the effective rate); N positions are left alone.
    """
    if not 0.0 <= rate <= 1.0:
        raise SequenceError("rate must be in [0, 1]")
    out = codes.copy()
    if rate == 0.0 or codes.size == 0:
        return out
    mask = (rng.random(codes.size) < rate) & (codes < 4)
    # new_base = (old + k) % 4 with k uniform in {1,2,3} guarantees a change.
    shift = rng.integers(1, 4, size=int(mask.sum()), dtype=np.uint8)
    out[mask] = (out[mask] + shift) % 4
    return out


def apply_indels(
    codes: np.ndarray,
    rate: float,
    mean_len: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply insertion/deletion events (50/50) with geometric lengths.

    Implemented as a single split/concat pass: event positions are drawn
    up-front, the sequence is cut at those positions, and deleted spans are
    dropped while inserted spans are spliced in.
    """
    if not 0.0 <= rate <= 1.0:
        raise SequenceError("rate must be in [0, 1]")
    if codes.size == 0 or rate == 0.0:
        return codes.copy()
    n_events = rng.binomial(codes.size, rate)
    if n_events == 0:
        return codes.copy()
    positions = np.sort(rng.integers(0, codes.size, size=n_events))
    lengths = rng.geometric(1.0 / mean_len, size=n_events)
    is_insert = rng.random(n_events) < 0.5

    pieces: list[np.ndarray] = []
    cursor = 0
    for pos, length, ins in zip(positions, lengths, is_insert):
        pos = int(pos)
        length = int(length)
        if pos < cursor:
            continue  # overlapping deletion already consumed this span
        pieces.append(codes[cursor:pos])
        if ins:
            pieces.append(rng.integers(0, 4, size=length).astype(np.uint8))
            cursor = pos
        else:
            cursor = min(codes.size, pos + length)
    pieces.append(codes[cursor:])
    return np.concatenate(pieces) if pieces else codes.copy()


def apply_inversions(
    codes: np.ndarray, count: int, length: int, rng: np.random.Generator
) -> np.ndarray:
    """Reverse-complement *count* random blocks of *length* bases."""
    from ..seq import encoding

    out = codes.copy()
    if count == 0 or length == 0 or codes.size <= length:
        return out
    for _ in range(count):
        start = int(rng.integers(0, codes.size - length))
        out[start : start + length] = encoding.reverse_complement(out[start : start + length])
    return out


def apply_translocations(
    codes: np.ndarray, count: int, length: int, rng: np.random.Generator
) -> np.ndarray:
    """Move *count* random blocks of *length* bases to random positions."""
    out = codes
    for _ in range(count):
        if out.size <= length or length == 0:
            break
        src = int(rng.integers(0, out.size - length))
        block = out[src : src + length].copy()
        rest = np.concatenate([out[:src], out[src + length :]])
        dst = int(rng.integers(0, rest.size + 1))
        out = np.concatenate([rest[:dst], block, rest[dst:]])
    return out.copy() if out is codes else out


def mutate(
    codes: np.ndarray,
    profile: MutationProfile,
    *,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Apply a full :class:`MutationProfile` to *codes*; returns a new array.

    Order: structural events first (they move coordinates), then indels,
    then SNPs — so the point rates stay calibrated on the final geometry.
    """
    rng = np.random.default_rng(rng)
    out = apply_translocations(codes, profile.translocation_count, profile.translocation_len, rng)
    out = apply_inversions(out, profile.inversion_count, profile.inversion_len, rng)
    out = apply_indels(out, profile.indel_rate, profile.indel_mean_len, rng)
    out = apply_snps(out, profile.snp_rate, rng)
    return out
