"""Catalog of the paper's chromosome-pair workloads, at configurable scale.

The paper compares four pairs of human-chimpanzee homologous chromosomes
(chr19, chr20, chr21, chr22).  Their megabase lengths are recorded here both
to parameterise the *timing-mode* simulator (which sweeps the real, paper-
scale matrix dimensions without computing cells) and to derive scaled-down
*compute-mode* stand-ins whose cells are actually computed.

The real chromosome lengths (GRCh37 / panTro3-era assemblies, the ones
contemporary with the paper) are approximate; they set matrix shapes, not
biology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SequenceError
from . import mutate as mut
from . import random_seq


@dataclass(frozen=True)
class ChromosomePair:
    """One homologous pair: names and (paper-scale) lengths in bases."""

    name: str
    human_label: str
    chimp_label: str
    human_len: int
    chimp_len: int

    @property
    def cells(self) -> int:
        """Number of DP matrix cells at paper scale."""
        return self.human_len * self.chimp_len

    def scaled(self, scale: float) -> "ChromosomePair":
        """A proportionally scaled copy (for compute-mode stand-ins)."""
        if scale <= 0:
            raise SequenceError("scale must be positive")
        return ChromosomePair(
            name=self.name,
            human_label=self.human_label,
            chimp_label=self.chimp_label,
            human_len=max(1, int(self.human_len * scale)),
            chimp_len=max(1, int(self.chimp_len * scale)),
        )


#: The four homologous pairs the paper's evaluation uses.  Lengths are the
#: chromosome sizes of the assemblies available at publication time.
PAPER_PAIRS: tuple[ChromosomePair, ...] = (
    ChromosomePair("chr22", "human chr22", "chimp chr22", 35_194_566, 35_083_970),
    ChromosomePair("chr21", "human chr21", "chimp chr21", 46_944_323, 46_489_110),
    ChromosomePair("chr20", "human chr20", "chimp chr20", 59_505_520, 61_309_027),
    ChromosomePair("chr19", "human chr19", "chimp chr19", 63_811_651, 64_473_437),
)


def get_pair(name: str) -> ChromosomePair:
    """Look up a paper pair by name (e.g. ``"chr21"``)."""
    for pair in PAPER_PAIRS:
        if pair.name == name:
            return pair
    raise SequenceError(f"unknown chromosome pair {name!r}; have {[p.name for p in PAPER_PAIRS]}")


def synthesize_pair(
    pair: ChromosomePair,
    *,
    scale: float = 1e-3,
    profile: mut.MutationProfile = mut.HUMAN_CHIMP,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a (human, chimp) encoded sequence pair for compute mode.

    The "human" sequence is chromosome-like random DNA of
    ``pair.human_len * scale`` bases; the "chimp" sequence is derived from
    it by the mutation *profile* and then trimmed/padded toward the scaled
    chimp length so the matrix aspect ratio matches the paper's.
    """
    scaled = pair.scaled(scale)
    rng = np.random.default_rng(seed)
    human = random_seq.chromosome_like(scaled.human_len, rng=rng)
    chimp = mut.mutate(human, profile, rng=rng)
    target = scaled.chimp_len
    if chimp.size > target:
        chimp = chimp[:target]
    elif chimp.size < target:
        pad = random_seq.random_dna(target - chimp.size, rng=rng)
        chimp = np.concatenate([chimp, pad])
    return human, chimp


def identity_pair(
    length: int,
    identity: float,
    *,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a pair with a target SNP-only identity level.

    Used by the block-pruning experiment (F4), which sweeps similarity.
    """
    if not 0.0 <= identity <= 1.0:
        raise SequenceError("identity must be in [0, 1]")
    rng = np.random.default_rng(seed)
    a = random_seq.random_dna(length, rng=rng)
    b = mut.apply_snps(a, 1.0 - identity, rng)
    return a, b
