"""Random DNA generation with chromosome-like composition.

Real chromosomes are not i.i.d. uniform: they are GC-skewed, contain runs of
``N`` (assembly gaps, centromeres) and low-complexity repeats.  The
generators here reproduce those features because two of them matter to the
system under study: ``N`` runs score as mismatches (affecting block pruning)
and repeats create secondary alignment optima (stressing the traceback).
"""

from __future__ import annotations

import numpy as np

from ..errors import SequenceError
from ..seq import alphabet


def random_dna(
    length: int,
    *,
    rng: np.random.Generator | int | None = None,
    gc_content: float = 0.41,
) -> np.ndarray:
    """Generate *length* random bases with the given GC fraction.

    The default GC content (0.41) matches the human genome average.
    """
    if length < 0:
        raise SequenceError("length must be >= 0")
    if not 0.0 <= gc_content <= 1.0:
        raise SequenceError(f"gc_content must be in [0, 1], got {gc_content}")
    rng = np.random.default_rng(rng)
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    probs = [at, gc, gc, at]  # A C G T
    return rng.choice(4, size=length, p=probs).astype(np.uint8)


def insert_n_runs(
    codes: np.ndarray,
    *,
    rng: np.random.Generator | int | None = None,
    run_count: int = 3,
    run_fraction: float = 0.02,
) -> np.ndarray:
    """Overwrite *run_count* random stretches with ``N`` (assembly gaps).

    *run_fraction* is the total fraction of the sequence turned into ``N``,
    split evenly across the runs.  Returns a new array.
    """
    if not 0.0 <= run_fraction < 1.0:
        raise SequenceError("run_fraction must be in [0, 1)")
    if run_count < 0:
        raise SequenceError("run_count must be >= 0")
    out = codes.copy()
    if run_count == 0 or run_fraction == 0.0 or codes.size == 0:
        return out
    rng = np.random.default_rng(rng)
    run_len = max(1, int(codes.size * run_fraction / run_count))
    for _ in range(run_count):
        start = int(rng.integers(0, max(1, codes.size - run_len)))
        out[start : start + run_len] = alphabet.N
    return out


def insert_tandem_repeats(
    codes: np.ndarray,
    *,
    rng: np.random.Generator | int | None = None,
    repeat_count: int = 2,
    unit_length: int = 50,
    copies: int = 8,
) -> np.ndarray:
    """Overwrite stretches with tandem copies of a random unit.

    Models satellite/low-complexity DNA; creates plateaus of near-identical
    local alignments that exercise traceback tie-breaking.
    """
    if repeat_count < 0 or unit_length <= 0 or copies <= 0:
        raise SequenceError("repeat parameters must be positive")
    out = codes.copy()
    total = unit_length * copies
    if codes.size <= total or repeat_count == 0:
        return out
    rng = np.random.default_rng(rng)
    for _ in range(repeat_count):
        unit = rng.integers(0, 4, size=unit_length).astype(np.uint8)
        start = int(rng.integers(0, codes.size - total))
        out[start : start + total] = np.tile(unit, copies)
    return out


def chromosome_like(
    length: int,
    *,
    rng: np.random.Generator | int | None = None,
    gc_content: float = 0.41,
    n_fraction: float = 0.02,
    repeat_count: int = 2,
) -> np.ndarray:
    """Convenience: random DNA + N runs + tandem repeats, all seeded."""
    rng = np.random.default_rng(rng)
    codes = random_dna(length, rng=rng, gc_content=gc_content)
    codes = insert_n_runs(codes, rng=rng, run_fraction=n_fraction)
    codes = insert_tandem_repeats(codes, rng=rng, repeat_count=repeat_count)
    return codes
