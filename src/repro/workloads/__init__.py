"""Workload substrate: synthetic chromosome-like sequences and the paper's
chromosome-pair catalog."""

from .catalog import PAPER_PAIRS, ChromosomePair, get_pair, identity_pair, synthesize_pair
from .mutate import DIVERGED, HUMAN_CHIMP, MutationProfile, mutate
from .random_seq import chromosome_like, insert_n_runs, insert_tandem_repeats, random_dna

__all__ = [
    "PAPER_PAIRS",
    "ChromosomePair",
    "get_pair",
    "identity_pair",
    "synthesize_pair",
    "MutationProfile",
    "HUMAN_CHIMP",
    "DIVERGED",
    "mutate",
    "random_dna",
    "chromosome_like",
    "insert_n_runs",
    "insert_tandem_repeats",
]
