"""Baselines the paper compares against (single GPU, CPU, inter-task)."""

from .cpu import CpuResult, run_cpu
from .intertask import ScheduleResult, Task, schedule_intertask, single_task_best_device, task_time
from .single_gpu import SingleGpuResult, run_single_gpu, time_single_gpu

__all__ = [
    "CpuResult",
    "run_cpu",
    "ScheduleResult",
    "Task",
    "schedule_intertask",
    "single_task_best_device",
    "task_time",
    "SingleGpuResult",
    "run_single_gpu",
    "time_single_gpu",
]
