"""Single-GPU baseline (the CUDAlign-2.1-shaped comparator).

One simulated device sweeps the whole matrix in block rows — no
partitioning, no border channels.  Optionally applies block pruning,
which the multi-GPU engines now also support through a chain-wide
best-score scoreboard (``ChainConfig.pruning`` /
``align_multi_process(pruning=True)``; see
:mod:`repro.comm.scoreboard`) — this baseline remains the reference
for the single-device pruned fraction.

Like the chain, it runs in compute mode (real cells, exact score) or
timing mode (virtual clock only, any scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.engine import Engine
from ..device.gpu import SimulatedGPU
from ..device.spec import DeviceSpec
from ..errors import ConfigError
from ..obs.instruments import (EngineInstruments, finalize_run_metrics,
                               record_dtype, record_heuristic)
from ..seq.scoring import Scoring
from ..sw.backend import validate_kernel
from ..sw.blocks import BlockedOutcome, compute_blocked
from ..sw.compiled import warmup as compiled_warmup
from ..sw.constants import validate_dp_dtype
from ..sw.kernel import BestCell
from ..sw.pruning import BlockPruner
from ..sw.xdrop import (DEFAULT_BAND_WIDTH, DEFAULT_XDROP_X,
                        adaptive_banded_score, assess_heuristic, validate_mode,
                        xdrop_score)


@dataclass
class SingleGpuResult:
    """Outcome of a single-device run (virtual-clock timing)."""

    best: BestCell
    total_time_s: float
    cells: int
    cells_computed: int
    pruned_fraction: float
    #: Per-block pruning decisions (zeros when pruning was off).
    blocks_checked: int = 0
    blocks_pruned: int = 0
    #: Heuristic-tier fields: the requested *mode*, the tier that produced
    #: the reported score, and whether ``mode="auto"`` fell back to exact.
    mode: str = "exact"
    tier: str = "exact"
    escalated: bool = False
    blocks_skipped_band: int = 0
    #: Block-sweep kernel the run used ("scalar"/"batched"/"compiled").
    kernel: str = "scalar"
    #: DP dtype policy the run resolved to and its narrow/wide block split.
    dp_dtype: str = "int32"
    blocks_narrow: int = 0
    blocks_wide: int = 0
    dtype_escalations: int = 0

    @property
    def pruned_ratio(self) -> float:
        """Fraction of checked blocks that were pruned."""
        return self.blocks_pruned / self.blocks_checked if self.blocks_checked else 0.0

    @property
    def gcups(self) -> float:
        """Matrix cells over virtual time — comparable to the chain's
        figure (pruning raises it by skipping cells)."""
        if self.total_time_s <= 0:
            return 0.0
        return self.cells / self.total_time_s / 1e9

    @property
    def score(self) -> int:
        return self.best.score if self.best.row >= 0 else 0


def run_single_gpu(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    spec: DeviceSpec,
    *,
    block_rows: int = 512,
    block_cols: int | None = None,
    prune: bool = False,
    mode: str = "exact",
    band_width: int = DEFAULT_BAND_WIDTH,
    xdrop_x: int = DEFAULT_XDROP_X,
    kernel: str = "scalar",
    dp_dtype: str = "auto",
    metrics=None,
) -> SingleGpuResult:
    """Compute-mode single-GPU run: virtual-clock timing.

    ``block_cols`` defaults to ``block_rows``; pruning operates per block,
    so 2-D blocking (not full-width stripes) is what lets similar-sequence
    runs skip off-diagonal work.  Pass a
    :class:`~repro.obs.registry.MetricsRegistry` as *metrics* for the
    standard instrument set (virtual-clock latencies, no border traffic —
    a single device has no neighbours).

    *mode* selects the tier: ``"exact"`` (default, full matrix),
    ``"banded"`` (the adaptive band of
    :func:`~repro.sw.xdrop.adaptive_banded_score`, half-width
    *band_width*), ``"xdrop"`` (origin-anchored X-drop extension with
    threshold *xdrop_x*), or ``"auto"`` (heuristic first, exact re-run
    only when the :func:`~repro.sw.xdrop.assess_heuristic` confidence
    check fails; the result's ``tier``/``escalated`` fields say which
    tier answered).  Heuristic scores are lower bounds of the exact one.

    ``dp_dtype`` selects the kernel's internal compute dtype (``"auto"``
    picks the narrowest guaranteed-overflow-free policy; explicit narrow
    names escalate per block).  ``kernel`` selects the block sweep
    (scalar/batched/compiled).  Scores stay bit-identical either way.
    """
    validate_mode(mode)
    validate_kernel(kernel)
    validate_dp_dtype(dp_dtype)
    if mode != "exact":
        return _run_single_heuristic(
            a_codes, b_codes, scoring, spec,
            block_rows=block_rows, block_cols=block_cols, prune=prune,
            mode=mode, band_width=band_width, xdrop_x=xdrop_x,
            kernel=kernel, dp_dtype=dp_dtype, metrics=metrics)
    m, n = int(a_codes.size), int(b_codes.size)
    if block_cols is None:
        block_cols = block_rows
    if kernel == "compiled":
        compiled_warmup()  # idempotent; keeps compile out of callers' timings
    pruner = BlockPruner(match=scoring.match) if prune else None
    outcome: BlockedOutcome = compute_blocked(
        a_codes, b_codes, scoring,
        block_rows=block_rows, block_cols=block_cols, pruner=pruner,
        kernel=kernel, dp_dtype=dp_dtype,
    )
    computed = outcome.cells_total - outcome.cells_pruned
    engine = Engine()
    gpu = SimulatedGPU(engine, spec)
    instruments = (EngineInstruments(metrics, "single-gpu")
                   if metrics is not None else None)

    def proc():
        # One compute charge per block row over the full width; pruned
        # cells are charged nothing (the device skips those blocks).
        rows_done = 0
        remaining = computed
        while rows_done < m:
            rows = min(block_rows, m - rows_done)
            cells = min(remaining, rows * n)
            if cells > 0:
                t0 = engine.now
                yield from gpu.compute(cells, n, block_rows=rows)
                if instruments is not None:
                    instruments.block_computed(engine.now - t0, cells=cells)
                remaining -= cells
            rows_done += rows

    engine.process(proc(), "single-gpu")
    total = engine.run()
    result = SingleGpuResult(
        best=outcome.best,
        total_time_s=total,
        cells=m * n,
        cells_computed=computed,
        pruned_fraction=outcome.pruned_fraction,
        blocks_checked=pruner.blocks_checked if pruner is not None else 0,
        blocks_pruned=pruner.blocks_pruned if pruner is not None else 0,
        kernel=kernel,
        dp_dtype=outcome.dp_dtype,
        blocks_narrow=outcome.blocks_narrow,
        blocks_wide=outcome.blocks_wide,
        dtype_escalations=outcome.dtype_escalations,
    )
    if metrics is not None:
        # 2-D-block pruning decisions happen inside compute_blocked, so
        # the per-block counters are bulk-recorded from its outcome.
        if result.blocks_pruned:
            instruments.block_pruned(result.blocks_pruned)
        if outcome.dp_dtype != "int32":
            record_dtype(metrics, device="single-gpu",
                         narrow=outcome.blocks_narrow,
                         wide=outcome.blocks_wide,
                         escalations=outcome.dtype_escalations)
        finalize_run_metrics(
            metrics, backend="single",
            blocks_checked=result.blocks_checked,
            blocks_pruned=result.blocks_pruned,
            wall_time_s=total, gcups=result.gcups)
    return result


def _run_single_heuristic(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    spec: DeviceSpec,
    *,
    block_rows: int,
    block_cols: int | None,
    prune: bool,
    mode: str,
    band_width: int,
    xdrop_x: int,
    kernel: str = "scalar",
    dp_dtype: str = "auto",
    metrics=None,
) -> SingleGpuResult:
    """The banded/xdrop/auto tiers of :func:`run_single_gpu`.

    The heuristic sweeps run on the host (they are tiny next to the full
    matrix); the device is charged their actual cell count so the virtual
    clock stays comparable to the exact tier.  ``mode="auto"`` re-runs the
    exact engine when the confidence check fails and reports the *summed*
    virtual time of both tiers.
    """
    m, n = int(a_codes.size), int(b_codes.size)
    saturated = False
    if mode == "xdrop":
        xo = xdrop_score(a_codes, b_codes, scoring, xdrop_x)
        best, computed = xo.best, xo.cells_computed
    else:  # banded or auto: the adaptive band is the heuristic
        bo = adaptive_banded_score(a_codes, b_codes, scoring, band_width,
                                   block_rows=block_rows)
        best, computed = bo.best, bo.cells_computed
        saturated = bo.saturated

    engine = Engine()
    gpu = SimulatedGPU(engine, spec)
    instruments = (EngineInstruments(metrics, "single-gpu")
                   if metrics is not None else None)

    def proc():
        t0 = engine.now
        yield from gpu.compute(max(1, computed), n, block_rows=block_rows)
        if instruments is not None:
            instruments.block_computed(engine.now - t0, cells=computed)

    engine.process(proc(), "single-gpu")
    total = engine.run()

    tier = "xdrop" if mode == "xdrop" else "banded"
    escalated = False
    pruned_fraction = 0.0
    blocks_checked = blocks_pruned = 0
    dp_name = "int32"
    blocks_narrow = blocks_wide = dtype_escalations = 0
    if mode == "auto":
        decision = assess_heuristic(best, m, n, scoring, saturated=saturated)
        if not decision.confident:
            exact = run_single_gpu(
                a_codes, b_codes, scoring, spec,
                block_rows=block_rows, block_cols=block_cols, prune=prune,
                kernel=kernel, dp_dtype=dp_dtype)
            best = exact.best
            computed += exact.cells_computed
            total += exact.total_time_s
            tier, escalated = "exact", True
            pruned_fraction = exact.pruned_fraction
            blocks_checked = exact.blocks_checked
            blocks_pruned = exact.blocks_pruned
            dp_name = exact.dp_dtype
            blocks_narrow = exact.blocks_narrow
            blocks_wide = exact.blocks_wide
            dtype_escalations = exact.dtype_escalations

    result = SingleGpuResult(
        best=best,
        total_time_s=total,
        cells=m * n,
        cells_computed=computed,
        pruned_fraction=pruned_fraction,
        blocks_checked=blocks_checked,
        blocks_pruned=blocks_pruned,
        mode=mode,
        tier=tier,
        escalated=escalated,
        kernel=kernel,
        dp_dtype=dp_name,
        blocks_narrow=blocks_narrow,
        blocks_wide=blocks_wide,
        dtype_escalations=dtype_escalations,
    )
    if metrics is not None:
        if mode == "auto":
            record_heuristic(metrics, backend="single",
                             tier=tier, escalated=escalated)
        if dp_name != "int32":
            record_dtype(metrics, device="single-gpu",
                         narrow=blocks_narrow, wide=blocks_wide,
                         escalations=dtype_escalations)
        finalize_run_metrics(
            metrics, backend="single",
            blocks_checked=blocks_checked, blocks_pruned=blocks_pruned,
            wall_time_s=total, gcups=result.gcups)
    return result


def time_single_gpu(
    rows: int,
    cols: int,
    spec: DeviceSpec,
    *,
    block_rows: int = 512,
    pruned_fraction: float = 0.0,
) -> SingleGpuResult:
    """Timing-mode single-GPU run at arbitrary scale.

    *pruned_fraction* models block pruning's effect without computing
    cells (use a measured fraction from a compute-mode run).
    """
    if not 0.0 <= pruned_fraction < 1.0:
        raise ConfigError("pruned_fraction must be in [0, 1)")
    cells = rows * cols
    computed = int(cells * (1.0 - pruned_fraction))
    engine = Engine()
    gpu = SimulatedGPU(engine, spec)

    def proc():
        yield from gpu.compute(max(1, computed), cols)

    engine.process(proc(), "single-gpu")
    total = engine.run()
    return SingleGpuResult(
        best=BestCell.none(),
        total_time_s=total,
        cells=cells,
        cells_computed=computed,
        pruned_fraction=pruned_fraction,
    )
