"""Single-GPU baseline (the CUDAlign-2.1-shaped comparator).

One simulated device sweeps the whole matrix in block rows — no
partitioning, no border channels.  Optionally applies block pruning,
which the multi-GPU engines now also support through a chain-wide
best-score scoreboard (``ChainConfig.pruning`` /
``align_multi_process(pruning=True)``; see
:mod:`repro.comm.scoreboard`) — this baseline remains the reference
for the single-device pruned fraction.

Like the chain, it runs in compute mode (real cells, exact score) or
timing mode (virtual clock only, any scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device.engine import Engine
from ..device.gpu import SimulatedGPU
from ..device.spec import DeviceSpec
from ..errors import ConfigError
from ..obs.instruments import EngineInstruments, finalize_run_metrics
from ..seq.scoring import Scoring
from ..sw.blocks import BlockedOutcome, compute_blocked
from ..sw.kernel import BestCell
from ..sw.pruning import BlockPruner


@dataclass
class SingleGpuResult:
    """Outcome of a single-device run (virtual-clock timing)."""

    best: BestCell
    total_time_s: float
    cells: int
    cells_computed: int
    pruned_fraction: float
    #: Per-block pruning decisions (zeros when pruning was off).
    blocks_checked: int = 0
    blocks_pruned: int = 0

    @property
    def pruned_ratio(self) -> float:
        """Fraction of checked blocks that were pruned."""
        return self.blocks_pruned / self.blocks_checked if self.blocks_checked else 0.0

    @property
    def gcups(self) -> float:
        """Matrix cells over virtual time — comparable to the chain's
        figure (pruning raises it by skipping cells)."""
        if self.total_time_s <= 0:
            return 0.0
        return self.cells / self.total_time_s / 1e9

    @property
    def score(self) -> int:
        return self.best.score if self.best.row >= 0 else 0


def run_single_gpu(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    spec: DeviceSpec,
    *,
    block_rows: int = 512,
    block_cols: int | None = None,
    prune: bool = False,
    metrics=None,
) -> SingleGpuResult:
    """Compute-mode single-GPU run: exact score, virtual-clock timing.

    ``block_cols`` defaults to ``block_rows``; pruning operates per block,
    so 2-D blocking (not full-width stripes) is what lets similar-sequence
    runs skip off-diagonal work.  Pass a
    :class:`~repro.obs.registry.MetricsRegistry` as *metrics* for the
    standard instrument set (virtual-clock latencies, no border traffic —
    a single device has no neighbours).
    """
    m, n = int(a_codes.size), int(b_codes.size)
    if block_cols is None:
        block_cols = block_rows
    pruner = BlockPruner(match=scoring.match) if prune else None
    outcome: BlockedOutcome = compute_blocked(
        a_codes, b_codes, scoring,
        block_rows=block_rows, block_cols=block_cols, pruner=pruner,
    )
    computed = outcome.cells_total - outcome.cells_pruned
    engine = Engine()
    gpu = SimulatedGPU(engine, spec)
    instruments = (EngineInstruments(metrics, "single-gpu")
                   if metrics is not None else None)

    def proc():
        # One compute charge per block row over the full width; pruned
        # cells are charged nothing (the device skips those blocks).
        rows_done = 0
        remaining = computed
        while rows_done < m:
            rows = min(block_rows, m - rows_done)
            cells = min(remaining, rows * n)
            if cells > 0:
                t0 = engine.now
                yield from gpu.compute(cells, n, block_rows=rows)
                if instruments is not None:
                    instruments.block_computed(engine.now - t0, cells=cells)
                remaining -= cells
            rows_done += rows

    engine.process(proc(), "single-gpu")
    total = engine.run()
    result = SingleGpuResult(
        best=outcome.best,
        total_time_s=total,
        cells=m * n,
        cells_computed=computed,
        pruned_fraction=outcome.pruned_fraction,
        blocks_checked=pruner.blocks_checked if pruner is not None else 0,
        blocks_pruned=pruner.blocks_pruned if pruner is not None else 0,
    )
    if metrics is not None:
        # 2-D-block pruning decisions happen inside compute_blocked, so
        # the per-block counters are bulk-recorded from its outcome.
        if result.blocks_pruned:
            instruments.block_pruned(result.blocks_pruned)
        finalize_run_metrics(
            metrics, backend="single",
            blocks_checked=result.blocks_checked,
            blocks_pruned=result.blocks_pruned,
            wall_time_s=total, gcups=result.gcups)
    return result


def time_single_gpu(
    rows: int,
    cols: int,
    spec: DeviceSpec,
    *,
    block_rows: int = 512,
    pruned_fraction: float = 0.0,
) -> SingleGpuResult:
    """Timing-mode single-GPU run at arbitrary scale.

    *pruned_fraction* models block pruning's effect without computing
    cells (use a measured fraction from a compute-mode run).
    """
    if not 0.0 <= pruned_fraction < 1.0:
        raise ConfigError("pruned_fraction must be in [0, 1)")
    cells = rows * cols
    computed = int(cells * (1.0 - pruned_fraction))
    engine = Engine()
    gpu = SimulatedGPU(engine, spec)

    def proc():
        yield from gpu.compute(max(1, computed), cols)

    engine.process(proc(), "single-gpu")
    total = engine.run()
    return SingleGpuResult(
        best=BestCell.none(),
        total_time_s=total,
        cells=cells,
        cells_computed=computed,
        pruned_fraction=pruned_fraction,
    )
