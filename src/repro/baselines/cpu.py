"""CPU baseline: the vectorised kernel on the host, wall-clock timed.

This is the only component of the library measured in *wall* time — it
answers "what does a plain NumPy host implementation sustain on this
machine" and anchors the simulated GCUPS figures (every simulated result
is labelled as virtual-clock; see DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..seq.scoring import Scoring
from ..sw.kernel import BestCell, sw_score


@dataclass
class CpuResult:
    """Wall-clock outcome of a host-kernel run."""

    best: BestCell
    wall_time_s: float
    cells: int

    @property
    def gcups(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.cells / self.wall_time_s / 1e9

    @property
    def score(self) -> int:
        return self.best.score if self.best.row >= 0 else 0


def run_cpu(a_codes: np.ndarray, b_codes: np.ndarray, scoring: Scoring) -> CpuResult:
    """Sweep the whole matrix on the host and measure wall time."""
    t0 = time.perf_counter()
    best = sw_score(a_codes, b_codes, scoring)
    elapsed = time.perf_counter() - t0
    return CpuResult(best=best, wall_time_s=elapsed, cells=int(a_codes.size) * int(b_codes.size))
