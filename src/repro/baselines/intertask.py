"""Inter-task baseline: the CUDASW++-shaped comparator.

Database-search aligners (CUDASW++ and kin) exploit **inter-task**
parallelism: many independent small comparisons, each computed whole on
one device.  That strategy cannot accelerate a *single* huge comparison —
the situation the paper targets — because one task cannot be split across
devices.  This baseline makes that contrast measurable:

* given K independent (rows, cols) tasks, greedily schedule each whole
  task onto the device that becomes free first (longest-processing-time
  order), and report the makespan;
* given ONE huge task, the makespan is simply the fastest single device's
  time — the paper's fine-grain chain is the only way the extra devices
  contribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..device.spec import DeviceSpec
from ..errors import ConfigError


@dataclass(frozen=True)
class Task:
    """One independent comparison of an (rows x cols) matrix."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ConfigError("task dimensions must be positive")

    @property
    def cells(self) -> int:
        return self.rows * self.cols


@dataclass
class ScheduleResult:
    """Outcome of inter-task scheduling."""

    makespan_s: float
    per_device_busy_s: list[float]
    assignments: list[int]  #: task index -> device index
    cells: int

    @property
    def gcups(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.cells / self.makespan_s / 1e9


def task_time(task: Task, spec: DeviceSpec) -> float:
    """Virtual time for one whole task on one device."""
    return task.cells / spec.effective_rate(task.cols)


def schedule_intertask(tasks: Sequence[Task], devices: Sequence[DeviceSpec]) -> ScheduleResult:
    """LPT greedy scheduling of whole tasks onto devices.

    Longest task first, always onto the device with the least accumulated
    busy time (weighted by device speed).  Returns the makespan — the
    inter-task strategy's best case for the given task mix.
    """
    if not tasks:
        raise ConfigError("need at least one task")
    if not devices:
        raise ConfigError("need at least one device")
    order = sorted(range(len(tasks)), key=lambda i: tasks[i].cells, reverse=True)
    busy = [0.0] * len(devices)
    assignments = [-1] * len(tasks)
    for i in order:
        # Device that would finish this task earliest.
        finish = [busy[d] + task_time(tasks[i], devices[d]) for d in range(len(devices))]
        d = finish.index(min(finish))
        busy[d] = finish[d]
        assignments[i] = d
    return ScheduleResult(
        makespan_s=max(busy),
        per_device_busy_s=busy,
        assignments=assignments,
        cells=sum(t.cells for t in tasks),
    )


def single_task_best_device(task: Task, devices: Sequence[DeviceSpec]) -> ScheduleResult:
    """What inter-task parallelism achieves on ONE huge comparison: the
    fastest device works alone, the rest idle."""
    times = [task_time(task, d) for d in devices]
    d = times.index(min(times))
    busy = [0.0] * len(devices)
    busy[d] = times[d]
    return ScheduleResult(
        makespan_s=times[d],
        per_device_busy_s=busy,
        assignments=[d],
        cells=task.cells,
    )
