"""Line-JSON-over-TCP wire protocol between `mgsw submit` and the daemon.

One request = one JSON object = one ``\\n``-terminated line; the
response mirrors it.  A connection may carry any number of
request/response exchanges (the client keeps it open across ``submit``
then ``wait``); either side closing the socket ends the conversation.
Line framing keeps the protocol debuggable with ``nc`` and needs no
length prefixes or binary parsing — megabase sequences ride as plain
JSON strings, which at one byte per base is the same order as FASTA.

Requests carry an ``op`` plus op-specific fields; responses always
carry ``ok`` (bool) and, when ``ok`` is false, ``error`` plus an
HTTP-style ``code`` (429 = admission refused, 404 = unknown job,
400 = malformed request, 503 = draining).  See
:meth:`~repro.serve.daemon.ServeDaemon.handle_request` for the op
vocabulary (``ping``/``submit``/``status``/``wait``/``jobs``/``stats``/
``shutdown``).
"""

from __future__ import annotations

import json
import socket

from ..errors import ServeError

#: Hard cap on one protocol line (64 MiB covers a ~30 Mbp chromosome
#: pair per request; beyond that, submit file paths instead).
MAX_LINE_BYTES = 64 * 1024 * 1024

#: accept() poll period while the server loop checks its stop flag.
ACCEPT_POLL_S = 0.2


def send_message(wfile, doc: dict) -> None:
    """Write one request/response line (flushes)."""
    line = json.dumps(doc, separators=(",", ":"))
    if len(line) + 1 > MAX_LINE_BYTES:
        raise ServeError(
            f"message of {len(line)} bytes exceeds the {MAX_LINE_BYTES}-byte "
            "line cap (submit sequence paths instead of inline sequences)")
    wfile.write((line + "\n").encode())
    wfile.flush()


def recv_message(rfile) -> dict | None:
    """Read one line; ``None`` on a clean EOF, :class:`ServeError` on junk."""
    line = rfile.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ServeError("protocol line exceeds the line cap")
    line = line.strip()
    if not line:
        return {}
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(f"malformed protocol line: {exc}") from None
    if not isinstance(doc, dict):
        raise ServeError("protocol line must be a JSON object")
    return doc


def error_response(message: str, *, code: int = 400) -> dict:
    return {"ok": False, "code": code, "error": message}


def connect(host: str, port: int, *, timeout_s: float = 30.0) -> socket.socket:
    """Open one client connection to a serve daemon."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout_s)
    except OSError as exc:
        raise ServeError(
            f"cannot reach mgsw serve at {host}:{port}: {exc}") from None
    sock.settimeout(timeout_s)
    return sock
