"""Digest-keyed LRU result cache: the millions-of-users hot path.

Popular comparisons repeat — the same two chromosomes, the same scoring
scheme — and an alignment's answer is a pure function of the inputs the
:meth:`~repro.serve.jobs.JobSpec.cache_key` digests (sequence content +
scoring + tier + dtype).  Serving a repeat from this cache costs one
dictionary lookup instead of a megabase matrix sweep, and is *provably*
the same answer: the engines are bit-identical across kernels, backends
and dtypes (the cross-engine differential suites), so a cached score is
indistinguishable from a recomputed one.

Entries are small (the result summary dict, never the sequences), the
map is LRU-bounded, and staleness is a non-issue: content-addressed
keys cannot go stale — a different input is a different key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..errors import ConfigError

#: Default entry bound; result summaries are ~200 bytes each.
DEFAULT_CACHE_ENTRIES = 1024


class ResultCache:
    """Thread-safe LRU map from cache key to result summary dict."""

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 0:
            raise ConfigError("max_entries must be non-negative")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, key: str) -> dict | None:
        """The cached result summary, or ``None`` (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return dict(entry)

    def put(self, key: str, result: dict) -> None:
        with self._lock:
            if self.max_entries == 0:
                return
            self._entries[key] = dict(result)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }
