"""`mgsw serve`: the long-lived alignment-as-a-service daemon.

One daemon = admission control + fair-share scheduling + digest-keyed
result caching in front of one or more persistent
:class:`~repro.multigpu.pool.WorkerPool` chains (INTERNALS.md
section 14).  The pieces and who owns what:

* a **TCP front door** (line JSON, :mod:`repro.serve.protocol`) served
  by a thread-per-connection stdlib server — `mgsw submit` / `mgsw
  jobs` speak it;
* the :class:`~repro.serve.jobs.JobQueue` admits or 429-rejects each
  submission and orders the backlog through the
  :class:`~repro.serve.scheduler.FairScheduler`;
* one **executor thread per pool** pops jobs and runs them via
  ``pool.align`` — each pool's worker processes, shm rings, engine
  metrics registry and timeline sampler are confined to its executor,
  so no cross-thread mutation touches the engine path;
* the :class:`~repro.serve.cache.ResultCache` answers repeats before
  they ever reach admission (a cache hit must not be 429-able);
* the obs stack surfaces everything live: the daemon-lifetime
  :class:`~repro.obs.events.EventJournal` carries both the job
  lifecycle (``job_submit``/``job_start``/``job_end``/...) and the
  engine lifecycle the pools emit (``run_start``/``worker_spawn``/...),
  the serve :class:`~repro.obs.registry.MetricsRegistry` exports
  job-labelled Prometheus series, and the
  :class:`~repro.obs.exporter.StatusServer` adds ``/jobs`` +
  ``/jobs/<id>`` routes next to ``/metrics`` and ``/status``.

Stale reads stay safe for the same reason they do everywhere else in
the telemetry stack: every HTTP render is a read of internally-locked
or append-only structures, so a scrape racing a state transition sees a
slightly old but internally consistent view, never a torn one.

Shutdown (:meth:`ServeDaemon.stop`) drains: admission closes, queued
jobs are cancelled, **running jobs finish**, then the pools close and
unlink their shared memory — a drained daemon leaks no shm segments.
"""

from __future__ import annotations

import socketserver
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from .. import seq
from ..errors import ConfigError, ReproError, ServeError
from ..multigpu.pool import WorkerPool
from ..obs.events import EventJournal
from ..obs.exporter import StatusServer
from ..obs.registry import MetricsRegistry
from ..obs.timeseries import TimeSeriesSampler
from ..seq.scoring import Scoring
from ..sw.backend import resolve_kernel
from ..sw.xdrop import DEFAULT_BAND_WIDTH, DEFAULT_XDROP_X
from .cache import DEFAULT_CACHE_ENTRIES, ResultCache
from .jobs import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_SHORT_CELLS,
    DEFAULT_TENANT_CAP,
    AdmissionError,
    JobQueue,
    JobRecord,
    JobSpec,
)
from .protocol import error_response, recv_message, send_message
from .scheduler import FairScheduler

#: Latency buckets for the serve histograms: sub-ms cache answers up to
#: multi-minute megabase runs.
LATENCY_BUCKETS = (
    1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 15.0, 60.0, 300.0,
)

#: Jobs one `/jobs` scrape returns (newest first).
JOBS_ROUTE_LIMIT = 100


@dataclass(frozen=True)
class ServeConfig:
    """Static daemon configuration (the `mgsw serve` flags)."""

    pools: int = 1                    #: concurrent WorkerPool chains
    workers: int = 2                  #: slab workers per pool
    max_block_rows: int = 2048
    capacity: int = 4
    transport: str = "shm"
    start_method: str | None = None
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    tenant_cap: int = DEFAULT_TENANT_CAP
    short_cells: int = DEFAULT_SHORT_CELLS
    cache_entries: int = DEFAULT_CACHE_ENTRIES
    short_weight: float = 4.0         #: short-lane picks per long-lane pick
    job_timeout_s: float = 300.0
    max_restarts: int = 0             #: per-job checkpoint recovery budget

    def __post_init__(self) -> None:
        if self.pools <= 0:
            raise ConfigError("pools must be positive")
        if self.workers <= 0:
            raise ConfigError("workers must be positive")
        if self.short_weight <= 0:
            raise ConfigError("short_weight must be positive")
        if self.job_timeout_s <= 0:
            raise ConfigError("job_timeout_s must be positive")


class ServeDaemon:
    """The alignment service (see module docstring).

    Parameters
    ----------
    config:
        Sizing and policy (:class:`ServeConfig`).
    host, port:
        TCP front door bind address (port 0 = ephemeral; read
        :attr:`port` after construction).
    status_port:
        HTTP status endpoint port (``None`` disables it; 0 = ephemeral).
    telemetry_dir:
        When given, the journal spills ``events.jsonl`` there.
    """

    def __init__(self, config: ServeConfig | None = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 status_port: int | None = 0,
                 telemetry_dir: str | Path | None = None) -> None:
        self.config = config if config is not None else ServeConfig()
        cfg = self.config
        self.run_id = uuid.uuid4().hex
        spill = (Path(telemetry_dir) / "events.jsonl"
                 if telemetry_dir is not None else None)
        self.journal = EventJournal(spill, run_id=self.run_id)
        self.registry = MetricsRegistry()    # serve-level, job-labelled
        self._mlock = threading.Lock()       # serialises registry writes
        self.cache = ResultCache(cfg.cache_entries)
        self.queue = JobQueue(
            max_depth=cfg.queue_depth, tenant_cap=cfg.tenant_cap,
            short_cells=cfg.short_cells,
            scheduler=FairScheduler(lane_weights={
                "short": cfg.short_weight, "long": 1.0}))
        self._started_mono = time.monotonic()
        self._stopped = False
        self._stop_lock = threading.Lock()
        self.shutdown_requested = threading.Event()

        # Pools + their thread-confined telemetry (one executor each).
        self.pools: list[WorkerPool | None] = []
        self._pool_registries: list[MetricsRegistry] = []
        self._samplers: list[TimeSeriesSampler] = []
        for _ in range(cfg.pools):
            self.pools.append(self._make_pool())
            self._pool_registries.append(MetricsRegistry())
            self._samplers.append(TimeSeriesSampler(
                registry=self._pool_registries[-1]))

        # HTTP status endpoint with the /jobs routes mounted.
        self.status: StatusServer | None = None
        if status_port is not None:
            self.status = StatusServer(
                registry=self.registry, sampler=self._samplers[0],
                journal=self.journal, port=status_port)
            self.status.register("/jobs", self._jobs_route)

        # TCP front door.
        daemon = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                while True:
                    try:
                        req = recv_message(self.rfile)
                    except ServeError as exc:
                        send_message(self.wfile, error_response(str(exc)))
                        return
                    if req is None:
                        return
                    try:
                        resp = daemon.handle_request(req)
                    except Exception as exc:  # pragma: no cover - defensive
                        resp = error_response(
                            f"internal error: {exc!r}", code=500)
                    try:
                        send_message(self.wfile, resp)
                    except OSError:
                        return

        class Server(socketserver.ThreadingTCPServer):
            daemon_threads = True
            allow_reuse_address = True

        try:
            self._tcp = Server((host, port), Handler)
        except OSError as exc:
            self._cleanup_partial()
            raise ServeError(
                f"cannot bind job listener on {host}:{port}: {exc}") from None
        self._tcp_thread: threading.Thread | None = None
        self._executors: list[threading.Thread] = []

    def _cleanup_partial(self) -> None:
        """Release what the constructor built before it failed."""
        for pool in self.pools:
            if pool is not None:
                try:
                    pool.close()
                except Exception:  # pragma: no cover - best effort
                    pass
        if self.status is not None:
            self.status.stop()

    def _make_pool(self) -> WorkerPool:
        cfg = self.config
        return WorkerPool(
            cfg.workers, max_block_rows=cfg.max_block_rows,
            capacity=cfg.capacity, transport=cfg.transport,
            start_method=cfg.start_method, events=self.journal)

    # -- lifecycle ------------------------------------------------------------
    @property
    def port(self) -> int:
        return self._tcp.server_address[1]

    @property
    def status_url(self) -> str | None:
        return self.status.url if self.status is not None else None

    def start(self) -> "ServeDaemon":
        if self._tcp_thread is not None:
            return self
        if self.status is not None:
            self.status.start()
        self._tcp_thread = threading.Thread(
            target=self._tcp.serve_forever, kwargs={"poll_interval": 0.1},
            name="mgsw-serve-tcp", daemon=True)
        self._tcp_thread.start()
        for i in range(len(self.pools)):
            t = threading.Thread(target=self._executor, args=(i,),
                                 name=f"mgsw-serve-exec{i}", daemon=True)
            t.start()
            self._executors.append(t)
        return self

    def stop(self, *, drain_timeout_s: float = 120.0) -> None:
        """Drain and shut down (idempotent).

        Ordering matters: (1) the TCP front door closes so no new work
        arrives; (2) admission closes and queued jobs are cancelled;
        (3) the executors finish whatever is *running* and exit;
        (4) the pools close, unlinking every shm segment; (5) the
        status server stops **before** the sampler/journal close so a
        late scrape never renders from closed sources.
        """
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
        if self._tcp_thread is not None:
            self._tcp.shutdown()
            self._tcp_thread.join(timeout=10.0)
            self._tcp_thread = None
        self._tcp.server_close()
        for record in self.queue.close(cancel_queued=True):
            self.journal.emit("job_end", job=record.id, status="cancelled",
                              tenant=record.spec.tenant, lane=record.lane)
            self._record_completion(record, "cancelled")
        for t in self._executors:
            t.join(timeout=drain_timeout_s)
        errors: list[str] = []
        for pool in self.pools:
            if pool is None:
                continue
            try:
                pool.close()
            except Exception as exc:
                errors.append(repr(exc))
        if self.status is not None:
            self.status.stop()
        for sampler in self._samplers:
            sampler.close()
        self.journal.close()
        if errors:
            raise ServeError("pool teardown errors: " + "; ".join(errors))

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def serve_until_shutdown(self, poll_s: float = 0.2) -> None:
        """Block until a ``shutdown`` request arrives, then drain (the
        `mgsw serve` main loop; KeyboardInterrupt also drains)."""
        self.start()
        try:
            while not self.shutdown_requested.wait(poll_s):
                pass
        finally:
            self.stop()

    # -- submission -----------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job (cache first, then admission control).

        Raises :class:`~repro.serve.jobs.AdmissionError` on refusal.
        """
        if spec.use_cache:
            key = spec.cache_key()
            cached = self.cache.get(key)
            if cached is not None:
                record = self.queue.admit_finished(
                    spec, cached=True, result=cached)
                self.journal.emit(
                    "job_cache_hit", job=record.id, tenant=spec.tenant,
                    lane=record.lane, cache_key=key[:16])
                with self._mlock:
                    self.registry.counter(
                        "serve_cache_hits",
                        help="jobs answered from the result cache",
                    ).inc(1, tenant=spec.tenant)
                    self._observe_completion_locked(record, "done")
                return record
            with self._mlock:
                self.registry.counter(
                    "serve_cache_misses",
                    help="submissions that missed the result cache",
                ).inc(1, tenant=spec.tenant)
        try:
            record = self.queue.submit(spec)
        except AdmissionError as exc:
            self.journal.emit("job_reject", tenant=spec.tenant,
                              code=exc.code, reason=exc.reason)
            with self._mlock:
                self.registry.counter(
                    "serve_jobs_rejected",
                    help="submissions refused by admission control",
                ).inc(1, tenant=spec.tenant, code=str(exc.code))
            raise
        self.journal.emit("job_submit", job=record.id, tenant=spec.tenant,
                          lane=record.lane, cells=spec.cells, mode=spec.mode)
        with self._mlock:
            self.registry.counter(
                "serve_jobs_submitted",
                help="jobs admitted into the queue",
            ).inc(1, tenant=spec.tenant, lane=record.lane)
            self._set_depth_gauges_locked()
        return record

    # -- execution ------------------------------------------------------------
    def _executor(self, idx: int) -> None:
        while True:
            record = self.queue.next_job(timeout=0.2)
            if record is None:
                if self.queue.closed:
                    return
                continue
            self._run_job(idx, record)

    def _run_job(self, idx: int, record: JobRecord) -> None:
        spec = record.spec
        self.journal.emit("job_start", job=record.id, tenant=spec.tenant,
                          lane=record.lane, pool=idx,
                          wait_s=round(record.wait_s, 6))
        with self._mlock:
            self.registry.gauge(
                "serve_jobs_running", help="jobs currently on a pool",
            ).set(len([1 for r in self.queue.jobs() if r.state == "running"]))
            self._set_depth_gauges_locked()
        cfg = self.config
        try:
            pool = self.pools[idx]
            if pool is None or pool.broken or pool.closed:
                pool = self._respawn_pool(idx)
            kernel = resolve_kernel(spec.kernel)
            res = pool.align(
                spec.a_codes, spec.b_codes, spec.scoring,
                block_rows=min(spec.block_rows, cfg.max_block_rows),
                timeout_s=cfg.job_timeout_s,
                kernel=kernel, pruning=spec.pruning,
                mode=spec.mode, band_width=spec.band_width,
                xdrop_x=spec.xdrop_x, dp_dtype=spec.dp_dtype,
                metrics=self._pool_registries[idx],
                timeline=self._samplers[idx],
                max_restarts=cfg.max_restarts)
            summary = {
                "score": int(res.score),
                "row": int(res.best.row),
                "col": int(res.best.col),
                "tier": res.tier,
                "mode": res.mode,
                "dp_dtype": res.dp_dtype,
                "wall_time_s": round(res.wall_time_s, 6),
                "gcups": round(res.gcups, 6),
                "restarts": res.restarts,
            }
            if spec.use_cache:
                self.cache.put(spec.cache_key(), summary)
            self.queue.finish(record, state="done", result=summary, pool=idx)
            self.journal.emit(
                "job_end", job=record.id, status="done",
                tenant=spec.tenant, lane=record.lane, pool=idx,
                score=summary["score"],
                run_s=round(record.run_s, 6))
            self._record_completion(record, "done")
        except Exception as exc:
            self.queue.finish(record, state="failed", error=repr(exc),
                              pool=idx)
            self.journal.emit("job_end", job=record.id, status="failed",
                              tenant=spec.tenant, lane=record.lane, pool=idx,
                              detail=repr(exc))
            self._record_completion(record, "failed")
            pool = self.pools[idx]
            if pool is not None and (pool.broken or pool.closed):
                try:
                    self._respawn_pool(idx)
                except Exception:   # pragma: no cover - respawn best effort
                    self.pools[idx] = None

    def _respawn_pool(self, idx: int) -> WorkerPool:
        """Replace a broken/closed pool so one bad job cannot take the
        daemon down (the old pool's teardown errors are swallowed — its
        shm is force-unlinked by close())."""
        old = self.pools[idx]
        self.pools[idx] = None
        if old is not None:
            try:
                old.close()
            except Exception:  # pragma: no cover - already broken
                pass
        pool = self._make_pool()
        self.pools[idx] = pool
        with self._mlock:
            self.registry.counter(
                "serve_pool_respawns",
                help="worker pools replaced after breaking",
            ).inc(1, pool=str(idx))
        return pool

    def _record_completion(self, record: JobRecord, status: str) -> None:
        with self._mlock:
            self._observe_completion_locked(record, status)

    def _observe_completion_locked(self, record: JobRecord,
                                   status: str) -> None:
        spec = record.spec
        self.registry.counter(
            "serve_jobs_completed",
            help="jobs reaching a terminal state",
        ).inc(1, tenant=spec.tenant, lane=record.lane, status=status,
              cached=str(record.cached).lower())
        wait = record.wait_s
        if wait is not None:
            self.registry.histogram(
                "serve_job_wait_s", help="queue residency per job",
                buckets=LATENCY_BUCKETS).observe(wait, lane=record.lane)
        total = wait if record.run_s is None else wait + record.run_s
        self.registry.histogram(
            "serve_job_latency_s",
            help="submit-to-finish latency per job",
            buckets=LATENCY_BUCKETS).observe(total, lane=record.lane)
        self._set_depth_gauges_locked()

    def _set_depth_gauges_locked(self) -> None:
        stats = self.queue.stats()
        gauge = self.registry.gauge(
            "serve_queue_depth", help="jobs waiting per lane")
        for lane, depth in stats["queued_by_lane"].items():
            gauge.set(depth, lane=lane)

    # -- HTTP /jobs route -----------------------------------------------------
    def _jobs_route(self, subpath: str | None):
        if subpath:
            record = self.queue.get(subpath)
            return record.to_json_dict() if record is not None else None
        return {
            "jobs": [r.to_json_dict() for r in self.queue.jobs(
                newest_first=True, limit=JOBS_ROUTE_LIMIT)],
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
        }

    # -- the wire API ---------------------------------------------------------
    def spec_from_request(self, req: dict) -> JobSpec:
        """Build a :class:`JobSpec` from one ``submit`` request dict."""

        def codes_for(side: str):
            inline = req.get(f"seq_{side}")
            path = req.get(f"path_{side}")
            if inline is not None:
                return seq.encode(inline)
            if path is not None:
                return seq.read_single(path).codes
            raise ServeError(f"submit needs seq_{side} or path_{side}")

        scoring = seq.DNA_DEFAULT
        if "scoring" in req:
            s = req["scoring"]
            scoring = Scoring(
                match=int(s.get("match", seq.DNA_DEFAULT.match)),
                mismatch=int(s.get("mismatch", seq.DNA_DEFAULT.mismatch)),
                gap_open=int(s.get("gap_open", seq.DNA_DEFAULT.gap_open)),
                gap_extend=int(
                    s.get("gap_extend", seq.DNA_DEFAULT.gap_extend)))
        return JobSpec(
            a_codes=codes_for("a"), b_codes=codes_for("b"), scoring=scoring,
            tenant=str(req.get("tenant", "default")),
            mode=str(req.get("mode", "exact")),
            band_width=int(req.get("band_width", DEFAULT_BAND_WIDTH)),
            xdrop_x=int(req.get("xdrop_x", DEFAULT_XDROP_X)),
            dp_dtype=str(req.get("dp_dtype", "auto")),
            kernel=str(req.get("kernel", "scalar")),
            block_rows=int(req.get("block_rows", 256)),
            pruning=bool(req.get("pruning", False)),
            use_cache=bool(req.get("use_cache", True)),
            lane_override=req.get("lane"))

    def handle_request(self, req: dict) -> dict:
        """Dispatch one protocol request (shared by TCP and tests)."""
        op = req.get("op")
        if op == "ping":
            from .. import __version__
            return {"ok": True, "server": "mgsw-serve",
                    "version": __version__, "run_id": self.run_id,
                    "uptime_s": round(
                        time.monotonic() - self._started_mono, 3)}
        if op == "submit":
            try:
                spec = self.spec_from_request(req)
            except (ReproError, ValueError, TypeError, OSError) as exc:
                return error_response(f"bad submit request: {exc}")
            try:
                record = self.submit(spec)
            except AdmissionError as exc:
                return error_response(exc.reason, code=exc.code)
            return {"ok": True, "job": record.to_json_dict()}
        if op in ("status", "wait"):
            job_id = req.get("id")
            if not isinstance(job_id, str):
                return error_response(f"{op} needs a job id")
            if op == "wait":
                timeout = req.get("timeout_s")
                record = self.queue.wait_for(
                    job_id,
                    timeout=float(timeout) if timeout is not None else None)
            else:
                record = self.queue.get(job_id)
            if record is None:
                return error_response(f"unknown job {job_id!r}", code=404)
            return {"ok": True, "job": record.to_json_dict()}
        if op == "jobs":
            limit = req.get("limit")
            records = self.queue.jobs(
                newest_first=True,
                limit=int(limit) if limit is not None else None)
            return {"ok": True, "jobs": [r.to_json_dict() for r in records]}
        if op == "stats":
            return {"ok": True,
                    "run_id": self.run_id,
                    "uptime_s": round(
                        time.monotonic() - self._started_mono, 3),
                    "queue": self.queue.stats(),
                    "cache": self.cache.stats(),
                    "pools": [
                        {"pool": i, "alive": p is not None and not p.broken
                         and not p.closed,
                         "workers": p.workers if p is not None else 0}
                        for i, p in enumerate(self.pools)],
                    "status_url": self.status_url}
        if op == "shutdown":
            self.shutdown_requested.set()
            return {"ok": True, "draining": True}
        return error_response(f"unknown op {op!r}")
