"""Alignment-as-a-service: the `mgsw serve` daemon and its client.

The serving layer (INTERNALS.md section 14) turns the persistent
:class:`~repro.multigpu.pool.WorkerPool` engine into a long-lived
multi-tenant service:

* :mod:`repro.serve.jobs` — job model, digest cache keys, and the
  admission-controlled :class:`JobQueue` (bounded depth, per-tenant
  caps, 429 semantics);
* :mod:`repro.serve.scheduler` — priority lanes + deficit-weighted
  round robin so short jobs are not starved behind megabase runs and no
  tenant monopolises the pools;
* :mod:`repro.serve.cache` — SHA-256 digest-keyed LRU result cache;
* :mod:`repro.serve.daemon` — the :class:`ServeDaemon` tying queue,
  scheduler, cache, pools and the obs stack together behind a
  line-JSON TCP endpoint;
* :mod:`repro.serve.client` — :class:`ServeClient`, the `mgsw submit` /
  `mgsw jobs` side of the wire.
"""

from .cache import DEFAULT_CACHE_ENTRIES, ResultCache
from .client import ServeClient
from .daemon import ServeConfig, ServeDaemon
from .jobs import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_SHORT_CELLS,
    DEFAULT_TENANT_CAP,
    AdmissionError,
    JobQueue,
    JobRecord,
    JobSpec,
)
from .scheduler import DEFAULT_LANE_WEIGHTS, LANES, FairScheduler, job_cost

__all__ = [
    "AdmissionError",
    "DEFAULT_CACHE_ENTRIES",
    "DEFAULT_LANE_WEIGHTS",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_SHORT_CELLS",
    "DEFAULT_TENANT_CAP",
    "FairScheduler",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "LANES",
    "ResultCache",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "job_cost",
]
