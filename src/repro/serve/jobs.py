"""Job model and admission-controlled queue for the serving layer.

One job = one alignment request: two encoded sequences plus the
alignment configuration (scoring, tier, dtype).  The :class:`JobQueue`
is the daemon's front door — it enforces **admission control** (a
bounded total queue depth and a per-tenant in-flight cap, refusing
excess work with 429 semantics instead of letting latency grow without
bound) and delegates *ordering* to the
:class:`~repro.serve.scheduler.FairScheduler` so a burst from one
tenant cannot monopolise the pools and short jobs are not starved
behind megabase runs (INTERNALS.md section 14).

The cache key (:meth:`JobSpec.cache_key`) is derived from the
manifest-style SHA-256 content digests of both sequences plus every
config field that names the comparison — scoring parameters, tier
(``mode`` + its band/X-drop knobs) and ``dp_dtype`` — so two submissions
of the same popular comparison collapse onto one computed result
whatever file paths or tenants they came from.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConfigError, ServeError
from ..seq.scoring import Scoring
from ..sw.constants import validate_dp_dtype
from ..sw.xdrop import DEFAULT_BAND_WIDTH, DEFAULT_XDROP_X, validate_mode
from .scheduler import LANES, FairScheduler

#: Job lifecycle states (a record only ever moves left to right).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Below this many *effective* cells a job rides the short (priority)
#: lane — about a 2k x 2k exact comparison, or any banded/X-drop job
#: whose band area stays small.
DEFAULT_SHORT_CELLS = 4_000_000

#: Admission defaults: total queued jobs, and queued+running per tenant.
DEFAULT_QUEUE_DEPTH = 64
DEFAULT_TENANT_CAP = 16


class AdmissionError(ServeError):
    """A job was refused at the front door (HTTP-style ``code`` 429)."""

    def __init__(self, reason: str, *, code: int = 429) -> None:
        super().__init__(reason)
        self.code = code
        self.reason = reason


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to run (and cache) one alignment job."""

    a_codes: np.ndarray
    b_codes: np.ndarray
    scoring: Scoring
    tenant: str = "default"
    mode: str = "exact"
    band_width: int = DEFAULT_BAND_WIDTH
    xdrop_x: int = DEFAULT_XDROP_X
    dp_dtype: str = "auto"
    kernel: str = "scalar"
    block_rows: int = 256
    pruning: bool = False
    use_cache: bool = True
    lane_override: str | None = None   #: force a lane ("short"/"long")

    def __post_init__(self) -> None:
        validate_mode(self.mode)
        validate_dp_dtype(self.dp_dtype)
        if self.a_codes.size == 0 or self.b_codes.size == 0:
            raise ConfigError("sequences must be non-empty")
        if not self.tenant:
            raise ConfigError("tenant must be a non-empty string")
        if self.lane_override is not None and self.lane_override not in LANES:
            raise ConfigError(
                f"unknown lane {self.lane_override!r}; expected one of {LANES}")

    @property
    def cells(self) -> int:
        """Full matrix area (the exact-tier cost)."""
        return int(self.a_codes.size) * int(self.b_codes.size)

    @property
    def effective_cells(self) -> int:
        """Cost estimate the scheduler classifies and weighs by.

        The banded tier only sweeps the static band, X-drop typically
        terminates after a small extension — so a heuristic-tier job
        over a megabase pair is still *short* work, and must ride the
        short lane (the whole point of the priority lanes).
        """
        m, n = int(self.a_codes.size), int(self.b_codes.size)
        if self.mode == "banded" or self.mode == "auto":
            return m * min(n, 2 * self.band_width + 1)
        if self.mode == "xdrop":
            return min(m, n) * (2 * self.xdrop_x + 1)
        return m * n

    def lane(self, short_cells: int = DEFAULT_SHORT_CELLS) -> str:
        if self.lane_override is not None:
            return self.lane_override
        return "short" if self.effective_cells <= short_cells else "long"

    def cache_key(self) -> str:
        """Digest-keyed identity of the comparison (hex SHA-256).

        Sequence *content* digests (not paths) + the scoring scheme +
        the tier config + ``dp_dtype``.  ``kernel``/``block_rows``/
        ``pruning`` are deliberately excluded: they are proven
        bit-identical execution strategies (INTERNALS.md sections 6, 7,
        11), not answer-changing configuration.
        """
        h = hashlib.sha256()
        for codes in (self.a_codes, self.b_codes):
            arr = np.ascontiguousarray(codes)
            h.update(str(arr.size).encode())
            h.update(hashlib.sha256(arr.tobytes()).digest())
        s = self.scoring
        config = (f"match={s.match},mismatch={s.mismatch},"
                  f"gap_open={s.gap_open},gap_extend={s.gap_extend},"
                  f"mode={self.mode},dp_dtype={self.dp_dtype}")
        if self.mode in ("banded", "auto"):
            config += f",band_width={self.band_width}"
        if self.mode == "xdrop":
            config += f",xdrop_x={self.xdrop_x}"
        h.update(config.encode())
        return h.hexdigest()


@dataclass
class JobRecord:
    """One job's mutable lifecycle state (owned by the queue's lock)."""

    id: str
    spec: JobSpec
    lane: str
    state: str = "queued"
    cached: bool = False
    submitted_unix: float = field(default_factory=time.time)
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: float | None = None
    finished_mono: float | None = None
    result: dict | None = None
    error: str | None = None
    pool: int | None = None

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    @property
    def wait_s(self) -> float | None:
        """Queue residency (submit -> dispatch; submit -> now if queued)."""
        end = self.started_mono
        if end is None:
            end = (self.finished_mono if self.finished
                   else time.monotonic())
        return max(0.0, end - self.submitted_mono)

    @property
    def run_s(self) -> float | None:
        if self.started_mono is None:
            return None
        end = (self.finished_mono if self.finished_mono is not None
               else time.monotonic())
        return max(0.0, end - self.started_mono)

    def to_json_dict(self) -> dict:
        """The wire/HTTP view of the job (sequences elided, digest kept)."""
        doc = {
            "id": self.id,
            "tenant": self.spec.tenant,
            "lane": self.lane,
            "state": self.state,
            "cached": self.cached,
            "mode": self.spec.mode,
            "cells": self.spec.cells,
            "rows": int(self.spec.a_codes.size),
            "cols": int(self.spec.b_codes.size),
            "cache_key": self.spec.cache_key()[:16],
            "submitted_unix": round(self.submitted_unix, 6),
            "wait_s": round(self.wait_s, 6),
        }
        if self.run_s is not None:
            doc["run_s"] = round(self.run_s, 6)
        if self.pool is not None:
            doc["pool"] = self.pool
        if self.result is not None:
            doc["result"] = self.result
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobQueue:
    """Admission-controlled, fair-share-ordered job queue (thread-safe).

    Parameters
    ----------
    max_depth:
        Most jobs allowed in the *queued* state across all tenants;
        submissions beyond it raise :class:`AdmissionError` (429) — the
        backpressure contract that keeps worst-case queueing delay
        bounded.
    tenant_cap:
        Most queued+running jobs any one tenant may hold in flight.
    short_cells:
        Lane classification threshold (see :meth:`JobSpec.lane`).
    scheduler:
        Ordering policy; defaults to a fresh
        :class:`~repro.serve.scheduler.FairScheduler`.
    """

    def __init__(self, *, max_depth: int = DEFAULT_QUEUE_DEPTH,
                 tenant_cap: int = DEFAULT_TENANT_CAP,
                 short_cells: int = DEFAULT_SHORT_CELLS,
                 scheduler: FairScheduler | None = None) -> None:
        if max_depth <= 0:
            raise ConfigError("max_depth must be positive")
        if tenant_cap <= 0:
            raise ConfigError("tenant_cap must be positive")
        self.max_depth = max_depth
        self.tenant_cap = tenant_cap
        self.short_cells = short_cells
        self._sched = scheduler if scheduler is not None else FairScheduler()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._records: dict[str, JobRecord] = {}
        self._order: list[str] = []          # submission order, for listings
        self._running: set[str] = set()
        self._in_flight: dict[str, int] = {}  # tenant -> queued + running
        self._ids = itertools.count(1)
        self._closed = False

    # -- admission ------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job or raise :class:`AdmissionError` (atomic)."""
        with self._cond:
            if self._closed:
                raise AdmissionError("queue is closed (draining)", code=503)
            if len(self._sched) >= self.max_depth:
                raise AdmissionError(
                    f"queue full ({self.max_depth} jobs queued)")
            if self._in_flight.get(spec.tenant, 0) >= self.tenant_cap:
                raise AdmissionError(
                    f"tenant {spec.tenant!r} at its in-flight cap "
                    f"({self.tenant_cap})")
            record = JobRecord(
                id=f"job-{next(self._ids):06d}", spec=spec,
                lane=spec.lane(self.short_cells))
            self._records[record.id] = record
            self._order.append(record.id)
            self._in_flight[spec.tenant] = \
                self._in_flight.get(spec.tenant, 0) + 1
            self._sched.push(record)
            self._cond.notify()
            return record

    def admit_finished(self, spec: JobSpec, *, state: str = "done",
                       cached: bool = False, result: dict | None = None,
                       error: str | None = None) -> JobRecord:
        """Register a job that never runs (cache hit): listed and
        queryable like any other, but bypassing admission limits — a
        cached answer consumes no pool capacity, so it must not be
        429-able either."""
        with self._cond:
            record = JobRecord(
                id=f"job-{next(self._ids):06d}", spec=spec,
                lane=spec.lane(self.short_cells), state=state, cached=cached,
                result=result, error=error)
            record.finished_mono = record.submitted_mono
            self._records[record.id] = record
            self._order.append(record.id)
            self._cond.notify_all()
            return record

    # -- the executor side ----------------------------------------------------
    def next_job(self, timeout: float | None = None) -> JobRecord | None:
        """Pop the next job per the fair-share policy and mark it running.

        Blocks up to *timeout* seconds (forever when ``None``) and
        returns ``None`` on timeout or when the queue is closed and
        drained — the executor's signal to exit.
        """
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        with self._cond:
            while True:
                record = self._sched.pop()
                if record is not None:
                    record.state = "running"
                    record.started_mono = time.monotonic()
                    self._running.add(record.id)
                    return record
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)

    def finish(self, record: JobRecord, *, state: str,
               result: dict | None = None, error: str | None = None,
               pool: int | None = None) -> None:
        """Move a running job to a terminal state and release its slots."""
        if state not in ("done", "failed"):
            raise ConfigError(f"finish() takes done/failed, got {state!r}")
        with self._cond:
            record.state = state
            record.result = result
            record.error = error
            record.pool = pool
            record.finished_mono = time.monotonic()
            self._running.discard(record.id)
            self._release_tenant(record.spec.tenant)
            self._cond.notify_all()

    def _release_tenant(self, tenant: str) -> None:
        left = self._in_flight.get(tenant, 0) - 1
        if left > 0:
            self._in_flight[tenant] = left
        else:
            self._in_flight.pop(tenant, None)

    # -- shutdown -------------------------------------------------------------
    def close(self, *, cancel_queued: bool = True) -> list[JobRecord]:
        """Refuse new work; optionally cancel everything still queued.

        Running jobs are untouched — the daemon drains them.  Returns
        the records cancelled here.
        """
        with self._cond:
            self._closed = True
            cancelled: list[JobRecord] = []
            if cancel_queued:
                for record in self._sched.drain():
                    record.state = "cancelled"
                    record.finished_mono = time.monotonic()
                    self._release_tenant(record.spec.tenant)
                    cancelled.append(record)
            self._cond.notify_all()
            return cancelled

    @property
    def closed(self) -> bool:
        return self._closed

    # -- queries --------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def wait_for(self, job_id: str, timeout: float | None = None,
                 *, predicate: Callable[[JobRecord], bool] | None = None
                 ) -> JobRecord | None:
        """Block until the job reaches a terminal state (or *predicate*)."""
        done = predicate if predicate is not None else \
            (lambda r: r.finished)
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        with self._cond:
            while True:
                record = self._records.get(job_id)
                if record is None:
                    return None
                if done(record):
                    return record
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return record
                    self._cond.wait(remaining)

    def jobs(self, *, newest_first: bool = False,
             limit: int | None = None) -> list[JobRecord]:
        with self._lock:
            ids = self._order[::-1] if newest_first else list(self._order)
            records = [self._records[i] for i in ids]
        return records[:limit] if limit is not None else records

    def stats(self) -> dict:
        with self._lock:
            return {
                "queued": len(self._sched),
                "queued_by_lane": {ln: self._sched.depth(ln) for ln in LANES},
                "running": len(self._running),
                "total": len(self._records),
                "in_flight_by_tenant": dict(self._in_flight),
                "max_depth": self.max_depth,
                "tenant_cap": self.tenant_cap,
                "closed": self._closed,
            }
