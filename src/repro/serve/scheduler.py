"""Fair-share job ordering: priority lanes + deficit round robin.

Two cooperating mechanisms decide which queued job runs next
(INTERNALS.md section 14):

* **Priority lanes** — jobs are classified ``short`` or ``long`` by
  estimated cost (:meth:`~repro.serve.jobs.JobSpec.effective_cells`).
  The lanes are interleaved by smooth weighted round robin over lane
  *credits*: each pick adds every non-empty lane's weight to its credit,
  the highest-credit lane wins and pays the summed active weight.  With
  the default 4:1 weights a backlog of short jobs yields to the long
  lane every fifth pick and vice versa — **neither lane can starve the
  other** as long as both have work, which is the whole scheduling
  contract: interactive banded/X-drop traffic keeps flowing under a
  megabase exact run, and the megabase run keeps making progress under
  an interactive flood.

* **Deficit-weighted round robin (DRR) across tenants** inside each
  lane — every tenant accumulates a per-round quantum of cost credit
  and may release its head-of-line job once the credit covers the job's
  cost.  Cheap-job tenants therefore get more *jobs* through, but every
  tenant gets the same share of *cost units*, so one tenant's burst
  cannot monopolise a lane.

The scheduler is a pure data structure — no locks, no threads; the
:class:`~repro.serve.jobs.JobQueue` serialises access — which keeps the
policy deterministic and unit-testable.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .jobs import JobRecord

#: The two priority lanes, in display order.
LANES = ("short", "long")

#: Default lane weights: 4 short picks per long pick when both are busy.
DEFAULT_LANE_WEIGHTS = {"short": 4.0, "long": 1.0}

#: One DRR cost unit per million effective cells, clamped to [1, 64] so
#: a single megabase job cannot force thousands of bookkeeping rounds
#: (beyond ~64 units relative cost no longer changes who goes next in a
#: meaningful way).
COST_UNIT_CELLS = 1_000_000
MAX_COST_UNITS = 64.0


def job_cost(record: "JobRecord") -> float:
    """DRR cost units charged for one job."""
    units = record.spec.effective_cells / COST_UNIT_CELLS
    return max(1.0, min(units, MAX_COST_UNITS))


class _DrrLane:
    """One lane: per-tenant FIFOs drained by deficit round robin."""

    def __init__(self, quantum: float = 1.0) -> None:
        self.quantum = quantum
        self._queues: dict[str, deque] = {}
        self._order: list[str] = []          # active tenants, RR order
        self._deficit: dict[str, float] = {}
        self._next = 0                       # RR pointer into _order
        self._depth = 0

    def __len__(self) -> int:
        return self._depth

    def push(self, record: "JobRecord") -> None:
        tenant = record.spec.tenant
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        if not q and tenant not in self._deficit:
            # (Re-)activating tenant: join the rotation with zero credit
            # — an idle tenant must not bank credit while away.
            self._order.append(tenant)
            self._deficit[tenant] = 0.0
        q.append(record)
        self._depth += 1

    def pop(self) -> "JobRecord | None":
        if self._depth == 0:
            return None
        # Terminates: every full rotation adds `quantum` to each active
        # tenant's deficit, and job costs are capped (MAX_COST_UNITS).
        while True:
            if self._next >= len(self._order):
                self._next = 0
            tenant = self._order[self._next]
            self._deficit[tenant] += self.quantum
            q = self._queues[tenant]
            if q and job_cost(q[0]) <= self._deficit[tenant]:
                record = q.popleft()
                self._depth -= 1
                self._deficit[tenant] -= job_cost(record)
                if not q:
                    # Retire the tenant: drop banked credit so a later
                    # burst starts from parity with everyone else.
                    self._order.pop(self._next)
                    del self._deficit[tenant]
                    del self._queues[tenant]
                else:
                    self._next += 1
                return record
            if not q:
                self._order.pop(self._next)
                del self._deficit[tenant]
                del self._queues[tenant]
            else:
                self._next += 1

    def drain(self) -> list:
        out = [rec for t in self._order for rec in self._queues[t]]
        self._queues.clear()
        self._order.clear()
        self._deficit.clear()
        self._next = 0
        self._depth = 0
        return out


class FairScheduler:
    """Two priority lanes of per-tenant DRR queues (see module docs)."""

    def __init__(self, *, lane_weights: dict[str, float] | None = None,
                 quantum: float = 1.0) -> None:
        weights = dict(DEFAULT_LANE_WEIGHTS if lane_weights is None
                       else lane_weights)
        if set(weights) != set(LANES):
            raise ConfigError(f"lane_weights must cover exactly {LANES}")
        if any(w <= 0 for w in weights.values()):
            raise ConfigError("lane weights must be positive")
        if quantum <= 0:
            raise ConfigError("quantum must be positive")
        self.lane_weights = weights
        self._lanes = {name: _DrrLane(quantum) for name in LANES}
        self._credit = {name: 0.0 for name in LANES}

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def depth(self, lane: str) -> int:
        return len(self._lanes[lane])

    def push(self, record: "JobRecord") -> None:
        if record.lane not in self._lanes:
            raise ConfigError(f"unknown lane {record.lane!r}")
        if len(self._lanes[record.lane]) == 0:
            # Lane going idle->busy: forget stale credit (same argument
            # as the per-tenant deficit reset).
            self._credit[record.lane] = 0.0
        self._lanes[record.lane].push(record)

    def pop(self) -> "JobRecord | None":
        active = [name for name in LANES if len(self._lanes[name])]
        if not active:
            return None
        if len(active) == 1:
            return self._lanes[active[0]].pop()
        for name in active:
            self._credit[name] += self.lane_weights[name]
        # Highest credit wins; tie goes to the long lane (the one a
        # naive scheduler starves).
        chosen = max(active,
                     key=lambda n: (self._credit[n], n == "long"))
        self._credit[chosen] -= sum(self.lane_weights[n] for n in active)
        return self._lanes[chosen].pop()

    def drain(self) -> list:
        out = []
        for lane in self._lanes.values():
            out.extend(lane.drain())
        self._credit = {name: 0.0 for name in LANES}
        return out
