"""Client side of the serve protocol: what `mgsw submit` / `mgsw jobs` use.

A :class:`ServeClient` holds one TCP connection to a running daemon and
issues request/response exchanges over it
(:mod:`repro.serve.protocol`).  The connection is cheap to open, so the
CLI opens one per invocation; long-lived callers can keep one around —
exchanges are serialised per client by a lock, matching the one-line-
in / one-line-out framing.
"""

from __future__ import annotations

import threading

from ..errors import ServeError
from .protocol import connect, recv_message, send_message

DEFAULT_HOST = "127.0.0.1"


class ServeClient:
    """One connection to a serve daemon (context-manager friendly)."""

    def __init__(self, host: str = DEFAULT_HOST, port: int = 0, *,
                 timeout_s: float = 600.0) -> None:
        if not 0 < port <= 65535:
            raise ServeError(f"daemon port {port} outside (0, 65535]")
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._sock = connect(host, port, timeout_s=timeout_s)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def close(self) -> None:
        for closer in (self._rfile.close, self._wfile.close,
                       self._sock.close):
            try:
                closer()
            except OSError:  # pragma: no cover - teardown best effort
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the raw exchange -----------------------------------------------------
    def request(self, doc: dict) -> dict:
        """One request/response exchange; raises on transport failure.

        Application-level refusals (429/404/...) come back as the
        response dict with ``ok: false`` — the caller decides whether
        that is an error (:meth:`check` raises for it).
        """
        with self._lock:
            try:
                send_message(self._wfile, doc)
                resp = recv_message(self._rfile)
            except OSError as exc:
                raise ServeError(
                    f"lost connection to mgsw serve at "
                    f"{self.host}:{self.port}: {exc}") from None
        if resp is None:
            raise ServeError("daemon closed the connection mid-exchange")
        return resp

    @staticmethod
    def check(resp: dict) -> dict:
        """Raise :class:`ServeError` on an ``ok: false`` response."""
        if not resp.get("ok"):
            code = resp.get("code", 0)
            raise ServeError(
                f"daemon refused the request ({code}): "
                f"{resp.get('error', 'no detail')}")
        return resp

    # -- typed helpers --------------------------------------------------------
    def ping(self) -> dict:
        return self.check(self.request({"op": "ping"}))

    def submit(self, **fields) -> dict:
        """Submit one job; returns the raw response (may be a refusal).

        Fields mirror the wire schema: ``seq_a``/``seq_b`` inline
        strings or ``path_a``/``path_b`` FASTA paths, plus ``tenant``,
        ``mode``, ``scoring`` (dict), ``kernel``, ``dp_dtype``,
        ``band_width``, ``xdrop_x``, ``use_cache``, ``lane``...
        """
        return self.request({"op": "submit", **fields})

    def status(self, job_id: str) -> dict:
        return self.request({"op": "status", "id": job_id})

    def wait(self, job_id: str, *, timeout_s: float | None = None) -> dict:
        req: dict = {"op": "wait", "id": job_id}
        if timeout_s is not None:
            req["timeout_s"] = timeout_s
        return self.request(req)

    def jobs(self, *, limit: int | None = None) -> dict:
        req: dict = {"op": "jobs"}
        if limit is not None:
            req["limit"] = limit
        return self.request(req)

    def stats(self) -> dict:
        return self.check(self.request({"op": "stats"}))

    def shutdown(self) -> dict:
        return self.check(self.request({"op": "shutdown"}))
