"""Special-row storage with a memory budget and disk spilling.

Stage 1 over megabase sequences produces special rows totalling gigabytes
(two int32 vectors of matrix width every ``interval`` rows).  The real
system writes them to disk as it goes and reads them back during the
traceback stages.  :class:`BudgetedRowStore` reproduces that behaviour:
rows are kept in memory up to ``max_memory_bytes`` and transparently
spilled to a directory beyond that, with access-order retrieval and
explicit lifetime management (:meth:`close` removes the spill files).

It is a drop-in provider of the mapping interface
:class:`~repro.sw.stages.SpecialRowStore` exposes (``rows[r]`` →
``(H, F)``), so the traceback stages work unchanged against either.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass
class StoreStats:
    """Accounting for one store: what stayed in RAM, what spilled."""

    rows_in_memory: int = 0
    rows_spilled: int = 0
    bytes_in_memory: int = 0
    bytes_spilled: int = 0
    spill_reads: int = 0


class BudgetedRowStore:
    """Special rows under a memory budget (see module docstring).

    Not thread-safe (neither is the sweep that feeds it).  Use as a
    context manager, or call :meth:`close` to remove spill files.
    """

    def __init__(
        self,
        interval: int,
        *,
        max_memory_bytes: int = 256 * 1024 * 1024,
        spill_dir: str | None = None,
    ) -> None:
        if interval <= 0:
            raise ConfigError("interval must be positive")
        if max_memory_bytes < 0:
            raise ConfigError("max_memory_bytes must be >= 0")
        self.interval = interval
        self.max_memory_bytes = max_memory_bytes
        self._mem: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._spilled: dict[int, str] = {}
        self._dir_owned = spill_dir is None
        self._dir = spill_dir or tempfile.mkdtemp(prefix="repro-rows-")
        self.stats = StoreStats()
        self._closed = False

    # -- write path ----------------------------------------------------------
    def store(self, row: int, h: np.ndarray, f: np.ndarray) -> None:
        """Record one special row; spills when the budget is exceeded."""
        if self._closed:
            raise ConfigError("store is closed")
        nbytes = h.nbytes + f.nbytes
        if self.stats.bytes_in_memory + nbytes <= self.max_memory_bytes:
            self._mem[row] = (h.copy(), f.copy())
            self.stats.rows_in_memory += 1
            self.stats.bytes_in_memory += nbytes
        else:
            path = os.path.join(self._dir, f"row-{row}.npz")
            np.savez(path, h=h, f=f)
            self._spilled[row] = path
            self.stats.rows_spilled += 1
            self.stats.bytes_spilled += nbytes

    # -- read path -------------------------------------------------------------
    def load(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """Fetch one special row (from RAM or disk)."""
        if row in self._mem:
            return self._mem[row]
        if row in self._spilled:
            self.stats.spill_reads += 1
            with np.load(self._spilled[row]) as data:
                return data["h"].copy(), data["f"].copy()
        raise KeyError(row)

    def row_indices(self) -> list[int]:
        return sorted(set(self._mem) | set(self._spilled))

    def __contains__(self, row: int) -> bool:
        return row in self._mem or row in self._spilled

    def __getitem__(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        return self.load(row)

    @property
    def bytes_stored(self) -> int:
        return self.stats.bytes_in_memory + self.stats.bytes_spilled

    # -- the SpecialRowStore facade used by stages.find_crossings ---------------
    @property
    def rows(self) -> "BudgetedRowStore":
        """Self-view exposing ``store.rows[r]`` like the in-memory store."""
        return self

    # -- lifetime -----------------------------------------------------------------
    def close(self) -> None:
        """Delete spill files (and the directory if this store made it)."""
        if self._closed:
            return
        self._closed = True
        for path in self._spilled.values():
            try:
                os.unlink(path)
            except OSError:
                pass
        if self._dir_owned:
            try:
                os.rmdir(self._dir)
            except OSError:
                pass
        self._spilled.clear()
        self._mem.clear()

    def __enter__(self) -> "BudgetedRowStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass
