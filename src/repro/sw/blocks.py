"""Block decomposition of the DP matrix and the blocked executor.

The paper's GPUs compute the huge SW matrix as a grid of rectangular
blocks processed in wavefront order; neighbouring blocks exchange border
vectors (bottom row downwards, right column rightwards).  This module
provides the grid geometry, the per-block compute wrapper around
:func:`repro.sw.kernel.sweep_block`, and a single-device blocked executor
that the CPU baseline and the tests use.  The multi-GPU engine in
:mod:`repro.multigpu` reuses the same block contract but distributes block
columns over devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import ConfigError
from ..seq.scoring import Scoring
from .batched import BlockJob, KernelWorkspace, sweep_wavefront, validate_kernel
from .compiled import sweep_block_compiled
from .constants import DTYPE, NEG_INF, DpPolicy, resolve_dp_dtype
from .kernel import BestCell, BlockResult, build_profile, sweep_block
from .pruning import BlockPruner
from .xdrop import band_intersects


@dataclass(frozen=True)
class BlockSpec:
    """One block: rows ``[row0, row1)`` x cols ``[col0, col1)`` (global)."""

    row0: int
    row1: int
    col0: int
    col1: int

    def __post_init__(self) -> None:
        if not (0 <= self.row0 < self.row1 and 0 <= self.col0 < self.col1):
            raise ConfigError(f"degenerate block {self!r}")

    @property
    def rows(self) -> int:
        return self.row1 - self.row0

    @property
    def cols(self) -> int:
        return self.col1 - self.col0

    @property
    def cells(self) -> int:
        return self.rows * self.cols


def grid_specs(m: int, n: int, block_rows: int, block_cols: int) -> list[list[BlockSpec]]:
    """Partition an ``m x n`` matrix into a grid of blocks.

    Returns ``specs[br][bc]``; edge blocks absorb the remainder (they are
    smaller, never larger, than the nominal size).
    """
    if m <= 0 or n <= 0:
        raise ConfigError("matrix dimensions must be positive")
    if block_rows <= 0 or block_cols <= 0:
        raise ConfigError("block dimensions must be positive")
    row_edges = list(range(0, m, block_rows)) + [m]
    col_edges = list(range(0, n, block_cols)) + [n]
    return [
        [BlockSpec(r0, r1, c0, c1) for c0, c1 in zip(col_edges, col_edges[1:])]
        for r0, r1 in zip(row_edges, row_edges[1:])
    ]


def wavefront_order(n_block_rows: int, n_block_cols: int) -> Iterator[list[tuple[int, int]]]:
    """Yield anti-diagonals of block indices: every block in one yielded
    list depends only on blocks of earlier lists (the external diagonals
    of the paper's wavefront)."""
    for d in range(n_block_rows + n_block_cols - 1):
        diag = [
            (br, d - br)
            for br in range(max(0, d - n_block_cols + 1), min(n_block_rows, d + 1))
        ]
        yield diag


@dataclass
class BlockBoundaries:
    """Input boundaries of one block (global coordinates irrelevant here)."""

    h_top: np.ndarray
    f_top: np.ndarray
    h_left: np.ndarray
    e_left: np.ndarray
    h_diag: int


def origin_boundaries(spec: BlockSpec, *, local: bool, scoring: Scoring) -> BlockBoundaries:
    """Boundaries for blocks touching the matrix's top/left edge."""
    if local:
        h_top = np.zeros(spec.cols, dtype=DTYPE)
        h_left = np.zeros(spec.rows, dtype=DTYPE)
        h_diag = 0
    else:
        j = np.arange(spec.col0 + 1, spec.col1 + 1, dtype=DTYPE)
        i = np.arange(spec.row0 + 1, spec.row1 + 1, dtype=DTYPE)
        h_top = (-scoring.gap_open - j * scoring.gap_extend).astype(DTYPE)
        h_left = (-scoring.gap_open - i * scoring.gap_extend).astype(DTYPE)
        if spec.row0 == 0 and spec.col0 == 0:
            h_diag = 0
        elif spec.row0 == 0:
            h_diag = -scoring.gap_open - spec.col0 * scoring.gap_extend
        else:
            h_diag = -scoring.gap_open - spec.row0 * scoring.gap_extend
    f_top = np.full(spec.cols, NEG_INF, dtype=DTYPE)
    e_left = np.full(spec.rows, NEG_INF, dtype=DTYPE)
    return BlockBoundaries(h_top, f_top, h_left, e_left, h_diag)


def pruned_border_result(spec: BlockSpec) -> BlockResult:
    """Borders emitted for a pruned block (local mode only).

    ``H = 0`` is a legal lower bound of every true local-mode cell, and the
    pruning criterion guarantees the optimal path does not cross the block,
    so downstream scores computed from these borders never exceed the true
    optimum and the reported best score is exact.
    """
    return BlockResult(
        h_bottom=np.zeros(spec.cols, dtype=DTYPE),
        f_bottom=np.full(spec.cols, NEG_INF, dtype=DTYPE),
        h_right=np.zeros(spec.rows, dtype=DTYPE),
        e_right=np.full(spec.rows, NEG_INF, dtype=DTYPE),
        corner=0,
        best=BestCell.none(),
    )


@dataclass
class BlockedOutcome:
    """Result of a blocked single-device run."""

    best: BestCell
    blocks_total: int
    blocks_pruned: int
    cells_total: int
    cells_pruned: int
    #: Blocks/cells skipped because they miss the static diagonal band
    #: (``band_half_width``); disjoint from the pruning counters.
    blocks_skipped_band: int = 0
    cells_skipped_band: int = 0
    #: DP dtype policy the run resolved to, plus how many swept blocks
    #: actually computed narrow vs. wide (escalations + entry rejects);
    #: all zero under the plain int32 policy.
    dp_dtype: str = "int32"
    blocks_narrow: int = 0
    blocks_wide: int = 0
    dtype_escalations: int = 0

    @property
    def pruned_fraction(self) -> float:
        return self.cells_pruned / self.cells_total if self.cells_total else 0.0


def _edge_diag(spec: BlockSpec, *, local: bool, scoring: Scoring) -> int:
    """``h_diag`` for a block touching the top or left matrix edge when
    the *other* boundary comes from a computed neighbour."""
    if local:
        return 0
    offset = spec.col0 if spec.row0 == 0 else spec.row0
    return -scoring.gap_open - offset * scoring.gap_extend


def compute_blocked(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    block_rows: int = 512,
    block_cols: int = 512,
    local: bool = True,
    pruner: BlockPruner | None = None,
    kernel: str = "scalar",
    workspace: KernelWorkspace | None = None,
    band_half_width: int | None = None,
    dp_dtype: str | DpPolicy = "auto",
) -> BlockedOutcome:
    """Compute the whole matrix block-by-block on one device.

    Produces exactly the same best cell as a monolithic
    :func:`repro.sw.kernel.sw_score` sweep (tested cell-exactly); with a
    *pruner* (local mode only), blocks that provably cannot influence the
    optimum are skipped and replaced by :func:`pruned_border_result`.

    ``kernel="scalar"`` sweeps blocks one at a time in row-major order;
    ``kernel="batched"`` walks the grid in wavefront order and executes
    every surviving block of an anti-diagonal in one stacked
    :func:`~repro.sw.batched.sweep_wavefront` call (same scores, end
    points, and borders — pruning *decisions* may differ because the
    batched schedule sees best-so-far updates one diagonal later).  A
    caller-supplied *workspace* lets repeated batched runs share scratch.
    ``kernel="compiled"`` runs the scalar schedule with the jitted fused
    sweep (:func:`~repro.sw.compiled.sweep_block_compiled`) per block —
    identical pruning decisions to scalar, JIT speed (or the pure-NumPy
    Kogge–Stone oracle where numba is absent).

    With *band_half_width* (local mode only), blocks that do not intersect
    the static band ``|j - i| <= band_half_width`` are skipped outright —
    before the pruner even looks at them — and emit the same restart
    borders as pruned blocks (H = 0 lower bounds, so in-band scores are
    never overestimated).  The result is then the *banded* best, a lower
    bound of the unrestricted optimum.

    ``dp_dtype`` selects the kernels' internal compute dtype (``"auto"``,
    a name from :data:`~repro.sw.constants.DP_DTYPE_CHOICES`, or a
    pre-resolved :class:`~repro.sw.constants.DpPolicy`); narrow sweeps
    escalate to int32 on overflow, so the outcome is always bit-identical
    to the wide run, with the narrow/wide/escalation split reported on
    the :class:`BlockedOutcome`.
    """
    if pruner is not None and not local:
        raise ConfigError("block pruning applies to local alignment only")
    if band_half_width is not None and not local:
        raise ConfigError("band restriction applies to local alignment only")
    if band_half_width is not None and band_half_width < 0:
        raise ConfigError("band_half_width must be >= 0")
    validate_kernel(kernel)
    m, n = int(a_codes.size), int(b_codes.size)
    if isinstance(dp_dtype, DpPolicy):
        policy = dp_dtype
    else:
        policy = resolve_dp_dtype(dp_dtype, scoring, block_cols=block_cols,
                                  m=m, n=n, local=local)
    dp = policy if policy.narrow else None
    specs = grid_specs(m, n, block_rows, block_cols)
    profile_full = build_profile(b_codes, scoring)
    if kernel == "batched":
        return _compute_blocked_wavefront(
            a_codes, profile_full, scoring, specs, m, n,
            local=local, pruner=pruner, workspace=workspace,
            band_half_width=band_half_width, dp=dp, dp_name=policy.name)
    # "compiled" shares the scalar rolling-border schedule (so pruning
    # decisions match the scalar kernel block-for-block) with the jitted
    # sweep swapped in per block.
    sweep_fn = sweep_block_compiled if kernel == "compiled" else sweep_block
    n_brows, n_bcols = len(specs), len(specs[0])

    # Rolling borders: bottom borders of the previous block row (per block
    # column) and right borders of the previous block column (per block row).
    bottom: list[tuple[np.ndarray, np.ndarray] | None] = [None] * n_bcols
    right: tuple[np.ndarray, np.ndarray] | None = None
    # corner[bc] = H at (row above current block row, last col of block bc-1)
    corners = [0] * (n_bcols + 1)

    best = BestCell.none()
    blocks_pruned = 0
    cells_pruned = 0
    blocks_skipped = 0
    cells_skipped = 0
    blocks_narrow = 0
    blocks_wide = 0
    escalations = 0
    for br in range(n_brows):
        right = None
        row_corner_updates = [0] * (n_bcols + 1)
        for bc in range(n_bcols):
            spec = specs[br][bc]
            if band_half_width is not None and not band_intersects(
                    spec, band_half_width):
                result = pruned_border_result(spec)
                blocks_skipped += 1
                cells_skipped += spec.cells
                bottom[bc] = (result.h_bottom, result.f_bottom)
                right = (result.h_right, result.e_right)
                row_corner_updates[bc + 1] = result.corner
                continue
            if br == 0 or bc == 0:
                # Only edge blocks keep any origin border; interior blocks
                # overwrite all four, so skip the allocations entirely.
                bnd = origin_boundaries(spec, local=local, scoring=scoring)
                if br > 0:
                    bnd.h_top, bnd.f_top = bottom[bc]  # type: ignore[misc]
                    bnd.h_diag = _edge_diag(spec, local=local, scoring=scoring)
                elif bc > 0:
                    bnd.h_left, bnd.e_left = right  # type: ignore[misc]
                    bnd.h_diag = _edge_diag(spec, local=local, scoring=scoring)
            else:
                h_top, f_top = bottom[bc]  # type: ignore[misc]
                h_left, e_left = right  # type: ignore[misc]
                bnd = BlockBoundaries(h_top, f_top, h_left, e_left, corners[bc])

            if pruner is not None and pruner.should_prune(
                spec,
                m,
                n,
                int(bnd.h_top.max(initial=NEG_INF)),
                int(bnd.h_left.max(initial=NEG_INF)),
                best.score if best.row >= 0 else 0,
            ):
                result = pruned_border_result(spec)
                blocks_pruned += 1
                cells_pruned += spec.cells
            else:
                result = sweep_fn(
                    a_codes[spec.row0 : spec.row1],
                    profile_full[:, spec.col0 : spec.col1],
                    bnd.h_top,
                    bnd.f_top,
                    bnd.h_left,
                    bnd.e_left,
                    bnd.h_diag,
                    scoring,
                    local=local,
                    dp=dp,
                )
                if dp is not None:
                    if result.dtype == dp.name:
                        blocks_narrow += 1
                    else:
                        blocks_wide += 1
                    if result.escalated:
                        escalations += 1
                cell = result.best.shifted(spec.row0, spec.col0)
                if cell.better_than(best):
                    best = cell

            bottom[bc] = (result.h_bottom, result.f_bottom)
            right = (result.h_right, result.e_right)
            # The corner for block (br+1, bc+1) is H at (spec.row1-1,
            # spec.col1-1) == result.corner.
            row_corner_updates[bc + 1] = result.corner
        corners = row_corner_updates

    total_blocks = n_brows * n_bcols
    return BlockedOutcome(
        best=best,
        blocks_total=total_blocks,
        blocks_pruned=blocks_pruned,
        cells_total=m * n,
        cells_pruned=cells_pruned,
        blocks_skipped_band=blocks_skipped,
        cells_skipped_band=cells_skipped,
        dp_dtype=policy.name,
        blocks_narrow=blocks_narrow,
        blocks_wide=blocks_wide,
        dtype_escalations=escalations,
    )


def _store_borders(
    br: int,
    bc: int,
    result: BlockResult,
    n_brows: int,
    n_bcols: int,
    bottom: dict,
    right: dict,
    corner: dict,
) -> None:
    """File one block's output borders for its downstream neighbours
    (skipping matrix-edge destinations that will never consume them)."""
    if br + 1 < n_brows:
        bottom[(br + 1, bc)] = (result.h_bottom, result.f_bottom)
    if bc + 1 < n_bcols:
        right[(br, bc + 1)] = (result.h_right, result.e_right)
    if br + 1 < n_brows and bc + 1 < n_bcols:
        corner[(br + 1, bc + 1)] = result.corner


def _compute_blocked_wavefront(
    a_codes: np.ndarray,
    profile_full: np.ndarray,
    scoring: Scoring,
    specs: list[list[BlockSpec]],
    m: int,
    n: int,
    *,
    local: bool,
    pruner: BlockPruner | None,
    workspace: KernelWorkspace | None,
    band_half_width: int | None = None,
    dp: DpPolicy | None = None,
    dp_name: str = "int32",
) -> BlockedOutcome:
    """Wavefront executor: one batched sweep per external anti-diagonal.

    Borders are keyed per block and popped as they are consumed, so the
    resident set stays one wavefront deep — the same O(m + n) border
    memory as the rolling scalar schedule.
    """
    n_brows, n_bcols = len(specs), len(specs[0])
    ws = workspace if workspace is not None else KernelWorkspace()

    bottom: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    right: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    corner: dict[tuple[int, int], int] = {}

    best = BestCell.none()
    blocks_pruned = 0
    cells_pruned = 0
    blocks_skipped = 0
    cells_skipped = 0
    blocks_narrow = 0
    blocks_wide = 0
    escalations = 0
    for diag in wavefront_order(n_brows, n_bcols):
        jobs: list[BlockJob] = []
        placed: list[tuple[int, int, BlockSpec]] = []
        for br, bc in diag:
            spec = specs[br][bc]
            if band_half_width is not None and not band_intersects(
                    spec, band_half_width):
                # Still pop the incoming borders so the resident set
                # stays one wavefront deep.
                bottom.pop((br, bc), None)
                right.pop((br, bc), None)
                corner.pop((br, bc), None)
                result = pruned_border_result(spec)
                blocks_skipped += 1
                cells_skipped += spec.cells
                _store_borders(br, bc, result, n_brows, n_bcols,
                               bottom, right, corner)
                continue
            if br == 0 or bc == 0:
                bnd = origin_boundaries(spec, local=local, scoring=scoring)
                if br > 0:
                    bnd.h_top, bnd.f_top = bottom.pop((br, bc))
                    bnd.h_diag = _edge_diag(spec, local=local, scoring=scoring)
                elif bc > 0:
                    bnd.h_left, bnd.e_left = right.pop((br, bc))
                    bnd.h_diag = _edge_diag(spec, local=local, scoring=scoring)
            else:
                h_top, f_top = bottom.pop((br, bc))
                h_left, e_left = right.pop((br, bc))
                bnd = BlockBoundaries(h_top, f_top, h_left, e_left,
                                      corner.pop((br, bc)))

            if pruner is not None and pruner.should_prune(
                spec,
                m,
                n,
                int(bnd.h_top.max(initial=NEG_INF)),
                int(bnd.h_left.max(initial=NEG_INF)),
                best.score if best.row >= 0 else 0,
            ):
                # Pruned blocks drop out of the batch: their restart
                # borders are constant, no sweep lane needed.
                result = pruned_border_result(spec)
                blocks_pruned += 1
                cells_pruned += spec.cells
                _store_borders(br, bc, result, n_brows, n_bcols,
                               bottom, right, corner)
                continue

            jobs.append(BlockJob(
                a_codes=a_codes[spec.row0 : spec.row1],
                profile=profile_full[:, spec.col0 : spec.col1],
                h_top=bnd.h_top,
                f_top=bnd.f_top,
                h_left=bnd.h_left,
                e_left=bnd.e_left,
                h_diag=bnd.h_diag,
            ))
            placed.append((br, bc, spec))

        for (br, bc, spec), result in zip(placed, sweep_wavefront(
                jobs, scoring, local=local, workspace=ws, dp=dp)):
            if dp is not None:
                if result.dtype == dp.name:
                    blocks_narrow += 1
                else:
                    blocks_wide += 1
                if result.escalated:
                    escalations += 1
            cell = result.best.shifted(spec.row0, spec.col0)
            if cell.better_than(best):
                best = cell
            _store_borders(br, bc, result, n_brows, n_bcols,
                           bottom, right, corner)

    return BlockedOutcome(
        best=best,
        blocks_total=n_brows * n_bcols,
        blocks_pruned=blocks_pruned,
        cells_total=m * n,
        cells_pruned=cells_pruned,
        blocks_skipped_band=blocks_skipped,
        cells_skipped_band=cells_skipped,
        dp_dtype=dp_name,
        blocks_narrow=blocks_narrow,
        blocks_wide=blocks_wide,
        dtype_escalations=escalations,
    )
