"""Alignment value object: ops, coordinates, validation, rendering.

An :class:`Alignment` is the end product of the traceback stages.  It is
self-checking: :meth:`Alignment.rescore` recomputes the score implied by the
ops from the raw sequences, and :meth:`Alignment.validate` asserts internal
consistency (op counts match coordinate spans, score matches).  Every
pipeline that produces an alignment validates it before returning — an
inconsistent traceback is a library bug, never a user error, so it raises
:class:`~repro.errors.AlignmentError`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AlignmentError
from ..seq import encoding
from ..seq.scoring import Scoring


@dataclass(frozen=True)
class Alignment:
    """One pairwise alignment of ``a[start_i:end_i]`` with ``b[start_j:end_j]``.

    Attributes
    ----------
    score:
        The DP score the producer claims for this alignment.
    ops:
        String over ``{M, D, I}``: ``M`` aligned pair, ``D`` consumes a
        base of *a* (gap in *b*), ``I`` consumes a base of *b* (gap in *a*).
    start_i/end_i, start_j/end_j:
        0-based, end-exclusive spans into *a* and *b*.
    """

    score: int
    ops: str
    start_i: int
    end_i: int
    start_j: int
    end_j: int

    def __post_init__(self) -> None:
        if not set(self.ops) <= {"M", "D", "I"}:
            raise AlignmentError(f"invalid ops {set(self.ops) - {'M', 'D', 'I'}}")

    # -- size accounting -------------------------------------------------
    @property
    def a_span(self) -> int:
        return self.end_i - self.start_i

    @property
    def b_span(self) -> int:
        return self.end_j - self.start_j

    @property
    def length(self) -> int:
        """Number of alignment columns."""
        return len(self.ops)

    def op_counts(self) -> dict[str, int]:
        return {op: self.ops.count(op) for op in "MDI"}

    # -- consistency ------------------------------------------------------
    def rescore(self, a_codes: np.ndarray, b_codes: np.ndarray, scoring: Scoring) -> int:
        """Recompute the score implied by ops against the raw sequences."""
        i, j = self.start_i, self.start_j
        score = 0
        gap_open_pending = {"D": True, "I": True}
        prev = ""
        for op in self.ops:
            if op == "M":
                score += int(scoring.matrix[a_codes[i], b_codes[j]])
                i += 1
                j += 1
            elif op == "D":
                score -= scoring.gap_extend + (scoring.gap_open if prev != "D" else 0)
                i += 1
            else:  # I
                score -= scoring.gap_extend + (scoring.gap_open if prev != "I" else 0)
                j += 1
            prev = op
        del gap_open_pending
        if (i, j) != (self.end_i, self.end_j):
            raise AlignmentError(
                f"ops walk to ({i},{j}) but alignment claims end ({self.end_i},{self.end_j})"
            )
        return score

    def validate(self, a_codes: np.ndarray, b_codes: np.ndarray, scoring: Scoring) -> None:
        """Raise :class:`AlignmentError` unless ops, spans and score agree."""
        counts = self.op_counts()
        if counts["M"] + counts["D"] != self.a_span:
            raise AlignmentError("op counts do not cover the a-span")
        if counts["M"] + counts["I"] != self.b_span:
            raise AlignmentError("op counts do not cover the b-span")
        actual = self.rescore(a_codes, b_codes, scoring)
        if actual != self.score:
            raise AlignmentError(f"claimed score {self.score} but ops score {actual}")

    # -- metrics ----------------------------------------------------------
    def identity(
        self,
        a_codes: np.ndarray,
        b_codes: np.ndarray,
        *,
        ambiguous: int | None = 4,
    ) -> float:
        """Fraction of alignment columns that are exact residue matches.

        ``ambiguous`` is the code excluded from counting as a match even
        when equal on both sides — by default 4, the DNA ``N``.  Pass 20
        for protein (the ``X`` code) or ``None`` to count every equal pair.
        """
        if not self.ops:
            return 0.0
        i, j, same = self.start_i, self.start_j, 0
        for op in self.ops:
            if op == "M":
                if a_codes[i] == b_codes[j] and (
                    ambiguous is None or a_codes[i] != ambiguous
                ):
                    same += 1
                i += 1
                j += 1
            elif op == "D":
                i += 1
            else:
                j += 1
        return same / len(self.ops)

    def cigar(self) -> str:
        """Run-length encoded ops (SAM-style CIGAR using M/D/I)."""
        if not self.ops:
            return ""
        parts: list[str] = []
        run_op = self.ops[0]
        run_len = 0
        for op in self.ops:
            if op == run_op:
                run_len += 1
            else:
                parts.append(f"{run_len}{run_op}")
                run_op, run_len = op, 1
        parts.append(f"{run_len}{run_op}")
        return "".join(parts)

    # -- rendering ----------------------------------------------------------
    def pretty(
        self,
        a_codes: np.ndarray,
        b_codes: np.ndarray,
        *,
        width: int = 60,
        max_lines: int = 40,
    ) -> str:
        """Human-readable blocked rendering (like BLAST pairwise output)."""
        a_line: list[str] = []
        m_line: list[str] = []
        b_line: list[str] = []
        i, j = self.start_i, self.start_j
        for op in self.ops:
            if op == "M":
                ca = encoding.decode(a_codes[i : i + 1])
                cb = encoding.decode(b_codes[j : j + 1])
                a_line.append(ca)
                b_line.append(cb)
                m_line.append("|" if ca == cb and ca != "N" else ".")
                i += 1
                j += 1
            elif op == "D":
                a_line.append(encoding.decode(a_codes[i : i + 1]))
                b_line.append("-")
                m_line.append(" ")
                i += 1
            else:
                a_line.append("-")
                b_line.append(encoding.decode(b_codes[j : j + 1]))
                m_line.append(" ")
                j += 1
        out: list[str] = [
            f"score={self.score} a[{self.start_i}:{self.end_i}] b[{self.start_j}:{self.end_j}] len={self.length}"
        ]
        lines_emitted = 0
        for start in range(0, len(a_line), width):
            if lines_emitted >= max_lines:
                out.append(f"... ({len(a_line) - start} more columns)")
                break
            out.append("a: " + "".join(a_line[start : start + width]))
            out.append("   " + "".join(m_line[start : start + width]))
            out.append("b: " + "".join(b_line[start : start + width]))
            out.append("")
            lines_emitted += 1
        return "\n".join(out)


def from_ops(
    score: int,
    ops: list[str] | str,
    start: tuple[int, int],
    end: tuple[int, int],
) -> Alignment:
    """Build an :class:`Alignment` from a traceback op list."""
    return Alignment(
        score=score,
        ops="".join(ops),
        start_i=start[0],
        end_i=end[0],
        start_j=start[1],
        end_j=end[1],
    )
