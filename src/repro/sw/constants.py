"""Shared numeric constants and the DP dtype policy layer.

The interchange format — border rows, checkpoints, shared-memory rings,
result scores — is always ``int32``.  ``NEG_INF`` is a large negative
sentinel standing in for minus infinity; it is chosen so that any
realistic sum of penalties added to it stays far above the ``int32``
minimum (no wraparound) while remaining unreachable by any legal score.

On top of the wide baseline sit *narrow* DP policies (``int16``/``int8``)
that the kernels may use internally for the row sweep: borders are
narrowed on entry (sentinels clipped to a dtype-scaled ``neg_inf``),
swept in the narrow dtype, and widened back to ``int32`` on exit.  A
per-row cap check (:meth:`DpPolicy.overflow_limit`) detects potential
overflow *before* any real cell can wrap, and callers escalate the block
to an ``int32`` recompute — so narrow modes are bit-identical to wide.
The headroom math lives here; INTERNALS.md section 11 has the proofs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

#: "Minus infinity" for int32 DP cells.  Headroom: int32 min is about
#: -2.1e9; NEG_INF + (worst-case penalty sums ~ 1e8) stays below any real
#: score and above the wraparound threshold.
NEG_INF: int = -(1 << 30)

#: dtype used by every DP vector/matrix at the interchange layer.
DTYPE = np.int32

#: Maximum block width the wide scan kernel accepts.  ``j * gap_extend``
#: must not overflow the headroom above NEG_INF: 2**27 columns *
#: extend<=15 ~ 2e9 is too much, so cap width well below that.
MAX_SWEEP_WIDTH: int = 1 << 26

#: Names of the supported DP compute dtypes, widest first.
DP_DTYPES: tuple[str, ...] = ("int32", "int16", "int8")

#: Valid values for the engine-level ``dp_dtype`` knob.
DP_DTYPE_CHOICES: tuple[str, ...] = ("auto",) + DP_DTYPES


@dataclass(frozen=True)
class DpPolicy:
    """One DP compute dtype: its sentinel, headroom, and width limits.

    ``neg_inf`` plays the same role as the module-level :data:`NEG_INF`
    but scaled to the dtype: low enough that no legal intermediate ever
    reaches it (strictly below ``-(gap_open + gap_extend)``), high enough
    that one kernel step applied to it cannot wrap below the dtype
    minimum.  Instances are tiny frozen value objects and pickle cleanly
    across process boundaries.
    """

    name: str
    neg_inf: int

    @property
    def kind(self) -> type:
        return {"int32": np.int32, "int16": np.int16, "int8": np.int8}[self.name]

    @property
    def lo(self) -> int:
        return int(np.iinfo(self.kind).min)

    @property
    def hi(self) -> int:
        return int(np.iinfo(self.kind).max)

    @property
    def narrow(self) -> bool:
        return self.name != "int32"

    @property
    def min_cap(self) -> int:
        """Smallest overflow cap worth sweeping under (``hi // 4``).

        Below this the usable score range is so thin that nearly every
        block would escalate; :meth:`max_width` is derived from it.
        """
        return self.hi // 4

    def overflow_limit(self, scoring, width: int) -> int:
        """Cap C such that row maxima < C imply no intermediate overflowed.

        One sweep row starting from values ``< C`` can reach at most
        ``C - 1 + match`` in ``temp`` and, inside the E-scan's shifted
        domain (``e[j] + j*gap_extend``), at most ``C - 1 + match +
        (width-1)*gap_extend``.  With ``C = hi - match - (width-1)*ext``
        every intermediate therefore fits the dtype, so checking the
        final row maximum against C each row detects overflow *before*
        any real cell wraps (soundness argument in INTERNALS.md §11).
        """
        return self.hi - scoring.match - (width - 1) * scoring.gap_extend

    def max_width(self, scoring) -> int:
        """Widest block this dtype accepts under *scoring*.

        Wide (``int32``) keeps the legacy :data:`MAX_SWEEP_WIDTH` cap;
        narrow dtypes are limited by the overflow cap staying at or above
        :attr:`min_cap` (``overflow_limit(scoring, W) >= min_cap``).
        """
        if not self.narrow:
            return MAX_SWEEP_WIDTH
        w = (self.hi - scoring.match - self.min_cap) // scoring.gap_extend + 1
        return max(0, min(w, MAX_SWEEP_WIDTH))

    def supports(self, scoring) -> bool:
        """Whether *scoring*'s magnitudes leave sentinel headroom.

        Two requirements: one kernel step applied to the sentinel must
        not wrap (``neg_inf - (gap_open + gap_extend + |mismatch|) >=
        lo``), and the sentinel must sit strictly below every reachable
        real value with margin (``neg_inf <= -2 * (gap_open +
        gap_extend)``, reals never drop below ``-(gap_open +
        gap_extend)`` in the clipped local sweep).  Plus at least one
        column must fit under the overflow cap.
        """
        step = scoring.gap_open + scoring.gap_extend + abs(scoring.mismatch)
        if self.neg_inf - step < self.lo:
            return False
        if self.neg_inf > -2 * (scoring.gap_open + scoring.gap_extend):
            return False
        return self.max_width(scoring) >= 1


#: The three supported policies.  Narrow sentinels: far below any real
#: clipped-local value (reals stay >= -(open+ext)), far above the dtype
#: minimum (one step of penalties cannot wrap), and cheap to separate
#: from real values when narrowing int32 borders.
POLICIES: dict[str, DpPolicy] = {
    "int32": DpPolicy("int32", NEG_INF),
    "int16": DpPolicy("int16", -(1 << 13)),   # -8192
    "int8": DpPolicy("int8", -(1 << 5)),      # -32
}


def get_policy(name: str) -> DpPolicy:
    try:
        return POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown dp dtype {name!r} (choose from {DP_DTYPE_CHOICES})") from None


def validate_dp_dtype(name: str) -> str:
    """Validate a ``dp_dtype`` knob value (``auto`` or a policy name)."""
    if name not in DP_DTYPE_CHOICES:
        raise ConfigError(
            f"unknown dp dtype {name!r} (choose from {DP_DTYPE_CHOICES})")
    return name


def resolve_dp_dtype(dp_dtype: str, scoring, *, block_cols: int,
                     m: int, n: int, local: bool = True) -> DpPolicy:
    """Pick the concrete :class:`DpPolicy` for a run.

    ``"auto"`` selects the narrowest policy that is *guaranteed* not to
    escalate: the scoring scheme must fit (:meth:`DpPolicy.supports`),
    the effective sweep width ``min(block_cols, n)`` must be within
    :meth:`DpPolicy.max_width`, and the largest possible local score
    (``match * min(m, n)``) must stay under the overflow cap — so auto
    is never slower than ``int32``.  Explicit narrow names are honoured
    whenever the width fits (escalation absorbs any overflow) and fall
    back is an error, keeping the knob predictable; non-local sweeps
    always compute wide (traceback stages reuse borders as signed
    intermediates that the narrow clip would corrupt).
    """
    validate_dp_dtype(dp_dtype)
    eff_w = max(1, min(block_cols, n))
    if dp_dtype == "auto":
        if local:
            for name in ("int8", "int16"):
                policy = POLICIES[name]
                if (policy.supports(scoring)
                        and eff_w <= policy.max_width(scoring)
                        and scoring.match * min(m, n)
                        < policy.overflow_limit(scoring, eff_w)):
                    return policy
        return POLICIES["int32"]
    policy = POLICIES[dp_dtype]
    if policy.narrow:
        if not local:
            raise ConfigError(
                f"dp_dtype={dp_dtype!r} requires local alignment sweeps")
        if not policy.supports(scoring):
            raise ConfigError(
                f"scoring scheme exceeds {dp_dtype} sentinel headroom "
                f"(open={scoring.gap_open} extend={scoring.gap_extend} "
                f"mismatch={scoring.mismatch})")
        if eff_w > policy.max_width(scoring):
            raise ConfigError(
                f"block width {eff_w} exceeds {dp_dtype} max sweep width "
                f"{policy.max_width(scoring)} under this scoring scheme")
    return policy
