"""Shared numeric constants for the Smith-Waterman kernels.

All DP values are ``int32``.  ``NEG_INF`` is a large negative sentinel
standing in for minus infinity; it is chosen so that any realistic sum of
penalties added to it stays far above the ``int32`` minimum (no wraparound)
while remaining unreachable by any legal score.
"""

from __future__ import annotations

import numpy as np

#: "Minus infinity" for int32 DP cells.  Headroom: int32 min is about
#: -2.1e9; NEG_INF + (worst-case penalty sums ~ 1e8) stays below any real
#: score and above the wraparound threshold.
NEG_INF: int = -(1 << 30)

#: dtype used by every DP vector/matrix.
DTYPE = np.int32

#: Maximum block width the scan kernel accepts.  ``j * gap_extend`` must not
#: overflow the headroom above NEG_INF: 2**27 columns * extend<=15 ~ 2e9 is
#: too much, so cap width well below that.
MAX_SWEEP_WIDTH: int = 1 << 26
