"""Shared E-scan helpers: one recurrence, two layouts, two scan engines.

Every kernel in the library resolves Gotoh's horizontal-gap state the
same way (see ``sw/kernel.py``'s module docstring for the derivation):
with ``Q[j] = tempH[j] - open + j*ext`` and ``e[j] = E[j] + j*ext`` the
row recurrence ``E[j] = max(E[j-1], tempH[j-1] - open) - ext`` becomes a
plain running maximum

    e[j] = max(e[j-1], Q[j-1]),      e[0] = max(E_left, H_left - open) - ext + 0,

i.e. an inclusive prefix-max over the shifted domain.  Before this
module, that recurrence lived as three hand-expanded copies (scalar
narrow, scalar wide, batched segmented); they are deduplicated here so
the transform is written — and tested — exactly once.

Two interchangeable *scan engines* evaluate the prefix-max:

``sequential``
    ``np.maximum.accumulate`` — one C loop over the row.  This is the
    library's documented Amdahl floor (INTERNALS.md §11): the loop is
    dtype-insensitive (~3 ns/element) and strictly serial, so narrow-int
    kernels cannot cash their byte-ratio win through it.

``kogge_stone``
    The log-step parallel prefix-max: ``ceil(log2 n)`` rounds of

        x[d:] = max(x[d:], x[:-d]),      d = 1, 2, 4, ...

    Each round is one fully vectorised (SIMD-friendly) ``np.maximum``
    over contiguous memory, so the scan's critical path drops from
    ``n`` dependent steps to ``log2 n`` vector ops — the same shape a
    GPU warp evaluates with ``__shfl_up_sync`` lane shuffles.  Because
    ``max`` is associative, commutative and idempotent, the result is
    bit-identical to the sequential engine on integer inputs (the
    hypothesis property in ``tests/test_compiled_kernel.py`` pins
    this).  It is the reference formulation the compiled backend's
    oracle runs, and the segmented (axis-1) variant is what makes the
    batched wavefront's E-scan parallel across *and along* lanes.

NumPy ufuncs guarantee copy-on-overlap semantics for aliased operands
(since 1.13), so the in-place ``np.maximum(x[d:], x[:-d], out=x[d:])``
rounds read the pre-round values as the recurrence requires.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from ..errors import ConfigError

#: Prefix-max evaluation strategies accepted by :func:`use_scan_engine`
#: and the ``MGSW_SCAN`` environment variable.
SCAN_ENGINES = ("sequential", "kogge_stone")


def _initial_engine() -> str:
    name = os.environ.get("MGSW_SCAN", "sequential")
    if name not in SCAN_ENGINES:
        raise ConfigError(
            f"unknown scan engine {name!r} in MGSW_SCAN; expected one of {SCAN_ENGINES}")
    return name


_ENGINE = _initial_engine()


def scan_engine() -> str:
    """The scan engine currently used by the NumPy kernels."""
    return _ENGINE


@contextmanager
def use_scan_engine(name: str):
    """Run the enclosed sweeps with *name* as the prefix-max engine.

    Process-local and not thread-safe (like the kernels themselves);
    the compiled backend's oracle wraps its fallback sweeps in
    ``use_scan_engine("kogge_stone")`` so the parallel formulation is
    exercised even without numba.
    """
    global _ENGINE
    if name not in SCAN_ENGINES:
        raise ConfigError(
            f"unknown scan engine {name!r}; expected one of {SCAN_ENGINES}")
    prev = _ENGINE
    _ENGINE = name
    try:
        yield
    finally:
        _ENGINE = prev


def kogge_stone_max(x: np.ndarray, *, axis: int = -1) -> np.ndarray:
    """In-place inclusive prefix-max along *axis* in ``ceil(log2 n)`` rounds.

    Bit-identical to ``np.maximum.accumulate(x, axis=axis, out=x)`` for
    any dtype where ``max`` is exact (all integers); returns *x*.
    """
    if x.ndim == 0:
        return x
    axis = axis % x.ndim
    n = x.shape[axis]
    d = 1
    while d < n:
        lead = [slice(None)] * x.ndim
        lag = [slice(None)] * x.ndim
        lead[axis] = slice(d, None)
        lag[axis] = slice(None, -d)
        np.maximum(x[tuple(lead)], x[tuple(lag)], out=x[tuple(lead)])
        d <<= 1
    return x


def prefix_max(x: np.ndarray, *, axis: int = -1, engine: str | None = None) -> np.ndarray:
    """In-place inclusive prefix-max along *axis* with the chosen engine."""
    name = _ENGINE if engine is None else engine
    if name == "sequential":
        np.maximum.accumulate(x, axis=axis, out=x)
        return x
    if name == "kogge_stone":
        return kogge_stone_max(x, axis=axis)
    raise ConfigError(
        f"unknown scan engine {name!r}; expected one of {SCAN_ENGINES}")


def escan_row(
    temp: np.ndarray,
    h_left_i,
    e_left_i,
    open_,
    ext,
    j_ext: np.ndarray,
    scan: np.ndarray,
    e_row: np.ndarray,
) -> None:
    """One row's E-scan, 1-D layout (the scalar kernels' shared copy).

    ``temp`` is the row's H *before* the E contribution; ``h_left_i`` /
    ``e_left_i`` are the row's left-border H and E (scalars of the DP
    dtype); ``j_ext`` is the ``j * gap_extend`` ramp.  ``scan`` is
    scratch; ``e_row`` receives ``E[i, :]``.  Q is written pre-shifted
    (``scan[k] = Q[k-1]``) to avoid a full-width copy per row.
    """
    scan[0] = max(e_left_i, h_left_i - open_) - ext
    np.subtract(temp[:-1], open_, out=scan[1:])
    scan[1:] += j_ext[:-1]
    prefix_max(scan, axis=-1)
    np.subtract(scan, j_ext, out=e_row)


def escan_segmented(
    temp: np.ndarray,
    h_left_col: np.ndarray,
    e_left_col: np.ndarray,
    open_,
    ext,
    j_ext: np.ndarray,
    scan: np.ndarray,
    e_row: np.ndarray,
    e0: np.ndarray,
) -> None:
    """One wavefront row's E-scan, segmented ``(B, W)`` layout.

    Identical recurrence per axis-0 lane; the scan runs along axis 1
    and cannot leak across lanes because each block owns one stack row.
    ``h_left_col`` / ``e_left_col`` are the ``(B,)`` left-border values
    of the current row; ``e0`` is ``(B,)`` scratch for the scan seeds.
    """
    np.subtract(h_left_col, open_, out=e0)
    np.maximum(e_left_col, e0, out=e0)
    e0 -= ext
    np.subtract(temp[:, :-1], open_, out=scan[:, 1:])
    scan[:, 1:] += j_ext[:-1]
    scan[:, 0] = e0
    prefix_max(scan, axis=1)
    np.subtract(scan, j_ext, out=e_row)
