"""Kernel backend registry: capability probing and ``--kernel`` resolution.

The library ships three block-sweep kernels:

``scalar``
    One NumPy row loop per block (``sw/kernel.py``).  Always available.
``batched``
    Stacked ``(B, W)`` wavefront sweeps (``sw/batched.py``).  Always
    available.
``compiled``
    Numba-jitted fused row sweeps with the log-step E-scan
    (``sw/compiled.py``).  Needs the optional ``numba`` dependency
    (``pip install .[compiled]``); without it the *library* still
    accepts ``kernel="compiled"`` and transparently runs the pure-NumPy
    Kogge–Stone oracle (bit-identical, no speedup), while the *CLI*
    refuses it with a clear error so users don't silently benchmark the
    fallback.  ``--kernel auto`` degrades instead of erroring.

Capabilities are probed exactly once at import: ``import numba`` (and,
for a future GPU lane, ``import cupy``) inside a ``try`` so a missing
or broken optional install can never take the core library down.  Set
``MGSW_NO_NUMBA=1`` to force the fallback path even where numba is
installed — CI uses it to exercise the degraded matrix.
"""

from __future__ import annotations

import os

from ..errors import ConfigError

#: Every kernel name the engines understand, available or not.
KERNELS = ("scalar", "batched", "compiled")

#: Kernels that need no optional dependency.
CORE_KERNELS = ("scalar", "batched")

#: What the CLI accepts: the kernel universe plus measured resolution.
KERNEL_CHOICES = ("auto",) + KERNELS


def _probe_numba():
    """Import numba if present and not disabled; never raises."""
    if os.environ.get("MGSW_NO_NUMBA"):
        return None
    try:
        import numba  # type: ignore[import-not-found]
    except Exception:  # ImportError, or a broken install — same answer
        return None
    return numba


def _probe_cupy():
    """Import cupy if present and usable; never raises.  No kernel uses
    it yet — the probe exists so ``available_kernels`` callers (and the
    autotuner) see a stable capability surface when the GPU lane lands.
    """
    if os.environ.get("MGSW_NO_CUPY"):
        return None
    try:
        import cupy  # type: ignore[import-not-found]
    except Exception:
        return None
    return cupy


#: Probe results, set once at import.  Tests monkeypatch these (and call
#: :func:`repro.sw.compiled.reset_jit`) to simulate either environment.
NUMBA = _probe_numba()
CUPY = _probe_cupy()


def numba_available() -> bool:
    return NUMBA is not None


def available_kernels() -> tuple[str, ...]:
    """The kernels that run at full capability in this process."""
    if numba_available():
        return KERNELS
    return CORE_KERNELS


def validate_kernel(kernel: str) -> str:
    """Reject unknown kernel names with one shared error message.

    Membership check only — ``compiled`` passes even without numba
    (the library falls back transparently); use :func:`require_kernel`
    where an unavailable pick must fail loudly instead.
    """
    if kernel not in KERNELS:
        raise ConfigError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    return kernel


def require_kernel(kernel: str) -> str:
    """:func:`validate_kernel` plus a hard availability check.

    The CLI front door: an explicit ``--kernel compiled`` without numba
    is a user error worth a clear message, not a silent fallback whose
    numbers would then be attributed to the JIT backend.
    """
    validate_kernel(kernel)
    if kernel == "compiled" and not numba_available():
        raise ConfigError(
            "kernel 'compiled' needs the optional numba dependency "
            "(pip install '.[compiled]'); available kernels here: "
            f"{available_kernels()} — or use --kernel auto to degrade")
    return kernel


def resolve_kernel(
    kernel: str,
    *,
    spec=None,
    scoring=None,
    block_rows: int | None = None,
    dp_dtype: str = "auto",
) -> str:
    """Resolve a CLI ``--kernel`` choice to a concrete kernel name.

    Concrete names pass through :func:`require_kernel`.  ``auto`` asks
    the PR 7 measured autotuner when a device spec and scoring scheme
    are on hand (the probe results are memoised per spec + scoring, so
    repeated resolutions are free); without them it falls back to the
    static preference compiled > batched, restricted to
    :func:`available_kernels` either way — so ``auto`` *degrades* where
    an explicit ``compiled`` errors.

    ``block_rows`` and ``dp_dtype`` narrow the probe grid to the
    caller's actual configuration (probe heights are capped at 512 rows
    to bound calibration cost; the pick transfers).
    """
    if kernel != "auto":
        return require_kernel(kernel)
    kernels = available_kernels()
    if spec is not None and scoring is not None:
        from ..multigpu.autotune import tune_device_kernel  # lazy: avoids a cycle

        probe_kwargs = {}
        if block_rows is not None:
            probe_kwargs["block_rows_candidates"] = (min(int(block_rows), 512),)
        if dp_dtype != "auto":
            probe_kwargs["dp_dtypes"] = (dp_dtype,)
        choice = tune_device_kernel(spec, scoring, kernels=kernels,
                                    **probe_kwargs)
        return choice.kernel
    return "compiled" if "compiled" in kernels else "batched"
