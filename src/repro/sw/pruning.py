"""Block pruning — CUDAlign's optimization for similar sequences.

When two megabase sequences are highly similar, the best-so-far score grows
quickly along the main diagonal, and large off-diagonal regions of the
matrix provably cannot contain a better alignment.  The pruning criterion
bounds the final score of any alignment whose path touches a block:

    upper_bound(block) = max(border H entering the block, 0)
                       + match * min(m - row0, n - col0)

because a local-alignment path can gain at most ``match`` per remaining
diagonal step, it has at most ``min(m - row0, n - col0)`` diagonal steps
left counting from the block's top-left corner, and in local mode a path
can also restart at 0 inside the block.  If the bound does not exceed the
best score already found, the block is skipped entirely.

Pruned blocks emit *restart borders* (``H = 0``, gap states = -inf; see
:func:`repro.sw.blocks.pruned_border_result`): legal lower bounds of the
true cells, so downstream blocks never overestimate, and since no optimal
path crosses a pruned block the final best score is exact.

Schedule interaction: the criterion reads the *best-so-far* score, so how
much gets pruned depends on the visiting order.  The scalar row-major
executor updates best-so-far within an anti-diagonal; the batched
wavefront executor (``kernel="batched"``) decides a whole diagonal at
once, so its decisions lag by up to one diagonal and it may prune
slightly less.  Both schedules are exact — only the pruned *counts*
differ, never the score or end point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .blocks import BlockSpec


@dataclass
class BlockPruner:
    """Stateful pruning oracle used by the blocked executors.

    Attributes
    ----------
    match:
        The (positive) match score of the scheme in use — the per-diagonal
        gain bound.
    enabled:
        Allows callers to keep one code path and toggle pruning.
    """

    match: int
    enabled: bool = True
    blocks_checked: int = field(default=0, init=False)
    blocks_pruned: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ConfigError("BlockPruner needs the positive match score")

    def upper_bound(
        self,
        spec: "BlockSpec",
        m: int,
        n: int,
        h_top_max: int,
        h_left_max: int,
    ) -> int:
        """Best final score any path through *spec* could still reach."""
        entry = max(h_top_max, h_left_max, 0)
        remaining = min(m - spec.row0, n - spec.col0)
        return entry + self.match * remaining

    def should_prune(
        self,
        spec: "BlockSpec",
        m: int,
        n: int,
        h_top_max: int,
        h_left_max: int,
        best_score: int,
    ) -> bool:
        """True when the block provably cannot improve on *best_score*."""
        if not self.enabled:
            return False
        self.blocks_checked += 1
        if best_score <= 0:
            return False
        if self.upper_bound(spec, m, n, h_top_max, h_left_max) <= best_score:
            self.blocks_pruned += 1
            return True
        return False

    @property
    def pruned_ratio(self) -> float:
        return self.blocks_pruned / self.blocks_checked if self.blocks_checked else 0.0
