"""Myers-Miller linear-space global alignment with affine gaps.

Retrieving the actual alignment of megabase sequences cannot afford the
O(m*n) traceback matrices, so the traceback stages use the classic
divide-and-conquer of Myers & Miller (1988), adapted to Gotoh's affine-gap
recurrences:

1. Split the row range at ``mid``.
2. A forward global sweep of ``a[:mid]`` vs ``b`` yields ``H`` and ``F`` at
   row ``mid``; a reverse sweep of the reversed suffixes yields the same
   for the bottom half.
3. The optimal path crosses row ``mid`` at the column maximising either
   ``Hf[j] + Hr[j]`` (diagonal crossing) or ``Ff[j] + Fr[j] + gap_open``
   (a vertical gap spanning the boundary; the add-back compensates the
   open charged by both halves).
4. Recurse on the two halves.  A vertical-gap crossing deletes ``a[mid-1]``
   and ``a[mid]`` at the junction; the halves are then solved with the
   *boundary gap flags* ``tb``/``te`` set to 0 so a gap touching the
   junction does not pay its open twice (Myers & Miller's ``tb``/``te``
   mechanism).

Sub-problems below ``base_cells`` are solved by a full-matrix DP with
traceback (the matrices are materialised from the vectorised kernel's row
sink, so even the base case has no per-cell Python loop).

Every public entry point validates the produced ops by re-scoring them, so
an inconsistency anywhere in this machinery raises
:class:`~repro.errors.AlignmentError` instead of returning a wrong
alignment.
"""

from __future__ import annotations

import numpy as np

from ..errors import AlignmentError, ConfigError
from ..seq.scoring import Scoring
from .alignment import Alignment, from_ops
from .constants import DTYPE, NEG_INF
from .kernel import build_profile, sweep_block
from .naive import FullMatrices, traceback

#: Default full-DP fallback size (cells); ~3 MB of int32 matrices.
DEFAULT_BASE_CELLS = 256 * 1024


def _gap(scoring: Scoring, open_cost: int, length: int) -> int:
    """Score of a gap of *length* whose open costs *open_cost* (may be 0)."""
    return 0 if length == 0 else -(open_cost + length * scoring.gap_extend)


def _forward_last_rows(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    tb: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Global-sweep ``a`` vs ``b``; return H and F at the last row,
    *including* the j=0 boundary column (arrays of length ``len(b)+1``).

    ``tb`` is the open cost of a leading vertical gap (column-0 boundary).
    """
    m, n = int(a_codes.size), int(b_codes.size)
    j = np.arange(1, n + 1, dtype=DTYPE)
    i = np.arange(1, m + 1, dtype=DTYPE)
    h_top = (-scoring.gap_open - j * scoring.gap_extend).astype(DTYPE)
    h_left = (-tb - i * scoring.gap_extend).astype(DTYPE)
    f_top = np.full(n, NEG_INF, dtype=DTYPE)
    e_left = np.full(m, NEG_INF, dtype=DTYPE)
    res = sweep_block(
        a_codes, build_profile(b_codes, scoring),
        h_top, f_top, h_left, e_left, 0, scoring, local=False, track_best=False,
    )
    H = np.empty(n + 1, dtype=DTYPE)
    F = np.empty(n + 1, dtype=DTYPE)
    H[0] = -(tb + m * scoring.gap_extend)
    F[0] = H[0]  # the column-0 boundary path *is* a vertical gap
    H[1:] = res.h_bottom
    F[1:] = res.f_bottom
    return H, F


def _full_matrices_with_flags(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    tb: int,
) -> FullMatrices:
    """Materialise full global H/E/F matrices with the tb boundary flag,
    using the vectorised kernel's row sink (no per-cell Python loop)."""
    m, n = int(a_codes.size), int(b_codes.size)
    H = np.full((m + 1, n + 1), NEG_INF, dtype=DTYPE)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=DTYPE)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=DTYPE)
    j = np.arange(1, n + 1, dtype=DTYPE)
    i = np.arange(1, m + 1, dtype=DTYPE)
    H[0, 0] = 0
    H[0, 1:] = -scoring.gap_open - j * scoring.gap_extend
    H[1:, 0] = -tb - i * scoring.gap_extend

    def sink(row: int, h: np.ndarray, e: np.ndarray, f: np.ndarray) -> None:
        H[row + 1, 1:] = h
        E[row + 1, 1:] = e
        F[row + 1, 1:] = f

    sweep_block(
        a_codes, build_profile(b_codes, scoring),
        H[0, 1:].copy(), F[0, 1:].copy(), H[1:, 0].copy(), E[1:, 0].copy(),
        0, scoring, local=False, track_best=False, row_sink=sink, sink_interval=1,
    )
    return FullMatrices(H=H, E=E, F=F, local=False)


def _base_case(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    tb: int,
    te: int,
    out: list[str],
) -> None:
    """Solve a small sub-problem exactly and append its ops to *out*.

    Maximises the Myers-Miller objective: alignment score plus a refund of
    ``gap_open - tb`` for a leading all-column-0 gap and ``gap_open - te``
    for a trailing last-column gap.
    """
    m, n = int(a_codes.size), int(b_codes.size)
    if m == 0 and n == 0:
        return
    if n == 0:
        out.extend("D" * m)
        return
    if m == 0:
        out.extend("I" * n)
        return

    mats = _full_matrices_with_flags(a_codes, b_codes, scoring, tb)
    H = mats.H
    # Trailing vertical gap with the te discount: end at (i, n) then delete
    # a[i:] as one gap whose open costs te.
    best_val = int(H[m, n])
    best_i = m
    for i in range(m - 1, -1, -1):
        val = int(H[i, n]) + _gap(scoring, te, m - i)
        if val > best_val:
            best_val = val
            best_i = i
    ops = traceback(mats, a_codes, b_codes, scoring, end=(best_i, n))
    out.extend(ops)
    out.extend("D" * (m - best_i))


def _recurse(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    tb: int,
    te: int,
    out: list[str],
    base_cells: int,
) -> None:
    m, n = int(a_codes.size), int(b_codes.size)
    if n == 0:
        out.extend("D" * m)
        return
    if m == 0:
        out.extend("I" * n)
        return
    if m <= 2 or m * n <= base_cells:
        _base_case(a_codes, b_codes, scoring, tb, te, out)
        return

    mid = m // 2
    Hf, Ff = _forward_last_rows(a_codes[:mid], b_codes, scoring, tb)
    Hr_rev, Fr_rev = _forward_last_rows(
        a_codes[mid:][::-1].copy(), b_codes[::-1].copy(), scoring, te
    )
    Hr = Hr_rev[::-1]
    Fr = Fr_rev[::-1]

    h_comb = Hf.astype(np.int64) + Hr.astype(np.int64)
    f_comb = Ff.astype(np.int64) + Fr.astype(np.int64) + scoring.gap_open
    jh = int(h_comb.argmax())
    jf = int(f_comb.argmax())
    if h_comb[jh] >= f_comb[jf]:
        j_star = jh
        _recurse(a_codes[:mid], b_codes[:j_star], scoring, tb, scoring.gap_open, out, base_cells)
        _recurse(a_codes[mid:], b_codes[j_star:], scoring, scoring.gap_open, te, out, base_cells)
    else:
        j_star = jf
        _recurse(a_codes[: mid - 1], b_codes[:j_star], scoring, tb, 0, out, base_cells)
        out.append("D")
        out.append("D")
        _recurse(a_codes[mid + 1 :], b_codes[j_star:], scoring, 0, te, out, base_cells)


def global_score(a_codes: np.ndarray, b_codes: np.ndarray, scoring: Scoring) -> int:
    """NW-Gotoh global score (linear space, no traceback)."""
    m, n = int(a_codes.size), int(b_codes.size)
    if m == 0 and n == 0:
        return 0
    if n == 0:
        return _gap(scoring, scoring.gap_open, m)
    if m == 0:
        return _gap(scoring, scoring.gap_open, n)
    H, _ = _forward_last_rows(a_codes, b_codes, scoring, scoring.gap_open)
    return int(H[n])


def align_global(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    base_cells: int = DEFAULT_BASE_CELLS,
) -> Alignment:
    """Optimal global (NW-Gotoh) alignment in linear space.

    The result is validated by re-scoring its ops; its ``score`` equals
    :func:`global_score` exactly or :class:`AlignmentError` is raised.
    """
    if base_cells < 4:
        raise ConfigError("base_cells must be at least 4")
    ops: list[str] = []
    _recurse(a_codes, b_codes, scoring, scoring.gap_open, scoring.gap_open, ops, base_cells)
    aln = from_ops(
        0, ops, (0, 0), (int(a_codes.size), int(b_codes.size))
    )
    actual = aln.rescore(a_codes, b_codes, scoring)
    expected = global_score(a_codes, b_codes, scoring)
    if actual != expected:
        raise AlignmentError(
            f"Myers-Miller produced score {actual}, linear-space score is {expected}"
        )
    return Alignment(
        score=actual,
        ops=aln.ops,
        start_i=0,
        end_i=int(a_codes.size),
        start_j=0,
        end_j=int(b_codes.size),
    )
