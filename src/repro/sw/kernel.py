"""Vectorised Gotoh row-sweep kernel — the library's "GPU kernel".

This module computes a rectangular block of the affine-gap Smith-Waterman
(or Needleman-Wunsch) matrix given its top and left boundaries, producing
its bottom and right boundaries.  It is the unit of work a simulated GPU
executes, and it is also what the CPU baseline and the traceback stages are
built from.

Vectorisation strategy
----------------------
The Gotoh recurrences are::

    E[i,j] = max(E[i,j-1], H[i,j-1] - open) - ext       (horizontal gap)
    F[i,j] = max(F[i-1,j], H[i-1,j] - open) - ext       (vertical gap)
    H[i,j] = max(E[i,j], F[i,j], H[i-1,j-1] + s(a_i,b_j) [, 0 if local])

``F`` and the diagonal term depend only on row ``i-1`` and vectorise
directly.  ``E`` carries a dependency *along* the row, but Gotoh's
simplification (``E[j] = max(E[j-1], tempH[j-1] - open) - ext`` where
``tempH`` is ``H`` before the ``E`` contribution) turns it into a running
maximum: with ``Q[j] = tempH[j] - open + j*ext`` and ``e[j] = E[j]+j*ext``,

    e[j] = max(e[j-1], Q[j-1]),

i.e. a single ``np.maximum.accumulate`` per row.  Every row is therefore a
handful of fused NumPy vector operations — no Python-level loop over cells,
only over rows (the idiom recommended by the HPC guides: vectorise the
inner dimension, keep the interpreted loop on the outer one).

Boundary convention
-------------------
A block covers rows ``0..R-1`` and columns ``0..W-1`` in local coordinates.
Inputs are the DP values immediately *outside* the block:

* ``h_top[W]``, ``f_top[W]`` — row above the block,
* ``h_left[R]``, ``e_left[R]`` — column left of the block,
* ``h_diag`` — the corner cell above-left of the block.

Outputs mirror them (``h_bottom/f_bottom/h_right/e_right`` plus the new
corner).  Chaining blocks left-to-right and top-to-bottom with these
borders reproduces the monolithic DP bit-exactly; the multi-GPU engine
ships exactly ``(h_right, e_right)`` between devices, as the paper ships
border columns between neighbouring GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConfigError
from ..seq.scoring import Scoring
from .constants import DTYPE, MAX_SWEEP_WIDTH, NEG_INF, DpPolicy
from .scan import escan_row

#: Signature of the optional per-row callback: ``(local_row_index, H, E, F)``
#: with arrays valid only for the duration of the call (copy to keep).
RowSink = Callable[[int, np.ndarray, np.ndarray, np.ndarray], None]


@dataclass(frozen=True)
class BestCell:
    """Best DP cell seen: value and local (row, col) inside the block."""

    score: int
    row: int
    col: int

    @staticmethod
    def none() -> "BestCell":
        return BestCell(NEG_INF, -1, -1)

    def shifted(self, row0: int, col0: int) -> "BestCell":
        """The same cell in global coordinates (block origin at row0/col0)."""
        if self.row < 0:
            return self
        return BestCell(self.score, self.row + row0, self.col + col0)

    def better_than(self, other: "BestCell") -> bool:
        """Strictly better, or equal and earlier in row-major order (the
        deterministic tie-break used across the whole library)."""
        if self.score != other.score:
            return self.score > other.score
        if self.row != other.row:
            return 0 <= self.row < other.row or other.row < 0 <= self.row
        return 0 <= self.col < other.col or other.col < 0 <= self.col


@dataclass
class BlockResult:
    """Boundary outputs of one block sweep (see module docstring)."""

    h_bottom: np.ndarray
    f_bottom: np.ndarray
    h_right: np.ndarray
    e_right: np.ndarray
    corner: int  #: H at local (R-1, W-1); the diag input for the block below-right
    best: BestCell
    dtype: str = "int32"     #: DP dtype the block was actually computed in
    escalated: bool = False  #: a narrow attempt overflowed and was redone wide


def local_boundaries(rows: int, cols: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Boundaries of a block at the matrix origin under *local* (SW) rules:
    H borders are 0, gap states are -inf."""
    h_top = np.zeros(cols, dtype=DTYPE)
    f_top = np.full(cols, NEG_INF, dtype=DTYPE)
    h_left = np.zeros(rows, dtype=DTYPE)
    e_left = np.full(rows, NEG_INF, dtype=DTYPE)
    return h_top, f_top, h_left, e_left, 0


def global_boundaries(
    rows: int, cols: int, scoring: Scoring
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Boundaries at the origin under *global* (NW-Gotoh) rules: leading
    gaps are charged, so border H values are the gap costs."""
    j = np.arange(1, cols + 1, dtype=DTYPE)
    i = np.arange(1, rows + 1, dtype=DTYPE)
    h_top = (-scoring.gap_open - j * scoring.gap_extend).astype(DTYPE)
    h_left = (-scoring.gap_open - i * scoring.gap_extend).astype(DTYPE)
    # A path along the top border is inside a horizontal gap; entering the
    # matrix vertically from it re-opens, so F on the border is the gap value
    # minus nothing extra: classic NW-Gotoh uses F_top = -inf unless gaps may
    # chain; we keep -inf (a vertical gap cannot be a continuation of the
    # border's horizontal gap).
    f_top = np.full(cols, NEG_INF, dtype=DTYPE)
    e_left = np.full(rows, NEG_INF, dtype=DTYPE)
    return h_top, f_top, h_left, e_left, 0


def build_profile(b_codes: np.ndarray, scoring: Scoring) -> np.ndarray:
    """Per-column substitution profile ``P[x, j] = score(x, b[j])``.

    Row ``x`` is the score vector of every column base against vertical
    base ``x``; the sweep fetches one contiguous row per DP row.
    """
    return scoring.matrix.take(b_codes.astype(np.intp), axis=1).astype(DTYPE)


def narrow_entry_ok(
    h_top: np.ndarray,
    f_top: np.ndarray,
    h_left: np.ndarray,
    e_left: np.ndarray,
    h_diag: int,
    cap: int,
) -> bool:
    """Whether a block's int32 borders admit a narrow sweep under *cap*.

    H borders must be non-negative (the soundness argument for plain
    ``astype`` widening of the outputs needs the local-clamp invariant
    to hold from row 0) and every border value must sit under the
    overflow cap so the per-row cap check's induction base holds.  E/F
    borders may be arbitrarily negative — narrowing clips them to the
    policy sentinel, which is exact for the clipped local recurrence.
    """
    return (0 <= h_diag < cap
            and int(h_top.min()) >= 0 and int(h_top.max()) < cap
            and int(h_left.min()) >= 0 and int(h_left.max()) < cap
            and int(f_top.max()) < cap
            and int(e_left.max()) < cap)


def _sweep_block_narrow(
    a_codes: np.ndarray,
    profile: np.ndarray,
    h_top: np.ndarray,
    f_top: np.ndarray,
    h_left: np.ndarray,
    e_left: np.ndarray,
    h_diag: int,
    scoring: Scoring,
    dp: DpPolicy,
    cap: int,
    *,
    track_best: bool,
) -> BlockResult | None:
    """The local row sweep in a narrow dtype; ``None`` on overflow risk.

    Same recurrence as the wide loop in :func:`sweep_block`, computed in
    ``dp.kind`` with the borders narrowed on entry (E/F sentinels clipped
    to ``dp.neg_inf``).  After each row the row maximum is compared to
    *cap*: values below it guarantee (INTERNALS.md §11) that no
    intermediate exceeded the dtype range, so every cell equals the wide
    sweep's bit-for-bit.  A row maximum at or above *cap* aborts — the
    caller recomputes the block wide.
    """
    R = int(a_codes.size)
    W = int(profile.shape[1])
    kind = dp.kind
    neg = kind(dp.neg_inf)
    open_ = kind(scoring.gap_open)
    ext = kind(scoring.gap_extend)

    prof = profile.astype(kind)
    h_prev = h_top.astype(kind)                    # checked: 0 <= h < cap
    f_prev = np.maximum(f_top, dp.neg_inf).astype(kind)
    h_left_n = h_left.astype(kind)
    e_left_n = np.maximum(e_left, dp.neg_inf).astype(kind)
    h_right = np.empty(R, dtype=DTYPE)
    e_right = np.empty(R, dtype=DTYPE)

    j_ext = (np.arange(W, dtype=kind) * ext).astype(kind)
    diag = np.empty(W, dtype=kind)
    temp = np.empty(W, dtype=kind)
    scan = np.empty(W, dtype=kind)
    e_row = np.empty(W, dtype=kind)
    f_row = np.empty(W, dtype=kind)

    best = BestCell.none()
    best_score = 0
    corner_prev = kind(h_diag)

    for i in range(R):
        sub = prof[a_codes[i]]

        np.maximum(f_prev, h_prev - open_, out=f_row)
        f_row -= ext

        diag[0] = corner_prev
        diag[1:] = h_prev[:-1]
        np.add(diag, sub, out=temp)
        np.maximum(temp, f_row, out=temp)
        np.maximum(temp, 0, out=temp)

        escan_row(temp, h_left_n[i], e_left_n[i], open_, ext, j_ext, scan, e_row)

        np.maximum(temp, e_row, out=temp)

        # The overflow gate: a final-H maximum below cap certifies the
        # whole row (and the E/F state it feeds forward) stayed exact.
        j = int(temp.argmax())
        m = int(temp[j])
        if m >= cap:
            return None
        if track_best and m > best_score:
            best_score = m
            best = BestCell(m, i, j)

        h_right[i] = temp[-1]
        e_right[i] = e_row[-1]
        corner_prev = h_left_n[i]
        h_prev, temp = temp, h_prev
        f_prev, f_row = f_row, f_prev

    # Plain widening is exact: local clamping plus non-negative H borders
    # mean no output can carry a sentinel-derived value (INTERNALS.md §11).
    return BlockResult(
        h_bottom=h_prev.astype(DTYPE),
        f_bottom=f_prev.astype(DTYPE),
        h_right=h_right,
        e_right=e_right,
        corner=int(h_prev[-1]),
        best=best,
        dtype=dp.name,
    )


def sweep_block(
    a_codes: np.ndarray,
    profile: np.ndarray,
    h_top: np.ndarray,
    f_top: np.ndarray,
    h_left: np.ndarray,
    e_left: np.ndarray,
    h_diag: int,
    scoring: Scoring,
    *,
    local: bool = True,
    track_best: bool = True,
    row_sink: RowSink | None = None,
    sink_interval: int = 0,
    dp: DpPolicy | None = None,
) -> BlockResult:
    """Sweep one block row-by-row (see module docstring for the contract).

    Parameters
    ----------
    a_codes:
        Vertical-sequence codes for the block's rows (length R).
    profile:
        ``(5, W)`` profile from :func:`build_profile` for the block's
        columns.
    local:
        True for Smith-Waterman (clamp at 0, track best cell); False for
        the unclamped global recurrence used by the traceback stages.
    row_sink / sink_interval:
        When ``sink_interval > 0``, ``row_sink(i, H, E, F)`` is invoked for
        every local row ``i`` with ``(i+1) % sink_interval == 0`` — the
        "special rows" the traceback stages consume.  Arrays must be copied
        by the sink if kept.
    dp:
        Optional narrow :class:`~repro.sw.constants.DpPolicy`.  When set
        (and the sweep is local without a row sink), the block is first
        attempted in the narrow dtype; an overflow-cap hit escalates to
        the wide path, so the result is always bit-identical to int32.
        Borders and outputs stay int32 either way.
    """
    R = int(a_codes.size)
    W = int(profile.shape[1])
    if W == 0 or R == 0:
        raise ConfigError("sweep_block requires a non-empty block")
    if W > MAX_SWEEP_WIDTH:
        raise ConfigError(f"block width {W} exceeds MAX_SWEEP_WIDTH={MAX_SWEEP_WIDTH}")
    if h_top.shape != (W,) or f_top.shape != (W,):
        raise ConfigError("h_top/f_top must have one entry per block column")
    if h_left.shape != (R,) or e_left.shape != (R,):
        raise ConfigError("h_left/e_left must have one entry per block row")
    if row_sink is not None and sink_interval <= 0:
        raise ConfigError("row_sink requires a positive sink_interval")

    escalated = False
    if dp is not None and dp.narrow and local and row_sink is None:
        max_w = dp.max_width(scoring)
        if W > max_w:
            raise ConfigError(
                f"block width {W} exceeds {dp.name} max sweep width {max_w} "
                f"under this scoring scheme")
        cap = dp.overflow_limit(scoring, W)
        if narrow_entry_ok(h_top, f_top, h_left, e_left, h_diag, cap):
            result = _sweep_block_narrow(
                a_codes, profile, h_top, f_top, h_left, e_left, h_diag,
                scoring, dp, cap, track_best=track_best)
            if result is not None:
                return result
        escalated = True

    open_ = DTYPE(scoring.gap_open)
    ext = DTYPE(scoring.gap_extend)

    h_prev = h_top.astype(DTYPE, copy=True)
    f_prev = f_top.astype(DTYPE, copy=True)
    h_right = np.empty(R, dtype=DTYPE)
    e_right = np.empty(R, dtype=DTYPE)

    # Reusable scratch (one allocation set per block, not per row).
    j_ext = (np.arange(W, dtype=DTYPE) * ext).astype(DTYPE)
    diag = np.empty(W, dtype=DTYPE)
    temp = np.empty(W, dtype=DTYPE)
    scan = np.empty(W, dtype=DTYPE)
    e_row = np.empty(W, dtype=DTYPE)
    f_row = np.empty(W, dtype=DTYPE)

    best = BestCell.none()
    best_score = NEG_INF if not local else 0  # local never reports < 0 cells
    corner_prev = DTYPE(h_diag)  # H at (i-1, -1): left border of previous row

    for i in range(R):
        sub = profile[a_codes[i]]

        # F (vertical gap): depends only on the previous row.
        np.maximum(f_prev, h_prev - open_, out=f_row)
        f_row -= ext

        # Diagonal term H[i-1, j-1] + s.
        diag[0] = corner_prev
        diag[1:] = h_prev[:-1]
        np.add(diag, sub, out=temp)
        np.maximum(temp, f_row, out=temp)
        if local:
            np.maximum(temp, 0, out=temp)

        # E (horizontal gap) via running maximum:
        #   e[j] = E[j] + j*ext;  e[j] = max(e[j-1], Q[j-1]),
        #   Q[j] = tempH[j] - open + j*ext;
        #   e[0] = E[0] = max(E_left, H_left - open) - ext.
        # The shared helper writes Q pre-shifted and evaluates the
        # prefix-max with the active scan engine (see sw/scan.py).
        escan_row(temp, h_left[i], e_left[i], open_, ext, j_ext, scan, e_row)

        np.maximum(temp, e_row, out=temp)  # temp is now the final H row

        if track_best:
            j = int(temp.argmax())
            m = int(temp[j])
            if m > best_score:
                best_score = m
                best = BestCell(m, i, j)

        if row_sink is not None and (i + 1) % sink_interval == 0:
            row_sink(i, temp, e_row, f_row)

        h_right[i] = temp[-1]
        e_right[i] = e_row[-1]
        corner_prev = h_left[i]
        h_prev, temp = temp, h_prev  # swap buffers; h_prev now holds row i
        f_prev, f_row = f_row, f_prev

    return BlockResult(
        h_bottom=h_prev.copy(),
        f_bottom=f_prev.copy(),
        h_right=h_right,
        e_right=e_right,
        corner=int(h_prev[-1]),
        best=best,
        escalated=escalated,
    )


def sw_score(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    row_sink: RowSink | None = None,
    sink_interval: int = 0,
) -> BestCell:
    """Linear-space local (SW) score of the whole matrix in one block.

    Returns the best cell with 0-based *end* coordinates: ``row``/``col``
    are the indices of the last aligned pair in ``a``/``b``.
    """
    h_top, f_top, h_left, e_left, corner = local_boundaries(a_codes.size, b_codes.size)
    profile = build_profile(b_codes, scoring)
    result = sweep_block(
        a_codes, profile, h_top, f_top, h_left, e_left, corner, scoring,
        local=True, row_sink=row_sink, sink_interval=sink_interval,
    )
    return result.best
