"""Semi-global ("glocal") alignment modes.

Megabase pipelines often need alignments where leading/trailing gaps are
free on one side — e.g. locating a whole fragment inside a chromosome, or
overlapping two assembly contigs.  The Gotoh kernel already supports every
variant through its boundary vectors; this module wires the four classic
modes:

========================  ====================================================
mode                       semantics
========================  ====================================================
``QUERY_IN_REF``           all of *a* aligned, gaps before/after free in *b*
                           (fragment mapping)
``OVERLAP``                free leading gaps in either sequence, free trailing
                           gaps in either (dovetail/contig overlap)
``GLOBAL_A_LOCAL_B``       like QUERY_IN_REF but scored end anywhere in b
``END_FREE``               classic NW with free end gaps on both sequences
========================  ====================================================

All variants return a :class:`~repro.sw.kernel.BestCell` whose coordinates
are the end of the aligned region, and all are oracle-tested against a
naive implementation.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from ..errors import ConfigError
from ..seq.scoring import Scoring
from .constants import DTYPE, NEG_INF
from .kernel import BestCell, build_profile, sweep_block


class SemiGlobalMode(Enum):
    """Which boundary gaps are free (see module docstring)."""

    QUERY_IN_REF = "query_in_ref"
    OVERLAP = "overlap"
    END_FREE = "end_free"


def semiglobal_score(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    mode: SemiGlobalMode = SemiGlobalMode.QUERY_IN_REF,
) -> BestCell:
    """Best semi-global score under *mode*.

    ``QUERY_IN_REF``: every base of *a* is aligned (gaps inside *a* are
    charged), while *b* may contribute any window — leading columns are
    free (H top boundary = 0) and the score is read off the last row.

    ``OVERLAP``: leading gaps free on both sequences (both boundaries 0),
    score read off the last row *and* last column — the best dovetail.

    ``END_FREE``: like OVERLAP (free-end-gap NW); alias kept for
    discoverability.
    """
    m, n = int(a_codes.size), int(b_codes.size)
    if m == 0 or n == 0:
        raise ConfigError("semiglobal_score requires non-empty sequences")
    profile = build_profile(b_codes, scoring)

    i = np.arange(1, m + 1, dtype=DTYPE)
    if mode is SemiGlobalMode.QUERY_IN_REF:
        h_top = np.zeros(n, dtype=DTYPE)  # free leading gap in b
        h_left = (-scoring.gap_open - i * scoring.gap_extend).astype(DTYPE)
        corner = 0
    elif mode in (SemiGlobalMode.OVERLAP, SemiGlobalMode.END_FREE):
        h_top = np.zeros(n, dtype=DTYPE)
        h_left = np.zeros(m, dtype=DTYPE)
        corner = 0
    else:  # pragma: no cover - enum is closed
        raise ConfigError(f"unknown mode {mode}")
    f_top = np.full(n, NEG_INF, dtype=DTYPE)
    e_left = np.full(m, NEG_INF, dtype=DTYPE)

    res = sweep_block(a_codes, profile, h_top, f_top, h_left, e_left, corner,
                      scoring, local=False, track_best=False)

    # Read the free trailing boundary: last row always; last column too for
    # the overlap modes.
    best = BestCell.none()
    j_best = int(res.h_bottom.argmax())
    cand = BestCell(int(res.h_bottom[j_best]), m - 1, j_best)
    if cand.better_than(best):
        best = cand
    if mode in (SemiGlobalMode.OVERLAP, SemiGlobalMode.END_FREE):
        i_best = int(res.h_right.argmax())
        cand = BestCell(int(res.h_right[i_best]), i_best, n - 1)
        if cand.better_than(best):
            best = cand
    return best


def naive_semiglobal(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    mode: SemiGlobalMode = SemiGlobalMode.QUERY_IN_REF,
) -> int:
    """O(m*n)-memory reference implementation (tests only)."""
    m, n = int(a_codes.size), int(b_codes.size)
    H = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=np.int64)
    H[0, :] = 0
    if mode is SemiGlobalMode.QUERY_IN_REF:
        for i in range(1, m + 1):
            H[i, 0] = -(scoring.gap_open + i * scoring.gap_extend)
    else:
        H[:, 0] = 0
    sub = scoring.matrix
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[i, j] = max(E[i, j - 1], H[i, j - 1] - scoring.gap_open) - scoring.gap_extend
            F[i, j] = max(F[i - 1, j], H[i - 1, j] - scoring.gap_open) - scoring.gap_extend
            H[i, j] = max(E[i, j], F[i, j],
                          H[i - 1, j - 1] + sub[a_codes[i - 1], b_codes[j - 1]])
    best = int(H[m, 1:].max())
    if mode in (SemiGlobalMode.OVERLAP, SemiGlobalMode.END_FREE):
        best = max(best, int(H[1:, n].max()))
    return best
