"""Batched wavefront kernel: one NumPy sweep per row across many blocks.

The paper's premise is fine-grain wavefront parallelism — every block on
one external anti-diagonal is independent, so a GPU computes them all
concurrently.  The scalar path (:func:`repro.sw.kernel.sweep_block`) pays
the Python-level row loop once *per block*, which is exactly the
kernel-launch/amortisation overhead GPU aligners batch away.  This module
stacks all ``B`` resident blocks of a wavefront into 2-D ``(B, W)`` arrays
and executes the Gotoh recurrences with broadcasting, so the interpreted
row loop runs once per wavefront and every NumPy op touches ``B`` blocks
at a time (our "hardware" being BLAS/SIMD instead of CUDA cores).

Layout
------
``B`` blocks are padded to the wavefront's maximum width ``W`` and maximum
height ``R`` and stacked along axis 0:

* each block owns **one row of the stack**, so the segmented E-scan is a
  single ``np.maximum.accumulate(..., axis=1)`` — the accumulation runs
  along each block's columns and *cannot* leak into a neighbouring block
  by construction;
* ragged edge blocks (``W_k < W`` or ``R_k < R``) are handled by masking:
  padded boundary values are ``NEG_INF``, padded profile columns are 0,
  and the best-cell reduction replaces every padded lane with ``NEG_INF``
  before its single ``argmax`` pass, so padding can never win nor
  overflow (see INTERNALS.md section 6 for the headroom argument);
* per-block outputs (bottom/right borders, corner, best cell) are sliced
  back out of the stack after the sweep, bit-identical to what ``B``
  scalar :func:`~repro.sw.kernel.sweep_block` calls would produce.

Two allocation amortisers ride along:

* :class:`KernelWorkspace` — a shape-keyed arena of scratch buffers, so
  repeated sweeps (a blocked executor runs one per anti-diagonal; a chain
  worker one per block row) stop allocating ~10 fresh arrays each;
* :class:`ProfileCache` — a small content-keyed LRU over
  :func:`~repro.sw.kernel.build_profile`, so engines that see the same
  horizontal sequence repeatedly (the persistent
  :class:`~repro.multigpu.pool.WorkerPool`, batch campaigns) stop
  rebuilding the ``(5, W)`` profile per comparison.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigError
from ..seq.scoring import Scoring
from .constants import DTYPE, MAX_SWEEP_WIDTH, NEG_INF, DpPolicy, get_policy
from .kernel import BestCell, BlockResult, build_profile, narrow_entry_ok
from .scan import escan_segmented

#: Per-row callback of the batched sweep: ``(job_index, local_row, H, E, F)``
#: with the arrays sliced to the job's true width and valid only for the
#: duration of the call (copy to keep) — the scalar RowSink contract plus
#: the job index.
BatchRowSink = Callable[[int, int, np.ndarray, np.ndarray, np.ndarray], None]

# The kernel registry moved to sw/backend.py when the compiled backend
# landed; re-exported here because every engine historically imported it
# from this module.
from .backend import KERNELS, validate_kernel  # noqa: F401


class KernelWorkspace:
    """Capacity-keyed arena of reusable scratch arrays.

    ``take(tag, shape)`` keeps one flat buffer per ``(tag, dtype)`` that
    grows to the largest element count ever requested and hands out a
    reshaped prefix view, so sweeps whose geometry varies (wavefront
    batch sizes shrink at the grid corners, edge blocks are ragged)
    still allocate only when a tag's high-water mark rises.  Buffers
    hold *garbage* between uses — callers must overwrite before reading.
    Not thread-safe; give each concurrently-sweeping worker its own
    workspace (the process backends do).
    """

    def __init__(self) -> None:
        self._arena: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def take(self, tag: str, shape: tuple[int, ...], dtype=DTYPE) -> np.ndarray:
        key = (tag, np.dtype(dtype).str)
        need = int(np.prod(shape)) if shape else 1
        flat = self._arena.get(key)
        if flat is None or flat.size < need:
            flat = np.empty(need, dtype=dtype)
            self._arena[key] = flat
            self.misses += 1
        else:
            self.hits += 1
        return flat[:need].reshape(shape)

    def ramp(self, width: int, extend: int, dtype=DTYPE) -> np.ndarray:
        """The ``j * gap_extend`` offset vector.  Content is deterministic
        (unlike :meth:`take` scratch), and a narrower ramp is a prefix of
        a wider one, so one buffer per ``(extend, dtype)`` serves every
        width.  The dtype is part of the key — a run that mixes narrow
        and wide sweeps must never be served a ramp of the wrong width
        class (this was a latent bug while ``DTYPE`` was hardcoded).
        """
        key = (("ramp", extend), np.dtype(dtype).str)
        flat = self._arena.get(key)
        if flat is None or flat.size < width:
            flat = (np.arange(width, dtype=dtype) * dtype(extend)).astype(dtype)
            self._arena[key] = flat
            self.misses += 1
        else:
            self.hits += 1
        return flat[:width]

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arena.values())

    def __len__(self) -> int:
        return len(self._arena)

    def clear(self) -> None:
        self._arena.clear()


class ProfileCache:
    """Content-keyed LRU over :func:`~repro.sw.kernel.build_profile`.

    The key is ``(sequence digest, length, dtype, scoring parameters)`` —
    a stable identity for the *value* of the sequence, so the pool
    workers (which receive a fresh copy of their slab per comparison) hit
    the cache whenever the content repeats.  Digesting costs one linear
    read of the codes; a build costs five linear writes of int32, so a
    hit saves ~95% of the profile-construction memory traffic.  Capacity
    is small by design: profiles are 20 bytes per column and megabase
    entries are large.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity <= 0:
            raise ConfigError("profile cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key_of(b_codes: np.ndarray, scoring: Scoring,
               dp_dtype: str = "int32") -> tuple:
        codes = np.ascontiguousarray(b_codes)
        digest = hashlib.blake2b(codes.data, digest_size=16).digest()
        return (
            digest, codes.size, codes.dtype.str, dp_dtype,
            scoring.match, scoring.mismatch, scoring.gap_open, scoring.gap_extend,
        )

    def get(self, b_codes: np.ndarray, scoring: Scoring,
            dp_dtype: str = "int32") -> np.ndarray:
        # The DP dtype is part of the key: a cached narrow profile served
        # to a wide sweep (or vice versa) would silently change element
        # widths mid-run, so each dtype caches its own entry.
        key = self.key_of(b_codes, scoring, dp_dtype)
        profile = self._entries.get(key)
        if profile is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return profile
        self.misses += 1
        profile = build_profile(b_codes, scoring)
        if dp_dtype != "int32":
            profile = profile.astype(get_policy(dp_dtype).kind)
        self._entries[key] = profile
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return profile

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


#: Process-wide default cache used by the engines (each OS process gets
#: its own copy, so the pool's slab workers each cache their own slab).
_DEFAULT_PROFILE_CACHE = ProfileCache()


def cached_profile(
    b_codes: np.ndarray, scoring: Scoring, cache: ProfileCache | None = None,
    dp_dtype: str = "int32",
) -> np.ndarray:
    """:func:`~repro.sw.kernel.build_profile` through an LRU (treat the
    result as read-only — it is shared between callers)."""
    return (cache or _DEFAULT_PROFILE_CACHE).get(b_codes, scoring, dp_dtype)


@dataclass(frozen=True)
class BlockJob:
    """One block of a wavefront: the exact argument set of
    :func:`~repro.sw.kernel.sweep_block` minus the scoring scheme."""

    a_codes: np.ndarray   #: vertical codes for the block's rows (R_k)
    profile: np.ndarray   #: ``(5, W_k)`` column profile (may be a view)
    h_top: np.ndarray
    f_top: np.ndarray
    h_left: np.ndarray
    e_left: np.ndarray
    h_diag: int

    @property
    def rows(self) -> int:
        return int(self.a_codes.size)

    @property
    def cols(self) -> int:
        return int(self.profile.shape[1])

    def validate(self) -> None:
        rows, cols = self.rows, self.cols
        if rows == 0 or cols == 0:
            raise ConfigError("sweep_wavefront requires non-empty blocks")
        if cols > MAX_SWEEP_WIDTH:
            raise ConfigError(
                f"block width {cols} exceeds MAX_SWEEP_WIDTH={MAX_SWEEP_WIDTH}")
        if self.h_top.shape != (cols,) or self.f_top.shape != (cols,):
            raise ConfigError("h_top/f_top must have one entry per block column")
        if self.h_left.shape != (rows,) or self.e_left.shape != (rows,):
            raise ConfigError("h_left/e_left must have one entry per block row")


def sweep_wavefront(
    jobs: Sequence[BlockJob],
    scoring: Scoring,
    *,
    local: bool = True,
    track_best: bool = True,
    workspace: KernelWorkspace | None = None,
    row_sink: BatchRowSink | None = None,
    sink_interval: int = 0,
    dp: DpPolicy | None = None,
) -> list[BlockResult]:
    """Sweep every block of one wavefront in a single stacked row loop.

    Returns one :class:`~repro.sw.kernel.BlockResult` per job, in order,
    bit-identical to calling :func:`~repro.sw.kernel.sweep_block` on each
    job separately (the cross-kernel property the differential suite
    enforces).  ``row_sink(k, i, H, E, F)`` fires for every job ``k``
    whose local row ``i`` satisfies ``(i + 1) % sink_interval == 0`` and
    ``i < R_k`` — the scalar special-row contract, per block.

    With a narrow ``dp`` policy (local sweeps without a row sink only),
    eligible jobs are swept in the narrow dtype with a per-row overflow
    cap per lane; lanes that hit the cap — plus jobs whose entry borders
    already exceed it — are recomputed in one wide stacked sweep and
    spliced back in order, so the returned results are always
    bit-identical to the wide kernel.
    """
    if row_sink is not None and sink_interval <= 0:
        raise ConfigError("row_sink requires a positive sink_interval")
    if not jobs:
        return []
    for job in jobs:
        job.validate()
    ws = workspace if workspace is not None else KernelWorkspace()

    if dp is None or not dp.narrow or not local or row_sink is not None:
        results, _ = _sweep_stack(
            jobs, scoring, ws, local=local, track_best=track_best,
            row_sink=row_sink, sink_interval=sink_interval)
        return results

    max_w = dp.max_width(scoring)
    for job in jobs:
        if job.cols > max_w:
            raise ConfigError(
                f"block width {job.cols} exceeds {dp.name} max sweep width "
                f"{max_w} under this scoring scheme")
    # One cap for the whole wavefront, from the widest job: caps shrink
    # with width, so a shared cap is conservative (never unsound) for
    # the narrower lanes.
    cap = dp.overflow_limit(scoring, max(job.cols for job in jobs))
    narrow_idx = [k for k, job in enumerate(jobs)
                  if narrow_entry_ok(job.h_top, job.f_top, job.h_left,
                                     job.e_left, job.h_diag, cap)]
    narrow_set = set(narrow_idx)
    redo = [k for k in range(len(jobs)) if k not in narrow_set]
    results: list[BlockResult | None] = [None] * len(jobs)
    if narrow_idx:
        sub, over = _sweep_stack(
            [jobs[k] for k in narrow_idx], scoring, ws,
            local=True, track_best=track_best, dp=dp, cap=cap)
        for pos, k in enumerate(narrow_idx):
            if over[pos]:
                redo.append(k)
            else:
                results[k] = sub[pos]
    if redo:
        redo.sort()
        wide, _ = _sweep_stack(
            [jobs[k] for k in redo], scoring, ws, local=True,
            track_best=track_best)
        for pos, k in enumerate(redo):
            result = wide[pos]
            result.escalated = True
            results[k] = result
    return results  # type: ignore[return-value]


def _sweep_stack(
    jobs: Sequence[BlockJob],
    scoring: Scoring,
    ws: KernelWorkspace,
    *,
    local: bool,
    track_best: bool,
    row_sink: BatchRowSink | None = None,
    sink_interval: int = 0,
    dp: DpPolicy | None = None,
    cap: int | None = None,
) -> tuple[list[BlockResult | None], np.ndarray | None]:
    """The stacked row loop, parameterised over the DP dtype.

    Wide mode (``dp is None``) is the PR 2 kernel unchanged.  Narrow mode
    computes in ``dp.kind`` (inputs narrowed while stacking, outputs
    widened while unstacking) and tracks a per-lane sticky overflow flag:
    a lane whose padding-masked row maximum reaches *cap* may have lost
    exactness from the next row on, but its garbage stays inside its own
    axis-0 lane, so the sweep finishes and only that lane's result is
    dropped (returned as ``None`` with its overflow flag set) for the
    caller to recompute wide.
    """
    B = len(jobs)
    R = max(job.rows for job in jobs)
    W = max(job.cols for job in jobs)
    r_of = np.array([job.rows for job in jobs], dtype=np.intp)
    w_of = np.array([job.cols for job in jobs], dtype=np.intp)
    ragged_rows = bool((r_of != R).any())
    ragged_cols = bool((w_of != W).any())

    narrow = dp is not None and dp.narrow
    kind = dp.kind if narrow else DTYPE
    neg = dp.neg_inf if narrow else NEG_INF

    open_ = kind(scoring.gap_open)
    ext = kind(scoring.gap_extend)
    j_ext = ws.ramp(W, int(scoring.gap_extend), dtype=kind)
    idx_b = np.arange(B, dtype=np.intp)

    # -- stack the inputs (pads: sentinel boundaries, zero profile/codes;
    # narrow mode clips the E/F sentinels to the policy's neg_inf while
    # downcasting — exact for the clipped local recurrence) --------------
    prof = ws.take("wf.prof", (B, 5, W), dtype=kind)
    a_stack = ws.take("wf.a", (B, R), dtype=np.intp)
    h_prev = ws.take("wf.h_prev", (B, W), dtype=kind)
    f_prev = ws.take("wf.f_prev", (B, W), dtype=kind)
    h_left = ws.take("wf.h_left", (B, R), dtype=kind)
    e_left = ws.take("wf.e_left", (B, R), dtype=kind)
    corner0 = ws.take("wf.corner0", (B,), dtype=kind)
    for k, job in enumerate(jobs):
        wk, rk = job.cols, job.rows
        prof[k, :, :wk] = job.profile
        prof[k, :, wk:] = 0
        a_stack[k, :rk] = job.a_codes
        a_stack[k, rk:] = 0
        h_prev[k, :wk] = job.h_top
        if narrow:
            f_prev[k, :wk] = np.maximum(job.f_top, neg)
            e_left[k, :rk] = np.maximum(job.e_left, neg)
        else:
            f_prev[k, :wk] = job.f_top
            e_left[k, :rk] = job.e_left
        h_prev[k, wk:] = neg
        f_prev[k, wk:] = neg
        h_left[k, :rk] = job.h_left
        h_left[k, rk:] = neg
        e_left[k, rk:] = neg
        corner0[k] = job.h_diag
    prof2d = prof.reshape(B * 5, W)
    prof_base = idx_b * 5

    # -- scratch reused across rows (and, via the workspace, sweeps) -----
    sub = ws.take("wf.sub", (B, W), dtype=kind)
    diag = ws.take("wf.diag", (B, W), dtype=kind)
    temp = ws.take("wf.temp", (B, W), dtype=kind)
    scan = ws.take("wf.scan", (B, W), dtype=kind)
    e_row = ws.take("wf.e_row", (B, W), dtype=kind)
    f_row = ws.take("wf.f_row", (B, W), dtype=kind)
    gap_tmp = ws.take("wf.gap_tmp", (B, W), dtype=kind)
    e0 = ws.take("wf.e0", (B,), dtype=kind)
    take_idx = ws.take("wf.take_idx", (B,), dtype=np.intp)
    h_right = ws.take("wf.h_right", (B, R), dtype=kind)
    e_right = ws.take("wf.e_right", (B, R), dtype=kind)
    h_bot = ws.take("wf.h_bot", (B, W), dtype=kind)
    f_bot = ws.take("wf.f_bot", (B, W), dtype=kind)
    w_last = w_of - 1

    # Narrow mode needs the masked row maxima even when the caller does
    # not track the best cell: they drive the per-lane overflow gate.
    need_rowmax = track_best or cap is not None
    masked = None
    col_valid = None
    if need_rowmax:
        masked = ws.take("wf.masked", (B, W), dtype=kind)
        if ragged_cols:
            col_valid = ws.take("wf.col_valid", (B, W), dtype=bool)
            np.less(np.arange(W, dtype=np.intp)[None, :], w_of[:, None],
                    out=col_valid)
            masked.fill(neg)  # the padded lanes stay at the sentinel for good

    best_score = ws.take("wf.best_score", (B,), dtype=kind)
    best_row = ws.take("wf.best_row", (B,), dtype=np.intp)
    best_col = ws.take("wf.best_col", (B,), dtype=np.intp)
    best_score.fill(0 if local else NEG_INF)  # local never reports <= 0 cells
    best_row.fill(-1)
    best_col.fill(-1)
    overflow = np.zeros(B, dtype=bool) if cap is not None else None

    corner_prev = corner0  # H at (i-1, -1) per block
    for i in range(R):
        np.add(prof_base, a_stack[:, i], out=take_idx)
        np.take(prof2d, take_idx, axis=0, out=sub)

        # F (vertical gap): depends only on the previous row.
        np.subtract(h_prev, open_, out=gap_tmp)
        np.maximum(f_prev, gap_tmp, out=f_row)
        f_row -= ext

        # Diagonal term H[i-1, j-1] + s (the shift stays inside each
        # block: every block owns a full stack row).
        diag[:, 0] = corner_prev
        diag[:, 1:] = h_prev[:, :-1]
        np.add(diag, sub, out=temp)
        np.maximum(temp, f_row, out=temp)
        if local:
            np.maximum(temp, 0, out=temp)

        # Segmented E-scan along axis 1 (shared helper, sw/scan.py);
        # blocks cannot leak into each other because each owns its own
        # axis-0 lane.
        escan_segmented(temp, h_left[:, i], e_left[:, i], open_, ext,
                        j_ext, scan, e_row, e0)

        np.maximum(temp, e_row, out=temp)  # temp is now the final H row

        if need_rowmax:
            # Single argmax pass per row over the padding-masked stack;
            # strict ">" keeps the scalar kernel's row-major tie-break.
            if ragged_cols:
                np.copyto(masked, temp, where=col_valid)
            else:
                np.copyto(masked, temp)
            if ragged_rows and i > 0:
                masked[r_of <= i] = neg
            am = masked.argmax(axis=1)
            m = masked[idx_b, am]
            if overflow is not None:
                # Sticky per-lane gate: from the row a lane's maximum
                # reaches cap its values may be inexact (though still
                # contained in its own lane) — drop it at unstack time.
                np.logical_or(overflow, m >= cap, out=overflow)
            if track_best:
                upd = m > best_score
                if upd.any():
                    best_score[upd] = m[upd]
                    best_row[upd] = i
                    best_col[upd] = am[upd]

        if row_sink is not None and (i + 1) % sink_interval == 0:
            for k in range(B):
                if i < r_of[k]:
                    wk = int(w_of[k])
                    row_sink(k, i, temp[k, :wk], e_row[k, :wk], f_row[k, :wk])

        h_right[:, i] = temp[idx_b, w_last]
        e_right[:, i] = e_row[idx_b, w_last]
        if ragged_rows:
            fin = np.flatnonzero(r_of == i + 1)
            if fin.size:
                h_bot[fin] = temp[fin]
                f_bot[fin] = f_row[fin]
        elif i == R - 1:
            np.copyto(h_bot, temp)
            np.copyto(f_bot, f_row)
        corner_prev = h_left[:, i]
        h_prev, temp = temp, h_prev  # swap buffers; h_prev now holds row i
        f_prev, f_row = f_row, f_prev

    # -- unstack: fresh per-block borders (the stack is workspace-owned;
    # narrow borders are widened back to int32 — exact, since local
    # clamping plus non-negative H entry borders keep every output
    # sentinel-free, see INTERNALS.md §11) --------------------------------
    results: list[BlockResult | None] = []
    dtype_name = dp.name if narrow else "int32"
    for k, job in enumerate(jobs):
        if overflow is not None and overflow[k]:
            results.append(None)
            continue
        wk, rk = job.cols, job.rows
        if best_row[k] >= 0:
            best = BestCell(int(best_score[k]), int(best_row[k]), int(best_col[k]))
        else:
            best = BestCell.none()
        results.append(BlockResult(
            h_bottom=h_bot[k, :wk].astype(DTYPE) if narrow else h_bot[k, :wk].copy(),
            f_bottom=f_bot[k, :wk].astype(DTYPE) if narrow else f_bot[k, :wk].copy(),
            h_right=h_right[k, :rk].astype(DTYPE) if narrow else h_right[k, :rk].copy(),
            e_right=e_right[k, :rk].astype(DTYPE) if narrow else e_right[k, :rk].copy(),
            corner=int(h_bot[k, wk - 1]),
            best=best,
            dtype=dtype_name,
        ))
    return results, overflow
