"""The multi-stage alignment pipeline (CUDAlign stages 1-6 analogue).

Retrieving a full local alignment of megabase sequences runs as a pipeline
of stages, each much cheaper than the one-shot full-matrix approach:

* **Stage 1 — score pass.**  Linear-space local sweep of the whole matrix:
  best score and its *end point*.  Optionally saves *special rows* (H and F
  snapshots every ``special_interval`` rows) for stage 2b.  This is the
  stage the multi-GPU engine distributes; at megabase scale it dominates
  total time, which is why the paper reports GCUPS of this stage.

* **Stage 2 — start pass.**  An *anchored* reverse sweep from the end
  point: a global-start DP over the reversed prefixes whose first aligned
  pair is pinned to the end point.  The cell where the running maximum
  reaches the known score is the alignment's *start point*; the sweep is
  chunked so it terminates as soon as that happens (for similar sequences
  this stops after a near-diagonal band instead of the whole prefix).

* **Stage 2b — crossing points (optional).**  With special rows from
  stage 1, the optimal path's crossing column on each special row can be
  found by matching forward and reverse DP values
  (``Hf + Hr == score`` for a diagonal crossing,
  ``Ff + Fr + gap_open == score`` for a vertical-gap crossing).  Crossing
  points split the traceback region into independent partitions — the
  paper family's way of parallelising stages 3+.

* **Stage 3 — alignment pass.**  Myers-Miller linear-space global
  alignment between start and end (per partition when crossing points are
  available), validated by re-scoring.

The pipeline is exact: every stage's output is checked against the known
score, and the final :class:`~repro.sw.alignment.Alignment` validates
before being returned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AlignmentError, ConfigError
from ..seq.scoring import Scoring
from .alignment import Alignment
from .constants import DTYPE, NEG_INF
from .kernel import BestCell, build_profile, sweep_block
from .myers_miller import DEFAULT_BASE_CELLS, align_global


@dataclass
class SpecialRowStore:
    """Snapshots of H and F on every ``interval``-th matrix row.

    Row index ``r`` (0-based, the index of the last consumed ``a`` base)
    is stored when ``(r + 1) % interval == 0``.  At megabase scale the
    paper's system spills these to disk; here they live in memory — the
    *capacity accounting* (``bytes_stored``) is what the experiments use.
    """

    interval: int
    rows: dict[int, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigError("special row interval must be positive")

    def store(self, row: int, h: np.ndarray, f: np.ndarray) -> None:
        self.rows[row] = (h.copy(), f.copy())

    def row_indices(self) -> list[int]:
        return sorted(self.rows)

    @property
    def bytes_stored(self) -> int:
        return sum(h.nbytes + f.nbytes for h, f in self.rows.values())


@dataclass(frozen=True)
class Stage1Result:
    """Best score, its end point (0-based last aligned pair), and the
    optional special rows."""

    score: int
    end_i: int
    end_j: int
    special_rows: SpecialRowStore | None


def stage1_score(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    special_interval: int = 0,
    row_store=None,
) -> Stage1Result:
    """Stage 1: linear-space local score + end point (+ special rows).

    Pass ``row_store`` (e.g. a :class:`repro.sw.rowstore.BudgetedRowStore`)
    to control where special rows live; otherwise an in-memory
    :class:`SpecialRowStore` is created when ``special_interval > 0``.
    """
    if row_store is not None:
        store = row_store
        special_interval = row_store.interval
    else:
        store = SpecialRowStore(special_interval) if special_interval > 0 else None

    sink = None
    if store is not None:
        def sink(row: int, h: np.ndarray, _e: np.ndarray, f: np.ndarray) -> None:
            store.store(row, h, f)

    m, n = int(a_codes.size), int(b_codes.size)
    h_top = np.zeros(n, dtype=DTYPE)
    f_top = np.full(n, NEG_INF, dtype=DTYPE)
    h_left = np.zeros(m, dtype=DTYPE)
    e_left = np.full(m, NEG_INF, dtype=DTYPE)
    res = sweep_block(
        a_codes, build_profile(b_codes, scoring),
        h_top, f_top, h_left, e_left, 0, scoring,
        local=True, row_sink=sink, sink_interval=special_interval if store else 0,
    )
    best = res.best
    if best.row < 0:
        return Stage1Result(0, -1, -1, store)
    return Stage1Result(best.score, best.row, best.col, store)


def stage2_start(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    score: int,
    end_i: int,
    end_j: int,
    *,
    chunk_rows: int = 1024,
) -> tuple[int, int]:
    """Stage 2: find the start point of an optimal alignment ending at
    ``(end_i, end_j)`` with the given *score*.

    Runs the anchored reverse DP in chunks of rows and stops at the first
    chunk whose maximum reaches *score*.  Returns ``(start_i, start_j)``
    (0-based indices of the first aligned pair).
    """
    if score <= 0:
        raise AlignmentError("stage2 requires a positive score")
    ar = a_codes[: end_i + 1][::-1].copy()
    br = b_codes[: end_j + 1][::-1].copy()
    m, n = int(ar.size), int(br.size)
    profile = build_profile(br, scoring)

    # Anchored boundaries: everything -inf except the corner, so the only
    # way into the matrix is the diagonal move aligning ar[0] with br[0].
    h_top = np.full(n, NEG_INF, dtype=DTYPE)
    f_top = np.full(n, NEG_INF, dtype=DTYPE)
    corner = 0

    best = BestCell.none()
    row0 = 0
    while row0 < m:
        rows = min(chunk_rows, m - row0)
        h_left = np.full(rows, NEG_INF, dtype=DTYPE)
        e_left = np.full(rows, NEG_INF, dtype=DTYPE)
        res = sweep_block(
            ar[row0 : row0 + rows], profile,
            h_top, f_top, h_left, e_left, corner, scoring,
            local=False, track_best=True,
        )
        cell = res.best.shifted(row0, 0)
        if cell.better_than(best):
            best = cell
        if best.score >= score:
            break
        h_top, f_top = res.h_bottom, res.f_bottom
        corner = NEG_INF  # only the true origin corner is anchored
        row0 += rows

    if best.score != score:
        raise AlignmentError(
            f"stage2 reverse sweep reached {best.score}, expected {score}; "
            "end point and score are inconsistent"
        )
    return end_i - best.row, end_j - best.col


@dataclass(frozen=True)
class CrossingPoint:
    """Where an optimal path crosses a special row.

    ``row`` is the special row index (0-based last consumed ``a`` base);
    ``col`` the matching column; ``gapped`` is True when the path crosses
    inside a vertical gap (both halves meet in F state).
    """

    row: int
    col: int
    gapped: bool


def find_crossings(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    result: Stage1Result,
    start_i: int,
    start_j: int,
) -> list[CrossingPoint]:
    """Stage 2b: locate the optimal path's crossing on each special row.

    For every stored special row strictly between the alignment's start and
    end rows, runs the anchored reverse DP down to that row and matches
    forward/backward values: a cell is a diagonal crossing when
    ``Hf + Hr == score`` and a gapped crossing when
    ``Ff + Fr + gap_open == score``.  Returns crossings ordered by row.

    This mirrors the paper family's stages 2-3 (special rows bound how much
    of the matrix the traceback must revisit and let stage 4+ run per
    partition); the alignment itself is produced by
    :func:`stage3_align` either way.
    """
    if result.special_rows is None:
        raise ConfigError("stage1 was run without special rows")
    store = result.special_rows
    score = result.score
    rows_between = [r for r in store.row_indices() if start_i <= r < result.end_i]
    if not rows_between:
        return []

    # One anchored reverse sweep from the end point; capture reverse H/F on
    # each special row via the sink (reverse row p maps to forward row
    # end_i - p - 1 boundary... we need values *at* forward row r, i.e.
    # reverse row index p = end_i - r - 1 consumed).
    ar = a_codes[: result.end_i + 1][::-1].copy()
    br = b_codes[: result.end_j + 1][::-1].copy()
    n = int(br.size)
    want_rows = {result.end_i - r - 1: r for r in rows_between}
    rev_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def sink(p: int, h: np.ndarray, _e: np.ndarray, f: np.ndarray) -> None:
        if p in want_rows:
            rev_rows[p] = (h.copy(), f.copy())

    h_top = np.full(n, NEG_INF, dtype=DTYPE)
    f_top = np.full(n, NEG_INF, dtype=DTYPE)
    h_left = np.full(int(ar.size), NEG_INF, dtype=DTYPE)
    e_left = np.full(int(ar.size), NEG_INF, dtype=DTYPE)
    sweep_block(
        ar, build_profile(br, scoring),
        h_top, f_top, h_left, e_left, 0, scoring,
        local=False, track_best=False, row_sink=sink, sink_interval=1,
    )

    return _match_crossings(store, rev_rows, want_rows, score, scoring)


def _match_crossings(
    store,
    rev_rows: dict[int, tuple[np.ndarray, np.ndarray]],
    want_rows: dict[int, int],
    score: int,
    scoring: Scoring,
) -> list[CrossingPoint]:
    """Pair forward special rows with captured reverse rows (see
    :func:`find_crossings` for the matching conditions and index algebra:
    forward vertex (I=r+1, J=j) has Hf = hf[j-1]; its reverse complement
    has Hr = hr_rev[end_j - j]; with hr = hr_rev[::-1] the condition at
    k = j-1 pairs hf[k] with hr[k+1])."""
    crossings: list[CrossingPoint] = []
    for p, r in sorted(want_rows.items(), key=lambda kv: kv[1]):
        if p not in rev_rows:  # special row above the start point
            continue
        hf, ff = store.rows[r]
        hr_rev, fr_rev = rev_rows[p]
        width = int(hr_rev.size)  # == end_j + 1
        hfv = hf[:width].astype(np.int64)
        ffv = ff[:width].astype(np.int64)
        hr = hr_rev[::-1].astype(np.int64)
        fr = fr_rev[::-1].astype(np.int64)
        diag = hfv[:-1] + hr[1:]
        gap = ffv[:-1] + fr[1:] + scoring.gap_open
        hit = np.nonzero(diag == score)[0]
        if hit.size:
            crossings.append(CrossingPoint(row=r, col=int(hit[0]) + 1, gapped=False))
            continue
        hit = np.nonzero(gap == score)[0]
        if hit.size:
            crossings.append(CrossingPoint(row=r, col=int(hit[0]) + 1, gapped=True))
    return crossings


def stage2_with_crossings(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    result: Stage1Result,
    *,
    chunk_rows: int = 1024,
) -> tuple[int, int, list[CrossingPoint]]:
    """Stages 2 and 2b fused: ONE anchored reverse sweep finds the start
    point *and* captures the reverse rows needed for crossing points.

    This is the production path (``align_local_partitioned`` uses it): the
    separate :func:`stage2_start` + :func:`find_crossings` combination
    sweeps the reverse matrix twice.  Early termination still applies —
    every wanted reverse row lies above the start row, so all captures
    happen before the stop condition fires.
    """
    if result.special_rows is None:
        raise ConfigError("stage2_with_crossings needs stage-1 special rows")
    score, end_i, end_j = result.score, result.end_i, result.end_j
    if score <= 0:
        raise AlignmentError("stage2 requires a positive score")
    store = result.special_rows
    want_rows = {end_i - r - 1: r for r in store.row_indices() if r < end_i}

    ar = a_codes[: end_i + 1][::-1].copy()
    br = b_codes[: end_j + 1][::-1].copy()
    m, n = int(ar.size), int(br.size)
    profile = build_profile(br, scoring)
    rev_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    h_top = np.full(n, NEG_INF, dtype=DTYPE)
    f_top = np.full(n, NEG_INF, dtype=DTYPE)
    corner = 0
    best = BestCell.none()
    row0 = 0
    while row0 < m:
        rows = min(chunk_rows, m - row0)
        h_left = np.full(rows, NEG_INF, dtype=DTYPE)
        e_left = np.full(rows, NEG_INF, dtype=DTYPE)

        def sink(i: int, h: np.ndarray, _e: np.ndarray, f: np.ndarray,
                 base=row0) -> None:
            p = base + i
            if p in want_rows:
                rev_rows[p] = (h.copy(), f.copy())

        res = sweep_block(
            ar[row0 : row0 + rows], profile,
            h_top, f_top, h_left, e_left, corner, scoring,
            local=False, track_best=True, row_sink=sink, sink_interval=1,
        )
        cell = res.best.shifted(row0, 0)
        if cell.better_than(best):
            best = cell
        if best.score >= score:
            break
        h_top, f_top = res.h_bottom, res.f_bottom
        corner = NEG_INF
        row0 += rows

    if best.score != score:
        raise AlignmentError(
            f"stage2 reverse sweep reached {best.score}, expected {score}"
        )
    start_i = end_i - best.row
    start_j = end_j - best.col
    usable = {p: r for p, r in want_rows.items() if start_i <= r < end_i}
    crossings = _match_crossings(store, rev_rows, usable, score, scoring)
    return start_i, start_j, crossings


def stage3_align(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    score: int,
    start: tuple[int, int],
    end: tuple[int, int],
    *,
    base_cells: int = DEFAULT_BASE_CELLS,
) -> Alignment:
    """Stage 3: Myers-Miller global alignment between the two anchors."""
    si, sj = start
    ei, ej = end
    sub = align_global(
        a_codes[si : ei + 1], b_codes[sj : ej + 1], scoring, base_cells=base_cells
    )
    aln = Alignment(
        score=sub.score,
        ops=sub.ops,
        start_i=si,
        end_i=ei + 1,
        start_j=sj,
        end_j=ej + 1,
    )
    if aln.score != score:
        raise AlignmentError(
            f"stage3 alignment scored {aln.score}, stage1 reported {score}"
        )
    return aln


def _stage3_fallback(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    s1,
    si: int,
    sj: int,
    base_cells: int,
) -> Alignment:
    """Monolithic traceback reusing stage-1/2 work already in hand.

    The partitioned path computes ``s1`` (full quadratic sweep) and the
    stage-2 start before it knows whether its crossings telescope.  When
    they don't, only stage 3 needs redoing monolithically —
    ``stage2_with_crossings`` finds the same start point as
    ``stage2_start``, so falling back through :func:`align_local` would
    pay both quadratic passes a second time for identical answers.
    """
    aln = stage3_align(
        a_codes, b_codes, scoring, s1.score, (si, sj), (s1.end_i, s1.end_j),
        base_cells=base_cells,
    )
    aln.validate(a_codes, b_codes, scoring)
    return aln


def align_local_partitioned(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    special_interval: int = 512,
    base_cells: int = DEFAULT_BASE_CELLS,
) -> Alignment:
    """Stage 4-style partitioned traceback: align between crossing points.

    Diagonal crossing points on the special rows split the traceback
    region into independent partitions, each solved by a (much smaller)
    Myers-Miller global alignment — the paper family's way of keeping the
    traceback's working set bounded and parallelisable.  The stitched
    alignment is validated against the stage-1 score; if the chosen
    crossings belong to different co-optimal paths and do not telescope
    (possible under score ties), the function falls back to a monolithic
    stage-3 traceback that reuses the stage-1 sweep and stage-2 start
    already computed — the result is exact either way.
    """
    if special_interval <= 0:
        raise ConfigError("align_local_partitioned needs a positive special_interval")
    s1 = stage1_score(a_codes, b_codes, scoring, special_interval=special_interval)
    if s1.score <= 0:
        return Alignment(score=0, ops="", start_i=0, end_i=0, start_j=0, end_j=0)
    si, sj, crossings = stage2_with_crossings(a_codes, b_codes, scoring, s1)
    # Usable anchors: diagonal crossings with strictly monotone columns.
    anchors: list[tuple[int, int]] = []
    last_col = sj
    for c in crossings:
        if c.gapped or c.col <= last_col or c.col > s1.end_j:
            continue
        if c.row <= si or c.row >= s1.end_i:
            continue
        anchors.append((c.row, c.col))
        last_col = c.col

    # Partition boundaries: (row+1, col) per anchor — a[..row] pairs with
    # b[..col-1] on the left side (verified by the crossing-score tests).
    cuts = [(si, sj)] + [(r + 1, col) for r, col in anchors] + [(s1.end_i + 1, s1.end_j + 1)]
    ops: list[str] = []
    total = 0
    for (i0, j0), (i1, j1) in zip(cuts, cuts[1:]):
        sub = align_global(a_codes[i0:i1], b_codes[j0:j1], scoring,
                           base_cells=base_cells)
        total += sub.score
        ops.append(sub.ops)

    if total != s1.score:
        # Co-optimal-path tie: crossings do not telescope; fall back to a
        # monolithic stage 3 (s1 and the start point are already exact).
        return _stage3_fallback(a_codes, b_codes, scoring, s1, si, sj, base_cells)
    aln = Alignment(
        score=s1.score,
        ops="".join(ops),
        start_i=si,
        end_i=s1.end_i + 1,
        start_j=sj,
        end_j=s1.end_j + 1,
    )
    # Stitching at shared vertices can only merge gaps (raising the score);
    # rescore equality is therefore a hard validity check.
    if aln.rescore(a_codes, b_codes, scoring) != s1.score:
        return _stage3_fallback(a_codes, b_codes, scoring, s1, si, sj, base_cells)
    return aln


def align_local(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    special_interval: int = 0,
    base_cells: int = DEFAULT_BASE_CELLS,
) -> Alignment:
    """Full pipeline: optimal local alignment in linear space.

    Returns the empty alignment (score 0) when no positive-scoring pair of
    substrings exists.  The result always passes
    :meth:`~repro.sw.alignment.Alignment.validate`.
    """
    s1 = stage1_score(a_codes, b_codes, scoring, special_interval=special_interval)
    if s1.score <= 0:
        return Alignment(score=0, ops="", start_i=0, end_i=0, start_j=0, end_j=0)
    si, sj = stage2_start(a_codes, b_codes, scoring, s1.score, s1.end_i, s1.end_j)
    aln = stage3_align(
        a_codes, b_codes, scoring, s1.score, (si, sj), (s1.end_i, s1.end_j),
        base_cells=base_cells,
    )
    aln.validate(a_codes, b_codes, scoring)
    return aln
