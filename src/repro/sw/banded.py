"""Banded Smith-Waterman: exact within a diagonal band.

For highly similar sequences (the paper's chromosome homologs) the optimal
path stays near the main diagonal, so a banded sweep with a wide-enough
band finds the same score at a fraction of the cost.  The library uses it
as an independent cross-check of the full kernels and as a fast screen in
the examples; it is *not* part of the paper's system (which is exact by
construction), so results are labelled with the band half-width used.

Implementation: the band is swept row by row over a fixed-width window of
``2*half_width + 1`` columns centred on the diagonal; the window shifts by
one column per row, so the horizontal-gap scan runs inside the window and
values leaving the band are treated as -inf — for all three DP states, H
and both gap continuations E/F (standard banded semantics).  A gap that
crosses the band edge therefore scores -inf and can never re-enter: E
moves only increase the offset ``j - i``, F moves only decrease it and
diagonal moves preserve it, so leaving the band is terminal for a path.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..seq.scoring import Scoring
from .constants import DTYPE, NEG_INF
from .kernel import BestCell


def banded_score(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    half_width: int,
) -> BestCell:
    """Best local score restricted to ``|i - j| <= half_width``.

    Equals the unrestricted score whenever the optimal path stays within
    the band (guaranteed as ``half_width`` approaches ``max(m, n)``).
    """
    if half_width < 0:
        raise ConfigError("half_width must be >= 0")
    m, n = int(a_codes.size), int(b_codes.size)
    if m == 0 or n == 0:
        return BestCell.none()

    w = 2 * half_width + 1
    open_ = int(scoring.gap_open)
    ext = int(scoring.gap_extend)
    sub_matrix = scoring.matrix

    # Window k = 0..w-1 maps to column j = i - half_width + k (0-based).
    h_prev = np.full(w, NEG_INF, dtype=DTYPE)
    f_prev = np.full(w, NEG_INF, dtype=DTYPE)
    # Row -1 (boundary): H = 0 inside valid columns.
    ks = np.arange(w)
    j_row = -1 - half_width + ks
    h_prev[(j_row >= -1) & (j_row < n)] = 0

    best = BestCell.none()
    j_ext = (ks * ext).astype(DTYPE)
    for i in range(m):
        j0 = i - half_width
        js = j0 + ks
        valid = (js >= 0) & (js < n)
        boundary = js == -1  # virtual column -1: the local H=0 boundary
        sub = np.full(w, NEG_INF, dtype=DTYPE)
        jv = js[valid]
        sub[valid] = sub_matrix[int(a_codes[i]), b_codes[jv]]

        # The window shifted right by one: previous-row window index for
        # column j is k+1; the diagonal (i-1, j-1) sits at previous k.
        h_up = np.full(w, NEG_INF, dtype=DTYPE)      # H(i-1, j)
        f_up = np.full(w, NEG_INF, dtype=DTYPE)
        h_up[:-1] = h_prev[1:]
        f_up[:-1] = f_prev[1:]
        diag = h_prev                                  # H(i-1, j-1)

        f_row = np.maximum(f_up, h_up - open_) - ext
        temp = np.maximum(diag + sub, f_row)
        np.maximum(temp, 0, out=temp)
        temp[~valid] = NEG_INF
        temp[boundary] = 0

        # Horizontal scan inside the window (same trick as the main kernel).
        scan = temp - open_ + j_ext
        scan[1:] = scan[:-1]
        scan[0] = NEG_INF
        np.maximum.accumulate(scan, out=scan)
        e_row = scan - j_ext
        np.maximum(temp, e_row, out=temp)
        temp[~valid] = NEG_INF
        temp[boundary] = 0

        mx = int(temp.max())
        if mx > max(best.score, 0):
            k = int(temp.argmax())
            best = BestCell(mx, i, j0 + k)

        # Re-mask F before storing: window slots outside the matrix (and
        # the virtual H=0 boundary column) must carry -inf into the next
        # row, per the band contract above.  Without this the stored F at
        # dead slots drifts a further -gap_extend per row, eroding the
        # NEG_INF headroom on long sweeps.
        f_row[~valid] = NEG_INF
        f_row[boundary] = NEG_INF
        h_prev, f_prev = temp, f_row
    return best
