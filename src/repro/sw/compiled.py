"""Compiled kernel backend: JIT-fused row sweeps over the Gotoh recurrence.

The NumPy kernels evaluate each DP row as a handful of full-width vector
ops plus one *sequential* E-scan — the scan is the documented Amdahl
floor (INTERNALS.md §11) that caps the narrow-dtype win at ~1.15x.  This
backend removes the floor two ways:

* **With numba** (``pip install .[compiled]``): a single ``@njit`` fused
  cell loop computes E, F, H and the best-cell candidate in one pass —
  no NumPy temporaries, no per-row ufunc launches, and the E dependency
  is carried in a register, so the "scan" costs one ``max`` per cell
  inside the same loop that already touches the cell.  The loop is
  dtype-generic; numba lazily specialises it per DP dtype (int32 /
  int16 / int8), which is where the narrow kernels finally cash their
  byte-ratio win: int16 halves the memory traffic *and* no longer
  funnels through a dtype-insensitive serial scan.

* **Without numba**: the backend transparently falls back to the NumPy
  kernels running under the Kogge–Stone scan engine (``sw/scan.py``) —
  the log-step parallel prefix-max formulation.  This fallback is the
  *reference oracle* for the JIT path: same recurrence, same narrow
  policy, bit-identical outputs, and it keeps every ``compiled`` code
  path testable on machines without the optional dependency.

Exactness contract: ``sweep_block_compiled`` is bit-identical to
:func:`repro.sw.kernel.sweep_block` for every (dtype, mode, pruning,
escalation) combination — the same narrow entry gate, the same per-row
overflow cap with wide recompute, the same row-major best-cell
tie-break.  The cross-engine differential suite pins this.

JIT warmup: the first call per compiled specialisation pays the numba
compile (hundreds of ms).  Engines must call :func:`warmup` once per
process *before* the first timed block (the pool workers do it at
spawn; the one-shot workers wrap it in a tracer ``warmup`` span) so
latency histograms and GCUPS figures never fold compile time into row
0.  ``MGSW_WARMUP_DELAY=<seconds>`` injects an artificial warmup cost —
the telemetry tests use it to prove the exclusion holds even where
numba itself is absent.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..errors import ConfigError
from ..seq.scoring import Scoring
from . import backend
from .constants import DTYPE, MAX_SWEEP_WIDTH, NEG_INF, DpPolicy, get_policy
from .kernel import BestCell, BlockResult, build_profile, local_boundaries, narrow_entry_ok, sweep_block
from .scan import use_scan_engine

#: Sentinel cap for wide sweeps: no int32 row maximum can reach it, so
#: the jitted overflow gate compiles to a dead branch.
_NO_CAP = np.int64(1) << 62

_JIT = None
_JIT_FAILED = False
_WARMED: set[str] = set()


def reset_jit() -> None:
    """Drop the compiled function and warmup record (test hook — pair
    with monkeypatching :data:`repro.sw.backend.NUMBA`)."""
    global _JIT, _JIT_FAILED
    _JIT = None
    _JIT_FAILED = False
    _WARMED.clear()


def _get_jit():
    """The jitted sweep, building it on first use; ``None`` when numba
    is absent (or its compilation failed — sticky, so a broken install
    degrades to the oracle once instead of retrying per block)."""
    global _JIT, _JIT_FAILED
    if _JIT is not None or _JIT_FAILED:
        return _JIT
    nb = backend.NUMBA
    if nb is None:
        return None
    try:
        _JIT = _build_jit(nb)
    except Exception:
        _JIT_FAILED = True
        _JIT = None
    return _JIT


def jit_available() -> bool:
    """Whether ``kernel="compiled"`` runs the JIT path (vs the oracle)."""
    return _get_jit() is not None


def _build_jit(nb):
    """Compile the fused row sweep (lazily specialised per DP dtype)."""

    @nb.njit(nogil=True, cache=True)
    def _sweep_rows(a_codes, prof, h_row, f_row, h_left, e_left, corner,
                    open_, ext, zero, local, track_best, cap,
                    h_right, e_right, best_out):
        # One fused pass per cell: E carried in a register (the scan is
        # free), F and the diagonal read from the previous row in place.
        # h_row/f_row arrive holding the top borders and leave holding
        # the bottom row.  Returns True when a row maximum reaches cap
        # (narrow overflow — caller recomputes wide).
        R = a_codes.shape[0]
        W = h_row.shape[0]
        best_s = best_out[0]
        for i in range(R):
            code = a_codes[i]
            hl = h_left[i]          # final H[i, j-1]; starts at the left border
            e = e_left[i]           # E[i, j-1]
            d = corner              # H[i-1, j-1]
            row_best = np.int64(-_NO_CAP)
            row_j = -1
            for j in range(W):
                hp = h_row[j]       # H[i-1, j]
                a = hl - open_
                if e < a:
                    e = a
                e = e - ext         # E[i, j]
                b = hp - open_
                f = f_row[j]
                if f < b:
                    f = b
                f = f - ext         # F[i, j]
                h = d + prof[code, j]
                if h < f:
                    h = f
                if h < e:
                    h = e
                if local and h < zero:
                    h = zero
                d = hp
                h_row[j] = h
                f_row[j] = f
                hl = h
                v = np.int64(h)
                if v > row_best:
                    row_best = v
                    row_j = j
            h_right[i] = hl
            e_right[i] = e
            corner = h_left[i]
            if row_best >= cap:
                return True
            if track_best and row_best > best_s:
                best_s = row_best
                best_out[0] = row_best
                best_out[1] = i
                best_out[2] = row_j
        return False

    return _sweep_rows


def _run_jit(sweep, a_codes, profile, h_top, f_top, h_left, e_left, h_diag,
             scoring: Scoring, *, local: bool, track_best: bool,
             dp: DpPolicy | None = None, cap: int | None = None):
    """One jitted sweep in ``dp.kind`` (or int32); ``None`` on overflow.

    Border narrowing matches ``_sweep_block_narrow`` exactly: H borders
    plain-cast (the entry gate certified them), E/F sentinels clipped to
    the policy's ``neg_inf``; outputs are widened with a plain
    ``astype``, exact under the local-clamp invariant (INTERNALS.md §11).
    """
    narrow = dp is not None
    kind = dp.kind if narrow else DTYPE
    R = int(a_codes.size)
    prof = np.ascontiguousarray(profile, dtype=kind)
    h_row = h_top.astype(kind, copy=True)
    if narrow:
        f_row = np.maximum(f_top, dp.neg_inf).astype(kind)
        h_l = h_left.astype(kind)
        e_l = np.maximum(e_left, dp.neg_inf).astype(kind)
    else:
        f_row = f_top.astype(kind, copy=True)
        h_l = np.ascontiguousarray(h_left, dtype=kind)
        e_l = np.ascontiguousarray(e_left, dtype=kind)
    h_right = np.empty(R, dtype=kind)
    e_right = np.empty(R, dtype=kind)
    best_out = np.empty(3, dtype=np.int64)
    best_out[0] = 0 if local else NEG_INF   # the NumPy kernels' tie-break base
    best_out[1] = -1
    best_out[2] = -1
    overflow = sweep(
        np.ascontiguousarray(a_codes, dtype=np.int64), prof, h_row, f_row,
        h_l, e_l, kind(h_diag), kind(scoring.gap_open),
        kind(scoring.gap_extend), kind(0), bool(local), bool(track_best),
        np.int64(cap) if cap is not None else _NO_CAP,
        h_right, e_right, best_out)
    if overflow:
        return None
    if best_out[1] >= 0:
        best = BestCell(int(best_out[0]), int(best_out[1]), int(best_out[2]))
    else:
        best = BestCell.none()
    return BlockResult(
        h_bottom=h_row.astype(DTYPE) if narrow else h_row,
        f_bottom=f_row.astype(DTYPE) if narrow else f_row,
        h_right=h_right.astype(DTYPE) if narrow else h_right,
        e_right=e_right.astype(DTYPE) if narrow else e_right,
        corner=int(h_row[-1]),
        best=best,
        dtype=dp.name if narrow else "int32",
    )


def sweep_block_compiled(
    a_codes: np.ndarray,
    profile: np.ndarray,
    h_top: np.ndarray,
    f_top: np.ndarray,
    h_left: np.ndarray,
    e_left: np.ndarray,
    h_diag: int,
    scoring: Scoring,
    *,
    local: bool = True,
    track_best: bool = True,
    dp: DpPolicy | None = None,
) -> BlockResult:
    """:func:`repro.sw.kernel.sweep_block` semantics on the compiled path.

    Same contract minus the row sink (the traceback stages that need
    special rows call the NumPy kernels directly).  Narrow policies run
    the same entry gate / per-row cap / wide-escalation protocol as the
    scalar kernel, so results are bit-identical across every dtype and
    escalation outcome.  Without numba this degrades to the pure-NumPy
    oracle: ``sweep_block`` under the Kogge–Stone scan engine.
    """
    R = int(a_codes.size)
    W = int(profile.shape[1])
    if W == 0 or R == 0:
        raise ConfigError("sweep_block requires a non-empty block")
    if W > MAX_SWEEP_WIDTH:
        raise ConfigError(f"block width {W} exceeds MAX_SWEEP_WIDTH={MAX_SWEEP_WIDTH}")
    if h_top.shape != (W,) or f_top.shape != (W,):
        raise ConfigError("h_top/f_top must have one entry per block column")
    if h_left.shape != (R,) or e_left.shape != (R,):
        raise ConfigError("h_left/e_left must have one entry per block row")

    sweep = _get_jit()
    if sweep is None:
        with use_scan_engine("kogge_stone"):
            return sweep_block(
                a_codes, profile, h_top, f_top, h_left, e_left, h_diag,
                scoring, local=local, track_best=track_best, dp=dp)

    escalated = False
    if dp is not None and dp.narrow and local:
        max_w = dp.max_width(scoring)
        if W > max_w:
            raise ConfigError(
                f"block width {W} exceeds {dp.name} max sweep width {max_w} "
                f"under this scoring scheme")
        cap = dp.overflow_limit(scoring, W)
        if narrow_entry_ok(h_top, f_top, h_left, e_left, h_diag, cap):
            result = _run_jit(
                sweep, a_codes, profile, h_top, f_top, h_left, e_left,
                h_diag, scoring, local=True, track_best=track_best,
                dp=dp, cap=cap)
            if result is not None:
                return result
        escalated = True

    result = _run_jit(
        sweep, a_codes, profile, h_top, f_top, h_left, e_left, h_diag,
        scoring, local=local, track_best=track_best)
    result.escalated = escalated
    return result


def sweep_wavefront_compiled(
    jobs,
    scoring: Scoring,
    *,
    local: bool = True,
    track_best: bool = True,
    workspace=None,
    dp: DpPolicy | None = None,
) -> list[BlockResult]:
    """Batched-API adapter: sweep each job through the compiled kernel.

    The batched kernel exists to amortise the *interpreted* row loop
    across blocks; the jitted loop has no interpreted rows to amortise,
    so per-block dispatch is already optimal and the stack/pad/unstack
    machinery (and its workspace) is unnecessary — the parameter is
    accepted for signature parity and ignored.
    """
    del workspace
    return [
        sweep_block_compiled(
            job.a_codes, job.profile, job.h_top, job.f_top, job.h_left,
            job.e_left, job.h_diag, scoring, local=local,
            track_best=track_best, dp=dp)
        for job in jobs
    ]


def warmup(dp_dtypes: tuple[str, ...] = ("int32", "int16", "int8"),
           *, force: bool = False) -> float:
    """Compile the jitted sweep's dtype specialisations; returns seconds.

    Idempotent per process (per dtype) unless *force*.  Each dtype is
    warmed through the full ``sweep_block_compiled`` protocol on a tiny
    block — narrow dtypes compile both their narrow specialisation and
    the wide escalation target.  A no-op (0.0 s) without numba, except
    for the ``MGSW_WARMUP_DELAY`` hook: a float number of seconds slept
    unconditionally so tests can simulate compile cost on any machine.

    Engines call this once per process before the first timed block so
    compile time lands in an explicit ``warmup`` tracer span instead of
    polluting ``block_sweep_seconds`` and the ProgressBoard rates.
    """
    t0 = time.perf_counter()
    delay = float(os.environ.get("MGSW_WARMUP_DELAY", "0") or 0.0)
    if delay > 0:
        time.sleep(delay)
    if _get_jit() is not None:
        from ..seq import DNA_DEFAULT

        todo = [n for n in dp_dtypes if force or n not in _WARMED]
        if todo:
            n = 8
            rng = np.random.default_rng(0)
            a = rng.integers(0, 4, size=n).astype(np.int8)
            b = rng.integers(0, 4, size=n).astype(np.int8)
            profile = build_profile(b, DNA_DEFAULT)
            h_top, f_top, h_left, e_left, corner = local_boundaries(n, n)
            for name in todo:
                pol = get_policy(name)
                dp = pol if pol.narrow and n <= pol.max_width(DNA_DEFAULT) else None
                sweep_block_compiled(a, profile, h_top, f_top, h_left,
                                     e_left, corner, DNA_DEFAULT, dp=dp)
                if dp is not None:
                    # Compile the wide escalation target too: hot blocks
                    # must not pay a mid-run compile on first overflow.
                    sweep_block_compiled(a, profile, h_top, f_top, h_left,
                                         e_left, corner, DNA_DEFAULT)
                _WARMED.add(name)
    return time.perf_counter() - t0
