"""Naive full-matrix Gotoh DP — the correctness oracle.

Everything else in :mod:`repro.sw` (the vectorised kernel, the block
decomposition, the multi-GPU chain, the linear-space traceback) is tested
cell-exactly against this module on small inputs.  It is deliberately
written as a direct transcription of the recurrences — O(m*n) memory, plain
loops, no cleverness — so that a reviewer can audit it against the paper's
equations in one sitting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AlignmentError
from ..seq.scoring import Scoring
from .constants import DTYPE, NEG_INF


@dataclass
class FullMatrices:
    """The three Gotoh DP matrices, shape ``(m+1, n+1)``, 1-based cells.

    ``H[i, j]`` is the best score of an alignment ending with ``a[i-1]``
    aligned against ``b[j-1]`` (or a gap state ending there for ``E``/``F``).
    Row/column 0 are the boundary.
    """

    H: np.ndarray
    E: np.ndarray
    F: np.ndarray
    local: bool

    @property
    def score(self) -> int:
        """Best local score (local mode) or bottom-right H (global mode)."""
        if self.local:
            return int(self.H.max())
        return int(self.H[-1, -1])

    def best_cell(self) -> tuple[int, int, int]:
        """(score, i, j) of the best cell, 1-based, first in row-major order."""
        flat = int(self.H.argmax())
        i, j = divmod(flat, self.H.shape[1])
        return int(self.H[i, j]), i, j


def full_matrices(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    local: bool = True,
) -> FullMatrices:
    """Compute the full H/E/F matrices (small inputs only)."""
    m, n = int(a_codes.size), int(b_codes.size)
    H = np.full((m + 1, n + 1), NEG_INF, dtype=DTYPE)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=DTYPE)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=DTYPE)
    sub = scoring.matrix
    open_, ext = scoring.gap_open, scoring.gap_extend

    if local:
        H[0, :] = 0
        H[:, 0] = 0
    else:
        H[0, 0] = 0
        for j in range(1, n + 1):
            H[0, j] = -open_ - j * ext
        for i in range(1, m + 1):
            H[i, 0] = -open_ - i * ext

    for i in range(1, m + 1):
        ai = int(a_codes[i - 1])
        for j in range(1, n + 1):
            E[i, j] = max(E[i, j - 1], H[i, j - 1] - open_) - ext
            F[i, j] = max(F[i - 1, j], H[i - 1, j] - open_) - ext
            h = max(E[i, j], F[i, j], H[i - 1, j - 1] + sub[ai, b_codes[j - 1]])
            H[i, j] = max(h, 0) if local else h
    return FullMatrices(H=H, E=E, F=F, local=local)


def sw_score_naive(a_codes: np.ndarray, b_codes: np.ndarray, scoring: Scoring) -> tuple[int, int, int]:
    """Best local score and its 0-based end coordinates ``(score, i, j)``.

    ``(i, j)`` index the last aligned pair; ``(-1, -1)`` for an empty
    alignment (score 0).
    """
    mats = full_matrices(a_codes, b_codes, scoring, local=True)
    score, i, j = mats.best_cell()
    if score <= 0:
        return 0, -1, -1
    return score, i - 1, j - 1


def traceback(
    mats: FullMatrices,
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    end: tuple[int, int] | None = None,
) -> list[str]:
    """Recover one optimal alignment as a list of ops, end to start reversed.

    Ops: ``"M"`` aligned pair (match or mismatch), ``"D"`` gap in *b*
    (consumes a base of *a*), ``"I"`` gap in *a* (consumes a base of *b*).
    Local mode stops at the first 0-valued H cell reached in H state;
    global mode stops at the origin.

    The tie-break prefers ``M`` over ``D`` over ``I`` — the same preference
    the linear-space traceback uses, so both produce identical alignments.
    """
    H, E, F = mats.H, mats.E, mats.F
    sub = scoring.matrix
    open_, ext = scoring.gap_open, scoring.gap_extend

    if end is None:
        if mats.local:
            _, i, j = mats.best_cell()
        else:
            i, j = H.shape[0] - 1, H.shape[1] - 1
    else:
        i, j = end

    ops: list[str] = []
    state = "H"
    guard = H.shape[0] * H.shape[1] + H.shape[0] + H.shape[1] + 4
    while guard > 0:
        guard -= 1
        if state == "H":
            if mats.local and H[i, j] == 0:
                break
            if not mats.local and i == 0 and j == 0:
                break
            if not mats.local and (i == 0 or j == 0):
                # On the global boundary: remaining moves are pure gap.
                while i > 0:
                    ops.append("D")
                    i -= 1
                while j > 0:
                    ops.append("I")
                    j -= 1
                break
            if i > 0 and j > 0 and H[i, j] == H[i - 1, j - 1] + sub[a_codes[i - 1], b_codes[j - 1]]:
                ops.append("M")
                i -= 1
                j -= 1
            elif H[i, j] == F[i, j]:
                state = "F"
            elif H[i, j] == E[i, j]:
                state = "E"
            else:
                raise AlignmentError(f"inconsistent H cell at ({i},{j})")
        elif state == "F":
            ops.append("D")
            if F[i, j] == H[i - 1, j] - open_ - ext:
                state = "H"
            elif F[i, j] != F[i - 1, j] - ext:
                raise AlignmentError(f"inconsistent F cell at ({i},{j})")
            i -= 1
        else:  # E
            ops.append("I")
            if E[i, j] == H[i, j - 1] - open_ - ext:
                state = "H"
            elif E[i, j] != E[i, j - 1] - ext:
                raise AlignmentError(f"inconsistent E cell at ({i},{j})")
            j -= 1
    else:
        raise AlignmentError("traceback did not terminate")
    ops.reverse()
    return ops


def align_naive(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    *,
    local: bool = True,
) -> tuple[int, list[str], tuple[int, int], tuple[int, int]]:
    """Full naive alignment.

    Returns ``(score, ops, (start_i, start_j), (end_i, end_j))`` with
    0-based, end-exclusive coordinates into *a*/*b* (i.e. the aligned
    regions are ``a[start_i:end_i]`` and ``b[start_j:end_j]``).
    """
    mats = full_matrices(a_codes, b_codes, scoring, local=local)
    if local:
        score, ei, ej = mats.best_cell()
        if score <= 0:
            return 0, [], (0, 0), (0, 0)
        ops = traceback(mats, a_codes, b_codes, scoring, end=(ei, ej))
        si = ei - sum(1 for o in ops if o != "I")
        sj = ej - sum(1 for o in ops if o != "D")
        return score, ops, (si, sj), (ei, ej)
    ops = traceback(mats, a_codes, b_codes, scoring)
    return mats.score, ops, (0, 0), (int(a_codes.size), int(b_codes.size))
