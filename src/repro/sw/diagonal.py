"""Anti-diagonal Smith-Waterman kernel — the paper's literal data layout.

GPU SW kernels parallelise over *anti-diagonals*: every cell on diagonal
``d = i + j`` depends only on diagonals ``d-1`` (gap moves) and ``d-2``
(the match move), so all its cells compute concurrently.  The production
kernel in :mod:`repro.sw.kernel` uses an algebraically equivalent row
sweep (better suited to NumPy); this module implements the genuine
anti-diagonal schedule as an independent cross-check — two kernels with
different dependency orders agreeing cell-exactly is strong evidence
against schedule bugs — and as the reference for what the simulated GPUs
conceptually execute.

Storage: three rolling diagonal buffers per DP matrix (H, E, F at ``d``,
``d-1``, ``d-2``), each of length ``min(m, n)``; cells of diagonal ``d``
occupy rows ``i`` in ``[max(0, d - n + 1), min(m - 1, d)]``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..seq.scoring import Scoring
from .constants import DTYPE, NEG_INF
from .kernel import BestCell


def sw_score_diagonal(a_codes: np.ndarray, b_codes: np.ndarray, scoring: Scoring) -> BestCell:
    """Local SW score via anti-diagonal sweeps (see module docstring).

    Returns the same :class:`BestCell` (score + 0-based end coordinates,
    row-major tie-break) as :func:`repro.sw.kernel.sw_score`.
    """
    m, n = int(a_codes.size), int(b_codes.size)
    if m == 0 or n == 0:
        raise ConfigError("sw_score_diagonal requires non-empty sequences")

    width = min(m, n)
    sub = scoring.matrix
    open_ = DTYPE(scoring.gap_open)
    ext = DTYPE(scoring.gap_extend)

    # Buffers indexed by row i - lo(d), where lo(d) = max(0, d - n + 1).
    h_prev = np.full(width, 0, dtype=DTYPE)       # H on diagonal d-1
    h_prev2 = np.full(width, 0, dtype=DTYPE)      # H on diagonal d-2
    e_prev = np.full(width, NEG_INF, dtype=DTYPE)
    f_prev = np.full(width, NEG_INF, dtype=DTYPE)
    lo_prev = 0
    lo_prev2 = 0

    best_score = 0
    best = BestCell.none()

    for d in range(m + n - 1):
        lo = max(0, d - n + 1)
        hi = min(m - 1, d)
        size = hi - lo + 1
        rows = np.arange(lo, hi + 1)
        cols = d - rows

        subs = sub[a_codes[rows], b_codes[cols]].astype(DTYPE)

        def shifted(buf: np.ndarray, buf_lo: int, want_rows: np.ndarray,
                    buf_size: int) -> np.ndarray:
            """Values of *buf* (a previous diagonal) at the given rows,
            NEG_INF outside the previous diagonal's range."""
            idx = want_rows - buf_lo
            ok = (idx >= 0) & (idx < buf_size)
            out = np.full(want_rows.size, NEG_INF, dtype=DTYPE)
            out[ok] = buf[idx[ok]]
            return out

        size_prev = min(m - 1, d - 1) - lo_prev + 1 if d >= 1 else 0
        size_prev2 = min(m - 1, d - 2) - lo_prev2 + 1 if d >= 2 else 0

        # Vertical gap: cell above is (i-1, j) on diagonal d-1.
        h_up = shifted(h_prev, lo_prev, rows - 1, size_prev) if d >= 1 else \
            np.full(size, NEG_INF, dtype=DTYPE)
        f_up = shifted(f_prev, lo_prev, rows - 1, size_prev) if d >= 1 else \
            np.full(size, NEG_INF, dtype=DTYPE)
        f_cur = np.maximum(f_up, h_up - open_) - ext

        # Horizontal gap: cell left is (i, j-1), also on diagonal d-1.
        h_left = shifted(h_prev, lo_prev, rows, size_prev) if d >= 1 else \
            np.full(size, NEG_INF, dtype=DTYPE)
        e_left = shifted(e_prev, lo_prev, rows, size_prev) if d >= 1 else \
            np.full(size, NEG_INF, dtype=DTYPE)
        e_cur = np.maximum(e_left, h_left - open_) - ext

        # Diagonal move: (i-1, j-1) on diagonal d-2; the matrix boundary
        # (i == 0 or j == 0) contributes H = 0.
        if d >= 2:
            h_diag = shifted(h_prev2, lo_prev2, rows - 1, size_prev2)
        else:
            h_diag = np.full(size, NEG_INF, dtype=DTYPE)
        boundary = (rows == 0) | (cols == 0)
        h_diag[boundary] = 0

        h_cur = np.maximum(np.maximum(h_diag + subs, f_cur), e_cur)
        np.maximum(h_cur, 0, out=h_cur)

        mx = int(h_cur.max())
        if mx > best_score:
            # Row-major tie-break: among this diagonal's maxima pick the
            # smallest row (they share i + j, so smallest i wins row-major).
            k = int(np.argmax(h_cur))
            best_score = mx
            best = BestCell(mx, int(rows[k]), int(cols[k]))
        elif mx == best_score and best.row >= 0:
            k = int(np.argmax(h_cur))
            cand = BestCell(mx, int(rows[k]), int(cols[k]))
            if cand.better_than(best):
                best = cand

        h_prev2, lo_prev2 = h_prev, lo_prev
        h_prev, e_prev, f_prev, lo_prev = h_cur, e_cur, f_cur, lo
    return best
