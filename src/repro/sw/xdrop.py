"""Heuristic alignment tier: X-drop extension and the adaptive band.

The exact engines compute every cell of the DP matrix.  Production
genomics traffic is dominated by "find the good alignment fast" queries
where the optimal path hugs the main diagonal, and LOGAN-style X-drop
extension plus an adaptive band deliver orders-of-magnitude speedups on
similar sequences.  This module is that tier:

* :func:`xdrop_score` — greedy anti-diagonal extension anchored at the
  matrix origin.  A live window of rows per anti-diagonal is kept; cells
  whose extension score has dropped more than ``x`` below the running
  best leave the window, and the sweep terminates when the window dies.
* :func:`adaptive_banded_score` — promotes the fixed-width banded sweep
  (:mod:`repro.sw.banded`) into a first-class engine: the matrix is
  swept in block-row stripes over a column window around the current
  centre diagonal; the band **recenters** on the best cell of each
  stripe and **widens** (doubling, up to a cap) whenever the stripe's
  best hugs an interior band edge, recomputing the stripe at the new
  width.
* :func:`band_intersects` — the static band/block intersection test the
  blocked engines use to skip out-of-band blocks entirely
  (``mode="banded"``), compounding with distributed pruning.
* :func:`assess_heuristic` — the ``mode="auto"`` confidence check: a
  heuristic answer is trusted only when the band did not saturate, the
  best cell sits away from the band edge, and the score clears a
  Karlin-Altschul significance threshold (:mod:`repro.stats.karlin`).

Soundness (INTERNALS.md section 10): every heuristic cell value is the
score of a genuine alignment path, so heuristic scores are lower bounds
of the exact local score — a heuristic can under-report, never
over-report.  ``mode="auto"`` re-runs the exact engine whenever the
confidence check fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigError
from ..seq.scoring import Scoring
from .constants import DTYPE, NEG_INF
from .kernel import BestCell, build_profile, sweep_block

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .blocks import BlockSpec

#: Engine mode selector shared by every engine front-end.
MODES = ("exact", "banded", "xdrop", "auto")

#: Default band half-width for ``mode="banded"``/``"auto"`` — generous
#: for percent-level divergence (indel drift of similar genomes is far
#: smaller), tiny next to megabase matrix widths.
DEFAULT_BAND_WIDTH = 64

#: Default X-drop threshold, in score units (LOGAN's scale).
DEFAULT_XDROP_X = 20

#: E-value above which an auto-mode heuristic score is not trusted.
SIGNIFICANCE_EVALUE = 1e-4


def validate_mode(mode: str) -> None:
    if mode not in MODES:
        raise ConfigError(f"unknown mode {mode!r}; expected one of {MODES}")


# ---------------------------------------------------------------------------
# X-drop extension
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class XDropOutcome:
    """Result of one X-drop extension sweep."""

    best: BestCell
    #: DP cells actually evaluated (the live-window sizes summed).
    cells_computed: int
    #: Anti-diagonals visited before the window died (or ``m + n - 1``).
    diagonals: int
    #: True when the window died before the last anti-diagonal.
    terminated: bool

    @property
    def score(self) -> int:
        return self.best.score if self.best.row >= 0 else 0


def xdrop_score(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    x: int = DEFAULT_XDROP_X,
) -> XDropOutcome:
    """Greedy X-drop extension anchored at the matrix origin.

    The extension DP is *unclamped* (no local-mode floor at 0): every
    computed ``H[i, j]`` is the score of one concrete alignment path from
    the origin corner to ``(i, j)``, hence a lower bound of the exact
    local value at that cell — the reported score never exceeds the
    exact Smith-Waterman score.  On identical sequences the main
    diagonal never drops, so the window retains it throughout and the
    exact score ``m * match`` is returned.

    Cells on anti-diagonal ``d`` whose score has fallen more than *x*
    below the running best leave the live window ``[lo, hi]``; the sweep
    terminates when no cell survives.  Leading gaps are not modelled
    (the extension is anchored at cell ``(0, 0)``); they could only
    lower the extension score, so the lower-bound contract holds.
    """
    if x <= 0:
        raise ConfigError("xdrop x must be positive")
    m, n = int(a_codes.size), int(b_codes.size)
    if m == 0 or n == 0:
        return XDropOutcome(BestCell.none(), 0, 0, False)

    sub = scoring.matrix.astype(DTYPE)
    open_ = DTYPE(scoring.gap_open)
    ext = DTYPE(scoring.gap_extend)

    def window(buf: np.ndarray, buf_lo: int, lo_want: int, size: int) -> np.ndarray:
        """Values of *buf* (a previous diagonal window) at the contiguous
        rows ``[lo_want, lo_want + size)``, NEG_INF outside the stored
        range.  Live windows are always contiguous row ranges, so this is
        pure slice arithmetic — the sweep's hot path."""
        out = np.full(size, NEG_INF, dtype=DTYPE)
        s0 = lo_want - buf_lo
        b0 = max(s0, 0)
        b1 = min(s0 + size, buf.size)
        if b1 > b0:
            out[b0 - s0 : b1 - s0] = buf[b0:b1]
        return out

    # Rolling buffers for diagonals d-1 and d-2, windowed to the rows
    # that were live on each.
    h_prev = h_prev2 = e_prev = f_prev = np.empty(0, dtype=DTYPE)
    lo_prev = lo_prev2 = 0
    lo, hi = 0, 0  # live row window for the next diagonal

    best = BestCell.none()
    best_raw = NEG_INF  # unclamped running best (drop reference)
    cells = 0
    terminated = False
    d_done = 0
    for d in range(m + n - 1):
        row_lo = max(lo, 0, d - n + 1)
        row_hi = min(hi, m - 1, d)
        if row_lo > row_hi:
            terminated = True
            break
        size = row_hi - row_lo + 1
        cells += size
        d_done = d + 1

        # Rows ascend row_lo..row_hi, so cols d - row descend: slice the
        # b window ascending and reverse it.
        subs = sub[a_codes[row_lo:row_hi + 1],
                   b_codes[d - row_hi:d - row_lo + 1][::-1]]

        h_up = window(h_prev, lo_prev, row_lo - 1, size)
        f_up = window(f_prev, lo_prev, row_lo - 1, size)
        f_cur = np.maximum(f_up, h_up - open_) - ext

        h_lf = window(h_prev, lo_prev, row_lo, size)
        e_lf = window(e_prev, lo_prev, row_lo, size)
        e_cur = np.maximum(e_lf, h_lf - open_) - ext

        h_diag = window(h_prev2, lo_prev2, row_lo - 1, size)
        if d == 0:
            h_diag[0] = 0  # the origin corner H(-1, -1)

        h_cur = np.maximum(np.maximum(h_diag + subs, f_cur), e_cur)
        # Keep NEG_INF an absorbing floor: repeated gap charges on dead
        # cells must not creep toward the int32 limit on long sweeps.
        np.maximum(h_cur, NEG_INF, out=h_cur)
        np.maximum(f_cur, NEG_INF, out=f_cur)
        np.maximum(e_cur, NEG_INF, out=e_cur)

        mx = int(h_cur.max())
        if mx > best_raw:
            best_raw = mx
        if mx > 0:
            k = int(np.argmax(h_cur))
            row = row_lo + k
            cand = BestCell(mx, row, d - row)
            if cand.better_than(best):
                best = cand

        keep = h_cur >= best_raw - x
        if not keep.any():
            terminated = True
            break
        first = int(np.argmax(keep))
        last = size - 1 - int(np.argmax(keep[::-1]))
        lo = row_lo + first
        hi = row_lo + last + 1  # the window may grow one row down

        h_prev2, lo_prev2 = h_prev, lo_prev
        h_prev, e_prev, f_prev, lo_prev = h_cur, e_cur, f_cur, row_lo
    else:
        terminated = False

    return XDropOutcome(best=best, cells_computed=cells,
                        diagonals=d_done, terminated=terminated)


# ---------------------------------------------------------------------------
# Adaptive band
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BandedOutcome:
    """Result of one adaptive banded sweep."""

    best: BestCell
    cells_computed: int
    initial_half_width: int
    #: Half-width after all widenings (== initial when none happened).
    final_half_width: int
    #: Stripes whose band centre moved to a new diagonal.
    recenters: int
    #: Width doublings triggered by a near-edge stripe best.
    widenings: int
    #: True when a stripe best hugged an interior band edge while the
    #: width was already at its cap — the escalation signal for
    #: ``mode="auto"``.
    saturated: bool

    @property
    def score(self) -> int:
        return self.best.score if self.best.row >= 0 else 0


def adaptive_banded_score(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scoring: Scoring,
    half_width: int = DEFAULT_BAND_WIDTH,
    *,
    block_rows: int = 128,
    max_half_width: int | None = None,
    edge_fraction: float = 0.125,
) -> BandedOutcome:
    """Best local score within an adaptive diagonal band.

    The matrix is swept in stripes of *block_rows* rows.  Each stripe
    computes the column window ``[centre + r0 - hw, centre + r1 - 1 + hw]``
    (clipped to the matrix) with :func:`~repro.sw.kernel.sweep_block`,
    chaining the previous stripe's bottom border where the windows
    overlap and *restart borders* (H = 0, gap states -inf — legal local
    lower bounds, exactly :func:`repro.sw.blocks.pruned_border_result`'s
    argument) elsewhere.  After each stripe the band recenters on the
    stripe's best cell; a best within ``edge_fraction * hw`` of an
    *interior* band edge doubles ``hw`` (up to *max_half_width*, default
    ``max(m, n)``) and recomputes the stripe, or sets ``saturated`` when
    the cap is already reached.

    ``half_width >= max(m, n)`` degenerates to full-width stripes and is
    bit-identical to the exact engines (score and end cell).
    """
    if half_width < 0:
        raise ConfigError("half_width must be >= 0")
    if block_rows <= 0:
        raise ConfigError("block_rows must be positive")
    if not 0.0 < edge_fraction < 1.0:
        raise ConfigError("edge_fraction must be in (0, 1)")
    m, n = int(a_codes.size), int(b_codes.size)
    if m == 0 or n == 0:
        return BandedOutcome(BestCell.none(), 0, half_width, half_width, 0, 0, False)
    full = max(m, n)
    cap = full if max_half_width is None else max(int(max_half_width), half_width)

    profile = build_profile(b_codes, scoring)
    hw = half_width
    center = 0  # the band is centred on diagonal offset j - i == center
    best = BestCell.none()
    cells = 0
    recenters = widenings = 0
    saturated = False
    # Previous stripe's bottom border over its window [p0, p1).
    p0 = p1 = 0
    h_prev: np.ndarray | None = None
    f_prev: np.ndarray | None = None

    r0 = 0
    while r0 < m:
        r1 = min(m, r0 + block_rows)
        rows = r1 - r0
        while True:
            if hw >= full:
                c0, c1 = 0, n
            else:
                c0 = min(max(center + r0 - hw, 0), n)
                c1 = min(max(center + (r1 - 1) + hw + 1, 0), n)
            if c0 >= c1:
                # Band entirely off-matrix for this stripe: nothing to
                # compute; downstream stripes restart from H = 0.
                result = None
                break

            w = c1 - c0
            h_top = np.zeros(w, dtype=DTYPE)
            f_top = np.full(w, NEG_INF, dtype=DTYPE)
            if h_prev is not None:
                ov0, ov1 = max(c0, p0), min(c1, p1)
                if ov0 < ov1:
                    h_top[ov0 - c0 : ov1 - c0] = h_prev[ov0 - p0 : ov1 - p0]
                    f_top[ov0 - c0 : ov1 - c0] = f_prev[ov0 - p0 : ov1 - p0]
            h_diag = 0
            if h_prev is not None and p0 <= c0 - 1 < p1:
                h_diag = int(h_prev[c0 - 1 - p0])
            h_left = np.zeros(rows, dtype=DTYPE)
            e_left = np.full(rows, NEG_INF, dtype=DTYPE)

            result = sweep_block(
                a_codes[r0:r1], profile[:, c0:c1],
                h_top, f_top, h_left, e_left, h_diag, scoring, local=True)
            cells += rows * w

            if result.best.row < 0:
                break
            # Near-edge test in *diagonal offset* terms: the stripe
            # window is the rectangular hull of the per-row bands, so a
            # best cell may sit beyond ``center + hw`` outright; either
            # way, a best within ``edge`` of an interior band boundary
            # means the optimum may continue outside the band.
            edge = max(1, int(hw * edge_fraction))
            off = (c0 + result.best.col) - (r0 + result.best.row)
            near_left = c0 > 0 and off < center - hw + edge
            near_right = c1 < n and off > center + hw - edge
            if not (near_left or near_right):
                break
            if hw >= cap:
                saturated = True
                break
            hw = min(cap, max(1, hw * 2))
            widenings += 1

        if result is not None:
            cell = result.best.shifted(r0, c0)
            if result.best.row >= 0:
                if cell.better_than(best):
                    best = cell
                new_center = cell.col - cell.row
                if new_center != center:
                    center = new_center
                    recenters += 1
            p0, p1 = c0, c1
            h_prev, f_prev = result.h_bottom, result.f_bottom
        else:
            h_prev = f_prev = None
            p0 = p1 = 0
        r0 = r1

    return BandedOutcome(best=best, cells_computed=cells,
                         initial_half_width=half_width, final_half_width=hw,
                         recenters=recenters, widenings=widenings,
                         saturated=saturated)


# ---------------------------------------------------------------------------
# Static band / block intersection (the blocked engines' skip test)
# ---------------------------------------------------------------------------

def band_intersects(spec: "BlockSpec", half_width: int) -> bool:
    """True when block *spec* intersects the static band ``|j - i| <=
    half_width`` around the main diagonal.

    The diagonal offset ``j - i`` over the block spans
    ``[col0 - (row1 - 1), (col1 - 1) - row0]``; the block intersects the
    band iff that interval meets ``[-half_width, half_width]``.  Blocks
    that miss emit restart borders (H = 0 lower bounds), so in-band
    scores are never overestimated.
    """
    if half_width < 0:
        raise ConfigError("half_width must be >= 0")
    return (spec.col0 - (spec.row1 - 1) <= half_width
            and spec.row0 - (spec.col1 - 1) <= half_width)


# ---------------------------------------------------------------------------
# The auto-mode confidence check
# ---------------------------------------------------------------------------

@lru_cache(maxsize=16)
def _cached_statistics(match: int, mismatch: int, gap_open: int, gap_extend: int):
    """Karlin-Altschul lambda/K for a scheme, or None when the scheme
    admits no local statistics (non-negative expected score).

    Small Monte-Carlo sample: the threshold gates an *escalation*
    decision, not a reported E-value, so coarse K is fine — and the
    cache keeps the fit off every hot path after the first call.
    """
    from ..stats.karlin import dna_statistics

    try:
        return dna_statistics(
            Scoring(match=match, mismatch=mismatch,
                    gap_open=gap_open, gap_extend=gap_extend),
            k_samples=32)
    except ConfigError:
        return None


def significance_threshold(
    scoring: Scoring, m: int, n: int, *, evalue: float = SIGNIFICANCE_EVALUE
) -> int | None:
    """Smallest score significant at *evalue* for an ``m x n`` comparison,
    or ``None`` when the scheme has no Karlin-Altschul statistics."""
    stats = _cached_statistics(int(scoring.match), int(scoring.mismatch),
                               int(scoring.gap_open), int(scoring.gap_extend))
    if stats is None:
        return None
    return stats.score_for_evalue(evalue, m, n)


@dataclass(frozen=True)
class HeuristicDecision:
    """Whether a heuristic answer may be reported without escalation."""

    confident: bool
    reasons: tuple[str, ...]
    threshold: int | None


def assess_heuristic(
    best: BestCell,
    m: int,
    n: int,
    scoring: Scoring,
    *,
    band_half_width: int | None = None,
    saturated: bool = False,
    evalue: float = SIGNIFICANCE_EVALUE,
) -> HeuristicDecision:
    """The ``mode="auto"`` confidence check (see INTERNALS.md section 10).

    A heuristic answer is trusted only when every check passes:

    * the adaptive band did not *saturate* (hit its width cap with the
      best still hugging an interior edge);
    * under a static band, the best cell's diagonal offset keeps a
      ``half_width / 4`` margin from the band edge (a best near the edge
      means the optimum may continue outside the band);
    * the score clears the Karlin-Altschul significance threshold at
      *evalue* — an insignificant in-band score says nothing about what
      lies off-band.  Schemes without statistics always escalate.
    """
    reasons: list[str] = []
    if saturated:
        reasons.append("band saturated at its width cap")
    score = best.score if best.row >= 0 else 0
    if (band_half_width is not None and best.row >= 0
            and band_half_width < max(m, n)):
        margin = max(1, band_half_width // 4)
        if abs(best.col - best.row) > band_half_width - margin:
            reasons.append(
                f"best cell offset {abs(best.col - best.row)} within "
                f"{margin} of the band edge ({band_half_width})")
    threshold = significance_threshold(scoring, m, n, evalue=evalue)
    if threshold is None:
        reasons.append("scoring scheme has no Karlin-Altschul statistics")
    elif score < threshold:
        reasons.append(
            f"score {score} below the significance threshold {threshold} "
            f"(E-value {evalue:g})")
    return HeuristicDecision(confident=not reasons, reasons=tuple(reasons),
                             threshold=threshold)
