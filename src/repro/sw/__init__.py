"""Smith-Waterman substrate: kernels, blocks, pruning, traceback stages.

Layering (bottom up):

* :mod:`repro.sw.scan` — the shared E-scan recurrence (sequential and
  Kogge–Stone log-step prefix-max engines).
* :mod:`repro.sw.kernel` — the vectorised Gotoh row-sweep ("GPU kernel").
* :mod:`repro.sw.batched` — batched wavefront kernel + workspace arena +
  profile cache (one stacked sweep per anti-diagonal).
* :mod:`repro.sw.backend` — kernel registry + capability probing
  (``--kernel`` resolution, numba detection).
* :mod:`repro.sw.compiled` — numba-jitted fused row sweeps with the
  register-carried E-scan (pure-NumPy Kogge–Stone oracle fallback).
* :mod:`repro.sw.naive` — full-matrix oracle used by the tests.
* :mod:`repro.sw.blocks` — block grid + single-device blocked executor.
* :mod:`repro.sw.pruning` — block pruning for similar sequences.
* :mod:`repro.sw.myers_miller` — linear-space global alignment.
* :mod:`repro.sw.stages` — the multi-stage local-alignment pipeline.
* :mod:`repro.sw.banded` — banded screen / cross-check.
* :mod:`repro.sw.xdrop` — heuristic tier: X-drop extension, the adaptive
  band engine, and the ``mode="auto"`` confidence check.
"""

from .alignment import Alignment, from_ops
from .backend import (
    KERNEL_CHOICES,
    KERNELS,
    available_kernels,
    numba_available,
    require_kernel,
    resolve_kernel,
    validate_kernel,
)
from .banded import banded_score
from .batched import (
    BlockJob,
    KernelWorkspace,
    ProfileCache,
    cached_profile,
    sweep_wavefront,
)
from .compiled import (
    jit_available,
    sweep_block_compiled,
    sweep_wavefront_compiled,
)
from .compiled import warmup as compiled_warmup
from .scan import (
    SCAN_ENGINES,
    escan_row,
    escan_segmented,
    kogge_stone_max,
    prefix_max,
    scan_engine,
    use_scan_engine,
)
from .blocks import BlockSpec, BlockedOutcome, compute_blocked, grid_specs, wavefront_order
from .constants import (
    DP_DTYPE_CHOICES,
    DP_DTYPES,
    NEG_INF,
    POLICIES,
    DpPolicy,
    get_policy,
    resolve_dp_dtype,
    validate_dp_dtype,
)
from .diagonal import sw_score_diagonal
from .kernel import BestCell, BlockResult, build_profile, sw_score, sweep_block
from .myers_miller import align_global, global_score
from .naive import align_naive, full_matrices, sw_score_naive
from .pruning import BlockPruner
from .rowstore import BudgetedRowStore, StoreStats
from .semiglobal import SemiGlobalMode, naive_semiglobal, semiglobal_score
from .xdrop import (
    DEFAULT_BAND_WIDTH,
    DEFAULT_XDROP_X,
    MODES,
    BandedOutcome,
    HeuristicDecision,
    XDropOutcome,
    adaptive_banded_score,
    assess_heuristic,
    band_intersects,
    significance_threshold,
    validate_mode,
    xdrop_score,
)
from .stages import (
    CrossingPoint,
    SpecialRowStore,
    Stage1Result,
    align_local,
    align_local_partitioned,
    find_crossings,
    stage1_score,
    stage2_start,
    stage2_with_crossings,
    stage3_align,
)

__all__ = [
    "Alignment",
    "from_ops",
    "banded_score",
    "KERNELS",
    "KERNEL_CHOICES",
    "available_kernels",
    "numba_available",
    "require_kernel",
    "resolve_kernel",
    "validate_kernel",
    "jit_available",
    "sweep_block_compiled",
    "sweep_wavefront_compiled",
    "compiled_warmup",
    "SCAN_ENGINES",
    "escan_row",
    "escan_segmented",
    "kogge_stone_max",
    "prefix_max",
    "scan_engine",
    "use_scan_engine",
    "BlockJob",
    "KernelWorkspace",
    "ProfileCache",
    "cached_profile",
    "sweep_wavefront",
    "BlockSpec",
    "BlockedOutcome",
    "compute_blocked",
    "grid_specs",
    "wavefront_order",
    "NEG_INF",
    "DP_DTYPES",
    "DP_DTYPE_CHOICES",
    "POLICIES",
    "DpPolicy",
    "get_policy",
    "resolve_dp_dtype",
    "validate_dp_dtype",
    "BestCell",
    "BlockResult",
    "build_profile",
    "sw_score",
    "sw_score_diagonal",
    "sweep_block",
    "align_global",
    "global_score",
    "align_naive",
    "full_matrices",
    "sw_score_naive",
    "BlockPruner",
    "BudgetedRowStore",
    "StoreStats",
    "SemiGlobalMode",
    "naive_semiglobal",
    "semiglobal_score",
    "CrossingPoint",
    "SpecialRowStore",
    "Stage1Result",
    "align_local",
    "align_local_partitioned",
    "find_crossings",
    "stage1_score",
    "stage2_start",
    "stage2_with_crossings",
    "stage3_align",
    "DEFAULT_BAND_WIDTH",
    "DEFAULT_XDROP_X",
    "MODES",
    "BandedOutcome",
    "HeuristicDecision",
    "XDropOutcome",
    "adaptive_banded_score",
    "assess_heuristic",
    "band_intersects",
    "significance_threshold",
    "validate_mode",
    "xdrop_score",
]
