"""Integration tests: mgsw --telemetry and the mgsw perf subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    load_chrome_trace,
    load_manifest,
    validate_chrome_trace,
    validate_manifest,
)


@pytest.fixture
def fasta_pair(tmp_path):
    fa = str(tmp_path / "a.fa")
    fb = str(tmp_path / "b.fa")
    assert main(["generate", "chr22", fa, fb, "--scale", "3e-5",
                 "--seed", "7"]) == 0
    return fa, fb


def _run_align(fasta_pair, outdir, *extra):
    fa, fb = fasta_pair
    return main(["align", fa, fb, "--block-rows", "64",
                 "--telemetry", str(outdir), *extra])


class TestAlignTelemetry:
    def test_sim_backend_writes_valid_bundle(self, fasta_pair, tmp_path, capsys):
        out = tmp_path / "tel"
        assert _run_align(fasta_pair, out) == 0
        stdout = capsys.readouterr().out
        assert "telemetry written to" in stdout

        manifest = load_manifest(out / "manifest.json")
        validate_manifest(manifest)
        assert manifest["backend"] == "sim"
        assert set(manifest["sequences"]) == {"a", "b"}
        assert manifest["wall_time_s"] > 0
        # The CLI records its own argv for reproducibility.
        assert "--telemetry" in manifest["command"]

        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics == manifest["metrics"]
        assert metrics["counters"]["blocks_computed"]["series"]

        prom = (out / "metrics.prom").read_text()
        assert "# TYPE blocks_computed counter" in prom

        trace = load_chrome_trace(out / "trace.json")
        validate_chrome_trace(trace)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_process_backend_writes_valid_bundle(self, fasta_pair, tmp_path,
                                                 capsys):
        out = tmp_path / "tel"
        assert _run_align(fasta_pair, out, "--backend", "process",
                          "--workers", "2") == 0
        capsys.readouterr()
        manifest = load_manifest(out / "manifest.json")
        validate_manifest(manifest)
        assert manifest["backend"] == "process"
        assert manifest["config"]["workers"] == 2
        # Telemetry arms the heartbeat by default on this backend.
        assert manifest["config"]["heartbeat_s"] == 5.0
        counters = manifest["metrics"]["counters"]
        per_worker = {s["labels"]["device"]: s["value"]
                      for s in counters["blocks_computed"]["series"]}
        assert set(per_worker) == {"worker0", "worker1"}
        validate_chrome_trace(load_chrome_trace(out / "trace.json"))

    def test_heartbeat_zero_disables_watchdog(self, fasta_pair, tmp_path,
                                              capsys):
        out = tmp_path / "tel"
        assert _run_align(fasta_pair, out, "--backend", "process",
                          "--heartbeat-s", "0") == 0
        capsys.readouterr()
        manifest = load_manifest(out / "manifest.json")
        assert manifest["config"]["heartbeat_s"] is None

    def test_align_without_telemetry_writes_nothing(self, fasta_pair, tmp_path,
                                                    capsys):
        fa, fb = fasta_pair
        assert main(["align", fa, fb, "--block-rows", "64"]) == 0
        assert "telemetry written" not in capsys.readouterr().out
        assert list(tmp_path.glob("*/manifest.json")) == []


class TestPerfTraceExport:
    def test_export_writes_loadable_trace(self, fasta_pair, tmp_path, capsys):
        fa, fb = fasta_pair
        out = tmp_path / "trace.json"
        assert main(["perf", "trace-export", fa, fb, "--out", str(out),
                     "--workers", "2"]) == 0
        stdout = capsys.readouterr().out
        assert "trace events" in stdout
        doc = load_chrome_trace(out)
        validate_chrome_trace(doc)
        assert doc["otherData"]["actors"]  # at least one worker track

    def test_export_sim_backend(self, fasta_pair, tmp_path, capsys):
        fa, fb = fasta_pair
        out = tmp_path / "trace.json"
        assert main(["perf", "trace-export", fa, fb, "--out", str(out),
                     "--backend", "sim"]) == 0
        capsys.readouterr()
        validate_chrome_trace(load_chrome_trace(out))


class TestPerfDiff:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_report_only_by_default(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"gcups": 10.0})
        new = self._write(tmp_path / "new.json", {"gcups": 5.0})
        assert main(["perf", "diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_fail_on_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"gcups": 10.0})
        new = self._write(tmp_path / "new.json", {"gcups": 5.0})
        assert main(["perf", "diff", old, new, "--fail-on-regression"]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_clean_diff_passes_even_with_fail_flag(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"gcups": 10.0})
        new = self._write(tmp_path / "new.json", {"gcups": 10.2})
        assert main(["perf", "diff", old, new, "--fail-on-regression"]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_threshold_flag_widens_tolerance(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", {"wall_time_s": 1.0})
        new = self._write(tmp_path / "new.json", {"wall_time_s": 1.08})
        assert main(["perf", "diff", old, new, "--threshold", "0.10",
                     "--fail-on-regression"]) == 0
        capsys.readouterr()

    def test_diff_two_manifests_end_to_end(self, fasta_pair, tmp_path, capsys):
        """Two real telemetry runs of the same workload diff cleanly
        (identity keys and histogram internals never regress)."""
        out1, out2 = tmp_path / "t1", tmp_path / "t2"
        assert _run_align(fasta_pair, out1) == 0
        assert _run_align(fasta_pair, out2) == 0
        capsys.readouterr()
        rc = main(["perf", "diff", str(out1 / "manifest.json"),
                   str(out2 / "manifest.json")])
        assert rc == 0
        assert "regression(s)" in capsys.readouterr().out
