"""Unit tests: repro.sw.banded."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT, encode
from repro.sw import sw_score_naive
from repro.sw.banded import banded_score

from helpers import mutated_copy, random_codes, random_scoring


class TestExactWithinFullBand:
    def test_full_band_equals_oracle(self, rng):
        for _ in range(40):
            m = int(rng.integers(1, 30))
            n = int(rng.integers(1, 30))
            a = random_codes(rng, m, with_n=True)
            b = random_codes(rng, n, with_n=True)
            sc = random_scoring(rng)
            want, *_ = sw_score_naive(a, b, sc)
            got = banded_score(a, b, sc, half_width=max(m, n))
            assert (got.score if got.row >= 0 else 0) == want


class TestBandSemantics:
    def test_never_exceeds_unbanded(self, rng):
        for hw in (0, 1, 3, 8):
            a = random_codes(rng, 40)
            b = random_codes(rng, 40)
            want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
            got = banded_score(a, b, DNA_DEFAULT, half_width=hw)
            assert (got.score if got.row >= 0 else 0) <= want

    def test_monotone_in_width(self, rng):
        a = random_codes(rng, 60)
        b = mutated_copy(rng, a, 0.2)
        prev = -1
        for hw in (0, 2, 4, 8, 16, 32, 64):
            got = banded_score(a, b, DNA_DEFAULT, half_width=hw)
            score = got.score if got.row >= 0 else 0
            assert score >= prev
            prev = score

    def test_diagonal_homolog_found_with_narrow_band(self, rng):
        a = random_codes(rng, 300)
        b = mutated_copy(rng, a, 0.02)
        want, *_ = sw_score_naive(a[:50], b[:50], DNA_DEFAULT)  # sanity: positive
        assert want > 0
        full = banded_score(a, b, DNA_DEFAULT, half_width=300)
        narrow = banded_score(a, b, DNA_DEFAULT, half_width=8)
        assert narrow.score == full.score  # SNP-only homolog stays on diagonal

    def test_zero_width_is_diagonal_only(self):
        a = encode("ACGT")
        got = banded_score(a, a, DNA_DEFAULT, half_width=0)
        assert got.score == 4

    def test_empty_inputs(self):
        import numpy as np
        empty = np.array([], dtype=np.uint8)
        assert banded_score(empty, encode("A"), DNA_DEFAULT, 1).row == -1

    def test_negative_width_rejected(self):
        a = encode("AC")
        with pytest.raises(ConfigError):
            banded_score(a, a, DNA_DEFAULT, half_width=-1)
