"""Unit tests: repro.sw.banded."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT, encode
from repro.sw import sw_score_naive
from repro.sw.banded import banded_score

from helpers import mutated_copy, random_codes, random_scoring


class TestExactWithinFullBand:
    def test_full_band_equals_oracle(self, rng):
        for _ in range(40):
            m = int(rng.integers(1, 30))
            n = int(rng.integers(1, 30))
            a = random_codes(rng, m, with_n=True)
            b = random_codes(rng, n, with_n=True)
            sc = random_scoring(rng)
            want, *_ = sw_score_naive(a, b, sc)
            got = banded_score(a, b, sc, half_width=max(m, n))
            assert (got.score if got.row >= 0 else 0) == want


class TestBandSemantics:
    def test_never_exceeds_unbanded(self, rng):
        for hw in (0, 1, 3, 8):
            a = random_codes(rng, 40)
            b = random_codes(rng, 40)
            want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
            got = banded_score(a, b, DNA_DEFAULT, half_width=hw)
            assert (got.score if got.row >= 0 else 0) <= want

    def test_monotone_in_width(self, rng):
        a = random_codes(rng, 60)
        b = mutated_copy(rng, a, 0.2)
        prev = -1
        for hw in (0, 2, 4, 8, 16, 32, 64):
            got = banded_score(a, b, DNA_DEFAULT, half_width=hw)
            score = got.score if got.row >= 0 else 0
            assert score >= prev
            prev = score

    def test_diagonal_homolog_found_with_narrow_band(self, rng):
        a = random_codes(rng, 300)
        b = mutated_copy(rng, a, 0.02)
        want, *_ = sw_score_naive(a[:50], b[:50], DNA_DEFAULT)  # sanity: positive
        assert want > 0
        full = banded_score(a, b, DNA_DEFAULT, half_width=300)
        narrow = banded_score(a, b, DNA_DEFAULT, half_width=8)
        assert narrow.score == full.score  # SNP-only homolog stays on diagonal

    def test_zero_width_is_diagonal_only(self):
        a = encode("ACGT")
        got = banded_score(a, a, DNA_DEFAULT, half_width=0)
        assert got.score == 4

    def test_empty_inputs(self):
        import numpy as np
        empty = np.array([], dtype=np.uint8)
        assert banded_score(empty, encode("A"), DNA_DEFAULT, 1).row == -1

    def test_negative_width_rejected(self):
        a = encode("AC")
        with pytest.raises(ConfigError):
            banded_score(a, a, DNA_DEFAULT, half_width=-1)


class TestBandEdgeGaps:
    """Regression: out-of-band cells must be -inf for the gap states E/F
    too, not only for H — a gap path that leaves the band and re-enters
    must be impossible, not merely penalised from a stale value."""

    @staticmethod
    def _oracle(a, b, sc, hw):
        """Naive banded local Gotoh: every state of every out-of-band
        cell is -inf, in-band H clamps at 0."""
        m, n = int(a.size), int(b.size)
        NEG = -(10**9)
        sub = sc.matrix
        go, ge = int(sc.gap_open), int(sc.gap_extend)
        hp = [NEG] * (n + 1)
        fp = [NEG] * (n + 1)
        best = 0
        for i in range(m):
            hc = [NEG] * (n + 1)
            fc = [NEG] * (n + 1)
            e = NEG
            for j in range(n):
                if abs(j - i) > hw:
                    e = NEG
                    continue
                f = max(max(fp[j + 1], hp[j + 1] - go) - ge, NEG)
                e = max(max(e, hc[j] - go) - ge, NEG)
                hd = hp[j] if (i > 0 and j > 0) else NEG
                if i == 0 or j == 0:
                    hd = 0  # matrix boundary: local paths may start here
                h = max(hd + int(sub[a[i], b[j]]), e, f, 0)
                hc[j + 1], fc[j + 1] = h, f
                best = max(best, h)
            hp, fp = hc, fc
        return best

    def test_matches_oracle_randomised(self, rng):
        for _ in range(150):
            m = int(rng.integers(1, 26))
            n = int(rng.integers(1, 26))
            a = random_codes(rng, m, with_n=True)
            b = random_codes(rng, n, with_n=True)
            sc = random_scoring(rng)
            hw = int(rng.integers(0, 12))
            got = banded_score(a, b, sc, half_width=hw)
            assert (got.score if got.row >= 0 else 0) == \
                self._oracle(a, b, sc, hw)

    def test_gap_over_band_edge_is_cut_not_carried(self, rng):
        """a = X + Y, b = X + Z + Y with |Z| far beyond the band: the
        full-band alignment bridges Z with one long gap, but inside a
        narrow band that gap would have to leave and re-enter the band —
        illegal, so the banded score must equal the banded oracle and
        stay strictly below the unbanded score."""
        x = random_codes(rng, 100)
        y = random_codes(rng, 100)
        z = random_codes(rng, 30)  # gap cost 63 < the 100 matches of Y
        a = np.concatenate([x, y])
        b = np.concatenate([x, z, y])
        hw = 4  # |Z| = 30 >> hw
        want_full, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        got = banded_score(a, b, DNA_DEFAULT, half_width=hw)
        got_score = got.score if got.row >= 0 else 0
        assert got_score == self._oracle(a, b, DNA_DEFAULT, hw)
        assert got_score < want_full
