"""Property-based tests on the workload generators and engine scheduling."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import Engine
from repro.seq import alphabet
from repro.workloads import MutationProfile, mutate, random_dna
from repro.workloads.mutate import apply_indels, apply_snps, apply_translocations

seeds = st.integers(0, 2**31 - 1)


@settings(max_examples=40, deadline=None)
@given(seeds, st.integers(0, 2000), st.floats(0.2, 0.8))
def test_random_dna_valid_and_seeded(seed, length, gc):
    s1 = random_dna(length, rng=seed, gc_content=gc)
    s2 = random_dna(length, rng=seed, gc_content=gc)
    assert np.array_equal(s1, s2)
    assert s1.size == length
    assert s1.size == 0 or int(s1.max()) < 4


@settings(max_examples=40, deadline=None)
@given(seeds, st.integers(1, 2000), st.floats(0.0, 1.0))
def test_snps_change_at_most_rate_sites(seed, length, rate):
    rng = np.random.default_rng(seed)
    s = random_dna(length, rng=rng)
    out = apply_snps(s, rate, rng)
    assert out.size == s.size
    diffs = int((out != s).sum())
    # every selected site truly changes, none are reverted
    assert diffs <= length
    if rate == 0.0:
        assert diffs == 0
    assert int(out.max(initial=0)) < 4


@settings(max_examples=40, deadline=None)
@given(seeds, st.integers(1, 1500), st.floats(0.0, 0.05), st.floats(1.0, 6.0))
def test_indels_output_valid(seed, length, rate, mean_len):
    rng = np.random.default_rng(seed)
    s = random_dna(length, rng=rng)
    out = apply_indels(s, rate, mean_len, rng)
    assert out.dtype == np.uint8
    assert out.size == 0 or int(out.max()) < 4
    # length drift is bounded by total event mass (loose bound)
    assert abs(int(out.size) - length) <= length


@settings(max_examples=30, deadline=None)
@given(seeds, st.integers(10, 1000), st.integers(0, 4), st.integers(1, 50))
def test_translocations_preserve_multiset(seed, length, count, block):
    rng = np.random.default_rng(seed)
    s = random_dna(length, rng=rng)
    out = apply_translocations(s, count, block, rng)
    assert out.size == s.size
    assert np.array_equal(np.sort(out), np.sort(s))


@settings(max_examples=25, deadline=None)
@given(seeds, st.integers(50, 1500))
def test_mutate_full_profile_valid(seed, length):
    rng = np.random.default_rng(seed)
    s = random_dna(length, rng=rng)
    profile = MutationProfile(snp_rate=0.05, indel_rate=0.002,
                              inversion_count=1, inversion_len=10,
                              translocation_count=1, translocation_len=10)
    out = mutate(s, profile, rng=rng)
    assert out.dtype == np.uint8
    assert out.size == 0 or int(out.max()) <= alphabet.N


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20))
def test_engine_fires_everything_in_order(delays):
    """Whatever mix of timeouts is scheduled, the engine fires them in
    non-decreasing time order and ends at the maximum."""
    eng = Engine()
    fired = []

    def proc(d):
        yield eng.timeout(d)
        fired.append(eng.now)

    for d in delays:
        eng.process(proc(d))
    end = eng.run()
    assert fired == sorted(fired)
    assert end == max(delays)
    assert len(fired) == len(delays)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(0.1, 10.0), min_size=2, max_size=10),
       st.floats(0.05, 5.0))
def test_engine_run_until_resumable(delays, cut):
    """run(until=t) then run() completes identically to a single run()."""
    def build():
        eng = Engine()
        fired = []

        def proc(d):
            yield eng.timeout(d)
            fired.append(eng.now)

        for d in delays:
            eng.process(proc(d))
        return eng, fired

    eng1, fired1 = build()
    eng1.run()

    eng2, fired2 = build()
    eng2.run(until=cut)
    assert all(t <= cut for t in fired2)
    eng2.run()
    assert fired2 == fired1
