"""Unit tests: repro.multigpu.checkpoint — stop, save, load, resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import ENV1_HETEROGENEOUS, ENV2_HOMOGENEOUS
from repro.errors import ConfigError
from repro.multigpu import (
    ChainCheckpoint,
    ChainConfig,
    MatrixWorkload,
    MultiGpuChain,
    PhantomWorkload,
    load_checkpoint,
    save_checkpoint,
)
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive
from repro.sw.kernel import BestCell

from helpers import random_codes


@pytest.fixture
def chain():
    return MultiGpuChain(ENV1_HETEROGENEOUS, config=ChainConfig(block_rows=16))


class TestStopResume:
    def test_resume_is_exact(self, chain, rng):
        a = random_codes(rng, 200)
        b = random_codes(rng, 300)
        want, wi, wj = sw_score_naive(a, b, DNA_DEFAULT)
        wl = MatrixWorkload(a, b, DNA_DEFAULT)
        for stop in (16, 64, 199):
            seg1 = chain.run(wl, stop_row=stop)
            assert seg1.checkpoint is not None
            seg2 = chain.run(wl, resume=seg1.checkpoint)
            assert seg2.score == want
            if want > 0:
                assert (seg2.best.row, seg2.best.col) == (wi, wj)
            assert seg2.checkpoint is None

    def test_multi_segment_resume(self, chain, rng):
        a = random_codes(rng, 150)
        b = random_codes(rng, 150)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        wl = MatrixWorkload(a, b, DNA_DEFAULT)
        ck = None
        for stop in (40, 80, 120):
            res = chain.run(wl, resume=ck, stop_row=stop)
            ck = res.checkpoint
            assert ck is not None
            assert ck.row >= stop  # rounded up to a block-row boundary
        final = chain.run(wl, resume=ck)
        assert final.score == want

    def test_best_found_in_early_segment_survives(self, chain, rng):
        """The best cell may lie before the checkpoint row; resuming must
        keep it."""
        a = random_codes(rng, 120)
        b = a[:60].copy()  # perfect alignment ends at row 59
        wl = MatrixWorkload(a, b, DNA_DEFAULT)
        seg1 = chain.run(wl, stop_row=80)
        seg2 = chain.run(wl, resume=seg1.checkpoint)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        assert seg2.score == want

    def test_virtual_time_accumulates(self, chain, rng):
        a = random_codes(rng, 200)
        b = random_codes(rng, 200)
        wl = MatrixWorkload(a, b, DNA_DEFAULT)
        full = chain.run(wl)
        seg1 = chain.run(wl, stop_row=100)
        seg2 = chain.run(wl, resume=seg1.checkpoint)
        assert seg2.total_time_s > seg1.total_time_s
        # Resume costs one extra pipeline fill but is close to the
        # uninterrupted run.
        assert seg2.total_time_s == pytest.approx(full.total_time_s, rel=0.5)
        assert seg2.total_time_s >= full.total_time_s

    def test_phantom_checkpoint(self):
        chain = MultiGpuChain(ENV2_HOMOGENEOUS, config=ChainConfig(block_rows=1024))
        wl = PhantomWorkload(100_000, 100_000)
        seg1 = chain.run(wl, stop_row=50_000)
        assert seg1.checkpoint.phantom
        seg2 = chain.run(wl, resume=seg1.checkpoint)
        direct = chain.run(wl)
        assert seg2.total_time_s == pytest.approx(direct.total_time_s, rel=0.05)


class TestSerialisation:
    def test_roundtrip_compute(self, chain, rng, tmp_path):
        a = random_codes(rng, 100)
        b = random_codes(rng, 100)
        wl = MatrixWorkload(a, b, DNA_DEFAULT)
        ck = chain.run(wl, stop_row=48).checkpoint
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ck)
        back = load_checkpoint(path)
        assert back.row == ck.row
        assert back.elapsed_s == ck.elapsed_s
        assert back.best == ck.best
        assert np.array_equal(back.h_row, ck.h_row)
        assert np.array_equal(back.f_row, ck.f_row)
        res = chain.run(wl, resume=back)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        assert res.score == want

    def test_roundtrip_phantom(self, tmp_path):
        chain = MultiGpuChain(ENV2_HOMOGENEOUS, config=ChainConfig(block_rows=512))
        ck = chain.run(PhantomWorkload(10_000, 10_000), stop_row=5000).checkpoint
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ck)
        back = load_checkpoint(path)
        assert back.phantom and back.row == ck.row


class TestValidation:
    def test_bad_checkpoint_fields(self):
        with pytest.raises(ConfigError):
            ChainCheckpoint(row=0, h_row=None, f_row=None,
                            best=BestCell.none(), elapsed_s=0.0)
        with pytest.raises(ConfigError):
            ChainCheckpoint(row=5, h_row=np.zeros(3, dtype=np.int32), f_row=None,
                            best=BestCell.none(), elapsed_s=0.0)
        with pytest.raises(ConfigError):
            ChainCheckpoint(row=5, h_row=None, f_row=None,
                            best=BestCell.none(), elapsed_s=-1.0)

    def test_mode_mismatch_rejected(self, chain, rng):
        a = random_codes(rng, 64)
        wl = MatrixWorkload(a, a, DNA_DEFAULT)
        ck = chain.run(wl, stop_row=32).checkpoint
        with pytest.raises(ConfigError):
            chain.run(PhantomWorkload(64, 64), resume=ck)

    def test_width_mismatch_rejected(self, chain, rng):
        a = random_codes(rng, 64)
        wl = MatrixWorkload(a, a, DNA_DEFAULT)
        ck = chain.run(wl, stop_row=32).checkpoint
        b = random_codes(rng, 80)
        with pytest.raises(ConfigError):
            chain.run(MatrixWorkload(a, b, DNA_DEFAULT), resume=ck)

    def test_checkpoint_beyond_end_rejected(self, chain, rng):
        a = random_codes(rng, 64)
        wl = MatrixWorkload(a, a, DNA_DEFAULT)
        ck = chain.run(wl, stop_row=32).checkpoint
        short = random_codes(rng, 20)
        with pytest.raises(ConfigError):
            chain.run(MatrixWorkload(short, a, DNA_DEFAULT), resume=ck)
