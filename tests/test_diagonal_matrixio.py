"""Unit tests: repro.sw.diagonal and repro.seq.matrixio."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import ConfigError, ScoringError
from repro.seq import BLOSUM62_SCORING, DNA_DEFAULT, format_ncbi_matrix, parse_ncbi_matrix
from repro.sw import sw_score, sw_score_diagonal, sw_score_naive

from helpers import mutated_copy, random_codes, random_scoring


class TestDiagonalKernel:
    def test_matches_oracle(self, rng):
        for _ in range(50):
            m = int(rng.integers(1, 35))
            n = int(rng.integers(1, 35))
            a = random_codes(rng, m, with_n=True)
            b = random_codes(rng, n, with_n=True)
            sc = random_scoring(rng)
            want, wi, wj = sw_score_naive(a, b, sc)
            got = sw_score_diagonal(a, b, sc)
            assert (got.score if got.row >= 0 else 0) == want
            if want > 0:
                assert (got.row, got.col) == (wi, wj)

    def test_agrees_with_row_sweep_kernel(self, rng):
        """Two kernels with different dependency schedules must agree on
        score AND tie-broken endpoint."""
        for _ in range(30):
            a = random_codes(rng, int(rng.integers(5, 60)))
            b = random_codes(rng, int(rng.integers(5, 60)))
            k1 = sw_score(a, b, DNA_DEFAULT)
            k2 = sw_score_diagonal(a, b, DNA_DEFAULT)
            assert (k1.score, k1.row, k1.col) == (k2.score, k2.row, k2.col)

    def test_homologs(self, rng):
        a = random_codes(rng, 300)
        b = mutated_copy(rng, a, 0.05)
        assert sw_score_diagonal(a, b, DNA_DEFAULT).score == \
            sw_score(a, b, DNA_DEFAULT).score

    def test_wide_and_tall_matrices(self, rng):
        a = random_codes(rng, 5)
        b = random_codes(rng, 200)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        assert (sw_score_diagonal(a, b, DNA_DEFAULT).score or 0) == want
        assert (sw_score_diagonal(b, a, DNA_DEFAULT).score or 0) == want

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sw_score_diagonal(np.array([], dtype=np.uint8),
                              np.array([0], dtype=np.uint8), DNA_DEFAULT)


class TestMatrixIO:
    def test_roundtrip_blosum62(self):
        text = format_ncbi_matrix(BLOSUM62_SCORING, comment="BLOSUM62 roundtrip")
        parsed = parse_ncbi_matrix(io.StringIO(text))
        assert np.array_equal(parsed.matrix, BLOSUM62_SCORING.matrix)
        assert parsed.match == BLOSUM62_SCORING.match

    def test_gap_parameters_passed(self):
        text = format_ncbi_matrix(BLOSUM62_SCORING)
        parsed = parse_ncbi_matrix(io.StringIO(text), gap_open=5, gap_extend=2)
        assert parsed.gap_open == 5 and parsed.gap_extend == 2

    def test_extra_columns_ignored(self):
        """NCBI files carry *, B, Z columns the library does not model."""
        text = format_ncbi_matrix(BLOSUM62_SCORING)
        lines = text.splitlines()
        lines[0] = lines[0] + "  *"
        lines = [lines[0]] + [line + " -4" for line in lines[1:]]
        lines.append("* " + " ".join(["-4"] * 22))
        parsed = parse_ncbi_matrix(io.StringIO("\n".join(lines)))
        assert np.array_equal(parsed.matrix, BLOSUM62_SCORING.matrix)

    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\n" + format_ncbi_matrix(BLOSUM62_SCORING)
        parse_ncbi_matrix(io.StringIO(text))

    def test_missing_residue_detected(self):
        text = format_ncbi_matrix(BLOSUM62_SCORING)
        lines = [line for line in text.splitlines() if not line.startswith("W")]
        with pytest.raises(ScoringError, match="missing residue 'W'"):
            parse_ncbi_matrix(io.StringIO("\n".join(lines)))

    def test_ragged_row_detected(self):
        text = format_ncbi_matrix(BLOSUM62_SCORING)
        lines = text.splitlines()
        lines[1] = lines[1].rsplit(" ", 1)[0]  # drop last value of first row
        with pytest.raises(ScoringError, match="expected"):
            parse_ncbi_matrix(io.StringIO("\n".join(lines)))

    def test_non_integer_detected(self):
        text = format_ncbi_matrix(BLOSUM62_SCORING).replace(" 11", " xx", 1)
        with pytest.raises(ScoringError, match="non-integer"):
            parse_ncbi_matrix(io.StringIO(text))

    def test_empty_input(self):
        with pytest.raises(ScoringError, match="no matrix"):
            parse_ncbi_matrix(io.StringIO("# only comments\n"))

    def test_from_file(self, tmp_path):
        path = tmp_path / "blosum62.txt"
        path.write_text(format_ncbi_matrix(BLOSUM62_SCORING))
        parsed = parse_ncbi_matrix(path)
        assert np.array_equal(parsed.matrix, BLOSUM62_SCORING.matrix)

    def test_parsed_matrix_aligns_proteins(self, rng):
        """End to end: parse a matrix file, align with it."""
        parsed = parse_ncbi_matrix(io.StringIO(format_ncbi_matrix(BLOSUM62_SCORING)))
        a = rng.integers(0, 21, 40).astype(np.uint8)
        b = rng.integers(0, 21, 40).astype(np.uint8)
        want, *_ = sw_score_naive(a, b, BLOSUM62_SCORING)
        got = sw_score(a, b, parsed)
        assert (got.score if got.row >= 0 else 0) == want
