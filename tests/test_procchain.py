"""Integration tests: repro.multigpu.procchain (real OS processes)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.multigpu import align_multi_process
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive

from helpers import mutated_copy, random_codes


class TestExactness:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_oracle(self, rng, workers):
        a = random_codes(rng, 90)
        b = random_codes(rng, 140)
        want, wi, wj = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=workers,
                                  block_rows=16)
        assert res.score == want
        if want > 0:
            assert (res.best.row, res.best.col) == (wi, wj)
        assert res.workers == workers
        assert res.wall_time_s > 0
        assert res.gcups > 0

    def test_homolog_path_crosses_worker_boundaries(self, rng):
        a = random_codes(rng, 200)
        b = mutated_copy(rng, a, 0.04)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=32)
        assert res.score == want

    def test_deterministic(self, rng):
        a = random_codes(rng, 80)
        b = random_codes(rng, 80)
        r1 = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=16)
        r2 = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=16)
        assert (r1.score, r1.best.row, r1.best.col) == (r2.score, r2.best.row, r2.best.col)

    def test_agrees_with_simulated_chain(self, rng):
        from repro.device import ENV2_HOMOGENEOUS
        from repro.multigpu import align_multi_gpu

        a = random_codes(rng, 120)
        b = random_codes(rng, 150)
        sim = align_multi_gpu(a, b, DNA_DEFAULT, ENV2_HOMOGENEOUS)
        real = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=16)
        assert sim.score == real.score
        assert (sim.best.row, sim.best.col) == (real.best.row, real.best.col)


class TestValidation:
    def test_bad_parameters(self, rng):
        a = random_codes(rng, 10)
        with pytest.raises(ConfigError):
            align_multi_process(a, a, DNA_DEFAULT, workers=0)
        with pytest.raises(ConfigError):
            align_multi_process(a, a, DNA_DEFAULT, workers=2, block_rows=0)
        with pytest.raises(ConfigError):
            align_multi_process(a, random_codes(rng, 1), DNA_DEFAULT, workers=2)

    def test_empty_sequences_rejected(self):
        import numpy as np
        with pytest.raises(ConfigError):
            align_multi_process(np.array([], dtype=np.uint8),
                                np.array([1], dtype=np.uint8), DNA_DEFAULT)
