"""Integration tests: repro.multigpu.procchain (real OS processes)."""

from __future__ import annotations

import multiprocessing as mp
import time

import pytest

from repro.device.trace import Tracer
from repro.errors import ConfigError
from repro.multigpu import TRANSPORTS, align_multi_process, pick_context
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive

from helpers import mutated_copy, random_codes


class TestExactness:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_oracle(self, rng, workers):
        a = random_codes(rng, 90)
        b = random_codes(rng, 140)
        want, wi, wj = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=workers,
                                  block_rows=16)
        assert res.score == want
        if want > 0:
            assert (res.best.row, res.best.col) == (wi, wj)
        assert res.workers == workers
        assert res.wall_time_s > 0
        assert res.gcups > 0

    def test_homolog_path_crosses_worker_boundaries(self, rng):
        a = random_codes(rng, 200)
        b = mutated_copy(rng, a, 0.04)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=32)
        assert res.score == want

    def test_deterministic(self, rng):
        a = random_codes(rng, 80)
        b = random_codes(rng, 80)
        r1 = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=16)
        r2 = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=16)
        assert (r1.score, r1.best.row, r1.best.col) == (r2.score, r2.best.row, r2.best.col)

    def test_agrees_with_simulated_chain(self, rng):
        from repro.device import ENV2_HOMOGENEOUS
        from repro.multigpu import align_multi_gpu

        a = random_codes(rng, 120)
        b = random_codes(rng, 150)
        sim = align_multi_gpu(a, b, DNA_DEFAULT, ENV2_HOMOGENEOUS)
        real = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=16)
        assert sim.score == real.score
        assert (sim.best.row, sim.best.col) == (real.best.row, real.best.col)


class TestTransportsAndContexts:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_transports_are_bit_identical(self, rng, transport):
        a = random_codes(rng, 100)
        b = random_codes(rng, 160)
        want, wi, wj = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=16,
                                  transport=transport)
        assert res.score == want
        if want > 0:
            assert (res.best.row, res.best.col) == (wi, wj)
        assert res.transport == transport

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_spawn_context_regression(self, rng, transport):
        """The backend must work with spawn-safe worker arguments — the
        portability fix over the old hard-coded fork context."""
        a = random_codes(rng, 80)
        b = random_codes(rng, 120)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=16,
                                  transport=transport, start_method="spawn")
        assert res.score == want
        assert res.start_method == "spawn"

    def test_default_context_prefers_fork(self):
        methods = mp.get_all_start_methods()
        ctx = pick_context()
        if "fork" in methods:
            assert ctx.get_start_method() == "fork"
        else:  # pragma: no cover - non-POSIX platforms
            assert ctx.get_start_method() == "spawn"
        with pytest.raises(ConfigError):
            pick_context("not-a-method")

    def test_proportional_weights(self, rng):
        a = random_codes(rng, 60)
        b = random_codes(rng, 400)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=16,
                                  weights=[3.0, 1.0])
        assert [s.cols for s in res.partition] == [300, 100]
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        assert res.score == want


class TestObservability:
    def test_tracer_and_breakdown(self, rng):
        a = random_codes(rng, 150)
        b = random_codes(rng, 200)
        tracer = Tracer()
        res = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=32,
                                  tracer=tracer)
        assert res.tracer is tracer
        assert tracer.actors() == ["worker0", "worker1"]
        # Every worker computed; the downstream worker waited on borders.
        assert tracer.total("worker0", "compute") > 0
        assert tracer.total("worker1", "compute") > 0
        bd = res.breakdown()
        assert len(bd) == 2
        for row in bd:
            assert set(row) == {"compute", "transfer", "wait", "idle"}
            assert 0.0 <= sum(row.values()) <= 1.0 + 1e-9

    def test_process_report_renders(self, rng):
        from repro.perf.report import process_report, process_result_dict

        a = random_codes(rng, 80)
        b = random_codes(rng, 100)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=32)
        text = process_report(res)
        assert "worker0" in text and "transport=shm" in text
        d = process_result_dict(res)
        assert d["config"]["workers"] == 2
        assert len(d["workers"]) == 2
        assert d["gcups"] == pytest.approx(res.gcups)

    def test_gcups_routes_through_metrics(self):
        """One documented behaviour: non-positive time raises, never 0.0."""
        from repro.multigpu.procchain import ProcessChainResult
        from repro.sw.kernel import BestCell

        bad = ProcessChainResult(best=BestCell.none(), wall_time_s=0.0,
                                 cells=100, workers=1)
        with pytest.raises(ValueError):
            bad.gcups


class TestFailureHandling:
    def test_killed_worker_raises_descriptively(self, rng):
        """Failure injection: a worker hard-crashes mid-run; the parent
        reports it cleanly, well within the run timeout."""
        a = random_codes(rng, 400)
        b = random_codes(rng, 240)
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match=r"worker 1.*died"):
            align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=16,
                                timeout_s=30.0, border_timeout_s=5.0,
                                _fault=(1, 2))
        assert time.monotonic() - t0 < 20.0

    def test_killed_worker_leaves_no_shm(self, rng):
        from repro.comm.shmring import SHM_NAME_PREFIX
        import os

        def shm_names():
            try:
                return {n for n in os.listdir("/dev/shm")
                        if n.startswith(SHM_NAME_PREFIX)}
            except FileNotFoundError:  # pragma: no cover
                return set()

        before = shm_names()
        a = random_codes(rng, 200)
        b = random_codes(rng, 150)
        with pytest.raises(RuntimeError):
            align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=16,
                                timeout_s=20.0, border_timeout_s=3.0,
                                _fault=(0, 1))
        assert shm_names() <= before

    def test_deterministic_error_ordering(self, rng):
        """Worker failures are reported in worker-id order."""
        a = random_codes(rng, 300)
        b = random_codes(rng, 200)
        with pytest.raises(RuntimeError) as err:
            align_multi_process(a, b, DNA_DEFAULT, workers=3, block_rows=16,
                                timeout_s=20.0, border_timeout_s=2.0,
                                _fault=(0, 1))
        text = str(err.value)
        positions = [text.find(f"worker {g}") for g in range(3)
                     if f"worker {g}" in text]
        assert positions == sorted(positions)


class TestValidation:
    def test_bad_parameters(self, rng):
        a = random_codes(rng, 10)
        with pytest.raises(ConfigError):
            align_multi_process(a, a, DNA_DEFAULT, workers=0)
        with pytest.raises(ConfigError):
            align_multi_process(a, a, DNA_DEFAULT, workers=2, block_rows=0)
        with pytest.raises(ConfigError):
            align_multi_process(a, random_codes(rng, 1), DNA_DEFAULT, workers=2)
        with pytest.raises(ConfigError):
            align_multi_process(a, a, DNA_DEFAULT, workers=2, transport="udp")
        with pytest.raises(ConfigError):
            align_multi_process(a, a, DNA_DEFAULT, workers=2, weights=[1.0])
        with pytest.raises(ConfigError):
            align_multi_process(a, a, DNA_DEFAULT, workers=2, capacity=0)

    def test_empty_sequences_rejected(self):
        import numpy as np
        with pytest.raises(ConfigError):
            align_multi_process(np.array([], dtype=np.uint8),
                                np.array([1], dtype=np.uint8), DNA_DEFAULT)
