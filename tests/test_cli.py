"""Integration tests: the mgsw command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_devices_lists_presets(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "GTX 680" in out
    assert "env1" in out and "140.4" in out


def test_generate_then_align(tmp_path, capsys):
    fa = str(tmp_path / "a.fa")
    fb = str(tmp_path / "b.fa")
    assert main(["generate", "chr22", fa, fb, "--scale", "2e-4", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out

    assert main(["align", fa, fb, "--block-rows", "256"]) == 0
    out = capsys.readouterr().out
    assert "score:" in out
    assert "GCUPS" in out
    assert "GTX 580" in out


def test_align_with_trace(tmp_path, capsys):
    fa = str(tmp_path / "a.fa")
    fb = str(tmp_path / "b.fa")
    main(["generate", "chr22", fa, fb, "--scale", "3e-5"])
    capsys.readouterr()
    assert main(["align", fa, fb, "--trace", "--gpu", "gtx680", "--gpu", "k20"]) == 0
    out = capsys.readouterr().out
    assert "a: " in out  # pretty-printed alignment block


def test_time_subcommand(capsys):
    assert main(["time", "1000000", "2000000", "--env", "env2",
                 "--block-rows", "1024"]) == 0
    out = capsys.readouterr().out
    assert "GCUPS" in out
    assert "M2090" in out


def test_missing_file_reports_error(capsys):
    assert main(["align", "/nonexistent/a.fa", "/nonexistent/b.fa"]) == 1
    assert "error:" in capsys.readouterr().err


def test_generate_rejects_unknown_pair():
    with pytest.raises(SystemExit):
        main(["generate", "chrX", "a.fa", "b.fa"])


def test_tune_subcommand(capsys):
    assert main(["tune", "5000000", "5000000", "--env", "env2", "--verify"]) == 0
    out = capsys.readouterr().out
    assert "choice" in out and "simulated:" in out


def test_stats_subcommand(capsys):
    assert main(["stats", "1000000", "1000000", "--samples", "25"]) == 0
    out = capsys.readouterr().out
    assert "lambda" in out and "E-value" in out


def test_dotplot_subcommand(tmp_path, capsys):
    fa = str(tmp_path / "a.fa")
    fb = str(tmp_path / "b.fa")
    main(["generate", "chr22", fa, fb, "--scale", "1e-4"])
    capsys.readouterr()
    assert main(["dotplot", fa, fb, "--tiles", "8"]) == 0
    out = capsys.readouterr().out
    assert "diagonal fraction" in out
    assert "@" in out  # the homology diagonal


def test_campaign_subcommand(capsys):
    assert main(["campaign", "--env", "env2", "--block-rows", "8192",
                 "--buffer", "8"]) == 0
    out = capsys.readouterr().out
    assert "chained:" in out and "split:" in out
    assert "chr19" in out
