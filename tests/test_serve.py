"""Tests: the alignment service (repro.serve, INTERNALS.md §14).

Covers the pure scheduling/admission/caching layers unit-style, then the
live daemon concurrency contracts the PR promises: parallel submits hit
the admission cap instead of queueing without bound, a resubmitted job
is served from the digest cache bit-identical to the cold run, the fair
scheduler starves neither direction, and a drained shutdown leaks no
shared-memory segments.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import seq
from repro.comm.shmring import SHM_NAME_PREFIX
from repro.errors import ConfigError, ServeError
from repro.serve import (
    AdmissionError,
    FairScheduler,
    JobQueue,
    JobSpec,
    ResultCache,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    job_cost,
)
from repro.serve.jobs import JobRecord
from repro.serve.protocol import error_response, recv_message, send_message
from repro.sw.naive import sw_score_naive

SCORING = seq.DNA_DEFAULT


def spec(a="ACGTACGT", b="ACGTTCGT", *, tenant="default", **kw) -> JobSpec:
    return JobSpec(a_codes=seq.encode(a), b_codes=seq.encode(b),
                   scoring=SCORING, tenant=tenant, **kw)


def record(lane="short", tenant="default", cells=10, job_id="j") -> JobRecord:
    s = spec("A" * max(1, cells // 2), "A" * 2, tenant=tenant,
             lane_override=lane)
    return JobRecord(id=job_id, spec=s, lane=lane)


def _shm_names() -> set[str]:
    try:
        return {n for n in os.listdir("/dev/shm")
                if n.startswith(SHM_NAME_PREFIX)}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# ---------------------------------------------------------------------------
# JobSpec: lanes and cache keys
# ---------------------------------------------------------------------------
class TestJobSpec:
    def test_lane_classification_by_effective_cells(self):
        small = spec("A" * 100, "C" * 100)
        assert small.lane() == "short"
        big = spec("A" * 3000, "C" * 3000)
        assert big.effective_cells == 9_000_000
        assert big.lane() == "long"

    def test_banded_megabase_rides_the_short_lane(self):
        # The whole point of effective_cells: a banded job over big
        # sequences is still cheap, so it must keep its priority.
        banded = spec("A" * 20_000, "C" * 20_000, mode="banded", band_width=32)
        assert banded.cells == 400_000_000
        assert banded.effective_cells == 20_000 * 65
        assert banded.lane() == "short"

    def test_lane_override_wins(self):
        assert spec(lane_override="long").lane() == "long"
        with pytest.raises(ConfigError, match="unknown lane"):
            spec(lane_override="express")

    def test_cache_key_tracks_content_not_identity(self):
        assert spec("ACGT", "ACGT").cache_key() == \
            spec("ACGT", "ACGT").cache_key()
        assert spec("ACGT", "ACGT").cache_key() != \
            spec("ACGT", "ACGA").cache_key()

    def test_cache_key_covers_answer_changing_config_only(self):
        base = spec()
        # Tier, scoring and dtype change the (intermediate) answer...
        assert base.cache_key() != spec(mode="banded").cache_key()
        assert base.cache_key() != spec(dp_dtype="int32").cache_key()
        other_scoring = JobSpec(
            a_codes=base.a_codes, b_codes=base.b_codes,
            scoring=seq.Scoring(match=2, mismatch=-3, gap_open=5,
                                gap_extend=2))
        assert base.cache_key() != other_scoring.cache_key()
        # ...execution strategy does not (bit-identical engines).
        assert base.cache_key() == spec(kernel="batched").cache_key()
        assert base.cache_key() == spec(block_rows=64).cache_key()
        assert base.cache_key() == spec(pruning=True).cache_key()
        assert base.cache_key() == spec(tenant="other").cache_key()

    def test_band_width_only_keys_banded_modes(self):
        assert spec(band_width=8).cache_key() == spec(band_width=9).cache_key()
        assert spec(mode="banded", band_width=8).cache_key() != \
            spec(mode="banded", band_width=9).cache_key()

    def test_empty_sequences_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            JobSpec(a_codes=np.array([], dtype=np.int8),
                    b_codes=seq.encode("ACGT"), scoring=SCORING)


# ---------------------------------------------------------------------------
# FairScheduler: lanes + DRR
# ---------------------------------------------------------------------------
class TestFairScheduler:
    def test_weighted_interleave_neither_lane_starves(self):
        sched = FairScheduler()  # short:long = 4:1
        for i in range(20):
            sched.push(record("short", job_id=f"s{i}"))
        for i in range(20):
            sched.push(record("long", job_id=f"l{i}"))
        lanes = [sched.pop().lane for _ in range(20)]
        # Every 5-pick window serves exactly one long job (4:1 smooth WRR).
        for i in range(0, 20, 5):
            window = lanes[i:i + 5]
            assert window.count("long") == 1, lanes
        assert lanes.count("short") == 16

    def test_short_flood_does_not_starve_long(self):
        sched = FairScheduler()
        sched.push(record("long", job_id="L"))
        for i in range(50):
            sched.push(record("short", job_id=f"s{i}"))
        picks = [sched.pop().id for _ in range(6)]
        assert "L" in picks  # served within one weight cycle

    def test_long_backlog_does_not_starve_short(self):
        sched = FairScheduler()
        for i in range(50):
            sched.push(record("long", job_id=f"l{i}"))
        sched.push(record("short", job_id="S"))
        picks = [sched.pop().id for _ in range(2)]
        assert "S" in picks  # priority lane jumps most of the backlog

    def test_single_lane_short_circuits(self):
        sched = FairScheduler()
        for i in range(3):
            sched.push(record("long", job_id=f"l{i}"))
        assert [sched.pop().id for _ in range(3)] == ["l0", "l1", "l2"]
        assert sched.pop() is None

    def test_drr_cost_fairness_across_tenants(self):
        # Tenant a queues expensive jobs, tenant b cheap ones: b gets
        # more jobs through, but a is never locked out.
        sched = FairScheduler()
        for i in range(6):
            big = spec("A" * 4000, "C" * 2000, tenant="a",
                       lane_override="long")  # 8 cost units
            sched.push(JobRecord(id=f"a{i}", spec=big, lane="long"))
        for i in range(24):
            sched.push(record("long", tenant="b", job_id=f"b{i}"))
        first_24 = [sched.pop().id for _ in range(24)]
        a_served = sum(1 for x in first_24 if x.startswith("a"))
        b_served = 24 - a_served
        assert a_served >= 2       # the expensive tenant keeps flowing
        assert b_served > a_served  # same cost share => more cheap jobs

    def test_idle_tenant_banks_no_credit(self):
        sched = FairScheduler()
        sched.push(record("short", tenant="idle", job_id="x"))
        assert sched.pop().id == "x"
        # Rounds pass with another tenant only.
        for i in range(10):
            sched.push(record("short", tenant="busy", job_id=f"b{i}"))
        for _ in range(10):
            sched.pop()
        # The returning tenant starts from parity, not a banked burst.
        expensive = spec("A" * 4000, "C" * 2000, tenant="idle",
                         lane_override="short")
        sched.push(JobRecord(id="big", spec=expensive, lane="short"))
        sched.push(record("short", tenant="busy", job_id="b-new"))
        assert sched.pop().id == "b-new"  # cheap job first: no banked credit

    def test_job_cost_clamped(self):
        tiny = record("short")
        assert job_cost(tiny) == 1.0
        huge = spec("A" * 100_000, "C" * 100_000, lane_override="long")
        assert job_cost(JobRecord(id="h", spec=huge, lane="long")) == 64.0

    def test_weight_validation(self):
        with pytest.raises(ConfigError, match="lane_weights"):
            FairScheduler(lane_weights={"short": 1.0})
        with pytest.raises(ConfigError, match="positive"):
            FairScheduler(lane_weights={"short": 0.0, "long": 1.0})


# ---------------------------------------------------------------------------
# JobQueue: admission control
# ---------------------------------------------------------------------------
class TestJobQueueAdmission:
    def test_queue_depth_cap_rejects_with_429(self):
        q = JobQueue(max_depth=3, tenant_cap=100)
        for i in range(3):
            q.submit(spec(tenant=f"t{i}"))
        with pytest.raises(AdmissionError, match="queue full") as exc:
            q.submit(spec(tenant="t9"))
        assert exc.value.code == 429

    def test_tenant_cap_counts_queued_plus_running(self):
        q = JobQueue(max_depth=100, tenant_cap=2)
        q.submit(spec(tenant="a"))
        q.submit(spec(tenant="a"))
        with pytest.raises(AdmissionError, match="in-flight cap"):
            q.submit(spec(tenant="a"))
        q.submit(spec(tenant="b"))  # other tenants unaffected
        # Dispatching does not free the slot (still in flight)...
        running = q.next_job(timeout=0)
        assert running.spec.tenant == "a"
        with pytest.raises(AdmissionError):
            q.submit(spec(tenant="a"))
        # ...finishing does.
        q.finish(running, state="done", result={})
        q.submit(spec(tenant="a"))

    def test_parallel_submits_admit_exactly_max_depth(self):
        # The concurrency contract: under a thundering herd the queue
        # admits exactly max_depth jobs and 429s the rest — atomically,
        # no lost updates, no over-admission.
        q = JobQueue(max_depth=8, tenant_cap=1000)
        admitted, rejected = [], []
        barrier = threading.Barrier(32)

        def hammer(i):
            barrier.wait()
            try:
                admitted.append(q.submit(spec(tenant=f"t{i}")).id)
            except AdmissionError as exc:
                rejected.append(exc.code)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 8
        assert len(set(admitted)) == 8
        assert rejected == [429] * 24
        assert q.stats()["queued"] == 8

    def test_closed_queue_rejects_with_503(self):
        q = JobQueue()
        q.close()
        with pytest.raises(AdmissionError) as exc:
            q.submit(spec())
        assert exc.value.code == 503

    def test_close_cancels_queued_but_not_running(self):
        q = JobQueue()
        q.submit(spec(tenant="a"))
        q.submit(spec(tenant="b"))
        running = q.next_job(timeout=0)
        cancelled = q.close(cancel_queued=True)
        assert [r.state for r in cancelled] == ["cancelled"]
        assert running.state == "running"
        assert q.next_job(timeout=0) is None  # closed + drained => None

    def test_wait_for_blocks_until_terminal(self):
        q = JobQueue()
        rec = q.submit(spec())

        def finisher():
            job = q.next_job(timeout=1)
            q.finish(job, state="done", result={"score": 5})

        t = threading.Thread(target=finisher)
        t.start()
        done = q.wait_for(rec.id, timeout=5)
        t.join()
        assert done.state == "done" and done.result == {"score": 5}
        assert q.wait_for("job-999999", timeout=0) is None


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------
class TestResultCache:
    def test_lru_eviction_and_stats(self):
        c = ResultCache(max_entries=2)
        c.put("a", {"s": 1})
        c.put("b", {"s": 2})
        assert c.get("a") == {"s": 1}   # refreshes a
        c.put("c", {"s": 3})            # evicts b (LRU)
        assert "b" not in c and "a" in c and "c" in c
        stats = c.stats()
        assert stats["hits"] == 1
        assert stats["entries"] == 2

    def test_returned_dict_is_a_copy(self):
        c = ResultCache()
        c.put("k", {"s": 1})
        c.get("k")["s"] = 99
        assert c.get("k")["s"] == 1

    def test_zero_entries_disables(self):
        c = ResultCache(max_entries=0)
        c.put("k", {"s": 1})
        assert c.get("k") is None
        with pytest.raises(ConfigError):
            ResultCache(max_entries=-1)


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip_and_eof(self, tmp_path):
        import io

        buf = io.BytesIO()
        send_message(buf, {"op": "ping", "x": 1})
        buf.seek(0)
        assert recv_message(buf) == {"op": "ping", "x": 1}
        assert recv_message(buf) is None  # EOF

    def test_junk_line_raises_serve_error(self):
        import io

        assert recv_message(io.BytesIO(b"\n")) == {}
        with pytest.raises(ServeError, match="malformed"):
            recv_message(io.BytesIO(b"not json\n"))
        with pytest.raises(ServeError, match="JSON object"):
            recv_message(io.BytesIO(b"[1,2]\n"))

    def test_error_response_shape(self):
        doc = error_response("nope", code=429)
        assert doc == {"ok": False, "code": 429, "error": "nope"}


# ---------------------------------------------------------------------------
# The live daemon
# ---------------------------------------------------------------------------
A_TEXT = "ACGTACGGTACCGTTACGTACGATCGATCCGTA" * 12
B_TEXT = "ACGTACGGTACCGATACGTACGTTCGATCCGAA" * 12


@pytest.fixture(scope="class")
def daemon():
    d = ServeDaemon(ServeConfig(pools=1, workers=2, queue_depth=16,
                                tenant_cap=8), status_port=0)
    d.start()
    yield d
    d.stop()


class TestServeDaemon:
    def test_submit_matches_engine_and_repeat_hits_cache(self, daemon):
        with ServeClient(port=daemon.port) as client:
            cold = client.check(client.submit(
                seq_a=A_TEXT, seq_b=B_TEXT, tenant="cold"))["job"]
            cold = client.check(client.wait(
                cold["id"], timeout_s=60))["job"]
            assert cold["state"] == "done" and not cold["cached"]
            score, row, col = sw_score_naive(
                seq.encode(A_TEXT), seq.encode(B_TEXT), SCORING)
            assert cold["result"]["score"] == score
            assert (cold["result"]["row"], cold["result"]["col"]) == \
                (row, col)

            warm = client.check(client.submit(
                seq_a=A_TEXT, seq_b=B_TEXT, tenant="warm"))["job"]
            # A cache hit is already terminal and bit-identical.
            assert warm["cached"] and warm["state"] == "done"
            assert warm["result"]["score"] == cold["result"]["score"]
            assert warm["result"]["row"] == cold["result"]["row"]
            assert warm["result"]["col"] == cold["result"]["col"]
            assert warm["cache_key"] == cold["cache_key"]

    def test_no_cache_submission_recomputes(self, daemon):
        with ServeClient(port=daemon.port) as client:
            job = client.check(client.submit(
                seq_a=A_TEXT, seq_b=B_TEXT, use_cache=False))["job"]
            job = client.check(client.wait(job["id"], timeout_s=60))["job"]
            assert job["state"] == "done" and not job["cached"]

    def test_parallel_submits_hit_admission_cap(self):
        d = ServeDaemon(ServeConfig(pools=1, workers=2, queue_depth=3,
                                    tenant_cap=64), status_port=None)
        # Deliberately do NOT start the executors: submissions pile up
        # in the queue so the cap is observable deterministically.
        if d.status is not None:  # pragma: no cover - defensive
            d.status.stop()
        d._tcp_thread = threading.Thread(
            target=d._tcp.serve_forever, kwargs={"poll_interval": 0.1},
            daemon=True)
        d._tcp_thread.start()
        try:
            results = []
            barrier = threading.Barrier(8)

            def hammer(i):
                barrier.wait()
                with ServeClient(port=d.port) as client:
                    resp = client.submit(seq_a="ACGT" * 200,
                                         seq_b="ACGA" * 200,
                                         tenant=f"t{i}", use_cache=False)
                    results.append(resp)

            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            admitted = [r for r in results if r.get("ok")]
            rejected = [r for r in results if not r.get("ok")]
            assert len(admitted) == 3
            assert len(rejected) == 5
            assert all(r["code"] == 429 for r in rejected)
        finally:
            d.stop()
        # After the drain, queued jobs were cancelled, not run.
        states = [r.state for r in d.queue.jobs()]
        assert states.count("cancelled") == 3

    def test_draining_daemon_returns_503(self):
        d = ServeDaemon(ServeConfig(pools=1, workers=2), status_port=None)
        d.queue.close(cancel_queued=True)
        resp = d.handle_request({"op": "submit", "seq_a": "ACGT",
                                 "seq_b": "ACGT", "use_cache": False})
        assert resp["ok"] is False and resp["code"] == 503
        d.stop()

    def test_scheduler_keeps_short_jobs_flowing_under_long_backlog(self):
        # Fairness through the whole daemon: queue a burst of long jobs
        # then one short job *before* the executors start; once they do,
        # the priority lane must dispatch the short job first even
        # though it arrived last.
        d = ServeDaemon(ServeConfig(pools=1, workers=2, queue_depth=32,
                                    tenant_cap=32), status_port=None)
        long_a, long_b = "ACGT" * 600, "ACGA" * 600  # ~5.8M cells => long
        try:
            longs = [d.submit(spec(long_a, long_b, tenant=f"t{i}",
                                   use_cache=False)) for i in range(6)]
            assert all(r.lane == "long" for r in longs)
            short = d.submit(spec("ACGT" * 30, "ACGA" * 30, tenant="quick",
                                  use_cache=False))
            assert short.lane == "short"
            d.start()  # executors begin draining the backlog now
            done = d.queue.wait_for(short.id, timeout=120)
            assert done.state == "done"
            # The single serial executor picked the short job before any
            # long job (the 4:1 lane credits guarantee the first pick).
            long_starts = [r.started_mono for r in longs
                           if r.started_mono is not None]
            assert not long_starts or done.started_mono < min(long_starts)
        finally:
            d.stop()

    def test_shutdown_drains_without_leaking_shm(self):
        before = _shm_names()
        d = ServeDaemon(ServeConfig(pools=2, workers=2), status_port=0)
        d.start()
        with ServeClient(port=d.port) as client:
            job = client.check(client.submit(
                seq_a=A_TEXT, seq_b=B_TEXT, use_cache=False))["job"]
            client.check(client.wait(job["id"], timeout_s=60))
        assert _shm_names() - before  # pools really hold shm while alive
        d.stop()
        assert _shm_names() - before == set()
        d.stop()  # idempotent

    def test_jobs_and_stats_ops(self, daemon):
        with ServeClient(port=daemon.port) as client:
            listing = client.check(client.jobs(limit=5))
            assert isinstance(listing["jobs"], list)
            stats = client.stats()
            assert stats["queue"]["max_depth"] == 16
            assert stats["pools"][0]["alive"]
            ping = client.ping()
            assert ping["server"] == "mgsw-serve"

    def test_unknown_op_and_bad_submit_are_400(self, daemon):
        with ServeClient(port=daemon.port) as client:
            resp = client.request({"op": "frobnicate"})
            assert resp["ok"] is False and resp["code"] == 400
            resp = client.submit(seq_a="ACGT")  # missing seq_b
            assert resp["ok"] is False and "seq_b" in resp["error"]
            resp = client.request({"op": "status", "id": "job-999999"})
            assert resp["code"] == 404

    def test_status_server_routes(self, daemon):
        with ServeClient(port=daemon.port) as client:
            job = client.check(client.submit(
                seq_a=A_TEXT, seq_b=B_TEXT, tenant="http"))["job"]
            client.check(client.wait(job["id"], timeout_s=60))
        base = daemon.status_url
        with urllib.request.urlopen(base + "/jobs", timeout=5) as resp:
            doc = json.loads(resp.read())
        assert any(j["id"] == job["id"] for j in doc["jobs"])
        assert "queue" in doc and "cache" in doc
        with urllib.request.urlopen(base + f"/jobs/{job['id']}",
                                    timeout=5) as resp:
            one = json.loads(resp.read())
        assert one["id"] == job["id"] and one["state"] == "done"
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(base + "/jobs/job-999999", timeout=5)
        assert exc.value.code == 404
        with urllib.request.urlopen(base + "/metrics", timeout=5) as resp:
            text = resp.read().decode()
        assert "serve_jobs_submitted" in text
        assert "serve_job_latency_s" in text

    def test_journal_carries_job_lifecycle(self, daemon):
        with ServeClient(port=daemon.port) as client:
            job = client.check(client.submit(
                seq_a="ACGTACGT" * 8, seq_b="ACGAACGT" * 8,
                tenant="journal", use_cache=False))["job"]
            client.check(client.wait(job["id"], timeout_s=60))
        assert daemon.journal.count("job_submit") >= 1
        assert daemon.journal.count("job_start") >= 1
        assert daemon.journal.count("job_end") >= 1
        tail = daemon.journal.recent(200)
        mine = [e for e in tail if e.get("job") == job["id"]]
        kinds = [e["event"] for e in mine]
        assert kinds.index("job_submit") < kinds.index("job_start") \
            < kinds.index("job_end")
