"""Shared fixtures for the test suite (helpers live in tests/helpers.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seq.scoring import DNA_DEFAULT, Scoring


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need different streams seed their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def scoring() -> Scoring:
    return DNA_DEFAULT
