"""Unit tests: repro.comm.network and repro.multigpu.cluster."""

from __future__ import annotations

import pytest

from repro.comm import NetworkLink
from repro.device import TESLA_M2090, GTX_680
from repro.errors import CommError, ConfigError
from repro.multigpu import (
    ChainConfig,
    ClusterChain,
    MatrixWorkload,
    Node,
    PhantomWorkload,
    min_internode_overlap_width,
)
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive

from helpers import mutated_copy, random_codes


class TestNetworkLink:
    def test_transfer_time(self):
        link = NetworkLink(gbps=1.0, latency_s=1e-3)
        assert link.transfer_time(1_000_000_000) == pytest.approx(1.0 + 1e-3)
        assert link.transfer_time(0) == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(CommError):
            NetworkLink(gbps=0)
        with pytest.raises(CommError):
            NetworkLink(gbps=1.0, latency_s=-1)
        with pytest.raises(CommError):
            NetworkLink(gbps=1.0).transfer_time(-1)


class TestClusterLayout:
    def test_flattening_and_boundaries(self):
        nodes = [
            Node("n0", (TESLA_M2090, GTX_680)),
            Node("n1", (TESLA_M2090,)),
            Node("n2", (GTX_680, GTX_680)),
        ]
        cc = ClusterChain(nodes)
        assert len(cc.specs) == 5
        links = cc.boundary_links()
        # channels: 0-1 intra, 1-2 inter, 2-3 inter, 3-4 intra
        assert links[0] is None
        assert links[1] is not None
        assert links[2] is not None
        assert links[3] is None

    def test_empty_node_rejected(self):
        with pytest.raises(ConfigError):
            Node("bad", ())

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigError):
            ClusterChain([])


class TestClusterExactness:
    def test_score_exact_across_node_boundary(self, rng):
        for _ in range(6):
            a = random_codes(rng, int(rng.integers(30, 120)))
            b = random_codes(rng, int(rng.integers(60, 200)))
            want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
            nodes = [Node("n0", (TESLA_M2090,)), Node("n1", (TESLA_M2090, GTX_680))]
            cc = ClusterChain(nodes, config=ChainConfig(block_rows=16))
            res = cc.run(MatrixWorkload(a, b, DNA_DEFAULT))
            assert res.score == want

    def test_homolog_path_through_network(self, rng):
        a = random_codes(rng, 150)
        b = mutated_copy(rng, a, 0.03)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        nodes = [Node("n0", (TESLA_M2090,)), Node("n1", (TESLA_M2090,))]
        cc = ClusterChain(nodes, config=ChainConfig(block_rows=8,
                                                    channel_capacity=2))
        res = cc.run(MatrixWorkload(a, b, DNA_DEFAULT))
        assert res.score == want


class TestClusterTiming:
    def test_fast_interconnect_near_intranode(self):
        fast = NetworkLink(gbps=4.0, latency_s=5e-6, name="IB")
        nodes = [Node("n0", (TESLA_M2090, TESLA_M2090), uplink=fast),
                 Node("n1", (TESLA_M2090, TESLA_M2090))]
        cc = ClusterChain(nodes, config=ChainConfig(block_rows=4096,
                                                    channel_capacity=8))
        res = cc.run(PhantomWorkload(5_000_000, 5_000_000))
        aggregate = 4 * TESLA_M2090.gcups
        assert res.gcups > 0.95 * aggregate

    def test_slow_interconnect_gates_throughput(self):
        slow = NetworkLink(gbps=1e-5, latency_s=1e-3, name="slow")
        nodes = [Node("n0", (TESLA_M2090, TESLA_M2090), uplink=slow),
                 Node("n1", (TESLA_M2090, TESLA_M2090))]
        cc = ClusterChain(nodes, config=ChainConfig(block_rows=4096,
                                                    channel_capacity=8))
        res = cc.run(PhantomWorkload(5_000_000, 5_000_000))
        aggregate = 4 * TESLA_M2090.gcups
        assert res.gcups < 0.5 * aggregate

    def test_network_busy_accounted(self):
        nodes = [Node("n0", (TESLA_M2090,)), Node("n1", (TESLA_M2090,))]
        cc = ClusterChain(nodes, config=ChainConfig(block_rows=1024))
        # run and inspect the channel via a fresh engine run: net_busy is
        # internal to the channel; assert via timing difference instead.
        res_cluster = cc.run(PhantomWorkload(1_000_000, 1_000_000))
        from repro.multigpu import MultiGpuChain
        intra = MultiGpuChain((TESLA_M2090, TESLA_M2090),
                              config=ChainConfig(block_rows=1024))
        res_intra = intra.run(PhantomWorkload(1_000_000, 1_000_000))
        # Default 10GbE is fast enough that both are compute-bound.
        assert res_cluster.total_time_s == pytest.approx(
            res_intra.total_time_s, rel=0.02)


class TestInterNodeOverlapWidth:
    def test_crossover_property(self):
        link = NetworkLink(gbps=0.001, latency_s=1e-4)
        w = min_internode_overlap_width(TESLA_M2090, TESLA_M2090, link, 1024)
        assert w >= 1
        # At the returned width the block-row time covers the worst hop.
        from repro.multigpu import segment_bytes
        nbytes = segment_bytes(1024)
        cost = max(TESLA_M2090.transfer_time(nbytes), link.transfer_time(nbytes))
        t = 1024 * w / TESLA_M2090.effective_rate(w)
        assert t >= cost
        if w > 1:
            t_prev = 1024 * (w - 1) / TESLA_M2090.effective_rate(w - 1)
            assert t_prev < cost

    def test_network_hop_raises_minimum_width(self):
        from repro.multigpu import min_overlap_width
        slow_net = NetworkLink(gbps=0.0005, latency_s=1e-3)
        intra = min_overlap_width(TESLA_M2090, TESLA_M2090, 1024)
        inter = min_internode_overlap_width(TESLA_M2090, TESLA_M2090, slow_net, 1024)
        assert inter > intra
