"""Unit tests: repro.sw.myers_miller (linear-space global alignment)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT, Scoring, encode
from repro.sw import naive
from repro.sw.myers_miller import align_global, global_score

from helpers import mutated_copy, random_codes, random_scoring


class TestGlobalScore:
    def test_equals_oracle(self, rng):
        for _ in range(40):
            a = random_codes(rng, int(rng.integers(1, 30)))
            b = random_codes(rng, int(rng.integers(1, 30)))
            sc = random_scoring(rng)
            assert global_score(a, b, sc) == naive.full_matrices(a, b, sc, local=False).score

    def test_empty_cases(self):
        empty = np.array([], dtype=np.uint8)
        a = encode("ACGT")
        assert global_score(empty, empty, DNA_DEFAULT) == 0
        assert global_score(a, empty, DNA_DEFAULT) == -(3 + 2 * 4)
        assert global_score(empty, a, DNA_DEFAULT) == -(3 + 2 * 4)

    def test_identical(self):
        a = encode("ACGTACGT")
        assert global_score(a, a, DNA_DEFAULT) == 8


class TestAlignGlobal:
    def test_deep_recursion_equals_oracle(self, rng):
        """base_cells=8 forces the divide-and-conquer through every branch,
        including the vertical-gap (F) crossing with tb/te flags."""
        for _ in range(80):
            m = int(rng.integers(0, 35))
            n = int(rng.integers(0, 35))
            a = random_codes(rng, m)
            b = random_codes(rng, n)
            sc = random_scoring(rng)
            aln = align_global(a, b, sc, base_cells=8)
            aln.validate(a, b, sc)
            if m and n:
                assert aln.score == naive.full_matrices(a, b, sc, local=False).score

    def test_alignment_covers_everything(self, rng):
        a = random_codes(rng, 50)
        b = random_codes(rng, 40)
        aln = align_global(a, b, DNA_DEFAULT, base_cells=64)
        assert (aln.start_i, aln.end_i) == (0, 50)
        assert (aln.start_j, aln.end_j) == (0, 40)
        counts = aln.op_counts()
        assert counts["M"] + counts["D"] == 50
        assert counts["M"] + counts["I"] == 40

    def test_gap_heavy_case(self):
        """Sequences engineered so the optimal path has a long vertical gap
        crossing the midline — the F-crossing recursion path."""
        sc = Scoring(match=5, mismatch=-4, gap_open=2, gap_extend=1)
        a = encode("ACGT" + "T" * 30 + "ACGT")
        b = encode("ACGTACGT")
        aln = align_global(a, b, sc, base_cells=8)
        aln.validate(a, b, sc)
        assert aln.score == naive.full_matrices(a, b, sc, local=False).score
        assert "D" * 30 in aln.ops  # the long deletion survives intact

    def test_homolog_alignment_identity(self, rng):
        a = random_codes(rng, 800)
        b = mutated_copy(rng, a, 0.05)
        aln = align_global(a, b, DNA_DEFAULT, base_cells=4096)
        aln.validate(a, b, DNA_DEFAULT)
        assert aln.identity(a, b) > 0.9

    def test_empty_inputs(self):
        empty = np.array([], dtype=np.uint8)
        a = encode("ACG")
        aln = align_global(a, empty, DNA_DEFAULT)
        assert aln.ops == "DDD"
        aln2 = align_global(empty, a, DNA_DEFAULT)
        assert aln2.ops == "III"
        aln3 = align_global(empty, empty, DNA_DEFAULT)
        assert aln3.ops == ""

    def test_bad_base_cells_rejected(self):
        a = encode("ACG")
        with pytest.raises(ConfigError):
            align_global(a, a, DNA_DEFAULT, base_cells=1)

    def test_linear_gap_scheme(self, rng):
        sc = Scoring(match=1, mismatch=-1, gap_open=0, gap_extend=1)
        for _ in range(20):
            a = random_codes(rng, int(rng.integers(1, 25)))
            b = random_codes(rng, int(rng.integers(1, 25)))
            aln = align_global(a, b, sc, base_cells=8)
            assert aln.score == naive.full_matrices(a, b, sc, local=False).score
