"""Unit tests: repro.sw.stages — the multi-stage traceback pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlignmentError, ConfigError
from repro.seq import DNA_DEFAULT, encode
from repro.sw import naive
from repro.sw.myers_miller import global_score
from repro.sw.stages import (
    SpecialRowStore,
    align_local,
    find_crossings,
    stage1_score,
    stage2_start,
    stage3_align,
)

from helpers import mutated_copy, random_codes, random_scoring


class TestStage1:
    def test_score_and_endpoint_match_oracle(self, rng):
        for _ in range(25):
            a = random_codes(rng, int(rng.integers(1, 40)))
            b = random_codes(rng, int(rng.integers(1, 40)))
            sc = random_scoring(rng)
            want, wi, wj = naive.sw_score_naive(a, b, sc)
            s1 = stage1_score(a, b, sc)
            assert s1.score == want
            if want > 0:
                assert (s1.end_i, s1.end_j) == (wi, wj)

    def test_zero_score_sentinel(self):
        s1 = stage1_score(encode("AAAA"), encode("TTTT"), DNA_DEFAULT)
        assert (s1.score, s1.end_i, s1.end_j) == (0, -1, -1)

    def test_special_rows_recorded(self, rng):
        a = random_codes(rng, 20)
        b = random_codes(rng, 15)
        s1 = stage1_score(a, b, DNA_DEFAULT, special_interval=4)
        assert s1.special_rows is not None
        assert s1.special_rows.row_indices() == [3, 7, 11, 15, 19]
        assert s1.special_rows.bytes_stored == 5 * 2 * 15 * 4

    def test_store_validation(self):
        with pytest.raises(ConfigError):
            SpecialRowStore(0)


class TestStage2:
    def test_start_point_consistency(self, rng):
        """Start point found by stage 2 must admit a global alignment of
        exactly the stage-1 score between the anchors."""
        for _ in range(25):
            a = random_codes(rng, int(rng.integers(2, 40)))
            b = random_codes(rng, int(rng.integers(2, 40)))
            sc = random_scoring(rng)
            s1 = stage1_score(a, b, sc)
            if s1.score <= 0:
                continue
            si, sj = stage2_start(a, b, sc, s1.score, s1.end_i, s1.end_j, chunk_rows=5)
            assert 0 <= si <= s1.end_i
            assert 0 <= sj <= s1.end_j
            anchored = global_score(a[si : s1.end_i + 1], b[sj : s1.end_j + 1], sc)
            assert anchored == s1.score

    def test_rejects_nonpositive_score(self):
        a = encode("ACGT")
        with pytest.raises(AlignmentError):
            stage2_start(a, a, DNA_DEFAULT, 0, 3, 3)

    def test_inconsistent_endpoint_detected(self):
        a = encode("ACGTACGT")
        with pytest.raises(AlignmentError, match="inconsistent"):
            stage2_start(a, a, DNA_DEFAULT, score=999, end_i=7, end_j=7)

    def test_early_termination_on_similar_sequences(self, rng):
        """On a high-identity pair the reverse sweep must stop near the
        start, not scan the whole prefix (chunked early exit)."""
        a = random_codes(rng, 500)
        b = mutated_copy(rng, a, 0.02)
        s1 = stage1_score(a, b, DNA_DEFAULT)
        si, sj = stage2_start(a, b, DNA_DEFAULT, s1.score, s1.end_i, s1.end_j,
                              chunk_rows=64)
        assert si <= 64  # alignment spans nearly everything → start near 0


class TestStage3AndPipeline:
    def test_full_pipeline_equals_oracle(self, rng):
        for _ in range(30):
            a = random_codes(rng, int(rng.integers(1, 35)))
            b = random_codes(rng, int(rng.integers(1, 35)))
            sc = random_scoring(rng)
            want, *_ = naive.sw_score_naive(a, b, sc)
            aln = align_local(a, b, sc, base_cells=16)
            assert aln.score == want
            aln.validate(a, b, sc)

    def test_empty_result(self):
        aln = align_local(encode("AAAA"), encode("TTTT"), DNA_DEFAULT)
        assert aln.score == 0 and aln.ops == ""

    def test_stage3_detects_bad_score(self):
        a = encode("ACGTACGT")
        with pytest.raises(AlignmentError):
            stage3_align(a, a, DNA_DEFAULT, score=999, start=(0, 0), end=(7, 7))

    def test_homolog_end_to_end(self, rng):
        a = random_codes(rng, 600)
        b = mutated_copy(rng, a, 0.03)
        aln = align_local(a, b, DNA_DEFAULT, special_interval=64)
        aln.validate(a, b, DNA_DEFAULT)
        assert aln.identity(a, b) > 0.93
        assert aln.a_span > 500  # covers most of the sequences


class TestFusedStage2:
    def test_agrees_with_separate_calls(self, rng):
        """stage2_with_crossings must reproduce stage2_start +
        find_crossings exactly (it is the same math in one sweep)."""
        from repro.sw.stages import stage2_with_crossings

        for _ in range(15):
            a = random_codes(rng, 150)
            b = mutated_copy(rng, a, 0.08)
            s1 = stage1_score(a, b, DNA_DEFAULT, special_interval=32)
            if s1.score <= 0:
                continue
            si, sj = stage2_start(a, b, DNA_DEFAULT, s1.score, s1.end_i, s1.end_j)
            separate = find_crossings(a, b, DNA_DEFAULT, s1, si, sj)
            fi, fj, fused = stage2_with_crossings(a, b, DNA_DEFAULT, s1)
            assert (fi, fj) == (si, sj)
            assert fused == separate

    def test_requires_special_rows(self, rng):
        from repro.errors import ConfigError
        from repro.sw.stages import stage2_with_crossings

        a = random_codes(rng, 30)
        s1 = stage1_score(a, a, DNA_DEFAULT)
        with pytest.raises(ConfigError):
            stage2_with_crossings(a, a, DNA_DEFAULT, s1)


class TestCrossings:
    def test_crossings_split_score_exactly(self, rng):
        found_any = False
        for trial in range(25):
            a = random_codes(rng, 150)
            b = mutated_copy(rng, a, 0.08)
            s1 = stage1_score(a, b, DNA_DEFAULT, special_interval=32)
            if s1.score <= 0:
                continue
            si, sj = stage2_start(a, b, DNA_DEFAULT, s1.score, s1.end_i, s1.end_j)
            cps = find_crossings(a, b, DNA_DEFAULT, s1, si, sj)
            expected_rows = [r for r in s1.special_rows.row_indices()
                             if si <= r < s1.end_i]
            assert len(cps) == len(expected_rows)
            for c in cps:
                found_any = True
                assert si <= c.row < s1.end_i
                assert sj <= c.col <= s1.end_j
                if not c.gapped:
                    left = global_score(a[si : c.row + 1], b[sj : c.col], DNA_DEFAULT)
                    right = global_score(a[c.row + 1 : s1.end_i + 1],
                                         b[c.col : s1.end_j + 1], DNA_DEFAULT)
                    assert left + right == s1.score
        assert found_any

    def test_crossings_monotone_in_col(self, rng):
        a = random_codes(rng, 200)
        b = mutated_copy(rng, a, 0.05)
        s1 = stage1_score(a, b, DNA_DEFAULT, special_interval=16)
        si, sj = stage2_start(a, b, DNA_DEFAULT, s1.score, s1.end_i, s1.end_j)
        cps = find_crossings(a, b, DNA_DEFAULT, s1, si, sj)
        cols = [c.col for c in cps]
        # Crossing columns of an optimal monotone path are sorted by row...
        # but ties between different optimal paths may break monotonicity;
        # require weak sanity: at least sorted within a small tolerance.
        assert all(c2 >= c1 - 16 for c1, c2 in zip(cols, cols[1:]))

    def test_requires_special_rows(self, rng):
        a = random_codes(rng, 30)
        s1 = stage1_score(a, a, DNA_DEFAULT)
        with pytest.raises(ConfigError):
            find_crossings(a, a, DNA_DEFAULT, s1, 0, 0)
