"""Unit tests: repro.multigpu.partition."""

from __future__ import annotations

import pytest

from repro.errors import PartitionError
from repro.multigpu import (
    Slab,
    equal_partition,
    explicit_partition,
    imbalance,
    proportional_partition,
)


def assert_covering(slabs, n):
    assert slabs[0].col0 == 0
    assert slabs[-1].col1 == n
    for left, right in zip(slabs, slabs[1:]):
        assert left.col1 == right.col0


class TestProportional:
    def test_cover_and_order(self):
        slabs = proportional_partition(1000, [1.0, 2.0, 3.0])
        assert_covering(slabs, 1000)
        assert [s.device_index for s in slabs] == [0, 1, 2]

    def test_widths_proportional(self):
        slabs = proportional_partition(6000, [1.0, 2.0, 3.0])
        widths = [s.cols for s in slabs]
        assert widths == [1000, 2000, 3000]

    def test_rounding_error_bounded(self):
        slabs = proportional_partition(1000, [1.0, 1.0, 1.0])
        for s in slabs:
            assert abs(s.cols - 1000 / 3) <= 1

    def test_single_device_gets_all(self):
        slabs = proportional_partition(777, [3.14])
        assert len(slabs) == 1 and slabs[0].cols == 777

    def test_alignment(self):
        slabs = proportional_partition(1000, [1.0, 1.0, 1.0], align=64)
        for s in slabs[:-1]:
            assert s.col1 % 64 == 0

    def test_min_cols_enforced(self):
        slabs = proportional_partition(100, [1000.0, 1.0], min_cols=10)
        assert slabs[1].cols >= 10
        assert_covering(slabs, 100)

    def test_extreme_skew_still_covers(self):
        slabs = proportional_partition(100, [1e9, 1.0, 1.0], min_cols=1)
        assert_covering(slabs, 100)
        assert all(s.cols >= 1 for s in slabs)

    @pytest.mark.parametrize(
        "n,weights,kwargs",
        [
            (10, [], {}),
            (2, [1.0, 1.0, 1.0], {}),
            (10, [1.0, -1.0], {}),
            (10, [1.0, 0.0], {}),
            (100, [1.0, 1.0], dict(min_cols=0)),
            (100, [1.0, 1.0], dict(align=0)),
            (5, [1.0, 1.0, 1.0], dict(min_cols=2)),
        ],
    )
    def test_invalid_inputs(self, n, weights, kwargs):
        with pytest.raises(PartitionError):
            proportional_partition(n, weights, **kwargs)


class TestEqualAndExplicit:
    def test_equal_partition(self):
        slabs = equal_partition(999, 3)
        assert_covering(slabs, 999)
        widths = [s.cols for s in slabs]
        assert max(widths) - min(widths) <= 1

    def test_explicit_partition(self):
        slabs = explicit_partition(100, [20, 30, 50])
        assert [s.cols for s in slabs] == [20, 30, 50]
        assert_covering(slabs, 100)

    def test_explicit_sum_mismatch(self):
        with pytest.raises(PartitionError):
            explicit_partition(100, [20, 30])

    def test_explicit_zero_width(self):
        with pytest.raises(PartitionError):
            explicit_partition(100, [0, 100])


class TestImbalance:
    def test_perfectly_proportional_is_zero(self):
        slabs = explicit_partition(600, [100, 200, 300])
        assert imbalance(slabs, [1.0, 2.0, 3.0]) == pytest.approx(0.0)

    def test_equal_split_with_heterogeneous_weights(self):
        slabs = explicit_partition(300, [100, 100, 100])
        imb = imbalance(slabs, [1.0, 2.0, 3.0])
        # slowest device gets 100 per 1.0 weight, fastest 100/3 per unit
        assert imb == pytest.approx((100 - 100 / 3) / 100)

    def test_length_mismatch(self):
        slabs = explicit_partition(10, [10])
        with pytest.raises(PartitionError):
            imbalance(slabs, [1.0, 2.0])


class TestSlab:
    def test_degenerate_rejected(self):
        with pytest.raises(PartitionError):
            Slab(0, 5, 5)
        with pytest.raises(PartitionError):
            Slab(0, -1, 4)
