"""Unit tests: repro.sw.alignment value object."""

from __future__ import annotations

import pytest

from repro.errors import AlignmentError
from repro.seq import DNA_DEFAULT, encode
from repro.sw.alignment import Alignment, from_ops


def make(score, ops, si, ei, sj, ej):
    return Alignment(score=score, ops=ops, start_i=si, end_i=ei, start_j=sj, end_j=ej)


class TestConstruction:
    def test_bad_ops_rejected(self):
        with pytest.raises(AlignmentError):
            make(0, "MXD", 0, 2, 0, 1)

    def test_from_ops(self):
        aln = from_ops(5, ["M", "M", "D"], (1, 2), (4, 4))
        assert aln.ops == "MMD"
        assert (aln.start_i, aln.end_i, aln.start_j, aln.end_j) == (1, 4, 2, 4)


class TestAccounting:
    def test_spans_and_counts(self):
        aln = make(0, "MMDMI", 0, 4, 0, 4)
        assert aln.a_span == 4 and aln.b_span == 4
        assert aln.length == 5
        assert aln.op_counts() == {"M": 3, "D": 1, "I": 1}


class TestRescore:
    def test_pure_matches(self):
        a = encode("ACGT")
        aln = make(4, "MMMM", 0, 4, 0, 4)
        assert aln.rescore(a, a, DNA_DEFAULT) == 4

    def test_mismatch(self):
        a = encode("AAAA")
        b = encode("AATA")
        aln = make(1, "MMMM", 0, 4, 0, 4)
        assert aln.rescore(a, b, DNA_DEFAULT) == 3 - 3

    def test_affine_gap_charged_once_per_run(self):
        a = encode("AAAA")
        b = encode("AA")
        aln = make(0, "MMDD", 0, 4, 0, 2)
        # 2 matches - (open + 2*extend) = 2 - 7
        assert aln.rescore(a, b, DNA_DEFAULT) == 2 - 7

    def test_two_separate_gaps_charged_twice(self):
        a = encode("AACAA")
        b = encode("AAAA")  # hypothetical path D..I mix
        aln = make(0, "MMDMM", 0, 5, 0, 4)
        assert aln.rescore(a, b, DNA_DEFAULT) == 4 - 5

    def test_walk_mismatch_detected(self):
        a = encode("AAAA")
        aln = make(0, "MMM", 0, 4, 0, 3)  # ops cover 3 rows, span says 4
        with pytest.raises(AlignmentError):
            aln.rescore(a, a, DNA_DEFAULT)


class TestValidate:
    def test_valid_alignment_passes(self):
        a = encode("ACGT")
        aln = make(4, "MMMM", 0, 4, 0, 4)
        aln.validate(a, a, DNA_DEFAULT)

    def test_wrong_score_detected(self):
        a = encode("ACGT")
        aln = make(5, "MMMM", 0, 4, 0, 4)
        with pytest.raises(AlignmentError, match="claimed score"):
            aln.validate(a, a, DNA_DEFAULT)

    def test_span_mismatch_detected(self):
        a = encode("ACGT")
        aln = make(4, "MMM", 0, 4, 0, 4)
        with pytest.raises(AlignmentError, match="span"):
            aln.validate(a, a, DNA_DEFAULT)


class TestMetrics:
    def test_identity(self):
        a = encode("AAAA")
        b = encode("AATA")
        aln = make(0, "MMMM", 0, 4, 0, 4)
        assert aln.identity(a, b) == 0.75

    def test_identity_ignores_n_matches(self):
        a = encode("NN")
        aln = make(0, "MM", 0, 2, 0, 2)
        assert aln.identity(a, a) == 0.0

    def test_identity_empty(self):
        assert make(0, "", 0, 0, 0, 0).identity(encode("A"), encode("A")) == 0.0

    def test_cigar(self):
        aln = make(0, "MMMDDMI", 0, 6, 0, 4)
        assert aln.cigar() == "3M2D1M1I"

    def test_cigar_empty(self):
        assert make(0, "", 0, 0, 0, 0).cigar() == ""


class TestPretty:
    def test_contains_sequences_and_score(self):
        a = encode("ACGT")
        b = encode("ACTT")
        aln = make(1, "MMMM", 0, 4, 0, 4)
        out = aln.pretty(a, b)
        assert "score=1" in out
        assert "ACGT" in out and "ACTT" in out
        assert "|" in out and "." in out

    def test_gap_rendering(self):
        a = encode("AAT")
        b = encode("AT")
        aln = make(0, "MDM", 0, 3, 0, 2)
        out = aln.pretty(a, b)
        assert "A-T" in out.replace("b: ", "")

    def test_truncation(self):
        a = encode("A" * 5000)
        aln = make(5000, "M" * 5000, 0, 5000, 0, 5000)
        out = aln.pretty(a, a, width=60, max_lines=3)
        assert "more columns" in out
