"""The DP dtype policy layer: headroom math, narrow kernels, escalation.

Covers the :mod:`repro.sw.constants` policy objects (sentinels, overflow
caps, width limits, resolution rules), the narrow paths of
:func:`~repro.sw.kernel.sweep_block` and
:func:`~repro.sw.batched.sweep_wavefront` (bit-identical to int32,
including forced escalation), the dtype-keyed caches, and the
``blocks_narrow``/``blocks_wide``/``dtype_escalations`` telemetry
contract (fired once per block, absent entirely on wide runs).
"""

from __future__ import annotations

import numpy as np
import pytest
from helpers import mutated_copy, random_codes
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT, Scoring, encode
from repro.sw.batched import BlockJob, KernelWorkspace, ProfileCache, sweep_wavefront
from repro.sw.blocks import compute_blocked
from repro.sw.constants import (
    DP_DTYPE_CHOICES,
    MAX_SWEEP_WIDTH,
    NEG_INF,
    POLICIES,
    get_policy,
    resolve_dp_dtype,
    validate_dp_dtype,
)
from repro.sw.kernel import (
    build_profile,
    local_boundaries,
    narrow_entry_ok,
    sweep_block,
)

#: A scheme whose per-cell gain is so large that any decent diagonal run
#: blows through the int16/int8 overflow caps — the must-escalate probe.
HOT = Scoring(match=2000, mismatch=-3, gap_open=3, gap_extend=2)


def _block_inputs(rng, rows, cols, scoring, *, similar=True):
    a = random_codes(rng, rows)
    if similar:
        b = mutated_copy(rng, a[:cols] if cols <= rows else
                         np.resize(a, cols), 0.05)
    else:
        b = random_codes(rng, cols)
    profile = build_profile(b, scoring)
    h_top, f_top, h_left, e_left, h_diag = local_boundaries(rows, cols)
    return a, profile, h_top, f_top, h_left, e_left, h_diag


def _assert_results_equal(got, want):
    assert got.best.score == want.best.score
    assert (got.best.row, got.best.col) == (want.best.row, want.best.col)
    assert np.array_equal(got.h_bottom, want.h_bottom)
    assert np.array_equal(got.f_bottom, want.f_bottom)
    assert np.array_equal(got.h_right, want.h_right)
    assert np.array_equal(got.e_right, want.e_right)
    assert got.corner == want.corner


# -- policy objects ----------------------------------------------------------

def test_policy_sentinels_and_kinds():
    assert POLICIES["int32"].neg_inf == NEG_INF
    assert POLICIES["int16"].neg_inf == -(1 << 13)
    assert POLICIES["int8"].neg_inf == -(1 << 5)
    assert not POLICIES["int32"].narrow
    assert POLICIES["int16"].narrow and POLICIES["int8"].narrow
    for name, policy in POLICIES.items():
        assert policy.kind == np.dtype(name).type
        assert policy.lo <= policy.neg_inf < 0 < policy.min_cap <= policy.hi


def test_max_width_formula_dna_default():
    s = DNA_DEFAULT
    assert POLICIES["int32"].max_width(s) == MAX_SWEEP_WIDTH
    for name in ("int16", "int8"):
        p = POLICIES[name]
        w = p.max_width(s)
        # widest W with overflow_limit(s, W) >= min_cap, and one more fails
        assert p.overflow_limit(s, w) >= p.min_cap
        assert p.overflow_limit(s, w + 1) < p.min_cap
    assert POLICIES["int16"].max_width(s) == 12288
    assert POLICIES["int8"].max_width(s) == 48


def test_overflow_limit_arithmetic():
    p = POLICIES["int16"]
    s = DNA_DEFAULT
    assert p.overflow_limit(s, 1) == p.hi - s.match
    assert p.overflow_limit(s, 10) == p.hi - s.match - 9 * s.gap_extend


def test_supports_rejects_oversized_penalties():
    # one kernel step from the int8 sentinel must not wrap past int8 min:
    # -32 - (4 + 2 + 100) = -138 < -128
    heavy = Scoring(match=2, mismatch=-100, gap_open=4, gap_extend=2)
    assert not POLICIES["int8"].supports(heavy)
    assert POLICIES["int16"].supports(heavy)
    assert POLICIES["int32"].supports(DNA_DEFAULT)
    assert POLICIES["int8"].supports(DNA_DEFAULT)


def test_validate_and_get_policy_errors():
    for name in DP_DTYPE_CHOICES:
        assert validate_dp_dtype(name) == name
    with pytest.raises(ConfigError):
        validate_dp_dtype("float16")
    with pytest.raises(ConfigError):
        get_policy("auto")  # auto is a knob value, not a policy


# -- resolution rules --------------------------------------------------------

def test_resolve_auto_picks_narrowest_guaranteed():
    s = DNA_DEFAULT
    # tiny: int8 fits (width and the match*min(m,n) < cap guarantee)
    assert resolve_dp_dtype("auto", s, block_cols=32, m=20, n=20).name == "int8"
    # medium: width fits int16 only
    assert resolve_dp_dtype("auto", s, block_cols=512, m=4000, n=4000).name == "int16"
    # huge best-possible score: must stay wide (escalation would be certain)
    assert resolve_dp_dtype("auto", s, block_cols=512,
                            m=10**6, n=10**6).name == "int32"
    # non-local sweeps always resolve wide
    assert resolve_dp_dtype("auto", s, block_cols=32, m=20, n=20,
                            local=False).name == "int32"


def test_resolve_explicit_boundary():
    s = DNA_DEFAULT
    w16 = POLICIES["int16"].max_width(s)
    assert resolve_dp_dtype("int16", s, block_cols=w16,
                            m=10**6, n=10**6).name == "int16"
    with pytest.raises(ConfigError):
        resolve_dp_dtype("int16", s, block_cols=w16 + 1, m=10**6, n=10**6)
    # eff width is min(block_cols, n): a short B sequence rescues a wide grid
    assert resolve_dp_dtype("int8", s, block_cols=4096,
                            m=100, n=40).name == "int8"
    with pytest.raises(ConfigError):
        resolve_dp_dtype("int16", s, block_cols=64, m=100, n=100, local=False)
    heavy = Scoring(match=2, mismatch=-100, gap_open=4, gap_extend=2)
    with pytest.raises(ConfigError):
        resolve_dp_dtype("int8", heavy, block_cols=8, m=10, n=10)


def test_narrow_entry_gate():
    p = POLICIES["int16"]
    cap = p.overflow_limit(DNA_DEFAULT, 8)
    h_top, f_top, h_left, e_left, h_diag = local_boundaries(6, 8)
    assert narrow_entry_ok(h_top, f_top, h_left, e_left, h_diag, cap)
    assert not narrow_entry_ok(h_top, f_top, h_left, e_left, -1, cap)
    assert not narrow_entry_ok(h_top, f_top, h_left, e_left, cap, cap)
    bad = h_top.copy()
    bad[3] = cap  # at-cap border breaks the induction base
    assert not narrow_entry_ok(bad, f_top, h_left, e_left, 0, cap)
    bad[3] = -1  # negative H border breaks plain widening
    assert not narrow_entry_ok(bad, f_top, h_left, e_left, 0, cap)


# -- narrow kernels bit-identical to int32 -----------------------------------

@pytest.mark.parametrize("dtype", ["int16", "int8"])
def test_scalar_narrow_matches_wide(dtype):
    rng = np.random.default_rng(7)
    p = POLICIES[dtype]
    cols = min(32, p.max_width(DNA_DEFAULT))
    for trial in range(5):
        args = _block_inputs(rng, 48, cols, DNA_DEFAULT)
        wide = sweep_block(*args, DNA_DEFAULT)
        got = sweep_block(*args, DNA_DEFAULT, dp=p)
        assert got.dtype == dtype and not got.escalated
        _assert_results_equal(got, wide)


@settings(max_examples=40, deadline=None)
@given(
    a_text=st.text(alphabet="ACGT", min_size=1, max_size=48),
    b_text=st.text(alphabet="ACGT", min_size=1, max_size=40),
    match=st.integers(1, 5),
    mismatch=st.integers(-5, 0),
    gap_open=st.integers(0, 5),
    gap_extend=st.integers(1, 3),
)
def test_property_narrow_equals_wide(a_text, b_text, match, mismatch,
                                     gap_open, gap_extend):
    s = Scoring(match=match, mismatch=mismatch,
                gap_open=gap_open, gap_extend=gap_extend)
    a, b = encode(a_text), encode(b_text)
    profile = build_profile(b, s)
    bounds = local_boundaries(a.size, b.size)
    wide = sweep_block(a, profile, *bounds, s)
    for name in ("int16", "int8"):
        p = POLICIES[name]
        if not p.supports(s) or b.size > p.max_width(s):
            continue
        got = sweep_block(a, profile, *bounds, s, dp=p)
        _assert_results_equal(got, wide)


def test_scalar_escalation_is_exact():
    rng = np.random.default_rng(11)
    a = random_codes(rng, 40)
    b = a.copy()  # identical -> a 2000/cell diagonal blows the int16 cap
    profile = build_profile(b, HOT)
    bounds = local_boundaries(a.size, b.size)
    wide = sweep_block(a, profile, *bounds, HOT)
    got = sweep_block(a, profile, *bounds, HOT, dp=POLICIES["int16"])
    assert got.escalated and got.dtype == "int32"
    _assert_results_equal(got, wide)
    assert got.best.score == wide.best.score >= 40 * HOT.match - 100


def test_scalar_width_over_policy_limit_raises():
    rng = np.random.default_rng(3)
    args = _block_inputs(rng, 8, 64, DNA_DEFAULT)
    with pytest.raises(ConfigError):
        sweep_block(*args, DNA_DEFAULT, dp=POLICIES["int8"])  # 64 > 48


def test_batched_narrow_matches_wide_with_mixed_escalation():
    rng = np.random.default_rng(19)
    jobs = []
    # ragged wavefront: benign DNA jobs plus one crafted hot job that
    # must escalate, exercising the splice-back ordering
    for rows, cols in ((24, 20), (31, 17), (16, 25)):
        a, profile, *bounds = _block_inputs(rng, rows, cols, DNA_DEFAULT)
        jobs.append(BlockJob(a, profile, *bounds))
    hot_a = random_codes(rng, 28)
    hot_bounds = local_boundaries(28, 28)
    jobs.insert(1, BlockJob(hot_a, build_profile(hot_a.copy(), HOT),
                            *hot_bounds))
    # all jobs share one scoring per call, so run the hot job separately
    dna_jobs = [jobs[0], jobs[2], jobs[3]]
    wide = sweep_wavefront(dna_jobs, DNA_DEFAULT)
    got = sweep_wavefront(dna_jobs, DNA_DEFAULT, dp=POLICIES["int16"])
    for g, w in zip(got, wide):
        assert g.dtype == "int16" and not g.escalated
        _assert_results_equal(g, w)

    hot_wide = sweep_wavefront([jobs[1]], HOT)
    hot_got = sweep_wavefront([jobs[1]], HOT, dp=POLICIES["int16"])
    assert hot_got[0].escalated
    _assert_results_equal(hot_got[0], hot_wide[0])


def test_batched_partial_escalation_splices_in_order():
    # same scoring, lanes differ: similar pair overflows, random pair not
    rng = np.random.default_rng(23)
    s = Scoring(match=900, mismatch=-600, gap_open=400, gap_extend=300)
    assert POLICIES["int16"].supports(s)
    ident = random_codes(rng, 30)
    rand_a, rand_b = random_codes(rng, 30), random_codes(rng, 22)
    jobs = [
        BlockJob(ident, build_profile(ident.copy(), s),
                 *local_boundaries(30, 30)),
        BlockJob(rand_a, build_profile(rand_b, s),
                 *local_boundaries(30, 22)),
    ]
    wide = sweep_wavefront(jobs, s)
    got = sweep_wavefront(jobs, s, dp=POLICIES["int16"])
    assert got[0].escalated  # the identical pair trips the cap
    for g, w in zip(got, wide):
        _assert_results_equal(g, w)


# -- dtype-keyed caches (latent-bug regressions) -----------------------------

def test_ramp_cache_is_dtype_keyed():
    ws = KernelWorkspace()
    narrow_ramp = ws.ramp(8, 2, dtype=np.int16)
    assert narrow_ramp.dtype == np.int16
    wide_ramp = ws.ramp(8, 2)
    # a mixed-dtype run must never be handed the other width class's ramp
    assert wide_ramp.dtype == np.int32
    assert np.array_equal(wide_ramp, np.arange(8, dtype=np.int32) * 2)
    again = ws.ramp(4, 2, dtype=np.int16)
    assert again.dtype == np.int16 and again.size == 4


def test_profile_cache_is_dtype_keyed():
    rng = np.random.default_rng(5)
    cache = ProfileCache(capacity=4)
    b = random_codes(rng, 64)
    wide = cache.get(b, DNA_DEFAULT)
    narrow = cache.get(b, DNA_DEFAULT, "int16")
    assert wide.dtype == np.int32 and narrow.dtype == np.int16
    assert len(cache) == 2 and cache.misses == 2
    assert cache.get(b, DNA_DEFAULT, "int16") is narrow
    assert cache.hits == 1
    assert np.array_equal(narrow, wide.astype(np.int16))


# -- blocked engine + telemetry ----------------------------------------------

@pytest.mark.parametrize("kernel", ["scalar", "batched"])
def test_compute_blocked_narrow_exact_with_escalation(kernel):
    rng = np.random.default_rng(31)
    a = random_codes(rng, 150)
    b = mutated_copy(rng, a, 0.04)  # similar -> high scores -> escalations
    wide = compute_blocked(a, b, HOT, block_rows=32, block_cols=32,
                           kernel=kernel, dp_dtype="int32")
    got = compute_blocked(a, b, HOT, block_rows=32, block_cols=32,
                          kernel=kernel, dp_dtype="int16")
    assert got.best.score == wide.best.score
    assert (got.best.row, got.best.col) == (wide.best.row, wide.best.col)
    assert got.dp_dtype == "int16"
    assert got.blocks_narrow + got.blocks_wide == got.blocks_total
    assert got.dtype_escalations > 0
    assert wide.blocks_narrow == wide.blocks_wide == 0


def test_metrics_fire_once_per_block_and_stay_absent_wide():
    from repro.baselines.single_gpu import run_single_gpu
    from repro.device.spec import GTX_580
    from repro.obs import MetricsRegistry

    rng = np.random.default_rng(41)
    a = random_codes(rng, 120)
    b = mutated_copy(rng, a, 0.04)

    registry = MetricsRegistry()
    res = run_single_gpu(a, b, HOT, GTX_580, block_rows=32,
                         dp_dtype="int16", metrics=registry)
    snap = registry.snapshot()["counters"]

    def total(name):
        # zero-valued dtype counters are never registered at all
        if name not in snap:
            return 0
        return sum(s["value"] for s in snap[name]["series"])

    # one count per swept block, escalations counted exactly once each
    assert total("blocks_narrow") == res.blocks_narrow
    assert total("blocks_wide") == res.blocks_wide
    assert total("dtype_escalations") == res.dtype_escalations > 0
    assert res.blocks_narrow + res.blocks_wide == 16  # the full 4x4 grid

    wide_reg = MetricsRegistry()
    wide = run_single_gpu(a, b, HOT, GTX_580, block_rows=32,
                          dp_dtype="int32", metrics=wide_reg)
    wide_snap = wide_reg.snapshot()["counters"]
    # wide runs carry no dtype series at all (X9 overhead bound)
    for name in ("blocks_narrow", "blocks_wide", "dtype_escalations"):
        assert name not in wide_snap
    assert wide.score == res.score
