"""Edge-case battery across the stack (degenerate shapes, extremes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import ENV1_HETEROGENEOUS, ENV2_HOMOGENEOUS
from repro.multigpu import (
    ChainConfig,
    MatrixWorkload,
    MultiGpuChain,
    align_multi_gpu,
    proportional_partition,
)
from repro.seq import DNA_DEFAULT, Scoring, encode
from repro.sw import align_local, compute_blocked, sw_score, sw_score_naive
from repro.sw.kernel import BestCell

from helpers import random_codes


class TestDegenerateShapes:
    def test_one_by_one_matrix(self):
        for ca, cb in (("A", "A"), ("A", "C")):
            want, *_ = sw_score_naive(encode(ca), encode(cb), DNA_DEFAULT)
            got = sw_score(encode(ca), encode(cb), DNA_DEFAULT)
            assert (got.score if got.row >= 0 else 0) == want

    def test_single_row_matrix(self, rng):
        a = random_codes(rng, 1)
        b = random_codes(rng, 50)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        got = sw_score(a, b, DNA_DEFAULT)
        assert (got.score if got.row >= 0 else 0) == want

    def test_single_column_matrix(self, rng):
        a = random_codes(rng, 50)
        b = random_codes(rng, 1)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        out = compute_blocked(a, b, DNA_DEFAULT, block_rows=7, block_cols=1)
        assert (out.best.score if out.best.row >= 0 else 0) == want

    def test_chain_with_one_column_per_device(self, rng):
        a = random_codes(rng, 30)
        b = random_codes(rng, 3)  # exactly one column per ENV1 device
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS,
                              config=ChainConfig(block_rows=4))
        assert res.score == want

    def test_chain_block_rows_exceed_matrix(self, rng):
        a = random_codes(rng, 10)
        b = random_codes(rng, 40)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_gpu(a, b, DNA_DEFAULT, ENV2_HOMOGENEOUS,
                              config=ChainConfig(block_rows=10_000))
        assert res.score == want

    def test_all_n_sequences(self):
        a = encode("N" * 30)
        assert sw_score(a, a, DNA_DEFAULT).row == -1  # N never matches

    def test_homopolymers(self):
        a = encode("A" * 40)
        b = encode("A" * 25)
        got = sw_score(a, b, DNA_DEFAULT)
        assert got.score == 25  # best is the full shorter homopolymer


class TestExtremeScoringSchemes:
    def test_huge_match_score(self, rng):
        sc = Scoring(match=10_000, mismatch=-1, gap_open=1, gap_extend=1)
        a = random_codes(rng, 20)
        b = random_codes(rng, 20)
        want, *_ = sw_score_naive(a, b, sc)
        got = sw_score(a, b, sc)
        assert (got.score if got.row >= 0 else 0) == want

    def test_huge_gap_penalties(self, rng):
        sc = Scoring(match=1, mismatch=-1, gap_open=10_000, gap_extend=10_000)
        a = random_codes(rng, 25)
        b = random_codes(rng, 25)
        want, *_ = sw_score_naive(a, b, sc)
        aln = align_local(a, b, sc, base_cells=32)
        assert aln.score == want
        assert "D" not in aln.ops and "I" not in aln.ops  # gaps unaffordable

    def test_zero_gap_open(self, rng):
        sc = Scoring(match=2, mismatch=-3, gap_open=0, gap_extend=1)
        a = random_codes(rng, 30)
        b = random_codes(rng, 30)
        want, *_ = sw_score_naive(a, b, sc)
        aln = align_local(a, b, sc, base_cells=32)
        assert aln.score == want
        aln.validate(a, b, sc)

    def test_long_sequence_no_overflow(self):
        """Score near sequence length stays far from int32 limits; the
        scan's +j*ext offsets must not overflow on wide matrices."""
        n = 200_000
        a = np.zeros(16, dtype=np.uint8)
        b = np.zeros(n, dtype=np.uint8)  # all A: 16 matches anywhere
        got = sw_score(a, b, DNA_DEFAULT)
        assert got.score == 16


class TestPartitionEdges:
    def test_two_columns_two_devices(self):
        slabs = proportional_partition(2, [10.0, 1.0])
        assert [s.cols for s in slabs] == [1, 1]

    def test_many_devices_few_columns(self):
        slabs = proportional_partition(8, [1.0] * 8)
        assert all(s.cols == 1 for s in slabs)

    def test_checkpoint_on_first_block_row(self, rng):
        a = random_codes(rng, 64)
        b = random_codes(rng, 64)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        chain = MultiGpuChain(ENV2_HOMOGENEOUS, config=ChainConfig(block_rows=8))
        wl = MatrixWorkload(a, b, DNA_DEFAULT)
        seg = chain.run(wl, stop_row=1)  # truncates the first block row
        assert seg.checkpoint.row == 1
        assert chain.run(wl, resume=seg.checkpoint).score == want


class TestBestCellEdges:
    def test_none_vs_none(self):
        assert not BestCell.none().better_than(BestCell.none())

    def test_equal_cells_not_better(self):
        c = BestCell(5, 2, 3)
        assert not c.better_than(BestCell(5, 2, 3))

    def test_col_tiebreak(self):
        assert BestCell(5, 2, 1).better_than(BestCell(5, 2, 3))
