"""Unit tests: repro.baselines (single GPU, CPU, inter-task)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    Task,
    run_cpu,
    run_single_gpu,
    schedule_intertask,
    single_task_best_device,
    task_time,
    time_single_gpu,
)
from repro.device import ENV1_HETEROGENEOUS, GTX_680, DeviceSpec
from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive

from helpers import mutated_copy, random_codes


class TestSingleGpu:
    def test_exact_score(self, rng):
        a = random_codes(rng, 60)
        b = random_codes(rng, 80)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = run_single_gpu(a, b, DNA_DEFAULT, GTX_680, block_rows=16)
        assert res.score == want
        assert res.cells == 60 * 80
        assert res.total_time_s > 0

    def test_pruning_reduces_virtual_time(self, rng):
        a = random_codes(rng, 500)
        b = mutated_copy(rng, a, 0.02)
        plain = run_single_gpu(a, b, DNA_DEFAULT, GTX_680, block_rows=32)
        pruned = run_single_gpu(a, b, DNA_DEFAULT, GTX_680, block_rows=32, prune=True)
        assert pruned.score == plain.score
        assert pruned.pruned_fraction > 0.2
        assert pruned.total_time_s < plain.total_time_s
        assert pruned.gcups > plain.gcups  # same cells over less time

    def test_timing_mode(self):
        res = time_single_gpu(1_000_000, 1_000_000, GTX_680, block_rows=1024)
        assert res.cells == 10**12
        assert res.gcups == pytest.approx(
            GTX_680.effective_rate(1_000_000) / 1e9, rel=1e-6
        )

    def test_timing_mode_with_pruning_fraction(self):
        full = time_single_gpu(10**6, 10**6, GTX_680)
        half = time_single_gpu(10**6, 10**6, GTX_680, pruned_fraction=0.5)
        assert half.total_time_s == pytest.approx(full.total_time_s / 2, rel=1e-6)
        with pytest.raises(ConfigError):
            time_single_gpu(10, 10, GTX_680, pruned_fraction=1.0)


class TestCpu:
    def test_exact_and_timed(self, rng):
        a = random_codes(rng, 100)
        b = random_codes(rng, 100)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = run_cpu(a, b, DNA_DEFAULT)
        assert res.score == want
        assert res.wall_time_s > 0
        assert res.gcups > 0


class TestInterTask:
    def test_task_validation(self):
        with pytest.raises(ConfigError):
            Task(0, 5)

    def test_task_time(self):
        spec = DeviceSpec("x", gcups=1.0, saturation_cols=0)
        assert task_time(Task(1000, 1000), spec) == pytest.approx(1e-3)

    def test_many_small_tasks_use_all_devices(self):
        tasks = [Task(100_000, 100_000) for _ in range(30)]
        res = schedule_intertask(tasks, ENV1_HETEROGENEOUS)
        assert all(b > 0 for b in res.per_device_busy_s)
        # Aggregate throughput approaches the sum of device rates.
        assert res.gcups > 0.7 * sum(d.gcups for d in ENV1_HETEROGENEOUS)

    def test_single_huge_task_wastes_devices(self):
        task = Task(10_000_000, 10_000_000)
        res = single_task_best_device(task, ENV1_HETEROGENEOUS)
        fastest = max(ENV1_HETEROGENEOUS, key=lambda d: d.gcups)
        assert res.makespan_s == pytest.approx(task_time(task, fastest))
        assert sum(1 for b in res.per_device_busy_s if b > 0) == 1
        # This is the contrast the paper motivates: inter-task GCUPS on one
        # huge comparison is bounded by the single fastest device.
        assert res.gcups < fastest.gcups * 1.01

    def test_lpt_beats_naive_upper_bound(self):
        """Makespan never exceeds total-work/slowest-device and is at least
        total-work/aggregate-rate (sanity bounds)."""
        tasks = [Task(int(1e5) * (i + 1), int(1e5)) for i in range(10)]
        res = schedule_intertask(tasks, ENV1_HETEROGENEOUS)
        agg = sum(d.effective_rate(int(1e5)) for d in ENV1_HETEROGENEOUS)
        assert res.makespan_s >= sum(t.cells for t in tasks) / agg * 0.99

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError):
            schedule_intertask([], ENV1_HETEROGENEOUS)
        with pytest.raises(ConfigError):
            schedule_intertask([Task(10, 10)], [])
