"""Failure-injection scenarios: device loss, migration, corrupted state.

The checkpoint format is *device-independent* (it is pure DP state), so a
run interrupted on one machine can resume on a different device set — the
recovery story a production deployment needs.  These tests simulate the
failure modes end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import ENV1_HETEROGENEOUS, ENV2_HOMOGENEOUS, TESLA_M2090, homogeneous
from repro.errors import ConfigError, SimulationError
from repro.multigpu import (
    ChainCheckpoint,
    ChainConfig,
    MatrixWorkload,
    MultiGpuChain,
    load_checkpoint,
    save_checkpoint,
)
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive
from repro.sw.kernel import BestCell

from helpers import random_codes


class TestDeviceMigration:
    def test_resume_on_different_environment(self, rng):
        """Checkpoint on the heterogeneous trio, resume on the homogeneous
        pair: the score must be identical (DP state is device-free)."""
        a = random_codes(rng, 200)
        b = random_codes(rng, 260)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        wl = MatrixWorkload(a, b, DNA_DEFAULT)

        first = MultiGpuChain(ENV1_HETEROGENEOUS, config=ChainConfig(block_rows=16))
        ck = first.run(wl, stop_row=96).checkpoint
        second = MultiGpuChain(ENV2_HOMOGENEOUS, config=ChainConfig(block_rows=16))
        res = second.run(wl, resume=ck)
        assert res.score == want

    def test_resume_with_different_block_rows(self, rng):
        """The checkpoint row is a matrix row, not a block index, so the
        resuming chain may use a different block height."""
        a = random_codes(rng, 150)
        b = random_codes(rng, 150)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        wl = MatrixWorkload(a, b, DNA_DEFAULT)
        first = MultiGpuChain(ENV2_HOMOGENEOUS, config=ChainConfig(block_rows=32))
        ck = first.run(wl, stop_row=64).checkpoint
        second = MultiGpuChain(ENV2_HOMOGENEOUS, config=ChainConfig(block_rows=7))
        assert second.run(wl, resume=ck).score == want

    def test_degraded_resume_single_gpu(self, rng):
        """Losing all but one device still completes the comparison."""
        a = random_codes(rng, 120)
        b = random_codes(rng, 120)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        wl = MatrixWorkload(a, b, DNA_DEFAULT)
        full = MultiGpuChain(homogeneous(TESLA_M2090, 4),
                             config=ChainConfig(block_rows=16))
        ck = full.run(wl, stop_row=60).checkpoint
        lone = MultiGpuChain([TESLA_M2090], config=ChainConfig(block_rows=16))
        assert lone.run(wl, resume=ck).score == want

    def test_repeated_failures(self, rng):
        """Crash-loop: checkpoint/restore at every quarter, rotating device
        sets each time."""
        a = random_codes(rng, 160)
        b = random_codes(rng, 200)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        wl = MatrixWorkload(a, b, DNA_DEFAULT)
        environments = [ENV1_HETEROGENEOUS, ENV2_HOMOGENEOUS,
                        homogeneous(TESLA_M2090, 3)]
        ck = None
        for i, stop in enumerate((40, 80, 120)):
            chain = MultiGpuChain(environments[i % len(environments)],
                                  config=ChainConfig(block_rows=16))
            ck = chain.run(wl, resume=ck, stop_row=stop).checkpoint
        final = MultiGpuChain(ENV1_HETEROGENEOUS, config=ChainConfig(block_rows=16))
        assert final.run(wl, resume=ck).score == want


class TestCorruptedState:
    def test_truncated_checkpoint_detected(self, rng, tmp_path):
        a = random_codes(rng, 100)
        wl = MatrixWorkload(a, a, DNA_DEFAULT)
        chain = MultiGpuChain(ENV2_HOMOGENEOUS, config=ChainConfig(block_rows=16))
        ck = chain.run(wl, stop_row=48).checkpoint
        path = tmp_path / "ck.npz"
        save_checkpoint(path, ck)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Exception):
            load_checkpoint(path)

    def test_wrong_width_checkpoint_rejected(self, rng):
        a = random_codes(rng, 100)
        chain = MultiGpuChain(ENV2_HOMOGENEOUS, config=ChainConfig(block_rows=16))
        bad = ChainCheckpoint(
            row=32,
            h_row=np.zeros(37, dtype=np.int32),
            f_row=np.zeros(37, dtype=np.int32),
            best=BestCell.none(),
            elapsed_s=0.0,
        )
        with pytest.raises(ConfigError):
            chain.run(MatrixWorkload(a, a, DNA_DEFAULT), resume=bad)


class TestEngineFaults:
    def test_worker_exception_is_reported_not_hung(self):
        """A crashing process surfaces as SimulationError with its name —
        the simulation never silently hangs."""
        from repro.device import Engine

        eng = Engine()

        def healthy():
            yield eng.timeout(10.0)

        def crashing():
            yield eng.timeout(1.0)
            raise RuntimeError("injected device fault")

        eng.process(healthy(), "healthy")
        eng.process(crashing(), "gpu1-worker")
        with pytest.raises(SimulationError, match="gpu1-worker"):
            eng.run()
