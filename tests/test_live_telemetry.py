"""Integration tests for the live-telemetry stack (INTERNALS.md §13).

The unit suites (test_events / test_timeseries / test_exporter) pin the
pieces; this module pins the *wiring*: the engines journal the event
sequences the docs promise, the sampler rides a real run including
checkpoint recovery, the watchdog emits exactly one ``stall`` event per
episode, `mgsw top`'s renderer singles out a stalled worker, and a
mid-run ``/status`` scrape sees monotonically increasing progress with a
finite ETA — the acceptance criteria of the live-telemetry change.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.comm.progress import ProgressBoard
from repro.device import ENV1_HETEROGENEOUS
from repro.multigpu import WorkerPool, align_multi_gpu, align_multi_process
from repro.obs import (
    EventJournal,
    MetricsRegistry,
    StatusServer,
    TimeSeriesSampler,
)
from repro.obs.heartbeat import HeartbeatMonitor
from repro.perf.report import timeline_report, top_table
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive
from repro.workloads import random_dna

from helpers import random_codes


def _kinds(journal):
    return [rec["event"] for rec in journal.recent()]


class TestProcessEngineJournal:
    def test_successful_run_event_sequence(self, rng):
        a, b = random_codes(rng, 160), random_codes(rng, 150)
        journal = EventJournal()
        sampler = TimeSeriesSampler(interval_s=0.01)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=32,
                                  events=journal, timeline=sampler)
        sampler.close()
        kinds = _kinds(journal)
        assert kinds[0] == "run_start"
        assert kinds.count("worker_spawn") == 2
        assert kinds[-1] == "run_end"
        start = journal.recent()[0]
        end = journal.recent()[-1]
        assert start["backend"] == "process" and start["workers"] == 2
        assert (start["rows"], start["cols"]) == (160, 150)
        assert end["status"] == "ok" and end["score"] == res.score
        assert end["run_id"] == start["run_id"] == journal.run_id
        # The sampler's final frame covers the whole matrix.
        final = sampler.current()
        assert final is not None
        assert final.rows_done == final.rows_target == 160 * 2

    def test_recovery_run_journals_the_whole_story(self, rng):
        a, b = random_codes(rng, 192), random_codes(rng, 180)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        journal = EventJournal()
        sampler = TimeSeriesSampler(interval_s=0.01)
        res = align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=32,
                                  max_restarts=2, events=journal,
                                  timeline=sampler, _fault=(1, 3))
        sampler.close()
        assert res.score == want and res.restarts >= 1
        kinds = _kinds(journal)
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert kinds.count("run_start") == kinds.count("run_end") == 1
        assert journal.count("worker_death") >= 1
        assert journal.count("checkpoint") >= 1
        assert journal.count("restart_attempt") >= 1
        # Ordering: every death precedes the checkpoint that answers it,
        # which precedes the restart attempt.
        assert kinds.index("worker_death") < kinds.index("checkpoint") \
            < kinds.index("restart_attempt")
        restart = next(r for r in journal.recent()
                       if r["event"] == "restart_attempt")
        assert restart["attempt"] >= 1 and restart["resume_row"] >= 0
        assert journal.recent()[-1]["status"] == "ok"
        # The one timeline spans both attempts (frames from attempt >= 1).
        assert any(f.attempt >= 1 for f in sampler.frames())

    def test_failed_run_journals_run_end_failed(self, rng):
        a, b = random_codes(rng, 96), random_codes(rng, 96)
        journal = EventJournal()
        with pytest.raises(RuntimeError):
            align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=32,
                                events=journal, _fault=(0, 1))
        kinds = _kinds(journal)
        assert journal.count("worker_death") >= 1
        assert kinds[-1] == "run_end"
        assert journal.recent()[-1]["status"] == "failed"

    def test_pruning_differential_with_sampler_armed(self, rng):
        a = random_codes(rng, 200)
        b = np.concatenate([a[40:170], random_codes(rng, 60)])
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        journal = EventJournal()
        registry = MetricsRegistry()
        with TimeSeriesSampler(interval_s=0.01, registry=registry) as sampler:
            res = align_multi_process(a, b, DNA_DEFAULT, workers=2,
                                      block_rows=16, pruning=True,
                                      metrics=registry, events=journal,
                                      timeline=sampler)
        assert res.score == want
        assert journal.recent()[-1]["status"] == "ok"


class TestSimEngineJournal:
    def test_sim_run_event_sequence(self, rng):
        a, b = random_codes(rng, 96), random_codes(rng, 90)
        journal = EventJournal()
        res = align_multi_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS,
                              events=journal)
        kinds = _kinds(journal)
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        start, end = journal.recent()[0], journal.recent()[-1]
        assert start["backend"] == "sim"
        assert start["devices"] == len(ENV1_HETEROGENEOUS)
        assert end["status"] == "ok" and end["score"] == res.score
        assert end["virtual_time_s"] > 0


class TestPoolJournal:
    def test_pool_spawns_and_aligns_are_journaled(self, rng):
        a, b = random_codes(rng, 128), random_codes(rng, 120)
        journal = EventJournal()
        sampler = TimeSeriesSampler(interval_s=0.01)
        with WorkerPool(2, max_block_rows=64, events=journal) as pool:
            assert journal.count("worker_spawn") == 2
            assert all(rec["pool"] for rec in journal.recent()
                       if rec["event"] == "worker_spawn")
            pool.align(a, b, DNA_DEFAULT, block_rows=32, timeline=sampler)
            pool.align(b, a, DNA_DEFAULT, block_rows=32, timeline=sampler)
        sampler.close()
        kinds = _kinds(journal)
        assert kinds.count("run_start") == kinds.count("run_end") == 2
        assert all(rec["backend"] == "pool" for rec in journal.recent()
                   if rec["event"] == "run_start")
        # One sampler, two comparisons: the second align re-attached.
        attempts = {f.rows_target for f in sampler.frames()}
        assert 128 * 2 in attempts and 120 * 2 in attempts

    def test_rebalance_decision_emits_slab_rebalance(self, monkeypatch):
        import importlib

        autotune = importlib.import_module("repro.multigpu.autotune")
        journal = EventJournal()
        with WorkerPool(2, max_block_rows=64, events=journal) as pool:
            monkeypatch.setattr(autotune, "estimate_capacities",
                                lambda sampler, slabs: [300.0, 100.0])
            pool._apply_rebalance(None, None, 0.25, None)
        (rec,) = [r for r in journal.recent()
                  if r["event"] == "slab_rebalance"]
        assert rec["old_weights"] == [1.0, 1.0]
        assert rec["new_weights"][0] > rec["new_weights"][1]
        assert pool.weights[0] > pool.weights[1]


class TestStallEpisodes:
    def test_exactly_one_stall_event_per_episode(self):
        board = ProgressBoard(2, label="stall-test")
        journal = EventJournal()
        monitor = HeartbeatMonitor(board, stall_after_s=0.05,
                                   events=journal)
        try:
            board.beat(0, 3, "compute")
            time.sleep(0.08)
            monitor._tick()
            monitor._tick()          # still the same episode: no new event
            monitor._tick()
            assert journal.count("stall") == 1
            # The worker resumes beating: the episode ends, the flag re-arms.
            board.beat(0, 4, "compute")
            monitor._tick()
            assert journal.count("stall") == 1
            # A second silence is a new episode: exactly one more event.
            time.sleep(0.08)
            monitor._tick()
            monitor._tick()
            assert journal.count("stall") == 2
            stalls = [r for r in journal.recent() if r["event"] == "stall"]
            assert [r["worker"] for r in stalls] == [0, 0]
            assert stalls[0]["rows_done"] == 3
            assert stalls[1]["rows_done"] == 4
            assert all("hard" not in r for r in stalls)
        finally:
            board.unlink()

    def test_hard_stall_emits_once_with_hard_flag(self):
        board = ProgressBoard(1, label="hard-stall-test")
        journal = EventJournal()
        killed = []
        monitor = HeartbeatMonitor(board, stall_after_s=0.02,
                                   hard_stall_s=0.06,
                                   on_hard_stall=killed.append,
                                   events=journal)
        try:
            board.beat(0, 1, "wait")
            time.sleep(0.1)
            monitor._tick()
            monitor._tick()
            stalls = [r for r in journal.recent() if r["event"] == "stall"]
            # One soft flag + one hard escalation, both for worker 0.
            assert len(stalls) == 2
            assert [r.get("hard") for r in stalls] == [None, True]
            assert len(killed) == 1
        finally:
            board.unlink()


class TestTopRenderer:
    def _frame(self, sampler_board):
        sampler = TimeSeriesSampler(interval_s=3600.0, stall_after_s=0.05)
        sampler.attach(sampler_board, rows=100, cols_per_worker=[50, 50])
        sampler_board.beat(0, 10, "compute")
        sampler_board.beat(1, 20, "compute")
        time.sleep(0.08)
        sampler_board.beat(1, 30, "send")   # worker 1 healthy, 0 stalled
        frame = sampler.sample_once()
        sampler.detach()
        return frame

    def test_stalled_worker_renders_distinctly(self):
        board = ProgressBoard(2, label="top-test")
        try:
            frame = self._frame(board)
        finally:
            board.unlink()
        assert frame.workers[0].stalled and not frame.workers[1].stalled
        text = top_table(frame)
        lines = text.splitlines()
        row0 = next(l for l in lines if "worker0" in l)
        row1 = next(l for l in lines if "worker1" in l)
        assert "STALLED" in row0 and "STALLED" not in row1
        assert "send" in row1

    def test_top_table_without_frames_and_with_events(self):
        assert "no timeline frames" in top_table(None)
        board = ProgressBoard(2, label="top-test-2")
        try:
            frame = self._frame(board)
        finally:
            board.unlink()
        events = [EventJournal(run_id="t").emit("restart_attempt", worker=1,
                                                attempt=1, resume_row=7)]
        text = top_table(frame, events=events)
        assert "recent events" in text
        assert "restart_attempt" in text and "worker1" in text

    def test_timeline_report_renders_bars(self, rng):
        a, b = random_codes(rng, 128), random_codes(rng, 128)
        with TimeSeriesSampler(interval_s=0.005) as sampler:
            align_multi_process(a, b, DNA_DEFAULT, workers=2, block_rows=16,
                                timeline=sampler)
            frames = sampler.frames()
        text = timeline_report(frames)
        assert "GCUPS over time" in text
        assert "#" in text
        assert timeline_report(()) == ""


class TestMidRunScrape:
    def test_status_scrape_shows_monotonic_progress_and_eta(self):
        rng = np.random.default_rng(13)
        a = random_dna(8192, rng=rng)
        b = random_dna(8192, rng=rng)
        registry = MetricsRegistry()
        journal = EventJournal()
        sampler = TimeSeriesSampler(interval_s=0.01, registry=registry)
        server = StatusServer(registry=registry, sampler=sampler,
                              journal=journal).start()
        result = {}

        def run():
            result["res"] = align_multi_process(
                a, b, DNA_DEFAULT, workers=2, block_rows=128,
                metrics=registry, events=journal, timeline=sampler)

        thread = threading.Thread(target=run)
        thread.start()
        scrapes = []
        metrics_mid_run = None
        try:
            while thread.is_alive():
                with urllib.request.urlopen(server.url + "/status",
                                            timeout=5) as resp:
                    scrapes.append(json.loads(resp.read()))
                if metrics_mid_run is None and scrapes[-1].get("rows_done"):
                    with urllib.request.urlopen(server.url + "/metrics",
                                                timeout=5) as resp:
                        metrics_mid_run = resp.read().decode()
                time.sleep(0.01)
        finally:
            thread.join(timeout=120)
            server.stop()
            sampler.close()
        assert "res" in result, "alignment thread died"
        rows = [s["rows_done"] for s in scrapes if "rows_done" in s]
        assert len(set(rows)) >= 2, "never saw progress advance mid-run"
        assert rows == sorted(rows), "rows_done went backwards"
        mid_etas = [s["eta_s"] for s in scrapes
                    if s.get("rows_done") and s.get("eta_s") is not None]
        assert mid_etas, "no scrape carried an ETA"
        assert all(np.isfinite(e) and e >= 0 for e in mid_etas)
        # /metrics stayed scrapeable during the run.
        assert metrics_mid_run is not None
        assert "# TYPE" in metrics_mid_run
