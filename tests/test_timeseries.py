"""Tests: the live time-series sampler (repro.obs.timeseries, INTERNALS.md §13)."""

from __future__ import annotations

import json

import pytest

from repro.comm.progress import ProgressBoard
from repro.errors import ObsError
from repro.obs import MetricsRegistry, TimeSeriesSampler, read_timeline
from repro.obs.timeseries import (
    FRAME_SCHEMA,
    RATE_EMA_ALPHA,
    TimelineFrame,
    WorkerFrame,
    frame_from_json,
)


@pytest.fixture
def board():
    b = ProgressBoard(2, label="ts-test")
    yield b
    b.unlink()


def manual_sampler(**kwargs):
    """A sampler whose thread never fires — tests drive sample_once()."""
    kwargs.setdefault("interval_s", 3600.0)
    return TimeSeriesSampler(**kwargs)


class TestAttachLifecycle:
    def test_attach_requires_matching_cols(self, board):
        with manual_sampler() as sampler:
            with pytest.raises(ObsError, match="cols_per_worker"):
                sampler.attach(board, rows=10, cols_per_worker=[5])

    def test_double_attach_rejected(self, board):
        with manual_sampler() as sampler:
            sampler.attach(board, rows=10, cols_per_worker=[5, 5])
            with pytest.raises(ObsError, match="already attached"):
                sampler.attach(board, rows=10, cols_per_worker=[5, 5])

    def test_detach_is_idempotent_and_takes_final_frame(self, board):
        sampler = manual_sampler()
        sampler.attach(board, rows=4, cols_per_worker=[3, 3])
        board.beat(0, 4, "done")
        board.beat(1, 4, "done")
        sampler.detach()
        sampler.detach()   # no-op, not an error
        final = sampler.current()
        assert final is not None
        assert final.rows_done == final.rows_target == 8
        assert final.eta_s == 0.0
        assert sampler.sample_once() is None   # detached: nothing to read

    def test_reattach_extends_one_timeline(self, board):
        sampler = manual_sampler()
        sampler.attach(board, rows=4, cols_per_worker=[3, 3], attempt=0)
        sampler.sample_once()
        sampler.detach()
        # Recovery re-partitions may change geometry; attach a fresh board.
        survivor = ProgressBoard(1, label="ts-test-resume")
        try:
            sampler.attach(survivor, rows=4, cols_per_worker=[6], attempt=1)
            sampler.sample_once()
            sampler.detach()
        finally:
            survivor.unlink()
        attempts = [f.attempt for f in sampler.frames()]
        assert attempts[0] == 0 and attempts[-1] == 1
        # t_s keeps counting from the FIRST attach across attempts.
        t = [f.t_s for f in sampler.frames()]
        assert t == sorted(t)
        sampler.close()

    def test_constructor_validation(self):
        for bad in (dict(interval_s=0), dict(ring=0), dict(stall_after_s=0)):
            with pytest.raises(ObsError):
                TimeSeriesSampler(**bad)

    def test_background_thread_samples(self, board):
        with TimeSeriesSampler(interval_s=0.02) as sampler:
            sampler.attach(board, rows=100, cols_per_worker=[10, 10])
            board.beat(0, 5, "compute")
            deadline_frames = 3
            import time
            for _ in range(200):
                if len(sampler.frames()) >= deadline_frames:
                    break
                time.sleep(0.01)
            assert len(sampler.frames()) >= deadline_frames
            sampler.detach()


class TestFrameContents:
    def test_rows_and_phase_come_from_the_board(self, board):
        with manual_sampler() as sampler:
            sampler.attach(board, rows=10, cols_per_worker=[7, 9])
            board.beat(0, 3, "compute")
            board.beat(1, 5, "send")
            frame = sampler.sample_once()
            assert frame.rows_done == 8
            assert frame.rows_target == 20
            w0, w1 = frame.workers
            assert (w0.rows_done, w0.phase) == (3, "compute")
            assert (w1.rows_done, w1.phase) == (5, "send")
            assert not w0.stalled and not w1.stalled
            sampler.detach()

    def test_gcups_counts_cells_per_slab_width(self, board):
        with manual_sampler() as sampler:
            sampler.attach(board, rows=10, cols_per_worker=[1000, 3000])
            board.beat(0, 10, "done")
            board.beat(1, 10, "done")
            frame = sampler.sample_once()
            cells = 10 * 1000 + 10 * 3000
            assert frame.gcups == pytest.approx(
                cells / (frame.t_s or 1e-9) / 1e9, rel=0.5)
            sampler.detach()

    def test_rate_is_ema_of_instantaneous_rates(self, board):
        with manual_sampler() as sampler:
            sampler.attach(board, rows=1000, cols_per_worker=[10, 10])
            # Seed the EMA with a known first observation by faking the
            # previous sample point one second in the past.
            import time
            now = time.monotonic()
            sampler._prev = [(now - 1.0, 0), (now - 1.0, 0)]
            board.beat(0, 100, "compute")
            board.beat(1, 50, "compute")
            frame = sampler.sample_once()
            # First observation: EMA == instantaneous (~100 and ~50 rows/s).
            assert frame.workers[0].rows_per_s == pytest.approx(100, rel=0.15)
            assert frame.workers[1].rows_per_s == pytest.approx(50, rel=0.15)
            assert frame.rows_per_s == pytest.approx(
                frame.workers[0].rows_per_s + frame.workers[1].rows_per_s,
                abs=0.01)
            # Second sample, no progress: EMA decays by (1 - alpha).
            sampler._prev = [(time.monotonic() - 1.0, 100),
                             (time.monotonic() - 1.0, 50)]
            ema0 = sampler._ema[0]
            frame2 = sampler.sample_once()
            assert frame2.workers[0].rows_per_s == pytest.approx(
                (1 - RATE_EMA_ALPHA) * ema0, rel=0.05)
            sampler.detach()

    def test_eta_none_without_rate_then_finite(self, board):
        with manual_sampler() as sampler:
            sampler.attach(board, rows=100, cols_per_worker=[10, 10])
            assert sampler.sample_once().eta_s is None   # no rate yet
            import time
            sampler._prev = [(time.monotonic() - 1.0, 0)] * 2
            sampler._ema = [None, None]   # forget the zero-rate first sample
            board.beat(0, 50, "compute")
            board.beat(1, 50, "compute")
            frame = sampler.sample_once()
            # ~100 rows left at ~100 rows/s aggregate -> ETA around 1 s.
            assert frame.eta_s == pytest.approx(1.0, rel=0.3)
            assert sampler.eta_s() == frame.eta_s
            sampler.detach()

    def test_done_workers_leave_the_aggregate_rate(self, board):
        with manual_sampler() as sampler:
            sampler.attach(board, rows=100, cols_per_worker=[10, 10])
            import time
            sampler._prev = [(time.monotonic() - 1.0, 0)] * 2
            board.beat(0, 100, "done")
            board.beat(1, 40, "compute")
            frame = sampler.sample_once()
            # Worker 0 finished: only worker 1's rate drives the ETA.
            assert frame.rows_per_s == pytest.approx(
                frame.workers[1].rows_per_s, abs=0.01)
            sampler.detach()

    def test_stalled_flag_follows_silence_threshold(self, board):
        with manual_sampler(stall_after_s=0.05) as sampler:
            sampler.attach(board, rows=100, cols_per_worker=[10, 10])
            board.beat(0, 5, "compute")
            import time
            time.sleep(0.1)
            frame = sampler.sample_once()
            assert frame.workers[0].stalled          # silent past threshold
            assert not frame.workers[1].stalled      # never started
            board.beat(0, 6, "done")
            frame = sampler.sample_once()
            assert not frame.workers[0].stalled      # done never stalls
            sampler.detach()

    def test_registry_delta_fills_rates_and_restarts(self, board):
        registry = MetricsRegistry()
        registry.counter("blocks_computed").inc(6)
        registry.counter("blocks_pruned").inc(3)
        registry.counter("blocks_skipped_band").inc(1)
        registry.counter("worker_restarts").inc(2)
        with manual_sampler(registry=registry) as sampler:
            sampler.attach(board, rows=10, cols_per_worker=[5, 5])
            frame = sampler.sample_once()
            assert frame.prune_rate == pytest.approx(0.3)
            assert frame.band_skip_rate == pytest.approx(0.1)
            assert frame.restarts == 2
            sampler.detach()

    def test_ring_is_bounded(self, board):
        with manual_sampler(ring=4) as sampler:
            sampler.attach(board, rows=10, cols_per_worker=[5, 5])
            for _ in range(10):
                sampler.sample_once()
            assert len(sampler.frames()) == 4
            sampler.detach()


class TestSpillAndRoundtrip:
    def test_frame_json_roundtrip(self):
        frame = TimelineFrame(
            t_s=1.5, ts_unix=1e9, attempt=1, rows_done=8, rows_target=20,
            rows_per_s=4.0, eta_s=3.0, gcups=0.001, prune_rate=0.25,
            band_skip_rate=0.0, restarts=1,
            workers=(WorkerFrame(0, 8, "compute", 4.0, 0.1, False),))
        doc = frame.to_json_dict()
        assert doc["schema"] == FRAME_SCHEMA
        json.dumps(doc)    # JSON-safe
        assert frame_from_json(doc) == frame

    def test_spill_roundtrips_through_read_timeline(self, board, tmp_path):
        path = tmp_path / "telemetry" / "timeline.jsonl"
        with manual_sampler(spill=path) as sampler:
            sampler.attach(board, rows=4, cols_per_worker=[3, 3])
            board.beat(0, 2, "compute")
            sampler.sample_once()
            board.beat(0, 4, "done")
            board.beat(1, 4, "done")
        frames = read_timeline(path)
        assert len(frames) == 2        # one explicit + the close() final frame
        assert frames[-1].rows_done == 8
        assert [w.phase for w in frames[-1].workers] == ["done", "done"]

    def test_read_timeline_tolerates_torn_tail(self, board, tmp_path):
        path = tmp_path / "timeline.jsonl"
        with manual_sampler(spill=path) as sampler:
            sampler.attach(board, rows=4, cols_per_worker=[3, 3])
            sampler.sample_once()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "mgsw.telemetry.frame/v1", "t_s": 0.')
        assert len(read_timeline(path)) == 2

    def test_read_timeline_missing_file_is_empty(self, tmp_path):
        assert read_timeline(tmp_path / "nope.jsonl") == []

    def test_frame_from_json_ignores_newer_schema_fields(self):
        # Regression: a newer writer adding a field (frame- or
        # worker-level) made WorkerFrame(**w)/TimelineFrame(**doc) raise
        # TypeError, which read_timeline swallowed as a "torn line" —
        # silently dropping EVERY frame of the file, so `mgsw top` and
        # /status rendered empty against a healthy newer daemon.
        frame = TimelineFrame(
            t_s=1.5, ts_unix=1e9, attempt=1, rows_done=8, rows_target=20,
            rows_per_s=4.0, eta_s=3.0, gcups=0.001, prune_rate=0.25,
            band_skip_rate=0.0, restarts=1,
            workers=(WorkerFrame(0, 8, "compute", 4.0, 0.1, False),))
        doc = frame.to_json_dict()
        doc["power_w"] = 180.5               # hypothetical v2 frame field
        doc["workers"][0]["sm_clock_mhz"] = 1410   # v2 worker field
        parsed = frame_from_json(doc)
        assert parsed == frame               # known fields all survive

    def test_newer_schema_spill_still_reads_fully(self, board, tmp_path):
        path = tmp_path / "timeline.jsonl"
        with manual_sampler(spill=path) as sampler:
            sampler.attach(board, rows=4, cols_per_worker=[3, 3])
            sampler.sample_once()
        # Rewrite the spill as a newer writer would produce it.
        lines = path.read_text().strip().splitlines()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                doc = json.loads(line)
                doc["power_w"] = 42.0
                for w in doc["workers"]:
                    w["temperature_c"] = 61
                fh.write(json.dumps(doc) + "\n")
        frames = read_timeline(path)
        assert len(frames) == len(lines)     # nothing dropped
        assert frames[0].rows_done >= 0

    def test_missing_known_field_is_still_a_torn_line(self, tmp_path):
        # The forward-compat filter must not mask genuine corruption: a
        # line missing a *known* field still raises and gets dropped.
        frame = TimelineFrame(
            t_s=1.5, ts_unix=1e9, attempt=1, rows_done=8, rows_target=20,
            rows_per_s=4.0, eta_s=3.0, gcups=0.001, prune_rate=0.25,
            band_skip_rate=0.0, restarts=1, workers=())
        good = frame.to_json_dict()
        bad = dict(good)
        del bad["rows_done"]
        with pytest.raises((KeyError, TypeError)):
            frame_from_json(bad)
        path = tmp_path / "timeline.jsonl"
        path.write_text(json.dumps(good) + "\n" + json.dumps(bad) + "\n")
        assert len(read_timeline(path)) == 1
