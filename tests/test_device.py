"""Unit tests: repro.device.spec and repro.device.gpu."""

from __future__ import annotations

import pytest

from repro.device import (
    ENV1_HETEROGENEOUS,
    ENV2_HOMOGENEOUS,
    DeviceSpec,
    Engine,
    SimulatedGPU,
    homogeneous,
)
from repro.errors import DeviceError


class TestDeviceSpec:
    def test_env1_aggregate_matches_paper_headline(self):
        total = sum(d.gcups for d in ENV1_HETEROGENEOUS)
        assert abs(total - 140.36) < 0.1

    def test_env2_is_homogeneous_pair(self):
        assert len(ENV2_HOMOGENEOUS) == 2
        assert ENV2_HOMOGENEOUS[0] == ENV2_HOMOGENEOUS[1]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(gcups=0),
            dict(gcups=-1),
            dict(pcie_gbps=0),
            dict(pcie_latency_s=-1e-6),
            dict(mem_bytes=0),
            dict(saturation_cols=-1),
            dict(copy_engines=3),
        ],
    )
    def test_validation(self, kwargs):
        base = dict(name="x", gcups=10.0)
        base.update(kwargs)
        with pytest.raises(DeviceError):
            DeviceSpec(**base)

    def test_effective_rate_saturates(self):
        spec = DeviceSpec("x", gcups=10.0, saturation_cols=1000)
        assert spec.effective_rate(1000) == pytest.approx(5e9)
        assert spec.effective_rate(10**9) == pytest.approx(10e9, rel=1e-3)

    def test_effective_rate_monotone(self):
        spec = DeviceSpec("x", gcups=10.0, saturation_cols=500)
        rates = [spec.effective_rate(w) for w in (1, 10, 100, 1000, 10000)]
        assert rates == sorted(rates)

    def test_saturation_zero_disables_occupancy(self):
        spec = DeviceSpec("x", gcups=10.0, saturation_cols=0)
        assert spec.effective_rate(1) == 10e9

    def test_effective_rate_rejects_bad_width(self):
        with pytest.raises(DeviceError):
            DeviceSpec("x", gcups=1.0).effective_rate(0)

    def test_transfer_time(self):
        spec = DeviceSpec("x", gcups=1.0, pcie_gbps=8.0, pcie_latency_s=1e-5)
        assert spec.transfer_time(8_000_000_000) == pytest.approx(1.0 + 1e-5)
        assert spec.transfer_time(0) == pytest.approx(1e-5)
        with pytest.raises(DeviceError):
            spec.transfer_time(-1)

    def test_with_rate(self):
        spec = DeviceSpec("x", gcups=1.0).with_rate(5.0)
        assert spec.gcups == 5.0 and spec.name == "x"

    def test_homogeneous(self):
        devs = homogeneous(ENV2_HOMOGENEOUS[0], 4)
        assert len(devs) == 4
        with pytest.raises(DeviceError):
            homogeneous(ENV2_HOMOGENEOUS[0], 0)


class TestSimulatedGPU:
    def test_compute_charges_time_and_counts(self):
        eng = Engine()
        spec = DeviceSpec("x", gcups=1.0, saturation_cols=0)
        gpu = SimulatedGPU(eng, spec)
        results = []

        def proc():
            value = yield from gpu.compute(2_000_000_000, 1024, work=lambda: "payload")
            results.append(value)

        eng.process(proc())
        total = eng.run()
        assert total == pytest.approx(2.0)
        assert results == ["payload"]
        assert gpu.counters.cells == 2_000_000_000
        assert gpu.counters.compute_s == pytest.approx(2.0)

    def test_compute_serialises_on_one_device(self):
        eng = Engine()
        gpu = SimulatedGPU(eng, DeviceSpec("x", gcups=1.0, saturation_cols=0))

        def proc():
            yield from gpu.compute(1_000_000_000, 10)

        eng.process(proc())
        eng.process(proc())
        assert eng.run() == pytest.approx(2.0)  # not 1.0: same compute engine

    def test_single_copy_engine_serialises_directions(self):
        eng = Engine()
        spec = DeviceSpec("x", gcups=1.0, pcie_gbps=1.0, pcie_latency_s=0.0, copy_engines=1)
        gpu = SimulatedGPU(eng, spec)

        def proc():
            yield from gpu.copy_to_host(1_000_000_000)

        def proc2():
            yield from gpu.copy_to_device(1_000_000_000)

        eng.process(proc())
        eng.process(proc2())
        assert eng.run() == pytest.approx(2.0)

    def test_dual_copy_engines_full_duplex(self):
        eng = Engine()
        spec = DeviceSpec("x", gcups=1.0, pcie_gbps=1.0, pcie_latency_s=0.0, copy_engines=2)
        gpu = SimulatedGPU(eng, spec)

        def proc():
            yield from gpu.copy_to_host(1_000_000_000)

        def proc2():
            yield from gpu.copy_to_device(1_000_000_000)

        eng.process(proc())
        eng.process(proc2())
        assert eng.run() == pytest.approx(1.0)

    def test_byte_counters(self):
        eng = Engine()
        gpu = SimulatedGPU(eng, DeviceSpec("x", gcups=1.0))

        def proc():
            yield from gpu.copy_to_host(100)
            yield from gpu.copy_to_device(50)

        eng.process(proc())
        eng.run()
        assert gpu.counters.bytes_out == 100
        assert gpu.counters.bytes_in == 50

    def test_zero_cells_rejected(self):
        eng = Engine()
        gpu = SimulatedGPU(eng, DeviceSpec("x", gcups=1.0))
        with pytest.raises(DeviceError):
            next(gpu.compute(0, 10))

    def test_breakdown_sums_to_one(self):
        eng = Engine()
        gpu = SimulatedGPU(eng, DeviceSpec("x", gcups=1.0, saturation_cols=0))

        def proc():
            yield from gpu.compute(500_000_000, 10)
            yield eng.timeout(0.5)  # idle

        eng.process(proc())
        total = eng.run()
        bd = gpu.counters.breakdown(total)
        assert sum(bd.values()) == pytest.approx(1.0)
        assert bd["compute"] == pytest.approx(0.5)
        assert bd["idle"] == pytest.approx(0.5)

    def test_breakdown_rejects_zero_total(self):
        eng = Engine()
        gpu = SimulatedGPU(eng, DeviceSpec("x", gcups=1.0))
        with pytest.raises(DeviceError):
            gpu.counters.breakdown(0.0)
