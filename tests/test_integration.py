"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import pytest

from repro.baselines import run_cpu, run_single_gpu, single_task_best_device, Task
from repro.device import ENV1_HETEROGENEOUS, ENV2_HOMOGENEOUS
from repro.multigpu import ChainConfig, align_multi_gpu, time_multi_gpu
from repro.seq import DNA_DEFAULT
from repro.sw import align_local, stage1_score
from repro.workloads import get_pair, synthesize_pair


@pytest.fixture(scope="module")
def chr22_small():
    """A scaled chr22 stand-in pair (about 3.5 kbp each)."""
    return synthesize_pair(get_pair("chr22"), scale=1e-4, seed=42)


class TestCrossEngineAgreement:
    def test_all_engines_agree_on_score(self, chr22_small):
        """CPU kernel, single-GPU baseline, and the 3-GPU chain must report
        the same exact score and end point on a realistic homolog pair."""
        a, b = chr22_small
        cpu = run_cpu(a, b, DNA_DEFAULT)
        single = run_single_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS[0],
                                block_rows=256)
        multi = align_multi_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS,
                                config=ChainConfig(block_rows=128))
        assert cpu.score == single.score == multi.score > 0
        assert (cpu.best.row, cpu.best.col) == (multi.best.row, multi.best.col)

    def test_stage1_matches_chain(self, chr22_small):
        a, b = chr22_small
        s1 = stage1_score(a, b, DNA_DEFAULT)
        multi = align_multi_gpu(a, b, DNA_DEFAULT, ENV2_HOMOGENEOUS)
        assert s1.score == multi.score
        assert (s1.end_i, s1.end_j) == (multi.best.row, multi.best.col)

    def test_full_alignment_on_homologs(self, chr22_small):
        a, b = chr22_small
        aln = align_local(a, b, DNA_DEFAULT, special_interval=256)
        aln.validate(a, b, DNA_DEFAULT)
        # Human-chimp calibration: identity in the mid-90s, covering most
        # of both sequences.
        assert aln.identity(a, b) > 0.9
        assert aln.a_span > 0.8 * a.size
        assert aln.b_span > 0.8 * b.size


class TestPaperShapeClaims:
    def test_multi_gpu_beats_best_single_device(self):
        """The point of the paper: fine-grain chaining makes extra GPUs
        contribute to ONE comparison, which inter-task parallelism cannot."""
        rows = cols = 10_000_000
        chain = time_multi_gpu(rows, cols, ENV1_HETEROGENEOUS,
                               config=ChainConfig(block_rows=2048))
        intertask = single_task_best_device(Task(rows, cols), ENV1_HETEROGENEOUS)
        assert chain.total_time_s < intertask.makespan_s / 2

    def test_aggregate_rate_approached_at_scale(self):
        """At megabase scale the chain sustains ≈ the sum of device rates."""
        res = time_multi_gpu(30_000_000, 30_000_000, ENV1_HETEROGENEOUS,
                             config=ChainConfig(block_rows=4096, channel_capacity=8))
        aggregate = sum(d.gcups for d in ENV1_HETEROGENEOUS)
        assert res.gcups > 0.97 * aggregate

    def test_small_matrices_underutilise(self):
        """Fill/drain and occupancy dominate small matrices — the reason
        the paper targets megabase sequences."""
        small = time_multi_gpu(20_000, 20_000, ENV1_HETEROGENEOUS,
                               config=ChainConfig(block_rows=512))
        aggregate = sum(d.gcups for d in ENV1_HETEROGENEOUS)
        assert small.gcups < 0.8 * aggregate

    def test_wait_time_concentrated_downstream(self):
        """Chain fill makes downstream devices wait at the start; upstream
        devices never wait on borders."""
        res = time_multi_gpu(5_000_000, 5_000_000, ENV1_HETEROGENEOUS,
                             config=ChainConfig(block_rows=2048))
        waits = [g.counters.wait_s for g in res.gpus]
        assert waits[0] == 0.0
        assert waits[-1] > 0.0
