"""Unit tests: repro.sw.semiglobal and repro.stats.karlin."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT, Scoring, encode
from repro.stats import ScoreStatistics, dna_statistics, estimate_k, expected_score, solve_lambda
from repro.sw import SemiGlobalMode, naive_semiglobal, semiglobal_score, sw_score

from helpers import random_codes, random_scoring


class TestSemiGlobal:
    def test_all_modes_match_naive(self, rng):
        for _ in range(30):
            m = int(rng.integers(1, 25))
            n = int(rng.integers(1, 25))
            a = random_codes(rng, m)
            b = random_codes(rng, n)
            sc = random_scoring(rng)
            for mode in SemiGlobalMode:
                want = naive_semiglobal(a, b, sc, mode)
                got = semiglobal_score(a, b, sc, mode).score
                assert got == want, (mode, m, n)

    def test_fragment_mapping(self, rng):
        """A fragment embedded in a larger reference maps perfectly under
        QUERY_IN_REF (free reference gaps, fully aligned query)."""
        ref = random_codes(rng, 400)
        frag = ref[100:160].copy()
        best = semiglobal_score(frag, ref, DNA_DEFAULT, SemiGlobalMode.QUERY_IN_REF)
        assert best.score == 60 * DNA_DEFAULT.match
        assert best.col == 159  # ends where the fragment ends in the reference

    def test_overlap_mode_dovetail(self, rng):
        """Suffix of a overlapping prefix of b scores the overlap length."""
        a = random_codes(rng, 100)
        b = np.concatenate([a[60:], random_codes(rng, 80)])
        best = semiglobal_score(a, b, DNA_DEFAULT, SemiGlobalMode.OVERLAP)
        assert best.score >= 40 * DNA_DEFAULT.match

    def test_semiglobal_leq_local(self, rng):
        """Local alignment relaxes every constraint, so it scores >= any
        semi-global mode."""
        for _ in range(10):
            a = random_codes(rng, 30)
            b = random_codes(rng, 30)
            local = sw_score(a, b, DNA_DEFAULT)
            local_s = local.score if local.row >= 0 else 0
            for mode in SemiGlobalMode:
                assert semiglobal_score(a, b, DNA_DEFAULT, mode).score <= local_s

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            semiglobal_score(np.array([], dtype=np.uint8), encode("A"), DNA_DEFAULT)


class TestLambda:
    def test_lambda_solves_equation(self):
        lam = solve_lambda(DNA_DEFAULT.matrix[:4, :4], np.full(4, 0.25), np.full(4, 0.25))
        w = np.full((4, 4), 1 / 16.0)
        val = (w * np.exp(lam * DNA_DEFAULT.matrix[:4, :4])).sum()
        assert val == pytest.approx(1.0, abs=1e-9)

    def test_known_value_match_mismatch(self):
        """For +1/-1 uniform DNA, lambda = ln 3 exactly:
        (4/16)e^l + (12/16)e^-l = 1  →  e^l = 3."""
        sc = Scoring(match=1, mismatch=-1, gap_open=0, gap_extend=1)
        lam = solve_lambda(sc.matrix[:4, :4], np.full(4, 0.25), np.full(4, 0.25))
        assert lam == pytest.approx(math.log(3), abs=1e-9)

    def test_positive_expected_score_rejected(self):
        sc = np.full((4, 4), 1, dtype=np.int32)
        with pytest.raises(ConfigError):
            solve_lambda(sc, np.full(4, 0.25), np.full(4, 0.25))

    def test_bad_composition_rejected(self):
        m = DNA_DEFAULT.matrix[:4, :4]
        with pytest.raises(ConfigError):
            solve_lambda(m, np.full(4, 0.3), np.full(4, 0.25))
        with pytest.raises(ConfigError):
            solve_lambda(m, np.array([1.5, -0.5, 0, 0]), np.full(4, 0.25))

    def test_expected_score_negative_for_default(self):
        assert expected_score(DNA_DEFAULT.matrix[:4, :4],
                              np.full(4, 0.25), np.full(4, 0.25)) < 0


class TestKAndEvalues:
    @pytest.fixture(scope="class")
    def stats(self):
        return dna_statistics(DNA_DEFAULT, k_samples=80, seed=0)

    def test_k_plausible(self, stats):
        assert 0.05 < stats.k < 2.0

    def test_k_deterministic(self):
        a = dna_statistics(DNA_DEFAULT, k_samples=30, seed=3)
        b = dna_statistics(DNA_DEFAULT, k_samples=30, seed=3)
        assert a.k == b.k

    def test_evalue_monotone_in_score(self, stats):
        evs = [stats.evalue(s, 10**6, 10**6) for s in (20, 40, 80)]
        assert evs[0] > evs[1] > evs[2]

    def test_evalue_scales_with_area(self, stats):
        assert stats.evalue(50, 2 * 10**6, 10**6) == pytest.approx(
            2 * stats.evalue(50, 10**6, 10**6))

    def test_score_for_evalue_inverts(self, stats):
        s = stats.score_for_evalue(1e-6, 10**7, 10**7)
        assert stats.evalue(s, 10**7, 10**7) <= 1e-6
        assert stats.evalue(s - 1, 10**7, 10**7) > 1e-6

    def test_pvalue_bounds(self, stats):
        p = stats.pvalue(5, 1000, 1000)
        assert 0.0 <= p <= 1.0

    def test_bit_score_increasing(self, stats):
        assert stats.bit_score(100) > stats.bit_score(50)

    def test_tail_prediction_order_of_magnitude(self, stats):
        """Predicted P(chance score >= t) must match empirical frequency
        within a factor of ~3 — the Gumbel fit doing its job."""
        rng = np.random.default_rng(7)
        m = n = 200
        t = stats.score_for_evalue(0.7, m, n)
        hits = 0
        trials = 120
        for _ in range(trials):
            a = rng.integers(0, 4, m).astype(np.uint8)
            b = rng.integers(0, 4, n).astype(np.uint8)
            if sw_score(a, b, DNA_DEFAULT).score >= t:
                hits += 1
        emp = hits / trials
        pred = stats.pvalue(t, m, n)
        assert pred / 3 < emp + 1e-3 and emp < pred * 3 + 0.05

    def test_validation(self, stats):
        with pytest.raises(ConfigError):
            stats.evalue(10, 0, 5)
        with pytest.raises(ConfigError):
            stats.score_for_evalue(0.0, 10, 10)
        with pytest.raises(ConfigError):
            estimate_k(DNA_DEFAULT, 1.37, samples=0)
