"""Unit tests: repro.multigpu.footprint and repro.perf.dotplot."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import ENV1_HETEROGENEOUS, DeviceSpec
from repro.errors import ConfigError, DeviceError
from repro.multigpu import ChainConfig, explicit_partition, plan_memory, validate_memory
from repro.perf import dotplot
from repro.seq import DNA_DEFAULT
from repro.workloads import get_pair

from helpers import mutated_copy, random_codes


class TestFootprint:
    def test_paper_scale_fits_env1(self):
        pair = get_pair("chr22")
        plans = validate_memory(ENV1_HETEROGENEOUS, pair.human_len, pair.chimp_len,
                                ChainConfig(block_rows=8192))
        assert len(plans) == 3
        for fp in plans:
            assert fp.fits
            assert 0 < fp.utilisation < 1

    def test_breakdown_adds_up(self):
        plans = plan_memory(ENV1_HETEROGENEOUS, 10**6, 10**6, ChainConfig())
        for fp in plans:
            assert fp.total_bytes == (fp.seq_bytes + fp.chunk_bytes
                                      + fp.work_bytes + fp.border_bytes)

    def test_edge_devices_have_one_channel(self):
        plans = plan_memory(ENV1_HETEROGENEOUS, 10**6, 10**6, ChainConfig())
        assert plans[0].border_bytes == plans[2].border_bytes
        assert plans[1].border_bytes == 2 * plans[0].border_bytes

    def test_slab_scaling(self):
        """Doubling a slab roughly doubles its sequence+work bytes."""
        cfg = ChainConfig()
        devices = (ENV1_HETEROGENEOUS[0], ENV1_HETEROGENEOUS[0])
        p1 = plan_memory(devices, 10**6, 10**6, cfg,
                         partition=explicit_partition(10**6, [250_000, 750_000]))
        assert p1[1].work_bytes == pytest.approx(3 * p1[0].work_bytes, rel=1e-6)

    def test_too_small_device_raises_with_suggestion(self):
        tiny = DeviceSpec("Tiny", gcups=10.0, mem_bytes=1024 * 1024)
        with pytest.raises(DeviceError, match="devices would fit"):
            validate_memory((tiny, tiny), 10**7, 10**7, ChainConfig())

    def test_bad_dims(self):
        with pytest.raises(DeviceError):
            plan_memory(ENV1_HETEROGENEOUS, 0, 10, ChainConfig())


class TestDotplot:
    def test_identical_sequences_are_diagonal(self, rng):
        a = random_codes(rng, 600)
        dp = dotplot(a, a, DNA_DEFAULT, tiles=12)
        assert dp.shape == (12, 12)
        # Diagonal tiles are self-alignments: maximal scores.
        diag = np.diag(dp.scores)
        assert (diag >= dp.scores.max() * 0.9).all()
        assert dp.diagonal_fraction(threshold=0.5) > 0.9

    def test_homologs_stay_diagonal(self, rng):
        a = random_codes(rng, 600)
        b = mutated_copy(rng, a, 0.05)
        dp = dotplot(a, b, DNA_DEFAULT, tiles=10)
        assert dp.diagonal_fraction(threshold=0.4) > 0.8

    def test_unrelated_sequences_are_flat(self, rng):
        a = random_codes(rng, 600)
        b = random_codes(rng, 600)
        dp = dotplot(a, b, DNA_DEFAULT, tiles=10)
        # Off-diagonal noise scores are far below a self-alignment tile.
        self_dp = dotplot(a, a, DNA_DEFAULT, tiles=10)
        assert dp.scores.max() < 0.5 * self_dp.scores.max()

    def test_translocation_shows_off_diagonal(self, rng):
        a = random_codes(rng, 800)
        # b = a with its two halves swapped: homology is anti-ordered.
        b = np.concatenate([a[400:], a[:400]])
        dp = dotplot(a, b, DNA_DEFAULT, tiles=8)
        assert dp.diagonal_fraction(threshold=0.4) < 0.5

    def test_render_shapes(self, rng):
        a = random_codes(rng, 300)
        dp = dotplot(a, a, DNA_DEFAULT, tiles=6)
        art = dp.render()
        lines = art.splitlines()
        assert len(lines) == 8  # border + 6 + border
        assert all(len(line) == 8 for line in lines)
        assert "@" in art  # strong diagonal shade

    def test_validation(self, rng):
        a = random_codes(rng, 10)
        with pytest.raises(ConfigError):
            dotplot(a, a, DNA_DEFAULT, tiles=0)
        with pytest.raises(ConfigError):
            dotplot(a, a, DNA_DEFAULT, tiles=50)
