"""Integration tests: repro.multigpu.chain — the paper's core engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import (
    ENV1_HETEROGENEOUS,
    ENV2_HOMOGENEOUS,
    DeviceSpec,
    homogeneous,
)
from repro.errors import ConfigError
from repro.multigpu import (
    ChainConfig,
    MatrixWorkload,
    MultiGpuChain,
    PhantomWorkload,
    align_multi_gpu,
    explicit_partition,
    time_multi_gpu,
)
from repro.seq import DNA_DEFAULT
from repro.sw import sw_score_naive

from helpers import mutated_copy, random_codes, random_scoring


class TestExactness:
    def test_matches_oracle_over_random_configs(self, rng):
        for _ in range(12):
            m = int(rng.integers(5, 120))
            n = int(rng.integers(20, 250))
            a = random_codes(rng, m, with_n=True)
            b = random_codes(rng, n, with_n=True)
            sc = random_scoring(rng)
            cfg = ChainConfig(
                block_rows=int(rng.integers(1, 30)),
                channel_capacity=int(rng.integers(1, 6)),
                device_slots=int(rng.integers(1, 4)),
                async_transfers=bool(rng.integers(0, 2)),
            )
            want, wi, wj = sw_score_naive(a, b, sc)
            res = align_multi_gpu(a, b, sc, ENV1_HETEROGENEOUS, config=cfg)
            assert res.score == want
            if want > 0:
                assert (res.best.row, res.best.col) == (wi, wj)

    def test_alignment_crossing_every_slab_boundary(self, rng):
        """A high-identity pair aligns end to end, so the optimal path runs
        through every GPU's slab and every border segment matters."""
        a = random_codes(rng, 150)
        b = mutated_copy(rng, a, 0.03)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_gpu(a, b, DNA_DEFAULT, homogeneous(ENV2_HOMOGENEOUS[0], 5),
                              config=ChainConfig(block_rows=16))
        assert res.score == want

    def test_single_device_chain(self, rng):
        a = random_codes(rng, 40)
        b = random_codes(rng, 40)
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        res = align_multi_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS[:1])
        assert res.score == want
        assert res.channels == []

    def test_deterministic(self, rng):
        a = random_codes(rng, 80)
        b = random_codes(rng, 90)
        r1 = align_multi_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS)
        r2 = align_multi_gpu(a, b, DNA_DEFAULT, ENV1_HETEROGENEOUS)
        assert r1.score == r2.score
        assert r1.total_time_s == r2.total_time_s  # bit-identical virtual time


class TestTimingModel:
    def test_phantom_and_compute_same_virtual_time(self, rng):
        """Timing mode must be time-faithful to compute mode: identical
        configuration → identical virtual clock."""
        a = random_codes(rng, 64)
        b = random_codes(rng, 96)
        cfg = ChainConfig(block_rows=8, channel_capacity=3)
        chain = MultiGpuChain(ENV1_HETEROGENEOUS, config=cfg)
        t_compute = chain.run(MatrixWorkload(a, b, DNA_DEFAULT)).total_time_s
        t_phantom = chain.run(PhantomWorkload(64, 96)).total_time_s
        assert t_compute == pytest.approx(t_phantom, rel=1e-12)

    def test_paper_headline_gcups(self):
        """ENV1 at chr22 scale sustains ~140.3 GCUPS (paper: 140.36)."""
        res = time_multi_gpu(35_194_566, 35_083_970, ENV1_HETEROGENEOUS,
                             config=ChainConfig(block_rows=4096, channel_capacity=8))
        assert res.gcups == pytest.approx(140.3, abs=1.0)

    def test_homogeneous_scaling_near_linear(self):
        base = time_multi_gpu(4_000_000, 4_000_000, homogeneous(ENV2_HOMOGENEOUS[0], 1),
                              config=ChainConfig(block_rows=2048)).gcups
        for k in (2, 4, 8):
            g = time_multi_gpu(4_000_000, 4_000_000,
                               homogeneous(ENV2_HOMOGENEOUS[0], k),
                               config=ChainConfig(block_rows=2048)).gcups
            assert g / base == pytest.approx(k, rel=0.08)

    def test_proportional_beats_equal_on_heterogeneous(self):
        rows = cols = 8_000_000
        cfg = ChainConfig(block_rows=2048)
        prop = time_multi_gpu(rows, cols, ENV1_HETEROGENEOUS, config=cfg)
        k = len(ENV1_HETEROGENEOUS)
        eq_widths = [cols // k] * (k - 1) + [cols - (k - 1) * (cols // k)]
        equal = time_multi_gpu(rows, cols, ENV1_HETEROGENEOUS, config=cfg,
                               partition=explicit_partition(cols, eq_widths))
        assert prop.gcups > equal.gcups * 1.2  # slowest device gates equal split

    def test_tiny_buffer_hurts_when_transfers_matter(self):
        """With a slow PCIe link, shrinking the circular buffer to one slot
        must cost throughput (communication no longer hidden)."""
        slow_pcie = tuple(
            DeviceSpec(d.name, gcups=d.gcups, pcie_gbps=0.001,
                       pcie_latency_s=5e-3, saturation_cols=d.saturation_cols)
            for d in ENV2_HOMOGENEOUS
        )
        rows = cols = 1_000_000
        big = time_multi_gpu(rows, cols, slow_pcie,
                             config=ChainConfig(block_rows=1024, channel_capacity=16))
        tiny = time_multi_gpu(rows, cols, slow_pcie,
                              config=ChainConfig(block_rows=1024, channel_capacity=1,
                                                 device_slots=1))
        assert tiny.total_time_s > big.total_time_s

    def test_counters_consistent(self):
        res = time_multi_gpu(2_000_000, 2_000_000, ENV2_HOMOGENEOUS,
                             config=ChainConfig(block_rows=1024))
        total_cells = sum(g.counters.cells for g in res.gpus)
        assert total_cells == res.cells
        for g, bd in zip(res.gpus, res.breakdown()):
            assert 0.0 <= bd["idle"] <= 1.0
            assert g.finished_at <= res.total_time_s + 1e-9

    def test_border_traffic_accounted(self):
        res = time_multi_gpu(1_000_000, 1_000_000, ENV2_HOMOGENEOUS,
                             config=ChainConfig(block_rows=1000))
        # 1000 block rows x (1000*8 + 4) bytes leave GPU 0.
        assert res.gpus[0].counters.bytes_out == 1000 * 8004
        assert res.gpus[1].counters.bytes_in == 1000 * 8004
        assert res.gpus[1].counters.bytes_out == 0


class TestValidation:
    def test_empty_devices_rejected(self):
        with pytest.raises(ConfigError):
            MultiGpuChain([])

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ChainConfig(block_rows=0)
        with pytest.raises(ConfigError):
            ChainConfig(channel_capacity=0)
        with pytest.raises(ConfigError):
            ChainConfig(device_slots=-1)

    def test_phantom_bad_dims(self):
        with pytest.raises(ConfigError):
            PhantomWorkload(0, 5)

    def test_empty_sequences_rejected(self):
        with pytest.raises(ConfigError):
            MatrixWorkload(np.array([], dtype=np.uint8),
                           np.array([1], dtype=np.uint8), DNA_DEFAULT)

    def test_mismatched_explicit_partition(self):
        chain = MultiGpuChain(ENV2_HOMOGENEOUS,
                              partition=explicit_partition(100, [50, 50]))
        with pytest.raises(ConfigError):
            chain.run(PhantomWorkload(10, 99))
