"""Unit tests: repro.device.trace (Tracer + Gantt rendering)."""

from __future__ import annotations

import pytest

from repro.device import ENV1_HETEROGENEOUS, Tracer, render_gantt
from repro.device.trace import Interval
from repro.errors import SimulationError
from repro.multigpu import ChainConfig, MultiGpuChain, PhantomWorkload


class TestTracerBasics:
    def test_record_and_totals(self):
        t = Tracer()
        t.record("a", "compute", 0.0, 2.0)
        t.record("a", "compute", 3.0, 4.0)
        t.record("a", "d2h", 2.0, 2.5)
        assert t.total("a") == pytest.approx(3.5)
        assert t.total("a", "compute") == pytest.approx(3.0)
        assert t.total("b") == 0.0
        assert t.actors() == ["a"]

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.record("a", "compute", 0.0, 1.0)
        assert t.intervals == []

    def test_unknown_kind_rejected(self):
        t = Tracer()
        with pytest.raises(SimulationError):
            t.record("a", "sleep", 0.0, 1.0)

    def test_backwards_interval_rejected(self):
        with pytest.raises(SimulationError):
            Interval("a", "compute", 2.0, 1.0)

    def test_utilisation(self):
        t = Tracer()
        t.record("a", "compute", 0.0, 5.0)
        assert t.utilisation("a", 10.0) == pytest.approx(0.5)
        with pytest.raises(SimulationError):
            t.utilisation("a", 0.0)


class TestConcurrency:
    def test_profile_counts_simultaneous_actors(self):
        t = Tracer()
        t.record("a", "compute", 0.0, 4.0)
        t.record("b", "compute", 2.0, 6.0)
        profile = t.concurrency_profile()
        assert profile == [(0.0, 1), (2.0, 2), (4.0, 1), (6.0, 0)]

    def test_mean_concurrency(self):
        t = Tracer()
        t.record("a", "compute", 0.0, 4.0)
        t.record("b", "compute", 2.0, 6.0)
        # areas: 1*2 + 2*2 + 1*2 = 8 over makespan 6
        assert t.mean_concurrency(6.0) == pytest.approx(8.0 / 6.0)

    def test_empty_profile(self):
        assert Tracer().concurrency_profile() == []
        assert Tracer().mean_concurrency(5.0) == 0.0


class TestOverlapQuery:
    def test_overlap_computed(self):
        t = Tracer()
        t.record("gpu", "compute", 0.0, 10.0)
        t.record("gpu", "d2h", 5.0, 8.0)
        t.record("gpu", "d2h", 9.0, 12.0)
        ov = t.overlap("gpu", "compute", "gpu", "d2h")
        assert ov == pytest.approx(3.0 + 1.0)

    def test_no_overlap(self):
        t = Tracer()
        t.record("a", "compute", 0.0, 1.0)
        t.record("b", "h2d", 2.0, 3.0)
        assert t.overlap("a", "compute", "b", "h2d") == 0.0


class TestChainTracing:
    def test_chain_reports_intervals(self):
        tracer = Tracer()
        chain = MultiGpuChain(ENV1_HETEROGENEOUS,
                              config=ChainConfig(block_rows=4096))
        res = chain.run(PhantomWorkload(100_000, 150_000), tracer=tracer)
        assert len(tracer.actors()) == 3
        for actor in tracer.actors():
            assert tracer.total(actor, "compute") > 0
        # Compute totals match the counters exactly.
        for gpu in res.gpus:
            assert tracer.total(gpu.name, "compute") == pytest.approx(
                gpu.counters.compute_s)

    def test_transfers_overlap_compute_in_hidden_regime(self):
        tracer = Tracer()
        chain = MultiGpuChain(ENV1_HETEROGENEOUS,
                              config=ChainConfig(block_rows=4096,
                                                 channel_capacity=8))
        res = chain.run(PhantomWorkload(500_000, 500_000), tracer=tracer)
        gpu0 = res.gpus[0].name
        d2h = tracer.total(gpu0, "d2h")
        hidden = tracer.overlap(gpu0, "compute", gpu0, "d2h")
        assert d2h > 0
        assert hidden / d2h > 0.9  # the hiding claim, measured directly

    def test_gantt_renders(self):
        tracer = Tracer()
        chain = MultiGpuChain(ENV1_HETEROGENEOUS,
                              config=ChainConfig(block_rows=8192))
        res = chain.run(PhantomWorkload(80_000, 120_000), tracer=tracer)
        art = render_gantt(tracer, width=60, makespan=res.total_time_s)
        lines = art.splitlines()
        assert len(lines) == 5  # 3 actors + legend + scale
        assert all("#" in line for line in lines[:3])
        assert "legend" in art

    def test_gantt_empty_and_validation(self):
        assert "no intervals" in render_gantt(Tracer())
        with pytest.raises(SimulationError):
            render_gantt(Tracer(), width=0)
