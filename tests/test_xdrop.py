"""Unit + property tests: repro.sw.xdrop (the heuristic alignment tier).

The heuristic tier's contract is differential: every heuristic score is a
**lower bound** of the exact local score, structurally-full bands are
bit-identical to the exact kernel (score *and* end cell), and the
``mode="auto"`` confidence check escalates exactly when the heuristic
answer cannot be trusted.  These tests pin each clause against the exact
kernel/oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT, Scoring, encode
from repro.sw import NEG_INF, sw_score, sw_score_naive
from repro.sw.blocks import BlockSpec
from repro.sw.kernel import BestCell
from repro.sw.xdrop import (
    DEFAULT_BAND_WIDTH,
    DEFAULT_XDROP_X,
    MODES,
    adaptive_banded_score,
    assess_heuristic,
    band_intersects,
    significance_threshold,
    validate_mode,
    xdrop_score,
)

from helpers import mutated_copy, random_codes, random_scoring

dna_codes_nonempty = st.text(alphabet="ACGTN", min_size=1, max_size=48).map(encode)

scorings = st.builds(
    Scoring,
    match=st.integers(1, 6),
    mismatch=st.integers(-6, 0),
    gap_open=st.integers(0, 6),
    gap_extend=st.integers(1, 4),
)


def _clamped(best: BestCell) -> int:
    return best.score if best.row >= 0 else 0


def _anchored_oracle_score(a, b, sc) -> int:
    """Naive unclamped Gotoh anchored at the origin: every path starts at
    cell (0, 0) with a substitution, leading gaps disallowed — the DP
    :func:`xdrop_score` computes when nothing is ever dropped."""
    m, n = int(a.size), int(b.size)
    sub = sc.matrix
    go, ge = int(sc.gap_open), int(sc.gap_extend)
    NEG = int(NEG_INF)
    hp = [NEG] * n  # H of the previous row
    fp = [NEG] * n  # F of the previous row
    best = 0
    for i in range(m):
        hc = [NEG] * n
        fc = [NEG] * n
        e = NEG   # E(i, j-1) boundary
        hl = NEG  # H(i, j-1) boundary
        hd = 0 if i == 0 else NEG  # H(i-1, -1): the origin corner only
        for j in range(n):
            f = max(max(fp[j], hp[j] - go) - ge, NEG)
            e = max(max(e, hl - go) - ge, NEG)
            h = max(hd + int(sub[a[i], b[j]]), e, f, NEG)
            hd = hp[j]
            hl = h
            hc[j], fc[j] = h, f
            best = max(best, h)
        hp, fp = hc, fc
    return best


class TestValidation:
    def test_modes_tuple(self):
        assert MODES == ("exact", "banded", "xdrop", "auto")
        for mode in MODES:
            validate_mode(mode)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            validate_mode("greedy")

    def test_nonpositive_x_rejected(self, rng):
        a = random_codes(rng, 10)
        with pytest.raises(ConfigError):
            xdrop_score(a, a, DNA_DEFAULT, 0)
        with pytest.raises(ConfigError):
            xdrop_score(a, a, DNA_DEFAULT, -3)

    def test_negative_half_width_rejected(self, rng):
        a = random_codes(rng, 10)
        with pytest.raises(ConfigError):
            adaptive_banded_score(a, a, DNA_DEFAULT, -1)


class TestXDrop:
    def test_identical_sequences_score_exact(self, rng):
        """Identity alignment never dips, so no window cell is ever
        dropped: X-drop must reproduce the exact score and end cell."""
        for n in (1, 7, 64, 300):
            a = random_codes(rng, n)
            exact = sw_score(a, a, DNA_DEFAULT)
            xo = xdrop_score(a, a, DNA_DEFAULT, DEFAULT_XDROP_X)
            assert xo.best.score == exact.score
            assert (xo.best.row, xo.best.col) == (exact.row, exact.col)

    @settings(max_examples=60, deadline=None)
    @given(dna_codes_nonempty, dna_codes_nonempty, scorings,
           st.sampled_from([1, 5, 20, 100]))
    def test_never_exceeds_exact(self, a, b, sc, x):
        """Every X-drop H value is a genuine path-from-origin score, so
        the reported best is a lower bound of the exact local score."""
        want, *_ = sw_score_naive(a, b, sc)
        xo = xdrop_score(a, b, sc, x)
        assert xo.score <= want

    def test_monotone_in_x(self, rng):
        """A larger threshold keeps a superset of window cells alive, so
        the score can only improve."""
        a = random_codes(rng, 120)
        b = mutated_copy(rng, a, 0.15)
        prev = -1
        for x in (1, 2, 5, 10, 50, 10_000):
            score = xdrop_score(a, b, DNA_DEFAULT, x).score
            assert score >= prev
            prev = score

    def test_huge_x_matches_anchored_oracle(self, rng):
        """With x beyond any achievable drop nothing is ever pruned, and
        the sweep computes exactly the origin-anchored extension DP — a
        naive unclamped Gotoh from (0, 0) is the oracle (NOT the local
        score: an extension never models alignments that start
        elsewhere)."""
        for _ in range(20):
            a = random_codes(rng, int(rng.integers(1, 40)), with_n=True)
            b = random_codes(rng, int(rng.integers(1, 40)), with_n=True)
            sc = random_scoring(rng)
            xo = xdrop_score(a, b, sc, 10_000_000)
            assert not xo.terminated
            assert xo.cells_computed == a.size * b.size
            assert xo.score == _anchored_oracle_score(a, b, sc)

    def test_divergent_pair_terminates_early(self, rng):
        """Unrelated sequences kill the window long before the far
        corner: the cell count must be a small fraction of the matrix."""
        a = random_codes(rng, 400)
        b = random_codes(rng, 400)
        xo = xdrop_score(a, b, DNA_DEFAULT, DEFAULT_XDROP_X)
        assert xo.terminated
        assert xo.cells_computed < 400 * 400 // 4


class TestAdaptiveBand:
    @settings(max_examples=60, deadline=None)
    @given(dna_codes_nonempty, dna_codes_nonempty, scorings,
           st.sampled_from([16, 33, 128]))
    def test_full_band_bit_identical_to_exact(self, a, b, sc, block_rows):
        """``half_width >= max(m, n)`` covers every cell, and the sweep
        degenerates to the exact kernel: same score AND same end cell
        (tie-break included)."""
        exact = sw_score(a, b, sc)
        bo = adaptive_banded_score(a, b, sc, max(a.size, b.size),
                                   block_rows=block_rows)
        assert bo.best.score == exact.score
        assert (bo.best.row, bo.best.col) == (exact.row, exact.col)

    @settings(max_examples=60, deadline=None)
    @given(dna_codes_nonempty, dna_codes_nonempty, scorings,
           st.sampled_from([0, 1, 4, 11]))
    def test_never_exceeds_exact(self, a, b, sc, hw):
        """The band only removes candidate paths; every in-band path is a
        real path, so the banded best is a lower bound."""
        want, *_ = sw_score_naive(a, b, sc)
        bo = adaptive_banded_score(a, b, sc, hw, block_rows=8)
        assert bo.score <= want

    def test_similar_pair_matches_exact_with_narrow_band(self, rng):
        """<= 5%-divergent pairs stay near the main diagonal: a narrow
        adaptive band recovers the exact score."""
        for _ in range(10):
            a = random_codes(rng, 400)
            b = mutated_copy(rng, a, 0.05)
            want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
            bo = adaptive_banded_score(a, b, DNA_DEFAULT, 16, block_rows=64)
            assert bo.score == want

    def test_recenter_and_widen_on_shifted_prefix(self, rng):
        """b = 24 random bases + a: the alignment sits 24 columns off the
        main diagonal.  A half-width-16 band must *widen* (the stripe best
        drifts to the band edge) and *recenter* to follow it, then land on
        the exact score."""
        a = random_codes(rng, 300)
        b = np.concatenate([random_codes(rng, 24), a])
        want, *_ = sw_score_naive(a, b, DNA_DEFAULT)
        bo = adaptive_banded_score(a, b, DNA_DEFAULT, 16, block_rows=64)
        assert bo.widenings >= 1
        assert bo.recenters >= 1
        assert bo.final_half_width > bo.initial_half_width
        assert not bo.saturated
        assert bo.score == want

    def test_cap_reports_saturation(self, rng):
        """The same shifted workload with the widening capped below what
        it needs must flag ``saturated`` — the auto tier's escalation
        signal."""
        a = random_codes(rng, 300)
        b = np.concatenate([random_codes(rng, 24), a])
        bo = adaptive_banded_score(a, b, DNA_DEFAULT, 4, block_rows=64,
                                   max_half_width=8)
        assert bo.saturated
        assert bo.final_half_width == 8

    def test_band_cells_bounded(self, rng):
        """A narrow band must actually skip work: the computed-cell count
        stays near (2*hw+1)*m, far below m*n."""
        a = random_codes(rng, 500)
        b = mutated_copy(rng, a, 0.03)
        bo = adaptive_banded_score(a, b, DNA_DEFAULT, 8, block_rows=32)
        assert bo.cells_computed < 500 * 500 // 4


class TestBandIntersects:
    def test_on_diagonal_block_always_intersects(self):
        spec = BlockSpec(0, 64, 0, 64)
        assert band_intersects(spec, 0)

    def test_far_off_diagonal_block_misses_narrow_band(self):
        spec = BlockSpec(0, 64, 1000, 1064)
        assert not band_intersects(spec, 64)
        assert band_intersects(spec, 1000)

    def test_boundary_is_inclusive(self):
        # Block whose nearest cell sits at offset exactly half_width.
        spec = BlockSpec(0, 1, 10, 20)  # offsets j - i in [10, 19]
        assert band_intersects(spec, 10)
        assert not band_intersects(spec, 9)

    def test_matches_brute_force(self, rng):
        for _ in range(200):
            r0 = int(rng.integers(0, 50))
            c0 = int(rng.integers(0, 50))
            spec = BlockSpec(r0, r0 + int(rng.integers(1, 20)),
                             c0, c0 + int(rng.integers(1, 20)))
            hw = int(rng.integers(0, 40))
            want = any(
                abs(j - i) <= hw
                for i in range(spec.row0, spec.row1)
                for j in range(spec.col0, spec.col1))
            assert band_intersects(spec, hw) == want


class TestConfidenceCheck:
    def test_saturated_band_escalates(self):
        best = BestCell(10_000, 500, 500)
        decision = assess_heuristic(best, 1000, 1000, DNA_DEFAULT,
                                    saturated=True)
        assert not decision.confident
        assert any("saturat" in r for r in decision.reasons)

    def test_weak_score_escalates(self):
        """A score below the Karlin-Altschul significance threshold could
        be a clipped optimum — not trustworthy."""
        best = BestCell(3, 10, 10)
        decision = assess_heuristic(best, 100_000, 100_000, DNA_DEFAULT)
        assert not decision.confident

    def test_strong_diagonal_score_is_confident(self):
        m = n = 10_000
        thresh = significance_threshold(DNA_DEFAULT, m, n)
        assert thresh is not None
        best = BestCell(max(2 * thresh, 2000), n - 1, n - 1)
        decision = assess_heuristic(best, m, n, DNA_DEFAULT,
                                    band_half_width=64)
        assert decision.confident
        assert decision.reasons == ()

    def test_best_near_static_band_edge_escalates(self):
        """An end cell hugging the static band edge means the real
        optimum may continue beyond it."""
        m = n = 10_000
        best = BestCell(5000, 5000, 5060)  # offset 60 with half-width 64
        decision = assess_heuristic(best, m, n, DNA_DEFAULT,
                                    band_half_width=64)
        assert not decision.confident

    def test_scheme_without_statistics_escalates(self):
        """No Karlin-Altschul stats (e.g. a non-scorable scheme) means no
        significance threshold: auto must fall back to exact."""
        # match <= |mismatch| == 0 gives expected score >= 0: no stats.
        sc = Scoring(match=1, mismatch=0, gap_open=3, gap_extend=2)
        best = BestCell(1_000_000, 500, 500)
        decision = assess_heuristic(best, 1000, 1000, sc)
        assert not decision.confident

    def test_no_positive_cell_escalates(self):
        decision = assess_heuristic(BestCell.none(), 1000, 1000, DNA_DEFAULT)
        assert not decision.confident


class TestHeuristicNeverExceedsExactRandomised:
    def test_all_tiers_bounded_by_oracle(self, rng):
        """One randomised sweep across both heuristics and many shapes,
        schemes and thresholds — the differential guarantee in one place."""
        for _ in range(60):
            m = int(rng.integers(1, 60))
            n = int(rng.integers(1, 60))
            a = random_codes(rng, m, with_n=True)
            b = random_codes(rng, n, with_n=True)
            sc = random_scoring(rng)
            want, *_ = sw_score_naive(a, b, sc)
            x = int(rng.integers(1, 40))
            hw = int(rng.integers(0, 20))
            br = int(rng.integers(1, 24))
            assert xdrop_score(a, b, sc, x).score <= want
            assert adaptive_banded_score(a, b, sc, hw,
                                         block_rows=br).score <= want
