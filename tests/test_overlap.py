"""Unit tests: repro.multigpu.overlap — analytic model vs simulation."""

from __future__ import annotations

import pytest

from repro.device import ENV1_HETEROGENEOUS, ENV2_HOMOGENEOUS, DeviceSpec, homogeneous
from repro.errors import ConfigError
from repro.multigpu import (
    ChainConfig,
    block_row_time,
    channel_segment_cost,
    hop_times,
    min_overlap_width,
    overlap_satisfied,
    predict_chain,
    proportional_partition,
    segment_bytes,
    time_multi_gpu,
)


class TestSegmentBytes:
    def test_formula(self):
        assert segment_bytes(512) == 512 * 8 + 4

    def test_bad_rows(self):
        with pytest.raises(ConfigError):
            segment_bytes(0)


class TestBlockRowTime:
    def test_linear_in_rows_and_width(self):
        spec = DeviceSpec("x", gcups=1.0, saturation_cols=0)
        assert block_row_time(spec, 1000, 1000) == pytest.approx(1e-3)
        assert block_row_time(spec, 2000, 1000) == pytest.approx(2e-3)

    def test_occupancy_penalty_for_narrow_slabs(self):
        spec = DeviceSpec("x", gcups=1.0, saturation_cols=1000)
        narrow = block_row_time(spec, 100, 100)
        wide = block_row_time(spec, 100_000, 100)
        # cells/time ratio: wide slab is much more efficient per cell
        assert (100 * 100 / narrow) < (100_000 * 100 / wide)


class TestOverlapCondition:
    def test_wide_slab_overlaps(self):
        a, b = ENV2_HOMOGENEOUS
        assert overlap_satisfied(a, b, slab_cols=1_000_000, block_rows=512)

    def test_narrow_slab_fails_with_slow_link(self):
        slow = DeviceSpec("slow", gcups=50.0, pcie_gbps=0.0001, pcie_latency_s=1e-3,
                          saturation_cols=0)
        assert not overlap_satisfied(slow, slow, slab_cols=10, block_rows=512)

    def test_min_width_is_the_crossover(self):
        slow = DeviceSpec("slow", gcups=50.0, pcie_gbps=0.001, pcie_latency_s=1e-4,
                          saturation_cols=0)
        w = min_overlap_width(slow, slow, block_rows=512)
        assert overlap_satisfied(slow, slow, w, 512)
        if w > 1:
            assert not overlap_satisfied(slow, slow, w - 1, 512)

    def test_min_width_with_occupancy_model(self):
        spec = ENV1_HETEROGENEOUS[0]
        w = min_overlap_width(spec, ENV1_HETEROGENEOUS[1], block_rows=512)
        assert overlap_satisfied(spec, ENV1_HETEROGENEOUS[1], w, 512)

    def test_pipelined_cheaper_than_rendezvous(self):
        a, b = ENV2_HOMOGENEOUS
        assert channel_segment_cost(a, b, 512, pipelined=True) < \
            channel_segment_cost(a, b, 512, pipelined=False)

    def test_hop_times_positive(self):
        d2h, h2d = hop_times(*ENV2_HOMOGENEOUS, 512)
        assert d2h > 0 and h2d > 0


class TestPrediction:
    @pytest.mark.parametrize("devices", [ENV1_HETEROGENEOUS, ENV2_HOMOGENEOUS,
                                         homogeneous(ENV2_HOMOGENEOUS[0], 6)])
    def test_prediction_tracks_simulation(self, devices):
        rows = cols = 6_000_000
        cfg = ChainConfig(block_rows=2048, channel_capacity=8)
        slabs = proportional_partition(cols, [d.gcups for d in devices])
        pred = predict_chain(devices, slabs, rows, cfg)
        sim = time_multi_gpu(rows, cols, devices, config=cfg)
        assert pred.total_s == pytest.approx(sim.total_time_s, rel=0.05)

    def test_prediction_with_slow_channel_bottleneck(self):
        slow = tuple(
            DeviceSpec(d.name, gcups=d.gcups, pcie_gbps=0.0001,
                       pcie_latency_s=1e-3, saturation_cols=0)
            for d in ENV2_HOMOGENEOUS
        )
        rows = cols = 1_000_000
        cfg = ChainConfig(block_rows=1024, channel_capacity=8)
        slabs = proportional_partition(cols, [d.gcups for d in slow])
        pred = predict_chain(slow, slabs, rows, cfg)
        assert pred.bottleneck.startswith("channel")
        sim = time_multi_gpu(rows, cols, slow, config=cfg)
        assert pred.total_s == pytest.approx(sim.total_time_s, rel=0.15)

    def test_gcups_helper(self):
        devices = ENV2_HOMOGENEOUS
        cfg = ChainConfig(block_rows=2048)
        slabs = proportional_partition(1_000_000, [d.gcups for d in devices])
        pred = predict_chain(devices, slabs, 1_000_000, cfg)
        assert pred.gcups(10**12) > 0

    def test_length_mismatch_rejected(self):
        slabs = proportional_partition(100, [1.0])
        with pytest.raises(ConfigError):
            predict_chain(ENV2_HOMOGENEOUS, slabs, 100, ChainConfig())
