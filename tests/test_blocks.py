"""Unit tests: repro.sw.blocks — grid geometry and the blocked executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.seq import DNA_DEFAULT
from repro.sw import naive
from repro.sw.blocks import (
    BlockSpec,
    compute_blocked,
    grid_specs,
    pruned_border_result,
    wavefront_order,
)
from repro.sw.pruning import BlockPruner

from helpers import mutated_copy, random_codes, random_scoring


class TestGridSpecs:
    def test_covers_matrix_exactly(self):
        specs = grid_specs(100, 70, 32, 25)
        assert specs[0][0].row0 == 0 and specs[-1][0].row1 == 100
        assert specs[0][0].col0 == 0 and specs[0][-1].col1 == 70
        total = sum(s.cells for row in specs for s in row)
        assert total == 100 * 70

    def test_edge_blocks_are_smaller(self):
        specs = grid_specs(100, 100, 30, 30)
        assert specs[-1][-1].rows == 10
        assert specs[-1][-1].cols == 10

    def test_single_block(self):
        specs = grid_specs(5, 5, 100, 100)
        assert len(specs) == 1 and len(specs[0]) == 1
        assert specs[0][0].cells == 25

    @pytest.mark.parametrize("m,n,br,bc", [(0, 5, 1, 1), (5, 0, 1, 1), (5, 5, 0, 1), (5, 5, 1, 0)])
    def test_bad_dimensions_rejected(self, m, n, br, bc):
        with pytest.raises(ConfigError):
            grid_specs(m, n, br, bc)

    def test_degenerate_spec_rejected(self):
        with pytest.raises(ConfigError):
            BlockSpec(3, 3, 0, 5)


class TestWavefrontOrder:
    def test_dependencies_respected(self):
        """Every block appears after its up/left/diag neighbours."""
        seen: set[tuple[int, int]] = set()
        for diag in wavefront_order(4, 6):
            for br, bc in diag:
                if br > 0:
                    assert (br - 1, bc) in seen
                if bc > 0:
                    assert (br, bc - 1) in seen
                if br > 0 and bc > 0:
                    assert (br - 1, bc - 1) in seen
            seen.update(diag)
        assert len(seen) == 24

    def test_diagonal_count(self):
        diags = list(wavefront_order(3, 5))
        assert len(diags) == 3 + 5 - 1
        assert max(len(d) for d in diags) == 3


class TestBlockedExecutor:
    def test_equals_oracle_random_configs(self, rng):
        for _ in range(25):
            m = int(rng.integers(2, 50))
            n = int(rng.integers(2, 50))
            a = random_codes(rng, m, with_n=True)
            b = random_codes(rng, n, with_n=True)
            sc = random_scoring(rng)
            want, wi, wj = naive.sw_score_naive(a, b, sc)
            out = compute_blocked(
                a, b, sc,
                block_rows=int(rng.integers(1, m + 1)),
                block_cols=int(rng.integers(1, n + 1)),
            )
            got = out.best.score if out.best.row >= 0 else 0
            assert got == want
            if want > 0:
                assert (out.best.row, out.best.col) == (wi, wj)

    def test_global_mode_equals_oracle(self, rng):
        for _ in range(10):
            m = int(rng.integers(2, 30))
            n = int(rng.integers(2, 30))
            a = random_codes(rng, m)
            b = random_codes(rng, n)
            sc = random_scoring(rng)
            mats = naive.full_matrices(a, b, sc, local=False)
            # Global best cell equals oracle's max H (blocked executor
            # tracks the best cell in both modes).
            out = compute_blocked(a, b, sc, block_rows=7, block_cols=9, local=False)
            assert out.best.score == int(mats.H[1:, 1:].max())

    def test_block_accounting(self, rng):
        a = random_codes(rng, 20)
        b = random_codes(rng, 30)
        out = compute_blocked(a, b, DNA_DEFAULT, block_rows=8, block_cols=10)
        assert out.blocks_total == 3 * 3
        assert out.cells_total == 600
        assert out.blocks_pruned == 0
        assert out.pruned_fraction == 0.0

    def test_pruner_rejected_in_global_mode(self, rng):
        a = random_codes(rng, 5)
        b = random_codes(rng, 5)
        with pytest.raises(ConfigError):
            compute_blocked(a, b, DNA_DEFAULT, local=False,
                            pruner=BlockPruner(match=1))


class TestPrunedExactness:
    def test_similar_sequences_prune_and_stay_exact(self, rng):
        for snp in (0.02, 0.1, 0.3):
            a = random_codes(rng, 400)
            b = mutated_copy(rng, a, snp)
            base = compute_blocked(a, b, DNA_DEFAULT, block_rows=32, block_cols=32)
            pruner = BlockPruner(match=DNA_DEFAULT.match)
            pruned = compute_blocked(a, b, DNA_DEFAULT, block_rows=32, block_cols=32,
                                     pruner=pruner)
            assert pruned.best.score == base.best.score
            if snp <= 0.1:
                assert pruned.cells_pruned > 0

    def test_pruning_increases_with_similarity(self, rng):
        a = random_codes(rng, 600)
        fractions = []
        for snp in (0.02, 0.2, 0.5):
            b = mutated_copy(rng, a, snp)
            out = compute_blocked(a, b, DNA_DEFAULT, block_rows=32, block_cols=32,
                                  pruner=BlockPruner(match=1))
            fractions.append(out.pruned_fraction)
        assert fractions[0] > fractions[1] >= fractions[2]

    def test_pruned_border_shape(self):
        spec = BlockSpec(0, 4, 0, 6)
        res = pruned_border_result(spec)
        assert res.h_bottom.shape == (6,)
        assert res.h_right.shape == (4,)
        assert (res.h_bottom == 0).all()
        assert res.best.row == -1
