"""Unit tests: repro.seq.scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.seq import DNA_DEFAULT, LINEAR_GAPS, Scoring, encode
from repro.seq import alphabet


class TestValidation:
    def test_default_is_the_cudalign_scheme(self):
        assert (DNA_DEFAULT.match, DNA_DEFAULT.mismatch) == (1, -3)
        assert (DNA_DEFAULT.gap_open, DNA_DEFAULT.gap_extend) == (3, 2)
        assert DNA_DEFAULT.gap_first == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(match=0),
            dict(match=-1),
            dict(mismatch=1),
            dict(gap_open=-1),
            dict(gap_extend=0),
            dict(gap_extend=-2),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ScoringError):
            Scoring(**kwargs)

    def test_linear_gap_scheme_allowed(self):
        assert LINEAR_GAPS.gap_open == 0


class TestMatrix:
    def test_diagonal_is_match(self):
        for i in range(4):
            assert DNA_DEFAULT.matrix[i, i] == DNA_DEFAULT.match

    def test_off_diagonal_is_mismatch(self):
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert DNA_DEFAULT.matrix[i, j] == DNA_DEFAULT.mismatch

    def test_n_never_matches(self):
        n = alphabet.N
        assert DNA_DEFAULT.matrix[n, n] == DNA_DEFAULT.mismatch
        for i in range(4):
            assert DNA_DEFAULT.matrix[n, i] == DNA_DEFAULT.mismatch
            assert DNA_DEFAULT.matrix[i, n] == DNA_DEFAULT.mismatch

    def test_matrix_is_symmetric(self):
        assert np.array_equal(DNA_DEFAULT.matrix, DNA_DEFAULT.matrix.T)

    def test_matrix_dtype(self):
        assert DNA_DEFAULT.matrix.dtype == np.int32


class TestGapCost:
    def test_zero_length_is_free(self):
        assert DNA_DEFAULT.gap_cost(0) == 0

    def test_affine_formula(self):
        for length in (1, 2, 7, 100):
            assert DNA_DEFAULT.gap_cost(length) == 3 + 2 * length

    def test_negative_rejected(self):
        with pytest.raises(ScoringError):
            DNA_DEFAULT.gap_cost(-1)


class TestProfile:
    def test_substitution_profile_shape_and_values(self):
        query = encode("ACGTN")
        prof = DNA_DEFAULT.substitution_profile(query)
        assert prof.shape == (5, 5)
        for b in range(5):
            for i, q in enumerate(query):
                assert prof[b, i] == DNA_DEFAULT.matrix[q, b]

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DNA_DEFAULT.match = 2  # type: ignore[misc]
